//! Parallel-plan correctness: for randomized queries, every planner
//! configuration (serial, local/global, range-partitioned, ablations, RLE
//! on/off) must return identical result sets.

#![allow(clippy::field_reassign_with_default)]

use proptest::prelude::*;
use std::sync::Arc;
use tabviz::prelude::*;
use tabviz::tde::cost::CostProfile;
use tabviz::tde::parallel::ParallelOptions;
use tabviz::workloads::{generate_flights, FaaConfig};

fn engine(rows: usize, sorted: bool) -> Tde {
    let flights = generate_flights(&FaaConfig {
        rows,
        seed: 7,
        ..Default::default()
    })
    .unwrap();
    let db = Arc::new(Database::new("faa"));
    let keys: &[&str] = if sorted { &["carrier", "date"] } else { &[] };
    db.put(Table::from_chunk("flights", &flights, keys).unwrap())
        .unwrap();
    Tde::new(db)
}

fn configs() -> Vec<(&'static str, ExecOptions)> {
    let forced = CostProfile {
        min_work_per_thread: 500,
        max_dop: 4,
    };
    let mut all = vec![("serial", ExecOptions::serial())];
    let mut p1 = ExecOptions::default();
    p1.parallel = ParallelOptions {
        profile: forced,
        range_partition_min_distinct_per_dop: 1,
        ..Default::default()
    };
    all.push(("parallel-full", p1));
    let mut p2 = ExecOptions::default();
    p2.parallel = ParallelOptions {
        profile: forced,
        enable_range_partition: false,
        ..Default::default()
    };
    all.push(("local-global", p2));
    let mut p3 = ExecOptions::default();
    p3.parallel = ParallelOptions {
        profile: forced,
        enable_range_partition: false,
        enable_local_global: false,
        enable_local_topn: false,
        ..Default::default()
    };
    all.push(("exchange-serial-agg", p3));
    let mut p4 = ExecOptions::serial();
    p4.physical.enable_rle_index = false;
    all.push(("no-rle-index", p4));
    let mut p5 = ExecOptions::serial();
    p5.physical.enable_streaming_agg = false;
    all.push(("hash-agg-only", p5));
    let mut p6 = ExecOptions::default();
    p6.parallel = ParallelOptions {
        profile: forced,
        enable_range_partition: false,
        prefer_ordered_exchange_streaming: true,
        ..Default::default()
    };
    all.push(("ordered-exchange-streaming", p6));
    all
}

fn agg_pool() -> Vec<&'static str> {
    vec![
        "(count as n)",
        "(sum distance as dist)",
        "(avg arr_delay as d)",
        "(min dep_delay as lo)",
        "(max dep_delay as hi)",
        "(countd origin as no)",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn all_plan_configs_agree(
        groups in proptest::sample::subsequence(
            vec!["carrier", "origin_state", "weekday"], 1..=2),
        aggs in proptest::sample::subsequence(agg_pool(), 1..=3),
        filter_carrier in proptest::option::of(
            proptest::sample::select(vec!["WN", "DL", "HA", "NK"])),
        sorted in any::<bool>(),
    ) {
        let tde = engine(6_000, sorted);
        let filter = match filter_carrier {
            Some(c) => format!("(select (= carrier \"{c}\") (scan flights))"),
            None => "(scan flights)".to_string(),
        };
        let q = format!(
            "(aggregate ({}) ({}) {})",
            groups.join(" "),
            aggs.join(" "),
            filter
        );
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for (name, opts) in configs() {
            let mut rows = tde.query_with(&q, &opts).unwrap().to_rows();
            rows.sort();
            match &reference {
                None => reference = Some(rows),
                Some(r) => prop_assert_eq!(r, &rows, "config {} diverged on {}", name, q),
            }
        }
    }

    #[test]
    fn topn_agrees_across_configs(
        n in 1usize..8,
        desc in any::<bool>(),
    ) {
        let tde = engine(6_000, true);
        let dir = if desc { "desc" } else { "asc" };
        let q = format!(
            "(topn {n} ((total {dir}) (carrier asc))
               (aggregate ((carrier)) ((sum distance as total)) (scan flights)))"
        );
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for (name, opts) in configs() {
            let rows = tde.query_with(&q, &opts).unwrap().to_rows();
            match &reference {
                None => reference = Some(rows),
                Some(r) => prop_assert_eq!(r, &rows, "config {} diverged", name),
            }
        }
    }
}

#[test]
fn exchange_results_complete_under_many_threads() {
    // Stress the Exchange with more branches than cores.
    let tde = engine(50_000, false);
    let mut opts = ExecOptions::default();
    opts.parallel = ParallelOptions {
        profile: CostProfile {
            min_work_per_thread: 100,
            max_dop: 16,
        },
        ..Default::default()
    };
    let total = tde
        .query_with("(aggregate () ((count as n)) (scan flights))", &opts)
        .unwrap();
    assert_eq!(total.row(0)[0], Value::Int(50_000));
}

#[test]
fn parallel_join_correctness() {
    let flights = generate_flights(&FaaConfig::with_rows(20_000)).unwrap();
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &["carrier"]).unwrap())
        .unwrap();
    db.put(
        Table::from_chunk(
            "carriers",
            &tabviz::workloads::carriers_dim().unwrap(),
            &["code"],
        )
        .unwrap(),
    )
    .unwrap();
    let tde = Tde::new(db);
    let q = "(aggregate ((name)) ((count as n))
               (join inner ((carrier code)) (scan flights) (scan carriers)))";
    let serial = tde.query_with(q, &ExecOptions::serial()).unwrap();
    let mut fast = ExecOptions::default();
    fast.parallel.profile = CostProfile {
        min_work_per_thread: 500,
        max_dop: 4,
    };
    let parallel = tde.query_with(q, &fast).unwrap();
    let mut a = serial.to_rows();
    let mut b = parallel.to_rows();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    let total: i64 = a.iter().map(|r| r[1].as_int().unwrap()).sum();
    assert_eq!(total, 20_000);
}
