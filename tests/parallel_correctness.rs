//! Parallel-plan correctness: for randomized queries, every planner
//! configuration (serial, local/global, range-partitioned, ablations, RLE
//! on/off) must return identical result sets.

#![allow(clippy::field_reassign_with_default)]

use proptest::prelude::*;
use std::sync::Arc;
use tabviz::prelude::*;
use tabviz::tde::cost::CostProfile;
use tabviz::tde::parallel::ParallelOptions;
use tabviz::workloads::{generate_flights, FaaConfig};

fn engine(rows: usize, sorted: bool) -> Tde {
    let flights = generate_flights(&FaaConfig {
        rows,
        seed: 7,
        ..Default::default()
    })
    .unwrap();
    let db = Arc::new(Database::new("faa"));
    let keys: &[&str] = if sorted { &["carrier", "date"] } else { &[] };
    db.put(Table::from_chunk("flights", &flights, keys).unwrap())
        .unwrap();
    Tde::new(db)
}

fn configs() -> Vec<(&'static str, ExecOptions)> {
    let forced = CostProfile {
        min_work_per_thread: 500,
        max_dop: 4,
    };
    let mut all = vec![("serial", ExecOptions::serial())];
    let mut p1 = ExecOptions::default();
    p1.parallel = ParallelOptions {
        profile: forced,
        range_partition_min_distinct_per_dop: 1,
        ..Default::default()
    };
    all.push(("parallel-full", p1));
    let mut p2 = ExecOptions::default();
    p2.parallel = ParallelOptions {
        profile: forced,
        enable_range_partition: false,
        ..Default::default()
    };
    all.push(("local-global", p2));
    let mut p3 = ExecOptions::default();
    p3.parallel = ParallelOptions {
        profile: forced,
        enable_range_partition: false,
        enable_local_global: false,
        enable_local_topn: false,
        ..Default::default()
    };
    all.push(("exchange-serial-agg", p3));
    let mut p4 = ExecOptions::serial();
    p4.physical.enable_rle_index = false;
    all.push(("no-rle-index", p4));
    let mut p5 = ExecOptions::serial();
    p5.physical.enable_streaming_agg = false;
    all.push(("hash-agg-only", p5));
    let mut p6 = ExecOptions::default();
    p6.parallel = ParallelOptions {
        profile: forced,
        enable_range_partition: false,
        prefer_ordered_exchange_streaming: true,
        ..Default::default()
    };
    all.push(("ordered-exchange-streaming", p6));
    let mut p7 = ExecOptions::serial();
    p7.physical.enable_scan_pushdown = false;
    all.push(("no-scan-pushdown", p7));
    let mut p8 = ExecOptions::serial();
    p8.physical.enable_run_agg = false;
    all.push(("no-run-agg", p8));
    let mut p9 = ExecOptions::default();
    p9.parallel = ParallelOptions {
        profile: forced,
        ..Default::default()
    };
    p9.physical.enable_scan_pushdown = false;
    all.push(("parallel-no-pushdown", p9));
    all
}

fn agg_pool() -> Vec<&'static str> {
    vec![
        "(count as n)",
        "(sum distance as dist)",
        "(avg arr_delay as d)",
        "(min dep_delay as lo)",
        "(max dep_delay as hi)",
        "(countd origin as no)",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn all_plan_configs_agree(
        groups in proptest::sample::subsequence(
            vec!["carrier", "origin_state", "weekday"], 1..=2),
        aggs in proptest::sample::subsequence(agg_pool(), 1..=3),
        filter_carrier in proptest::option::of(
            proptest::sample::select(vec!["WN", "DL", "HA", "NK"])),
        sorted in any::<bool>(),
    ) {
        let tde = engine(6_000, sorted);
        let filter = match filter_carrier {
            Some(c) => format!("(select (= carrier \"{c}\") (scan flights))"),
            None => "(scan flights)".to_string(),
        };
        let q = format!(
            "(aggregate ({}) ({}) {})",
            groups.join(" "),
            aggs.join(" "),
            filter
        );
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for (name, opts) in configs() {
            let mut rows = tde.query_with(&q, &opts).unwrap().to_rows();
            rows.sort();
            match &reference {
                None => reference = Some(rows),
                Some(r) => prop_assert_eq!(r, &rows, "config {} diverged on {}", name, q),
            }
        }
    }

    #[test]
    fn topn_agrees_across_configs(
        n in 1usize..8,
        desc in any::<bool>(),
    ) {
        let tde = engine(6_000, true);
        let dir = if desc { "desc" } else { "asc" };
        let q = format!(
            "(topn {n} ((total {dir}) (carrier asc))
               (aggregate ((carrier)) ((sum distance as total)) (scan flights)))"
        );
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for (name, opts) in configs() {
            let rows = tde.query_with(&q, &opts).unwrap().to_rows();
            match &reference {
                None => reference = Some(rows),
                Some(r) => prop_assert_eq!(r, &rows, "config {} diverged", name),
            }
        }
    }
}

/// RLE-index selectivity sweep: on sorted (run-length-friendly) data, drive
/// filters from empty through near-total selectivity and require the RLE
/// index scan to agree with the plain scan — and with every parallel
/// configuration — at each point. Off-by-one run boundaries show up at the
/// extremes of this sweep.
#[test]
fn rle_selectivity_sweep_agrees_across_configs() {
    let tde = engine(8_000, true);
    // "ZZ" matches nothing; "WN" is the most common carrier; dep_hour
    // bounds cover none / few / most / all rows.
    let filters = [
        "(= carrier \"ZZ\")".to_string(),
        "(= carrier \"HA\")".to_string(),
        "(= carrier \"WN\")".to_string(),
        "(in carrier \"WN\" \"DL\" \"AA\" \"UA\")".to_string(),
        "(>= dep_hour 23)".to_string(),
        "(>= dep_hour 18)".to_string(),
        "(>= dep_hour 6)".to_string(),
        "(>= dep_hour 0)".to_string(),
        "(between dep_hour 9 9)".to_string(),
    ];
    let mut selectivities = Vec::new();
    for f in &filters {
        let q = format!(
            "(aggregate ((carrier) (weekday)) \
               ((count as n) (sum distance as dist) (min dep_delay as lo)) \
               (select {f} (scan flights)))"
        );
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for (name, opts) in configs() {
            let mut rows = tde.query_with(&q, &opts).unwrap().to_rows();
            rows.sort();
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(r, &rows, "config {name} diverged on filter {f}"),
            }
        }
        let matched: i64 = reference
            .unwrap()
            .iter()
            .map(|r| r[2].as_int().unwrap())
            .sum();
        selectivities.push(matched);
    }
    // The sweep must actually span the range: an empty point and a
    // (near-)total point.
    assert_eq!(selectivities[0], 0, "ZZ must match no rows");
    assert_eq!(
        *selectivities.iter().max().unwrap(),
        8_000,
        "dep_hour >= 0 must match all rows"
    );
}

/// Aggregations over an empty input: grouped queries return zero rows and
/// global (group-less) aggregates return their identity row — identically
/// under every plan configuration.
#[test]
fn empty_input_aggregations_agree_across_configs() {
    let tde = engine(4_000, true);
    let empty = "(select (= carrier \"ZZ\") (scan flights))";
    // Grouped: no groups exist, so no rows.
    let grouped = format!("(aggregate ((carrier)) ((count as n) (sum distance as dist)) {empty})");
    for (name, opts) in configs() {
        let out = tde.query_with(&grouped, &opts).unwrap();
        assert_eq!(out.len(), 0, "config {name}: grouped agg over empty input");
    }
    // Global: one row per configuration, and they all agree with serial.
    let global = format!(
        "(aggregate () ((count as n) (min dep_delay as lo) (max dep_delay as hi)) {empty})"
    );
    let reference = tde
        .query_with(&global, &ExecOptions::serial())
        .unwrap()
        .to_rows();
    assert_eq!(
        reference[0][0],
        Value::Int(0),
        "COUNT over empty input is 0"
    );
    for (name, opts) in configs() {
        let rows = tde.query_with(&global, &opts).unwrap().to_rows();
        assert_eq!(
            rows, reference,
            "config {name}: global agg over empty input"
        );
    }
}

/// A filter isolating a single group must produce exactly one identical row
/// everywhere — the degenerate case for local/global merging and range
/// partitioning (one partition gets everything, the rest get nothing).
#[test]
fn single_group_aggregations_agree_across_configs() {
    let tde = engine(4_000, true);
    for q in [
        // One group row survives the filter.
        "(aggregate ((carrier)) ((count as n) (sum distance as dist) (avg arr_delay as d)) \
           (select (= carrier \"WN\") (scan flights)))"
            .to_string(),
        // Group-less global aggregate over the whole table.
        "(aggregate () ((count as n) (countd carrier as nc) (sum distance as dist)) \
           (scan flights))"
            .to_string(),
    ] {
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for (name, opts) in configs() {
            let rows = tde.query_with(&q, &opts).unwrap().to_rows();
            assert_eq!(
                rows.len(),
                1,
                "config {name}: expected a single row for {q}"
            );
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(r, &rows, "config {name} diverged on {q}"),
            }
        }
    }
}

#[test]
fn exchange_results_complete_under_many_threads() {
    // Stress the Exchange with more branches than cores.
    let tde = engine(50_000, false);
    let mut opts = ExecOptions::default();
    opts.parallel = ParallelOptions {
        profile: CostProfile {
            min_work_per_thread: 100,
            max_dop: 16,
        },
        ..Default::default()
    };
    let total = tde
        .query_with("(aggregate () ((count as n)) (scan flights))", &opts)
        .unwrap();
    assert_eq!(total.row(0)[0], Value::Int(50_000));
}

#[test]
fn parallel_join_correctness() {
    let flights = generate_flights(&FaaConfig::with_rows(20_000)).unwrap();
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &["carrier"]).unwrap())
        .unwrap();
    db.put(
        Table::from_chunk(
            "carriers",
            &tabviz::workloads::carriers_dim().unwrap(),
            &["code"],
        )
        .unwrap(),
    )
    .unwrap();
    let tde = Tde::new(db);
    let q = "(aggregate ((name)) ((count as n))
               (join inner ((carrier code)) (scan flights) (scan carriers)))";
    let serial = tde.query_with(q, &ExecOptions::serial()).unwrap();
    let mut fast = ExecOptions::default();
    fast.parallel.profile = CostProfile {
        min_work_per_thread: 500,
        max_dop: 4,
    };
    let parallel = tde.query_with(q, &fast).unwrap();
    let mut a = serial.to_rows();
    let mut b = parallel.to_rows();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    let total: i64 = a.iter().map(|r| r[1].as_int().unwrap()).sum();
    assert_eq!(total, 20_000);
}
