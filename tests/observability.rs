//! Per-query response-time profiles through the full stack: a cold query
//! shows the remote pipeline stages; the warm repeat shows a cache hit and
//! no remote work. Plus: metrics registry coverage over a dashboard batch.

use std::sync::Arc;
use tabviz::obs::{stage, MetricValue, ProfileOutcome};
use tabviz::prelude::*;

fn flights_processor(rows: usize) -> QueryProcessor {
    let flights =
        tabviz::workloads::generate_flights(&tabviz::workloads::FaaConfig::with_rows(rows))
            .unwrap();
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &["carrier"]).unwrap())
        .unwrap();
    let qp = QueryProcessor::default();
    qp.registry
        .register(Arc::new(SimDb::new("faa", db, SimConfig::default())), 4);
    qp
}

fn count_by_carrier() -> QuerySpec {
    QuerySpec::new("faa", LogicalPlan::scan("flights"))
        .group("carrier")
        .agg(AggCall::new(AggFunc::Count, None, "n"))
}

#[test]
fn cold_query_profiles_remote_pipeline_warm_query_profiles_hit() {
    let qp = flights_processor(5_000);
    let spec = count_by_carrier();

    // Cold: the full remote pipeline.
    let (_, outcome) = qp.execute(&spec).unwrap();
    assert_eq!(outcome, ExecOutcome::Remote);
    let cold = qp.obs.profiles.last().expect("cold profile recorded");
    assert_eq!(cold.outcome, ProfileOutcome::Remote);
    assert_eq!(cold.source, "faa");
    assert_eq!(cold.retries, 0);
    for required in [
        stage::CACHE_LOOKUP,
        stage::COMPILE,
        stage::POOL_ACQUIRE,
        stage::REMOTE_EXEC,
        stage::POST_PROCESS,
        stage::CACHE_STORE,
    ] {
        assert!(
            cold.has_stage(required),
            "cold profile missing stage '{required}':\n{}",
            cold.render()
        );
    }
    // The remote round trip is nested inside the query, not a root span.
    let remote = cold.stage(stage::REMOTE_EXEC).unwrap();
    assert!(remote.dur <= cold.total);

    // Warm: answered by the intelligent cache, no remote stages at all.
    let (_, outcome) = qp.execute(&spec).unwrap();
    assert_eq!(outcome, ExecOutcome::IntelligentHit);
    let warm = qp.obs.profiles.last().expect("warm profile recorded");
    assert_eq!(warm.outcome, ProfileOutcome::Hit);
    let lookup = warm.stage(stage::CACHE_LOOKUP).unwrap();
    assert_eq!(lookup.label, Some("intelligent"));
    for absent in [stage::REMOTE_EXEC, stage::POOL_ACQUIRE, stage::TEMP_TABLES] {
        assert!(
            !warm.has_stage(absent),
            "warm profile must not contain '{absent}':\n{}",
            warm.render()
        );
    }
    assert_eq!(qp.obs.profiles.len(), 2);
}

#[test]
fn dashboard_batch_produces_profiles_and_metrics() {
    let qp = flights_processor(5_000);
    let batch: Vec<(String, QuerySpec)> = vec![
        (
            "by_carrier".into(),
            QuerySpec::new("faa", LogicalPlan::scan("flights"))
                .group("carrier")
                .agg(AggCall::new(AggFunc::Count, None, "n")),
        ),
        (
            "by_carrier_market".into(),
            QuerySpec::new("faa", LogicalPlan::scan("flights"))
                .group("carrier")
                .group("market")
                .agg(AggCall::new(AggFunc::Count, None, "n")),
        ),
        (
            "avg_delay".into(),
            QuerySpec::new("faa", LogicalPlan::scan("flights"))
                .group("carrier")
                .agg(AggCall::new(AggFunc::Avg, Some(col("arr_delay")), "avg")),
        ),
    ];
    let out = execute_batch(&qp, &batch, &BatchOptions::default()).unwrap();
    assert_eq!(out.results.len(), 3);

    // Every executed query left a profile; together they cover the paper's
    // Sect. 3 stage decomposition.
    let profiles = qp.obs.profiles.all();
    assert!(!profiles.is_empty());
    for required in [
        stage::CACHE_LOOKUP,
        stage::POOL_ACQUIRE,
        stage::REMOTE_EXEC,
        stage::POST_PROCESS,
    ] {
        assert!(
            profiles.iter().any(|p| p.has_stage(required)),
            "no batch profile contains stage '{required}'"
        );
    }

    // The registry saw core, cache, pool and batch activity.
    let snap = qp.obs.registry.snapshot();
    for key in [
        "tv_core_queries_total",
        "tv_core_remote_queries_total",
        "tv_core_query_seconds",
        "tv_core_batches_total",
        "tv_backend_pool_opened_total",
        "tv_backend_pool_acquire_wait_seconds",
        "tv_cache_intelligent_misses_total",
    ] {
        assert!(snap.contains_key(key), "metric '{key}' missing: {snap:?}");
    }
    match &snap["tv_core_queries_total"] {
        MetricValue::Counter(n) => assert!(*n >= batch.len() as u64),
        other => panic!("unexpected kind: {other:?}"),
    }

    // Exposition parses as text and mentions the histogram machinery.
    let text = qp.obs.registry.render_text();
    assert!(text.contains("# TYPE tv_core_query_seconds histogram"));
    assert!(text.contains("tv_core_queries_total"));
}

#[test]
fn injected_faults_are_attributed_in_profiles() {
    let spec = count_by_carrier();
    let flights =
        tabviz::workloads::generate_flights(&tabviz::workloads::FaaConfig::with_rows(1_000))
            .unwrap();
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &["carrier"]).unwrap())
        .unwrap();
    let sim = SimDb::new("faa", db, SimConfig::default());
    let qp2 = QueryProcessor::default();
    qp2.registry.register(Arc::new(sim.clone()), 4);
    // Warm the cache, mark stale, then force connection drops.
    qp2.execute(&spec).unwrap();
    qp2.mark_source_stale("faa");
    let mut plan = FaultPlan::seeded(11);
    plan.connection_drop = 1.0;
    sim.set_fault_plan(Some(plan));
    let (_, outcome) = qp2.execute(&spec).unwrap();
    assert_eq!(outcome, ExecOutcome::DegradedStale);
    let prof = qp2.obs.profiles.last().unwrap();
    assert_eq!(prof.outcome, ProfileOutcome::DegradedStale);
    assert!(
        !prof.faults.is_empty(),
        "degraded profile must attribute the injected faults:\n{}",
        prof.render()
    );
    assert!(prof.faults.iter().all(|f| f.site == "connection_drop"));
    // The default retry budget was spent before degrading.
    assert_eq!(prof.retries, 2);
    // And the stale serve shows up in the age-at-serve histogram.
    let snap = qp2.obs.registry.snapshot();
    match snap.get("tv_cache_stale_age_seconds") {
        Some(MetricValue::Histogram(h)) => assert!(h.count >= 1),
        other => panic!("stale-age histogram missing: {other:?}"),
    }
}
