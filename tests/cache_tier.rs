//! L1 → L2 cache hierarchy end to end: tiered and flat deployments answer
//! byte-identically, tag invalidation is precise under concurrency, SWR
//! keeps dashboards rendering while Background revalidation refreshes, and
//! nodes joining a cluster arrive with a warm L1.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use tabviz::cache::intelligent::CacheConfig;
use tabviz::cache::{encode_chunk, ExternalStore, SingleStoreL2};
use tabviz::prelude::*;
use tabviz::workloads::{generate_flights, FaaConfig};

fn flights_db() -> Arc<Database> {
    let flights = generate_flights(&FaaConfig::with_rows(5_000)).unwrap();
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &["carrier"]).unwrap())
        .unwrap();
    db
}

fn processor_over(db: &Arc<Database>) -> QueryProcessor {
    let qp = QueryProcessor::default();
    qp.registry.register(
        Arc::new(SimDb::new(
            "warehouse",
            Arc::clone(db),
            SimConfig::default(),
        )),
        4,
    );
    qp
}

/// Canonical encoding of a result: rows sorted, re-chunked, then run through
/// the wire codec. Two chunks with the same data canonicalize to the same
/// bytes regardless of which tier (or which processor) produced them.
fn canonical_bytes(chunk: &Chunk) -> Vec<u8> {
    let mut rows = chunk.to_rows();
    rows.sort();
    let sorted = Chunk::from_rows(Arc::clone(chunk.schema()), &rows).unwrap();
    encode_chunk(&sorted).unwrap().to_vec()
}

fn spec_strategy() -> impl Strategy<Value = QuerySpec> {
    let dim = proptest::sample::select(vec!["carrier", "origin_state", "weekday"]);
    (dim, proptest::option::of(0i64..2_500), any::<bool>()).prop_map(|(d, bound, use_sum)| {
        let mut spec = QuerySpec::new("warehouse", LogicalPlan::scan("flights")).group(d);
        spec = if use_sum {
            spec.agg(AggCall::new(AggFunc::Sum, Some(col("distance")), "v"))
        } else {
            spec.agg(AggCall::new(AggFunc::Count, None, "n"))
        };
        if let Some(b) = bound {
            spec = spec.filter(bin(BinOp::Le, col("distance"), lit(b)));
        }
        spec
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Equivalence: a flat (L1-only) processor, an L2-attached processor,
    /// and a second L2-attached processor sharing the same store must all
    /// return canonically byte-identical answers for any query sequence —
    /// whether served remote, from L1, or decoded out of L2.
    #[test]
    fn tiered_and_flat_results_are_byte_identical(
        specs in proptest::collection::vec(spec_strategy(), 1..6),
    ) {
        let db = flights_db();
        // Widening produces derived (post-processed) answers on some paths;
        // disable it so every processor runs the same pipeline and the
        // comparison isolates the tier seam itself.
        let mut flat = processor_over(&db);
        flat.options.use_l2_cache = false;
        flat.options.widen_for_reuse = false;
        let store = Arc::new(ExternalStore::new(Duration::ZERO));
        let mut writer = processor_over(&db);
        writer.options.widen_for_reuse = false;
        writer.caches.set_l2(Arc::new(SingleStoreL2::new(Arc::clone(&store))));
        let mut reader = processor_over(&db);
        reader.options.widen_for_reuse = false;
        reader.caches.set_l2(Arc::new(SingleStoreL2::new(Arc::clone(&store))));

        for spec in &specs {
            let (a, _) = flat.execute(spec).unwrap();
            let (b, _) = writer.execute(spec).unwrap();
            let (c, _) = reader.execute(spec).unwrap();
            let bytes = canonical_bytes(&a);
            prop_assert_eq!(&bytes, &canonical_bytes(&b), "flat vs writer on {}", spec.canonical_text());
            prop_assert_eq!(&bytes, &canonical_bytes(&c), "flat vs reader on {}", spec.canonical_text());
        }
        // The reader's first sight of each spec missed L1 but found the
        // writer's store in L2: the hierarchy actually engaged.
        prop_assert!(reader.stats().l2_hits >= 1, "reader must hit L2");
        prop_assert_eq!(flat.stats().l2_hits, 0, "flat deployment never touches L2");
    }
}

fn kv_chunk(val: i64) -> Chunk {
    let schema = Arc::new(
        Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("val", DataType::Int),
        ])
        .unwrap(),
    );
    let data: Vec<Vec<Value>> = (0..300)
        .map(|i| vec![Value::Str(["a", "b", "c"][i % 3].into()), Value::Int(val)])
        .collect();
    Chunk::from_rows(schema, &data).unwrap()
}

fn kv_spec(table: &str) -> QuerySpec {
    QuerySpec::new("warehouse", LogicalPlan::scan(table))
        .group("k")
        .agg(AggCall::new(AggFunc::Sum, Some(col("val")), "s"))
}

/// Tag invalidation under concurrency: once `refresh_table` has purged the
/// refreshed table's dependents from both tiers, *no* concurrent query may
/// see the old data again (SWR is off, so a stale serve would be a bug, not
/// a grace-window serve). Entries of other tables survive untouched.
#[test]
fn concurrent_tag_purge_never_serves_stale() {
    let db = Arc::new(Database::new("kv"));
    db.put(Table::from_chunk("t", &kv_chunk(1), &[]).unwrap())
        .unwrap();
    db.put(Table::from_chunk("other", &kv_chunk(7), &[]).unwrap())
        .unwrap();
    let qp = Arc::new({
        let qp = processor_over(&db);
        qp.caches
            .set_l2(Arc::new(SingleStoreL2::new(Arc::new(ExternalStore::new(
                Duration::ZERO,
            )))));
        qp
    });

    // Warm both tables' entries; repeat serves come from cache.
    let old = qp.execute(&kv_spec("t")).unwrap().0;
    qp.execute(&kv_spec("other")).unwrap();
    let (_, outcome) = qp.execute(&kv_spec("t")).unwrap();
    assert_eq!(outcome, ExecOutcome::IntelligentHit);

    // The table refreshes: new data lands, dependents are purged. Pooled
    // backend sessions snapshot the database at connect time, so a refresh
    // also recycles them — exactly what a production refresh broker does.
    db.put(Table::from_chunk("t", &kv_chunk(2), &[]).unwrap())
        .unwrap();
    qp.registry.get("warehouse").unwrap().pool.clear();
    let purged = qp.refresh_table("warehouse", "t");
    assert!(purged >= 1, "refresh must purge dependents, got {purged}");
    assert!(qp.caches.tier_stats().tag_purged >= 1);

    let mut fresh_rows = qp.execute(&kv_spec("t")).unwrap().0.to_rows();
    fresh_rows.sort();
    let mut old_rows = old.to_rows();
    old_rows.sort();
    assert_ne!(fresh_rows, old_rows, "the refresh visibly changed the data");

    // Hammer the purged spec from many threads: every answer must be the
    // new one. (The first post-purge query above already repopulated the
    // caches, so hits are expected — stale hits are not.)
    let barrier = Arc::new(std::sync::Barrier::new(8));
    std::thread::scope(|s| {
        for _ in 0..8 {
            let qp = Arc::clone(&qp);
            let barrier = Arc::clone(&barrier);
            let expected = fresh_rows.clone();
            s.spawn(move || {
                barrier.wait();
                for _ in 0..10 {
                    let mut rows = qp.execute(&kv_spec("t")).unwrap().0.to_rows();
                    rows.sort();
                    assert_eq!(rows, expected, "stale serve after tag purge");
                }
            });
        }
    });

    // Precision: the other table's entry was untouched by the purge.
    let (_, outcome) = qp.execute(&kv_spec("other")).unwrap();
    assert_eq!(
        outcome,
        ExecOutcome::IntelligentHit,
        "tag purge must not evict unrelated tables"
    );
}

/// Stale-while-revalidate: inside the grace window a stale-marked entry
/// still answers normal lookups (flagged `cache_swr_serve`), and a
/// Background-priority revalidation pass swaps in fresh data without any
/// caller ever blocking on the backend.
#[test]
fn swr_serves_within_grace_until_revalidated() {
    let db = Arc::new(Database::new("kv"));
    db.put(Table::from_chunk("t", &kv_chunk(1), &[]).unwrap())
        .unwrap();
    let caches = QueryCaches::new(
        CacheConfig {
            swr_grace: Duration::from_secs(30),
            ..Default::default()
        },
        64,
    );
    let qp = QueryProcessor::new(caches);
    qp.registry.register(
        Arc::new(SimDb::new(
            "warehouse",
            Arc::clone(&db),
            SimConfig::default(),
        )),
        4,
    );

    let (old, outcome) = qp.execute(&kv_spec("t")).unwrap();
    assert_eq!(outcome, ExecOutcome::Remote);

    // The table refreshes; dependents are demoted to stale, not dropped.
    // (Pooled sessions snapshot at connect; recycle them so the backend
    // serves the new data to the revalidator.)
    db.put(Table::from_chunk("t", &kv_chunk(2), &[]).unwrap())
        .unwrap();
    qp.registry.get("warehouse").unwrap().pool.clear();
    let marked = qp.mark_table_stale("warehouse", "t");
    assert!(marked >= 1, "entries must be stale-marked, got {marked}");

    // Within the grace window the stale entry serves the normal path.
    let (served, outcome) = qp.execute(&kv_spec("t")).unwrap();
    assert_eq!(outcome, ExecOutcome::IntelligentHit, "SWR serve is a hit");
    assert_eq!(
        served.to_rows(),
        old.to_rows(),
        "grace serve is the stale data"
    );
    match qp
        .obs
        .registry
        .snapshot()
        .get("tv_cache_intelligent_swr_serves_total")
    {
        Some(tabviz::obs::MetricValue::Counter(n)) => assert!(*n >= 1),
        other => panic!("missing swr counter: {other:?}"),
    }
    assert!(
        qp.obs
            .recorder
            .recent()
            .iter()
            .any(|t| t.reasons().contains(&"cache_swr_serve")),
        "SWR serve must be attributed in the trace"
    );
    assert!(
        !qp.caches.stale_entries().is_empty(),
        "the entry stays stale for the revalidator"
    );

    // Background revalidation refreshes it; the next serve is fresh.
    let report = revalidate_pass(
        &qp,
        &RevalidateOptions {
            staleness_budget: Duration::ZERO,
            ..Default::default()
        },
    );
    assert!(report.refreshed >= 1, "revalidation refreshed: {report:?}");
    let (fresh, outcome) = qp.execute(&kv_spec("t")).unwrap();
    assert_eq!(outcome, ExecOutcome::IntelligentHit);
    let mut rows = fresh.to_rows();
    rows.sort();
    let mut expected: Vec<Vec<Value>> = vec![
        vec![Value::Str("a".into()), Value::Int(200)],
        vec![Value::Str("b".into()), Value::Int(200)],
        vec![Value::Str("c".into()), Value::Int(200)],
    ];
    expected.sort();
    assert_eq!(rows, expected, "post-revalidation serves the new data");
    assert!(qp.caches.stale_entries().is_empty());
}

fn build_cluster(db: &Arc<Database>, nodes: usize, seed: u64) -> Arc<Cluster> {
    let db = Arc::clone(db);
    Cluster::build(
        ClusterConfig {
            nodes,
            replication: 2,
            vnodes: 32,
            seed,
            peer_op_latency: Duration::ZERO,
        },
        move |name| {
            let sim = SimDb::new("warehouse", Arc::clone(&db), SimConfig::default());
            let qp = QueryProcessor::default();
            qp.registry.register(Arc::new(sim), 4);
            let server = Arc::new(DataServer::named(qp, name));
            for d in 0..8 {
                server.publish(PublishedSource::new(
                    format!("dash-{d}"),
                    "warehouse",
                    LogicalPlan::scan("flights"),
                ));
            }
            Ok(server)
        },
    )
    .expect("build cluster")
}

/// A node joining the cluster is warm-started: the members' hottest
/// intelligent-cache entries are replayed into its L1, and it serves them
/// as local hits from its very first query.
#[test]
fn node_join_receives_warm_entries() {
    let db = flights_db();
    let cluster = build_cluster(&db, 3, 17);
    // Heat the members' L1s: a few dashboards, repeated loads.
    for d in 0..6 {
        let session = cluster
            .open_session(&format!("dash-{d}"), "alice")
            .expect("open");
        let q = ClientQuery {
            group_by: vec!["carrier".into()],
            aggs: vec![AggCall::new(AggFunc::Count, None, "n")],
            ..Default::default()
        };
        for _ in 0..3 {
            session.query(&q).expect("warm query");
        }
    }

    cluster.add_node("node-3").expect("join");
    let joiner = cluster.node("node-3").expect("node");
    let warmed = joiner.server.processor.caches.intelligent.hot_entries(16);
    assert!(
        !warmed.is_empty(),
        "joiner must arrive with warmed L1 entries"
    );
    assert!(joiner.server.processor.caches.tier_stats().warmed >= 1);
    match cluster
        .registry
        .snapshot()
        .get("tv_cluster_entries_warmed_total")
    {
        Some(tabviz::obs::MetricValue::Counter(n)) => assert!(*n >= 1),
        other => panic!("missing warm counter: {other:?}"),
    }

    // The warmed entry serves locally on the joiner — no backend trip.
    let (spec, _, _) = &warmed[0];
    let (_, outcome) = joiner.server.processor.execute(spec).unwrap();
    assert_eq!(outcome, ExecOutcome::IntelligentHit);
}

/// The tier seam is observable cluster-wide: an L1-cold node answers from
/// the replicated L2 (with promotion), table refreshes purge by tag, and
/// all four tier reason codes plus the `tv_cache_tier_*` counters surface
/// in the cluster's federated metrics text.
#[test]
fn cluster_l2_hit_promote_and_metrics_surface() {
    let db = flights_db();
    let cluster = build_cluster(&db, 2, 23);
    let node_a = cluster.node("node-0").expect("node-0");
    let node_b = cluster.node("node-1").expect("node-1");
    let spec = QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
        .group("carrier")
        .agg(AggCall::new(AggFunc::Count, None, "n"));

    // Node A executes remote and publishes to L2; L1-cold node B answers
    // from L2 and promotes into its own L1.
    let (a, outcome) = node_a.server.processor.execute(&spec).unwrap();
    assert!(matches!(
        outcome,
        ExecOutcome::Remote | ExecOutcome::IntelligentHit
    ));
    let (b, outcome) = node_b.server.processor.execute(&spec).unwrap();
    assert_eq!(outcome, ExecOutcome::L2Hit, "cold node must hit shared L2");
    assert_eq!(canonical_bytes(&a), canonical_bytes(&b));
    assert!(node_b.server.processor.caches.tier_stats().promotes >= 1);
    // Promoted: the next serve is a local L1 hit.
    let (_, outcome) = node_b.server.processor.execute(&spec).unwrap();
    assert_eq!(outcome, ExecOutcome::IntelligentHit);

    // A table refresh purges dependents on every node, by tag.
    let purged = cluster.refresh_table("warehouse", "flights");
    assert!(purged >= 1, "cluster refresh must purge entries: {purged}");
    let (_, outcome) = node_b.server.processor.execute(&spec).unwrap();
    assert!(
        matches!(outcome, ExecOutcome::Remote),
        "post-purge query re-executes, got {outcome:?}"
    );

    // Reason codes in the node traces.
    let reasons: Vec<&str> = node_b
        .server
        .processor
        .obs
        .recorder
        .recent()
        .iter()
        .flat_map(|t| t.reasons())
        .collect();
    for code in ["cache_l2_hit", "cache_l2_promote", "cache_l1_hit"] {
        assert!(
            reasons.contains(&code),
            "missing reason {code}: {reasons:?}"
        );
    }

    // Federated metrics expose the tier counters cluster-wide.
    let text = cluster.metrics_text();
    for metric in [
        "tv_cache_tier_l2_hits_total",
        "tv_cache_tier_l2_misses_total",
        "tv_cache_tier_promotes_total",
        "tv_cache_tier_stores_total",
        "tv_cache_tier_tag_purged_total",
    ] {
        assert!(text.contains(metric), "metrics text missing {metric}");
    }
}
