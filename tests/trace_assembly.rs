//! Flight-recorder trace assembly through the full stack: a morsel-parallel
//! query's worker spans land in the same trace tree as the driver's spans;
//! a multi-threaded query storm yields exactly one connected tree per query
//! in the recorder; Chrome exports of arbitrary traces stay valid JSON with
//! monotone timestamps per thread lane.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tabviz::obs::trace::ROOT_SPAN_ID;
use tabviz::obs::{
    begin_trace, stage, to_chrome_trace, validate_chrome_trace, ProfileOutcome, RecordedTrace,
    TraceCtx,
};
use tabviz::prelude::*;
use tabviz::tde::cost::CostProfile;
use tabviz::tde::parallel::ParallelOptions;
use tabviz::workloads::{generate_flights, FaaConfig};

/// The structural invariant the flight recorder promises: every recorded
/// trace is one connected tree.
fn assert_connected_tree(trace: &RecordedTrace) {
    assert!(
        !trace.events.is_empty(),
        "trace {} is empty",
        trace.trace_id
    );
    let mut ids = std::collections::HashSet::new();
    let mut roots = 0;
    for ev in &trace.events {
        assert_eq!(
            ev.trace_id, trace.trace_id,
            "event '{}' belongs to trace {}, found in trace {}",
            ev.stage, ev.trace_id, trace.trace_id
        );
        assert!(
            ids.insert(ev.span_id),
            "duplicate span id {} in trace {}",
            ev.span_id,
            trace.trace_id
        );
        if ev.parent.is_none() {
            roots += 1;
            assert_eq!(ev.span_id, ROOT_SPAN_ID, "non-root event without parent");
            assert_eq!(ev.stage, stage::QUERY, "root span must be the query span");
        }
    }
    assert_eq!(
        roots, 1,
        "trace {} must have exactly one root",
        trace.trace_id
    );
    // Every parent link resolves: no orphaned subtrees, even for spans
    // recorded on worker threads that died before the query finished.
    for ev in &trace.events {
        if let Some(p) = ev.parent {
            assert!(
                ids.contains(&p),
                "span {} ('{}') has unresolved parent {} in trace {}",
                ev.span_id,
                ev.stage,
                p,
                trace.trace_id
            );
        }
    }
    // Events are in allocation order, so parents precede children and a
    // single pass can rebuild the tree.
    for w in trace.events.windows(2) {
        assert!(w[0].span_id < w[1].span_id, "events not sorted by span id");
    }
}

fn faa_tde(rows: usize) -> Tde {
    let flights = generate_flights(&FaaConfig {
        rows,
        seed: 11,
        ..Default::default()
    })
    .unwrap();
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &["carrier", "date"]).unwrap())
        .unwrap();
    Tde::new(db)
}

fn parallel_opts() -> ExecOptions {
    ExecOptions {
        parallel: ParallelOptions {
            profile: CostProfile {
                min_work_per_thread: 500,
                max_dop: 4,
            },
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A morsel-parallel scan's per-worker operator timings must assemble into
/// the driver's trace: one connected tree spanning at least two lanes.
#[test]
fn morsel_parallel_scan_joins_the_query_trace() {
    let tde = faa_tde(8_000);
    let q = "(aggregate ((carrier)) ((sum distance as dist) (count as n))
               (select (> distance 100) (scan flights)))";

    let t0 = Instant::now();
    let trace = begin_trace();
    assert!(trace.is_capturing());
    tde.query_with(q, &parallel_opts()).unwrap();
    let finished = trace.finish(t0.elapsed());

    assert!(finished.is_captured());
    let recorded =
        RecordedTrace::from_finished(finished, q.to_string(), "faa", ProfileOutcome::Remote);
    assert_connected_tree(&recorded);

    // Worker threads contributed: the trace spans multiple lanes, and the
    // per-operator scan timings recorded on those (now dead) threads are
    // present rather than lost with the per-thread rings.
    let lanes = recorded.lanes();
    assert!(
        lanes.len() >= 2,
        "parallel scan should record on >= 2 lanes, got {lanes:?}"
    );
    assert!(recorded.has_stage("tde_scan"), "worker scan spans missing");
    assert!(
        recorded.has_stage(stage::SCAN_PRUNE),
        "scan prune attribution missing"
    );
    assert_eq!(recorded.dropped_events, 0);

    // And the export of a genuinely multi-lane trace is schema-valid.
    validate_chrome_trace(&to_chrome_trace(&recorded)).unwrap();
}

fn storm_processor(rows: usize) -> QueryProcessor {
    let flights = generate_flights(&FaaConfig {
        rows,
        seed: 11,
        ..Default::default()
    })
    .unwrap();
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &["carrier"]).unwrap())
        .unwrap();
    let mut qp = QueryProcessor::default();
    qp.registry
        .register(Arc::new(SimDb::new("faa", db, SimConfig::default())), 4);
    // A small concurrency limit forces real queueing during the storm, so
    // traces capture sched_queue verdicts under contention.
    qp.set_scheduler(Arc::new(Scheduler::new(SchedConfig::new(2))));
    // Widening stays on (the default): every thread's spec converges onto
    // the same widened query, the single-flight gate elects one widener,
    // and idempotent stores make the racing threads' outcomes converge to
    // either a direct Remote or an IntelligentHit off the widened entry.
    qp
}

/// Eight concurrent sessions hammer one processor; every query must come
/// out of the flight recorder as its own connected tree with its own trace
/// id, carrying scheduler and cache attribution.
#[test]
fn storm_yields_one_connected_trace_per_query() {
    let qp = Arc::new(storm_processor(4_000));
    let threads = 8;

    std::thread::scope(|scope| {
        for i in 0..threads {
            let qp = Arc::clone(&qp);
            scope.spawn(move || {
                // Distinct filter per thread -> mutually non-derivable
                // queries -> a cold remote query per thread, then a warm
                // repeat answered by the cache.
                let carrier = tabviz::workloads::faa::CARRIERS[i].0;
                let spec = QuerySpec::new("faa", LogicalPlan::scan("flights"))
                    .filter(bin(BinOp::Eq, col("carrier"), lit(carrier)))
                    .group("weekday")
                    .agg(AggCall::new(AggFunc::Count, None, "n"));
                let req = AdmitRequest::interactive(format!("storm-{i}"));
                // Cold: Remote when this thread raced ahead of the elected
                // widener, IntelligentHit when the widened superset landed
                // first. Never an error, never a duplicate widened scan.
                let (_, cold) = qp.execute_as(&spec, &req).unwrap();
                assert!(
                    matches!(cold, ExecOutcome::Remote | ExecOutcome::IntelligentHit),
                    "cold outcome: {cold:?}"
                );
                let (_, warm) = qp.execute_as(&spec, &req).unwrap();
                assert_eq!(warm, ExecOutcome::IntelligentHit);
            });
        }
    });

    let recent = qp.obs.recorder.recent();
    assert_eq!(recent.len(), threads * 2, "one trace per executed query");
    let mut trace_ids = std::collections::HashSet::new();
    for trace in &recent {
        assert_connected_tree(trace);
        assert!(trace.parent_trace.is_none());
        assert!(
            trace_ids.insert(trace.trace_id),
            "trace id {} reused across queries",
            trace.trace_id
        );
    }

    // At least one thread actually went to the backend (the elected
    // widener, and any thread that outran it). The rest converged onto the
    // shared widened entry.
    let remotes = recent
        .iter()
        .filter(|t| matches!(t.outcome, ProfileOutcome::Remote | ProfileOutcome::Derived))
        .count();
    assert!(remotes >= 1, "no thread reached the backend");

    for i in 0..threads {
        let needle = tabviz::workloads::faa::CARRIERS[i].0;
        let mine: Vec<_> = recent.iter().filter(|t| t.query.contains(needle)).collect();
        assert_eq!(mine.len(), 2, "thread {i}: expected cold + warm trace");
        // When this thread's cold run went remote (Remote, or Derived via
        // the widened superset it computed itself), its trace attributes
        // the admission verdict and the cache miss. Threads whose cold run
        // landed after the widener record two Hit traces instead.
        if let Some(cold) = mine
            .iter()
            .find(|t| matches!(t.outcome, ProfileOutcome::Remote | ProfileOutcome::Derived))
        {
            assert!(cold.has_stage(stage::SCHED_QUEUE));
            let verdict = cold.stage(stage::SCHED_QUEUE).unwrap().reason;
            assert!(
                matches!(
                    verdict,
                    Some(tabviz::obs::reason::SCHED_ADMITTED)
                        | Some(tabviz::obs::reason::SCHED_QUEUED)
                ),
                "cold trace carries a scheduler verdict, got {verdict:?}"
            );
            assert!(cold.reasons().iter().any(|r| r.starts_with("cache_miss")));
        }
        // The warm repeat attributes its hit (exact, or residual/rollup
        // when the cold run stored a widened superset).
        let warm = mine
            .iter()
            .find(|t| t.outcome == ProfileOutcome::Hit)
            .expect("warm trace recorded");
        assert!(
            warm.reasons().iter().any(|r| r.starts_with("cache_hit")),
            "warm trace attributes its hit, got {:?}",
            warm.reasons()
        );
    }
}

/// Build a synthetic trace with `per_lane[0]` spans on the driver thread
/// and `per_lane[1..]` spans on freshly spawned worker threads, exercising
/// nesting, instant events and attribution payloads.
fn synthetic_trace(per_lane: &[usize], nest: bool, query: &str) -> RecordedTrace {
    let t0 = Instant::now();
    let trace = begin_trace();
    for _ in 0..per_lane[0] {
        let mut s = tabviz::obs::span(stage::CACHE_LOOKUP);
        s.label("intelligent");
        s.reason(tabviz::obs::reason::CACHE_MISS_NO_CANDIDATE);
        if nest {
            let mut inner = tabviz::obs::span(stage::COMPILE);
            inner.detail(42);
        }
    }
    let ctx = TraceCtx::current().expect("trace active");
    std::thread::scope(|scope| {
        for &n in &per_lane[1..] {
            let ctx = ctx.clone();
            scope.spawn(move || {
                let _guard = ctx.install();
                for k in 0..n {
                    let mut s = tabviz::obs::span(stage::REMOTE_EXEC);
                    s.detail(k as u64);
                    tabviz::obs::event(stage::RETRY, Some("transient"), Some(k as u64));
                }
            });
        }
    });
    let finished = trace.finish(t0.elapsed().max(Duration::from_micros(1)));
    RecordedTrace::from_finished(finished, query, "faa", ProfileOutcome::Remote)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Any assembled trace exports to schema-valid Chrome `trace_event`
    /// JSON: parseable, complete events with non-negative durations, and
    /// `ts` monotone non-decreasing within every `tid` lane.
    #[test]
    fn chrome_export_is_valid_json_with_monotone_lanes(
        per_lane in proptest::collection::vec(1usize..12, 1..5),
        nest in any::<bool>(),
        query in proptest::sample::select(vec![
            String::new(),
            "select carrier".to_string(),
            "quoted \"text\" and back\\slash".to_string(),
            "newline\nand\ttab".to_string(),
        ]),
    ) {
        let recorded = synthetic_trace(&per_lane, nest, &query);
        assert_connected_tree(&recorded);

        let doc = to_chrome_trace(&recorded);
        prop_assert!(validate_chrome_trace(&doc).is_ok(),
            "invalid chrome trace: {:?}", validate_chrome_trace(&doc));

        // Independently re-check monotonicity from the parsed document so
        // the validator and exporter cannot agree by accident.
        let root = tabviz::obs::json::parse(&doc).expect("valid JSON");
        let events = root.get("traceEvents").unwrap().as_arr().unwrap();
        let mut last: std::collections::HashMap<i64, f64> = std::collections::HashMap::new();
        let mut complete = 0;
        for ev in events {
            if ev.get("ph").and_then(|p| p.as_str()) != Some("X") {
                continue;
            }
            complete += 1;
            let tid = ev.get("tid").and_then(|t| t.as_f64()).unwrap() as i64;
            let ts = ev.get("ts").and_then(|t| t.as_f64()).unwrap();
            let prev = last.entry(tid).or_insert(f64::MIN);
            prop_assert!(ts >= *prev, "ts regressed on tid {tid}");
            *prev = ts;
        }
        prop_assert_eq!(complete, recorded.events.len());
        let meta = root.get("otherData").unwrap();
        prop_assert_eq!(
            meta.get("trace_id").and_then(|t| t.as_f64()),
            Some(recorded.trace_id as f64)
        );
        prop_assert_eq!(meta.get("query").and_then(|q| q.as_str()), Some(query.as_str()));
    }
}
