//! Workload-management integration: ticket-based admission, strict priority
//! between classes, weighted fair queuing within a class, deadline shedding
//! before backend work, and load shedding under overload.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tabviz::prelude::*;
use tabviz::workloads::{generate_flights, FaaConfig};

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < Duration::from_secs(10), "timed out: {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn wide_open(max_concurrent: usize) -> SchedConfig {
    let mut cfg = SchedConfig::new(max_concurrent);
    cfg.shed_depth = [1024, 1024, 1024];
    cfg
}

/// Grants must come back in strict priority order regardless of arrival
/// order: background and batch queued first still wait for a later-arriving
/// interactive request.
#[test]
fn grants_follow_priority_not_arrival_order() {
    let sched = Arc::new(Scheduler::new(wide_open(1)));
    let hold = sched.admit(&AdmitRequest::interactive("warm")).unwrap();
    let order = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    let arrivals = [
        Priority::Background,
        Priority::Background,
        Priority::Batch,
        Priority::Batch,
        Priority::Interactive,
        Priority::Interactive,
    ];
    for (i, prio) in arrivals.into_iter().enumerate() {
        let sched2 = Arc::clone(&sched);
        let order2 = Arc::clone(&order);
        handles.push(std::thread::spawn(move || {
            let t = sched2
                .admit(&AdmitRequest::new(prio, format!("s{i}")))
                .unwrap();
            order2.lock().unwrap().push(t.priority());
        }));
        wait_until("arrival queued", || sched.queued() == i + 1);
    }
    drop(hold);
    for h in handles {
        h.join().unwrap();
    }
    let got = order.lock().unwrap().clone();
    assert_eq!(
        got,
        vec![
            Priority::Interactive,
            Priority::Interactive,
            Priority::Batch,
            Priority::Batch,
            Priority::Background,
            Priority::Background,
        ],
        "grant order must be priority order"
    );
    assert_eq!(
        sched.stats().total_shed(),
        0,
        "nothing shed at these depths"
    );
}

/// Deficit round robin within a class: a low-weight session is served at a
/// reduced rate but never starved behind a heavy session's backlog.
#[test]
fn low_weight_session_is_not_starved() {
    let sched = Arc::new(Scheduler::new(wide_open(1)));
    let hold = sched.admit(&AdmitRequest::interactive("warm")).unwrap();
    let order = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    let mut queued = 0usize;
    let mut submit = |session: &'static str, weight: f64| {
        let sched2 = Arc::clone(&sched);
        let order2 = Arc::clone(&order);
        handles.push(std::thread::spawn(move || {
            let t = sched2
                .admit(&AdmitRequest::batch(session).with_weight(weight))
                .unwrap();
            order2.lock().unwrap().push(session);
            drop(t);
        }));
        queued += 1;
        wait_until("ticket queued", || sched.queued() == queued);
    };
    for _ in 0..20 {
        submit("heavy", 1.0);
    }
    for _ in 0..3 {
        submit("light", 0.25);
    }
    drop(hold);
    for h in handles {
        h.join().unwrap();
    }
    let got = order.lock().unwrap().clone();
    assert_eq!(got.len(), 23);
    let first_light = got.iter().position(|s| *s == "light").unwrap();
    assert!(
        first_light <= 10,
        "light session starved at the back: {got:?}"
    );
    let last_light = got.iter().rposition(|s| *s == "light").unwrap();
    assert!(
        last_light < got.len() - 2,
        "light session pushed to the very end: {got:?}"
    );
}

/// A queued request whose deadline expires is shed with `TvError::Timeout`
/// before consuming any backend work: the simulated warehouse must see only
/// the query that was already running.
#[test]
fn deadline_expired_queries_never_reach_the_backend() {
    let flights = generate_flights(&FaaConfig::with_rows(5_000)).unwrap();
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &["carrier"]).unwrap())
        .unwrap();
    let mut plan = FaultPlan::seeded(1);
    plan.slow_query = 1.0;
    plan.slow_query_delay = Duration::from_millis(250);
    let cfg = SimConfig {
        faults: Some(plan),
        ..Default::default()
    };
    let sim = SimDb::new("warehouse", Arc::clone(&db), cfg);
    let mut qp = QueryProcessor::default();
    qp.registry.register(Arc::new(sim.clone()), 1);
    let sched = qp.enable_scheduler();
    assert_eq!(
        sched.config().max_concurrent,
        1,
        "derived from pool capacity"
    );
    let qp = Arc::new(qp);

    // Occupy the single slot with a slow remote query.
    let qp2 = Arc::clone(&qp);
    let slow = std::thread::spawn(move || {
        let spec = QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        qp2.execute(&spec).unwrap();
    });
    wait_until("slow query admitted", || sched.running() == 1);

    // This one queues behind it and expires long before the slot frees up.
    let spec = QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
        .group("origin_state")
        .agg(AggCall::new(AggFunc::Count, None, "n"));
    let req = AdmitRequest::interactive("impatient").with_deadline(Duration::from_millis(20));
    let err = qp.execute_as(&spec, &req).unwrap_err();
    assert!(matches!(err, TvError::Timeout(_)), "got: {err}");
    slow.join().unwrap();

    assert_eq!(
        sim.stats().queries,
        1,
        "the deadline-shed query must never reach the warehouse"
    );
    let st = sched.stats();
    assert_eq!(st.deadline_shed[Priority::Interactive.idx()], 1);
    assert_eq!(
        st.admitted[Priority::Interactive.idx()],
        1,
        "only the slow one"
    );
}

/// Overload shedding: at the watermark, Background arrivals shed themselves;
/// higher-priority arrivals evict queued Background first, then Batch,
/// newest-first — and Interactive is never shed at sane depths.
#[test]
fn overload_sheds_background_then_batch_never_interactive() {
    let mut cfg = SchedConfig::new(1);
    cfg.shed_depth = [64, 2, 2];
    let sched = Arc::new(Scheduler::new(cfg));
    let hold = sched.admit(&AdmitRequest::interactive("warm")).unwrap();
    let order = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    let mut submit = |prio: Priority, session: &'static str, sheds_after: usize| {
        let sched2 = Arc::clone(&sched);
        let order2 = Arc::clone(&order);
        handles.push(std::thread::spawn(move || {
            if let Ok(t) = sched2.admit(&AdmitRequest::new(prio, session)) {
                order2.lock().unwrap().push(t.priority());
            }
        }));
        wait_until("arrival settled", || sched.shed_log().len() == sheds_after);
    };

    submit(Priority::Background, "bg", 0);
    submit(Priority::Background, "bg", 0);
    wait_until("backgrounds queued", || sched.queued() == 2);
    // The queue is at the Background watermark: the next background arrival
    // is shed synchronously, without queuing.
    let err = sched
        .admit(&AdmitRequest::background("bg-extra"))
        .unwrap_err();
    assert!(matches!(err, TvError::Timeout(_)), "got: {err}");
    assert_eq!(sched.shed_log(), vec![Priority::Background]);

    // Each Batch arrival finds the queue at the Background watermark and
    // evicts one queued Background to make room for itself.
    submit(Priority::Batch, "batch", 2);
    submit(Priority::Batch, "batch", 3);
    // With Background drained, a further Batch arrival sheds itself.
    let err = sched
        .admit(&AdmitRequest::batch("batch-extra"))
        .unwrap_err();
    assert!(matches!(err, TvError::Timeout(_)), "got: {err}");

    // The Interactive arrival evicts a queued Batch and takes its place.
    submit(Priority::Interactive, "human", 5);

    drop(hold);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        sched.shed_log(),
        vec![
            Priority::Background,
            Priority::Background,
            Priority::Background,
            Priority::Batch,
            Priority::Batch,
        ],
        "victims must be worst-class-first, never Interactive"
    );
    let st = sched.stats();
    assert_eq!(st.shed[Priority::Interactive.idx()], 0);
    assert_eq!(st.deadline_shed[Priority::Interactive.idx()], 0);
    let got = order.lock().unwrap().clone();
    assert_eq!(
        got,
        vec![Priority::Interactive, Priority::Batch],
        "survivors drain in priority order"
    );
}

/// SplitMix64-style mixer for the storm's per-thread request schedule.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z =
        seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded concurrent storm: every admit call either ends in a grant or in
/// a shed, the counters conserve tickets per class, the concurrency cap is
/// never exceeded, and the scheduler drains to empty.
#[test]
fn seeded_storm_conserves_tickets_and_respects_capacity() {
    const THREADS: u64 = 16;
    const PER_THREAD: u64 = 12;
    const SEED: u64 = 42;
    let cfg = SchedConfig::new(3); // default (tight) watermarks: sheds fire
    let sched = Scheduler::new(cfg);
    let submitted: [AtomicU64; 3] = Default::default();
    let granted: [AtomicU64; 3] = Default::default();
    let errored: [AtomicU64; 3] = Default::default();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let sched = &sched;
            let submitted = &submitted;
            let granted = &granted;
            let errored = &errored;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let r = mix(SEED, t, i);
                    let prio = match r % 10 {
                        0..=2 => Priority::Interactive,
                        3..=5 => Priority::Batch,
                        _ => Priority::Background,
                    };
                    let mut req = AdmitRequest::new(prio, format!("sess{}", r % 4));
                    if r.is_multiple_of(7) {
                        // A sliver of impatient requests exercises the
                        // deadline path under real contention.
                        req = req.with_deadline(Duration::from_micros(500));
                    }
                    submitted[prio.idx()].fetch_add(1, Ordering::Relaxed);
                    match sched.admit(&req) {
                        Ok(ticket) => {
                            assert!(
                                sched.running() <= 3,
                                "concurrency cap violated while holding a ticket"
                            );
                            granted[prio.idx()].fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_micros(200));
                            drop(ticket);
                        }
                        Err(TvError::Timeout(_)) => {
                            errored[prio.idx()].fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected error class: {e}"),
                    }
                }
            });
        }
    });
    let st = sched.stats();
    assert_eq!(sched.running(), 0, "drained");
    assert_eq!(sched.queued(), 0, "drained");
    assert!(st.peak_running <= 3, "peak {} > cap", st.peak_running);
    for p in Priority::ALL {
        let c = p.idx();
        assert_eq!(
            granted[c].load(Ordering::Relaxed),
            st.admitted[c],
            "{}: grants seen by callers == grants counted",
            p.name()
        );
        assert_eq!(
            submitted[c].load(Ordering::Relaxed),
            st.admitted[c] + st.shed[c] + st.deadline_shed[c],
            "{}: every ticket is granted or shed, never lost",
            p.name()
        );
        assert_eq!(
            errored[c].load(Ordering::Relaxed),
            st.shed[c] + st.deadline_shed[c],
            "{}: every shed surfaced as an error",
            p.name()
        );
    }
    assert_eq!(
        st.shed[Priority::Interactive.idx()],
        0,
        "interactive is only rejected past the hard watermark, not at these depths"
    );
}

/// Per-source admission limits (two-source starvation): a saturated slow
/// backend queues its own tickets at its pool ceiling while the rest of
/// the global budget keeps serving the healthy backend. Without the
/// per-source gate, five slow "lake" queries would consume the whole
/// global budget and the interactive "mart" probe would wait behind them.
#[test]
fn saturated_backend_does_not_starve_other_sources() {
    let flights = generate_flights(&FaaConfig::with_rows(3_000)).unwrap();
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &["carrier"]).unwrap())
        .unwrap();

    // The lake: one pooled connection, every query slowed hard.
    let mut plan = FaultPlan::seeded(5);
    plan.slow_query = 1.0;
    plan.slow_query_delay = Duration::from_millis(60);
    let lake = SimDb::new(
        "lake",
        Arc::clone(&db),
        SimConfig {
            faults: Some(plan),
            ..Default::default()
        },
    );
    // The mart: three pooled connections, no faults.
    let mart = SimDb::new("mart", Arc::clone(&db), SimConfig::default());

    let mut qp = QueryProcessor::default();
    qp.registry.register(Arc::new(lake.clone()), 1);
    qp.registry.register(Arc::new(mart.clone()), 3);
    let sched = qp.enable_scheduler();
    assert_eq!(sched.config().max_concurrent, 4, "sum of pool capacities");
    let qp = Arc::new(qp);

    // Flood the lake: five batch queries with distinct filters (cache
    // misses, so each needs a ticket and a pooled connection).
    let lake_done = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for i in 0..5i64 {
            let qp = Arc::clone(&qp);
            let lake_done = Arc::clone(&lake_done);
            s.spawn(move || {
                let spec = QuerySpec::new("lake", LogicalPlan::scan("flights"))
                    .filter(bin(BinOp::Ge, col("distance"), lit(10 + i)))
                    .group("carrier")
                    .agg(AggCall::new(AggFunc::Count, None, "n"));
                qp.execute_as(&spec, &AdmitRequest::batch(format!("etl-{i}")))
                    .unwrap();
                lake_done.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Wait until the lake is saturated: one running, the rest queued
        // behind its per-source limit rather than the global budget.
        wait_until("lake saturated", || {
            sched.running() == 1 && sched.queued() == 4
        });

        // Interactive probes on the healthy mart must sail through the
        // spare global budget while the lake queue is still deep.
        for i in 0..3i64 {
            let spec = QuerySpec::new("mart", LogicalPlan::scan("flights"))
                .filter(bin(BinOp::Ge, col("distance"), lit(100 + i)))
                .group("carrier")
                .agg(AggCall::new(AggFunc::Count, None, "n"));
            let t0 = Instant::now();
            qp.execute_as(&spec, &AdmitRequest::interactive("analyst"))
                .unwrap();
            let wall = t0.elapsed();
            // Five serialized 60ms+ lake queries take 300ms+; a starved
            // probe would wait for them. A gated one never does.
            assert!(
                wall < Duration::from_millis(150),
                "mart probe {i} starved behind the lake flood: {wall:?}"
            );
            assert!(
                lake_done.load(Ordering::Relaxed) < 5,
                "flood must still be draining while probes run"
            );
        }
    });

    let st = sched.stats();
    assert_eq!(st.admitted[Priority::Batch.idx()], 5, "lake flood all ran");
    assert_eq!(
        st.admitted[Priority::Interactive.idx()],
        3,
        "mart probes all ran"
    );
    assert_eq!(st.shed, [0, 0, 0], "nothing was shed, only gated");
    assert_eq!(
        lake.stats().queries + mart.stats().queries,
        8,
        "every query reached its own backend"
    );
}
