//! Tail-latency root-cause analysis plane: critical-path invariants over
//! randomized span trees, verdict classification for every reason code,
//! OpenMetrics exemplar capture/scrape, recorder pinning of
//! exemplar-referenced traces, and the end-to-end slow-query surfaces
//! (`DataServer::why_slow`, `Cluster::diagnostics_report`).

use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tabviz::cluster::{Cluster, ClusterConfig};
use tabviz::obs::{
    analyze, begin_trace, critical_path, diagnose, reason, scrape_exemplars, stage, ClassBaselines,
    Federation, Fingerprint, FlightRecorder, FlightRecorderConfig, MetricValue, ProfileOutcome,
    RecordedTrace, Registry, SpanEvent, Verdict,
};
use tabviz::prelude::*;

// ---------------------------------------------------------------------------
// synthetic-trace helpers

fn ev(span_id: u64, parent: Option<u64>, stage: &'static str, dur: Duration) -> SpanEvent {
    SpanEvent {
        stage,
        label: None,
        detail: None,
        reason: None,
        start: Instant::now(),
        dur,
        depth: 0,
        enter_seq: span_id,
        trace_id: 1,
        span_id,
        parent,
        lane: 0,
    }
}

fn ev_ms(span_id: u64, parent: Option<u64>, stage: &'static str, ms: u64) -> SpanEvent {
    ev(span_id, parent, stage, Duration::from_millis(ms))
}

fn with_reason(mut e: SpanEvent, r: &'static str) -> SpanEvent {
    e.reason = Some(r);
    e
}

fn with_label(mut e: SpanEvent, l: &'static str, detail: u64) -> SpanEvent {
    e.label = Some(l);
    e.detail = Some(detail);
    e
}

fn trace_of(events: Vec<SpanEvent>, total_ms: u64) -> RecordedTrace {
    RecordedTrace {
        trace_id: 1,
        parent_trace: None,
        query: "q".into(),
        source: "s".into(),
        class: "c".into(),
        outcome: ProfileOutcome::Remote,
        total: Duration::from_millis(total_ms),
        started: Instant::now(),
        events,
        dropped_events: 0,
    }
}

/// A 100ms trace whose root holds one dominant child stage.
fn dominated_by(stage_name: &'static str, ms: u64) -> Vec<SpanEvent> {
    vec![
        ev_ms(1, None, stage::QUERY, 100),
        ev_ms(2, Some(1), stage_name, ms),
        ev_ms(3, Some(1), stage::POST_PROCESS, 4),
    ]
}

// ---------------------------------------------------------------------------
// critical path

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Over arbitrary span trees (random parent links, random durations):
    /// the critical path is connected root-to-leaf, its attributed self
    /// time never exceeds the trace wall time, step durations are
    /// non-increasing along the path, and extraction is deterministic.
    #[test]
    fn critical_path_invariants(
        tree in proptest::collection::vec((0u64..1000, 0u64..5_000_000), 1..40),
        total_micros in 1u64..10_000_000,
    ) {
        const STAGES: [&str; 5] = [
            stage::QUERY,
            stage::SCHED_QUEUE,
            stage::REMOTE_EXEC,
            stage::TDE_EXEC,
            stage::POST_PROCESS,
        ];
        let events: Vec<SpanEvent> = tree
            .iter()
            .enumerate()
            .map(|(i, (pchoice, dur))| {
                let span_id = (i + 1) as u64;
                let parent = (i > 0).then(|| pchoice % i as u64 + 1);
                ev(span_id, parent, STAGES[i % STAGES.len()], Duration::from_micros(*dur))
            })
            .collect();
        let total = Duration::from_micros(total_micros);
        let cp = critical_path(&events, total);
        let again = critical_path(&events, total);
        prop_assert_eq!(
            cp.steps.iter().map(|s| s.span_id).collect::<Vec<_>>(),
            again.steps.iter().map(|s| s.span_id).collect::<Vec<_>>(),
            "extraction must be deterministic"
        );
        prop_assert!(cp.attributed <= cp.total, "attributed {:?} > total {:?}", cp.attributed, cp.total);
        prop_assert_eq!(cp.steps[0].span_id, 1, "path must start at the root");
        for w in cp.steps.windows(2) {
            let child = events.iter().find(|e| e.span_id == w[1].span_id).unwrap();
            prop_assert_eq!(child.parent, Some(w[0].span_id), "path must follow parent links");
            prop_assert!(w[1].dur <= w[0].dur, "clamped durations must not grow downward");
        }
        let last = cp.steps.last().unwrap();
        prop_assert!(
            events.iter().all(|e| e.parent != Some(last.span_id)),
            "path must end at a leaf"
        );
    }
}

#[test]
fn critical_path_attributes_self_time() {
    // query(100) -> remote_exec(80) -> temp_tables(10); post_process(5).
    let events = vec![
        ev_ms(1, None, stage::QUERY, 100),
        ev_ms(2, Some(1), stage::REMOTE_EXEC, 80),
        ev_ms(3, Some(2), stage::TEMP_TABLES, 10),
        ev_ms(4, Some(1), stage::POST_PROCESS, 5),
    ];
    let cp = critical_path(&events, Duration::from_millis(100));
    let path: Vec<&str> = cp.steps.iter().map(|s| s.stage).collect();
    assert_eq!(
        path,
        vec![stage::QUERY, stage::REMOTE_EXEC, stage::TEMP_TABLES]
    );
    // Root holds 100 - (80 + 5) = 15ms beyond its children.
    assert_eq!(cp.steps[0].self_time, Duration::from_millis(15));
    assert_eq!(cp.steps[1].self_time, Duration::from_millis(70));
    assert_eq!(cp.steps[2].self_time, Duration::from_millis(10));
    assert_eq!(cp.attributed, Duration::from_millis(95));
    assert_eq!(cp.dominant().unwrap().stage, stage::REMOTE_EXEC);
    assert!(cp.render().contains("remote_exec"));
}

// ---------------------------------------------------------------------------
// verdict classification: one scenario per reason code

#[test]
fn verdict_queue_wait() {
    let mut events = dominated_by(stage::SCHED_QUEUE, 80);
    events[1] = with_reason(events[1].clone(), reason::SCHED_QUEUED);
    let d = diagnose(&trace_of(events, 100), None);
    assert_eq!(d.verdict, Verdict::QueueWait);
    assert_eq!(d.culprit_stage, stage::SCHED_QUEUE);
    assert!(d.evidence.contains(&reason::SCHED_QUEUED));
    assert!(d.share > 0.7, "share {:.2}", d.share);
}

#[test]
fn verdict_breaker_fastfail_wins_over_shares() {
    // Hard evidence beats the share ranking even when another stage holds
    // more time.
    let mut events = dominated_by(stage::REMOTE_EXEC, 80);
    events.push(with_reason(
        ev_ms(4, Some(1), stage::POOL_ACQUIRE, 1),
        reason::POOL_BREAKER_OPEN,
    ));
    let d = diagnose(&trace_of(events, 100), None);
    assert_eq!(d.verdict, Verdict::BreakerFastfail);
    assert_eq!(d.culprit_stage, stage::POOL_ACQUIRE);
    assert_eq!(d.evidence, vec![reason::POOL_BREAKER_OPEN]);
}

#[test]
fn verdict_pool_acquire_timeout_and_share() {
    let mut events = dominated_by(stage::TDE_EXEC, 30);
    events.push(with_reason(
        ev_ms(4, Some(1), stage::POOL_ACQUIRE, 2),
        reason::POOL_TIMEOUT,
    ));
    let d = diagnose(&trace_of(events, 100), None);
    assert_eq!(d.verdict, Verdict::PoolAcquire);
    assert_eq!(d.evidence, vec![reason::POOL_TIMEOUT]);

    // Share path, no terminal reason: waiting on the pool dominated.
    let d = diagnose(&trace_of(dominated_by(stage::POOL_ACQUIRE, 75), 100), None);
    assert_eq!(d.verdict, Verdict::PoolAcquire);
    assert_eq!(d.culprit_stage, stage::POOL_ACQUIRE);
}

#[test]
fn verdict_backend_slow_vs_cache_miss_storm() {
    let mut events = dominated_by(stage::REMOTE_EXEC, 85);
    events.push(with_reason(
        ev_ms(4, Some(1), stage::CACHE_LOOKUP, 1),
        reason::CACHE_MISS_NO_CANDIDATE,
    ));
    let trace = trace_of(events, 100);

    // Without a baseline, going remote is assumed normal: backend is slow.
    let d = diagnose(&trace, None);
    assert_eq!(d.verdict, Verdict::BackendSlow);
    assert_eq!(d.culprit_stage, stage::REMOTE_EXEC);
    assert_eq!(d.evidence, vec![reason::CACHE_MISS_NO_CANDIDATE]);

    // Same trace, but the class normally serves from cache (remote share
    // ~5%): the miss IS the story.
    let baseline = Fingerprint {
        // [sched, pool, remote, tde, cache_lookup, peer, post, store]
        shares: [0.0, 0.0, 0.05, 0.0, 0.6, 0.0, 0.25, 0.05],
        samples: 20,
        mean_total_micros: 3_000.0,
    };
    let d = diagnose(&trace, Some(&baseline));
    assert_eq!(d.verdict, Verdict::CacheMissStorm);
    assert_eq!(d.evidence, vec![reason::CACHE_MISS_NO_CANDIDATE]);
    assert!(d.baseline_share < 0.1);

    // And when the class already goes remote routinely, a miss stays a
    // slow-backend verdict.
    let remote_class = Fingerprint {
        shares: [0.0, 0.05, 0.7, 0.0, 0.05, 0.0, 0.15, 0.05],
        samples: 20,
        mean_total_micros: 50_000.0,
    };
    let d = diagnose(&trace, Some(&remote_class));
    assert_eq!(d.verdict, Verdict::BackendSlow);
}

#[test]
fn verdict_l2_miss_promote() {
    let mut events = dominated_by(stage::CACHE_LOOKUP, 60);
    events[1] = with_reason(events[1].clone(), reason::CACHE_L2_PROMOTE);
    events.push(with_reason(
        ev_ms(4, Some(2), stage::PEER_CACHE, 40),
        reason::CACHE_L2_HIT,
    ));
    let d = diagnose(&trace_of(events, 100), None);
    assert_eq!(d.verdict, Verdict::L2MissPromote);
}

#[test]
fn verdict_swr_revalidate_contention() {
    let mut events = dominated_by(stage::CACHE_LOOKUP, 60);
    events[1] = with_reason(events[1].clone(), reason::CACHE_SWR_SERVE);
    let d = diagnose(&trace_of(events, 100), None);
    assert_eq!(d.verdict, Verdict::SwrRevalidateContention);
    assert_eq!(d.evidence, vec![reason::CACHE_SWR_SERVE]);
}

#[test]
fn verdict_kernel_fallback() {
    let mut events = dominated_by(stage::TDE_EXEC, 80);
    events.push(with_reason(
        ev_ms(4, Some(2), stage::KERNEL_SELECT, 0),
        reason::KERNEL_FALLBACK_WIDE_KEY,
    ));
    let d = diagnose(&trace_of(events, 100), None);
    assert_eq!(d.verdict, Verdict::KernelFallback);
    assert_eq!(d.culprit_stage, stage::TDE_EXEC);
    assert_eq!(d.evidence, vec![reason::KERNEL_FALLBACK_WIDE_KEY]);
}

#[test]
fn verdict_prune_regression() {
    let mut events = dominated_by(stage::TDE_EXEC, 80);
    events.push(with_label(
        ev_ms(4, Some(2), stage::SCAN_PRUNE, 0),
        "blocks_skipped",
        0,
    ));
    events.push(with_label(
        ev_ms(5, Some(2), stage::SCAN_PRUNE, 0),
        "blocks_total",
        12,
    ));
    let d = diagnose(&trace_of(events, 100), None);
    assert_eq!(d.verdict, Verdict::PruneRegression);

    // The same local-compute-heavy trace with healthy pruning carries no
    // structural cause and stays unclassified rather than inventing one.
    let mut events = dominated_by(stage::TDE_EXEC, 80);
    events.push(with_label(
        ev_ms(4, Some(2), stage::SCAN_PRUNE, 0),
        "blocks_skipped",
        10,
    ));
    events.push(with_label(
        ev_ms(5, Some(2), stage::SCAN_PRUNE, 0),
        "blocks_total",
        12,
    ));
    let d = diagnose(&trace_of(events, 100), None);
    assert_eq!(d.verdict, Verdict::Unclassified);
}

#[test]
fn verdict_unclassified_for_flat_traces() {
    let events = vec![
        ev_ms(1, None, stage::QUERY, 100),
        ev_ms(2, Some(1), stage::POST_PROCESS, 5),
    ];
    let d = diagnose(&trace_of(events, 100), None);
    assert_eq!(d.verdict, Verdict::Unclassified);
    assert!(d.render().contains("verdict=unclassified"));
}

#[test]
fn class_baselines_stream_and_gate() {
    let baselines = ClassBaselines::new();
    let events = dominated_by(stage::REMOTE_EXEC, 80);
    baselines.observe("dash|g:carrier|a:n", &events, Duration::from_millis(100));
    baselines.observe("dash|g:carrier|a:n", &events, Duration::from_millis(100));
    let fp = baselines.get("dash|g:carrier|a:n").expect("baseline");
    assert_eq!(fp.samples, 2);
    assert!((fp.share(stage::REMOTE_EXEC) - 0.8).abs() < 1e-9);
    assert!((fp.mean_total_micros - 100_000.0).abs() < 1.0);
    assert!(baselines.get("other").is_none());

    // The global gate makes observe a no-op (the e25 overhead arms rely on
    // this); re-enable before returning so other tests are unaffected.
    analyze::set_enabled(false);
    baselines.observe("gated", &events, Duration::from_millis(100));
    analyze::set_enabled(true);
    assert!(baselines.get("gated").is_none());
}

// ---------------------------------------------------------------------------
// exemplars

#[test]
fn exemplars_capture_inside_traces_only_and_scrape_back() {
    let reg = Registry::new();
    let h = reg.histogram("tv_req_latency_seconds");
    h.observe_micros(1_500);
    let text = reg.render_text();
    assert!(
        !text.contains("# {trace_id="),
        "untraced observations must not emit exemplars:\n{text}"
    );

    let handle = begin_trace();
    let tid = handle.trace_id().expect("capture on");
    h.observe_micros(1_500);
    drop(handle.finish(Duration::from_micros(1_500)));

    let text = reg.render_text();
    assert!(text.contains(&format!("# {{trace_id=\"{tid}\"}}")));
    let scraped = scrape_exemplars(&text);
    assert!(
        scraped
            .iter()
            .any(|(series, id)| *id == tid && series.starts_with("tv_req_latency_seconds_bucket")),
        "scrape must recover the exemplar: {scraped:?}"
    );
    // Exposition hygiene: the suffix never starts a line, and the last
    // token of an exemplar line parses as a float (seconds).
    for line in text.lines().filter(|l| l.contains("# {trace_id=")) {
        assert!(!line.starts_with('#'));
        let last = line.split_whitespace().last().unwrap();
        last.parse::<f64>()
            .unwrap_or_else(|_| panic!("unparseable exemplar value in: {line}"));
    }
    assert_eq!(h.quantile_exemplar(0.99).map(|e| e.trace_id), Some(tid));
}

#[test]
fn federation_merged_histograms_carry_exemplars() {
    let reg = Registry::new();
    let h = reg.histogram("tv_fed_latency_seconds");
    let handle = begin_trace();
    let tid = handle.trace_id().expect("capture on");
    h.observe_micros(900);
    drop(handle.finish(Duration::from_micros(900)));

    let mut fed = Federation::new();
    fed.add_node("n0", &reg);
    fed.add_node("n1", &Registry::new());
    let text = fed.render_text();
    let scraped = scrape_exemplars(&text);
    assert!(
        scraped.iter().any(|(_, id)| *id == tid),
        "federated exposition must keep exemplars: {scraped:?}"
    );
}

// ---------------------------------------------------------------------------
// recorder pinning

#[test]
fn exemplar_referenced_trace_survives_eviction_until_rotation() {
    let reg = Registry::new();
    let rec = FlightRecorder::with_registry(
        FlightRecorderConfig {
            recent_capacity: 2,
            slow_capacity: 1,
            slow_threshold: Duration::from_secs(3_600),
            max_bytes: 64 * 1024 * 1024,
        },
        &reg,
    );
    let h = reg.histogram("tv_pin_latency_seconds");
    let run_query = |observe: bool| -> u64 {
        let t = begin_trace();
        let tid = t.trace_id().expect("capture on");
        if observe {
            h.observe_micros(2_000);
        }
        let fin = t.finish(Duration::from_micros(2_000));
        rec.record(
            RecordedTrace::from_finished(fin, "q", "s", ProfileOutcome::Hit).with_class("c"),
        );
        tid
    };

    let pinned_id = run_query(true);
    for _ in 0..4 {
        run_query(false);
    }
    assert!(
        rec.recent().iter().all(|t| t.trace_id != pinned_id),
        "trace must have left the recent ring"
    );
    assert!(
        rec.get(pinned_id).is_some(),
        "exemplar-referenced trace must stay resolvable after ring eviction"
    );
    assert_eq!(rec.pinned_count(), 1);
    match reg.snapshot().get("tv_obs_recorder_pinned") {
        Some(MetricValue::Gauge(g)) => assert_eq!(*g, 1),
        other => panic!("missing pinned gauge: {other:?}"),
    }

    // Rotate the exemplar out: a newer traced observation lands in the same
    // bucket, and the next record() releases the parked trace.
    let newer = run_query(true);
    run_query(false);
    assert_eq!(rec.pinned_count(), 0, "rotated-out trace must be released");
    assert!(rec.get(pinned_id).is_none());
    assert!(rec.get(newer).is_some());
    match reg.snapshot().get("tv_obs_recorder_pinned") {
        Some(MetricValue::Gauge(g)) => assert_eq!(*g, 0),
        other => panic!("missing pinned gauge: {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// end-to-end surfaces

fn flights_server() -> Arc<DataServer> {
    let flights =
        tabviz::workloads::generate_flights(&tabviz::workloads::FaaConfig::with_rows(5_000))
            .unwrap();
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &["carrier"]).unwrap())
        .unwrap();
    let qp = QueryProcessor::default();
    qp.registry.register(
        Arc::new(SimDb::new("warehouse", db, SimConfig::default())),
        4,
    );
    let server = Arc::new(DataServer::new(qp));
    server.publish(PublishedSource::new(
        "flights-model",
        "warehouse",
        LogicalPlan::scan("flights"),
    ));
    server
}

#[test]
fn server_why_slow_names_a_verdict() {
    let server = flights_server();
    let session = server.connect("flights-model", "viewer").unwrap();
    let q = ClientQuery {
        group_by: vec!["carrier".into()],
        aggs: vec![AggCall::new(AggFunc::Count, None, "n")],
        ..Default::default()
    };
    for _ in 0..3 {
        session.query(&q).unwrap();
    }
    let last = server
        .flight_recorder()
        .last()
        .expect("query trace recorded");
    assert!(
        !last.class.is_empty(),
        "recorded traces must carry a query-class key"
    );
    let line = server.why_slow(last.trace_id).expect("trace resolvable");
    assert!(line.contains("verdict="), "{line}");
    assert!(line.contains("path:"), "{line}");
    let log = server.slow_query_verdicts(5);
    assert!(log.contains("verdict="), "{log}");
    // The processor folded these queries into a class baseline.
    assert!(!server.processor.obs.baselines.is_empty());
}

#[test]
fn cluster_diagnostics_report_includes_slow_query_verdicts() {
    let flights =
        tabviz::workloads::generate_flights(&tabviz::workloads::FaaConfig::with_rows(2_000))
            .unwrap();
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &["carrier"]).unwrap())
        .unwrap();
    let cluster = Cluster::build(
        ClusterConfig {
            nodes: 2,
            replication: 2,
            vnodes: 16,
            seed: 7,
            peer_op_latency: Duration::ZERO,
        },
        move |name| {
            let sim = SimDb::new("warehouse", Arc::clone(&db), SimConfig::default());
            let qp = QueryProcessor::default();
            qp.registry.register(Arc::new(sim), 4);
            let server = Arc::new(DataServer::named(qp, name));
            server.publish(PublishedSource::new(
                "dash-0",
                "warehouse",
                LogicalPlan::scan("flights"),
            ));
            Ok(server)
        },
    )
    .unwrap();
    let session = cluster.open_session("dash-0", "viewer").unwrap();
    let q = ClientQuery {
        group_by: vec!["carrier".into()],
        aggs: vec![AggCall::new(AggFunc::Count, None, "n")],
        ..Default::default()
    };
    for _ in 0..4 {
        session.query(&q).unwrap();
    }
    let report = cluster.diagnostics_report(3);
    assert!(
        report.contains("slow-query verdicts"),
        "diagnostics must include the verdict log:\n{report}"
    );
    assert!(report.contains("verdict="), "{report}");
    // Every latency histogram family with traffic carries a resolvable
    // exemplar somewhere in the cluster.
    let text = cluster.metrics_text();
    let scraped = scrape_exemplars(&text);
    assert!(
        !scraped.is_empty(),
        "cluster exposition must carry exemplars"
    );
    for (series, id) in &scraped {
        let found = cluster.recorder.get(*id).is_some()
            || cluster
                .nodes()
                .iter()
                .any(|n| n.server.flight_recorder().get(*id).is_some());
        assert!(found, "exemplar {id} of {series} must resolve to a trace");
    }
}
