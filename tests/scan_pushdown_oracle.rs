//! Compression-aware scan-path oracle: for randomized sargable predicates
//! over a table that exercises every codec (dict, dict-rle, rle, delta,
//! plain, null-heavy, all-null blocks), the zone-skipping pushdown scan —
//! serial, parallel, and with pushdown disabled — must return exactly the
//! rows a brute-force full scan + vectorized predicate evaluation selects.

#![allow(clippy::field_reassign_with_default)]

use proptest::prelude::*;
use std::sync::Arc;
use tabviz::prelude::*;
use tabviz::tde::cost::CostProfile;
use tabviz::tde::parallel::ParallelOptions;
use tabviz::tql::expr::{bin, col, lit, Expr, UnaryOp};
use tabviz::tql::{BinOp, LogicalPlan};

const POOL: [&str; 4] = ["ak", "ca", "ny", "tx"];
const CITIES: [&str; 8] = ["atl", "bos", "chi", "dal", "den", "jfk", "lax", "sea"];

/// Build a table whose columns land on every physical layout:
/// * `g`  Str, non-decreasing function of the row id → dict-rle;
/// * `s`  Str, pseudo-random short runs → dict (plain codes);
/// * `d`  Int, globally ascending, no nulls → delta;
/// * `r`  Int, long constant runs → rle;
/// * `v`  Int, pseudo-random with scattered nulls → plain;
/// * `nv` Int, ~90% null → plain, null-heavy;
/// * `z`  Int, NULL for the entire first half → leading all-null blocks.
fn oracle_table(rows: usize) -> (Tde, Chunk) {
    let schema = Arc::new(
        Schema::new(vec![
            Field::new("g", DataType::Str),
            Field::new("s", DataType::Str),
            Field::new("d", DataType::Int),
            Field::new("r", DataType::Int),
            Field::new("v", DataType::Int),
            Field::new("nv", DataType::Int),
            Field::new("z", DataType::Int),
        ])
        .unwrap(),
    );
    let mut data: Vec<Vec<Value>> = Vec::with_capacity(rows);
    for i in 0..rows {
        // Deterministic pseudo-random stream (no external RNG needed).
        let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 33;
        let g = POOL[i * POOL.len() / rows.max(1)];
        let s = CITIES[(h % 8) as usize];
        let v = if h.is_multiple_of(11) {
            Value::Null
        } else {
            Value::Int((h % 201) as i64 - 100)
        };
        let nv = if !h.is_multiple_of(10) {
            Value::Null
        } else {
            Value::Int((h % 50) as i64)
        };
        let z = if i < rows / 2 {
            Value::Null
        } else {
            Value::Int(i as i64)
        };
        data.push(vec![
            Value::Str(g.into()),
            Value::Str(s.into()),
            Value::Int(i as i64),
            Value::Int((i / 500) as i64),
            v,
            nv,
            z,
        ]);
    }
    let chunk = Chunk::from_rows(schema, &data).unwrap();
    let db = Arc::new(Database::new("oracle"));
    // Rows are already in (g, d) order, so the sort is a stable no-op and
    // `chunk` doubles as the decoded ground truth.
    db.put(Table::from_chunk("t", &chunk, &["g", "d"]).unwrap())
        .unwrap();
    (Tde::new(db), chunk)
}

fn configs() -> Vec<(&'static str, ExecOptions)> {
    let forced = CostProfile {
        min_work_per_thread: 500,
        max_dop: 4,
    };
    let mut all = vec![("serial-pushdown", ExecOptions::serial())];
    let mut off = ExecOptions::serial();
    off.physical.enable_scan_pushdown = false;
    all.push(("serial-no-pushdown", off));
    let mut no_rle = ExecOptions::serial();
    no_rle.physical.enable_rle_index = false;
    all.push(("serial-no-rle-index", no_rle));
    let mut par = ExecOptions::default();
    par.parallel = ParallelOptions {
        profile: forced,
        ..Default::default()
    };
    all.push(("parallel-pushdown", par));
    let mut par_off = ExecOptions::default();
    par_off.parallel = ParallelOptions {
        profile: forced,
        ..Default::default()
    };
    par_off.physical.enable_scan_pushdown = false;
    all.push(("parallel-no-pushdown", par_off));
    all
}

/// Brute force: evaluate the predicate over the fully decoded chunk and keep
/// the passing rows.
fn brute_force(full: &Chunk, pred: &Expr) -> Vec<Vec<Value>> {
    let mask = pred.eval_predicate(full).unwrap();
    full.to_rows()
        .into_iter()
        .zip(&mask)
        .filter(|(_, &m)| m)
        .map(|(r, _)| r)
        .collect()
}

fn check_against_oracle(tde: &Tde, full: &Chunk, pred: &Expr) {
    let mut expected = brute_force(full, pred);
    expected.sort();
    let plan = LogicalPlan::scan("t").select(pred.clone());
    for (name, opts) in configs() {
        let mut rows = tde.execute_plan(&plan, &opts).unwrap().to_rows();
        rows.sort();
        assert_eq!(rows, expected, "config {name} diverged on {pred}");
    }
}

fn int_col() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(vec!["d", "r", "v", "nv", "z"])
}

fn str_col() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(vec!["g", "s"])
}

fn cmp_op() -> impl Strategy<Value = BinOp> {
    proptest::sample::select(vec![
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ])
}

fn str_lit() -> impl Strategy<Value = &'static str> {
    // "zz" matches nothing.
    proptest::sample::select(vec!["ak", "ca", "ny", "tx", "jfk", "lax", "zz"])
}

/// One random sargable conjunct over one column. The integer-literal range
/// intentionally overshoots the data so zone maps see refutable
/// (never-match) and vacuous (always-match) predicates too.
fn conjunct() -> impl Strategy<Value = Expr> {
    let int_lit = -120i64..12_000i64;
    prop_oneof![
        (int_col(), cmp_op(), int_lit.clone(), any::<bool>()).prop_map(|(c, op, l, flipped)| {
            if flipped {
                bin(op, lit(l), col(c))
            } else {
                bin(op, col(c), lit(l))
            }
        }),
        (str_col(), cmp_op(), str_lit()).prop_map(|(c, op, l)| bin(op, col(c), lit(l))),
        (
            str_col(),
            proptest::collection::vec(str_lit(), 1..4),
            any::<bool>()
        )
            .prop_map(|(c, vals, negated)| Expr::In {
                expr: Box::new(col(c)),
                list: vals.into_iter().map(|s| Value::Str(s.into())).collect(),
                negated,
            }),
        (int_col(), int_lit.clone(), int_lit).prop_map(|(c, a, b)| Expr::Between {
            expr: Box::new(col(c)),
            low: Value::Int(a.min(b)),
            high: Value::Int(a.max(b)),
        }),
        (int_col(), any::<bool>()).prop_map(|(c, not)| Expr::Unary {
            op: if not {
                UnaryOp::IsNotNull
            } else {
                UnaryOp::IsNull
            },
            expr: Box::new(col(c)),
        }),
    ]
}

/// One random *arithmetic* sargable conjunct: `f(col) cmp literal` where
/// `f` composes +/-/*// with literal operands (the shapes the zone-map
/// interval analysis claims to bound). Multipliers cross zero and divisors
/// are Real so both orientation flips and Int→Real promotion get exercised.
fn arith_conjunct() -> impl Strategy<Value = Expr> {
    let shift = -200i64..200i64;
    let mult = proptest::sample::select(vec![-7i64, -2, -1, 0, 1, 2, 3, 11]);
    let divisor = proptest::sample::select(vec![-4.0f64, -0.5, 0.5, 2.0, 8.0]);
    let inner = (shift, mult, divisor, 0u8..5u8).prop_map(|(a, m, dv, shape)| match shape {
        0 => bin(BinOp::Add, col("v"), lit(a)),
        1 => bin(BinOp::Sub, lit(a), col("d")),
        2 => bin(BinOp::Mul, col("r"), lit(m)),
        3 => bin(BinOp::Div, col("z"), lit(dv)),
        _ => bin(BinOp::Mul, bin(BinOp::Add, col("nv"), lit(a)), lit(m)),
    });
    let cmp_lit = -12_000i64..12_000i64;
    (inner, cmp_op(), cmp_lit, any::<bool>()).prop_map(|(f, op, l, flipped)| {
        if flipped {
            bin(op, lit(l), f)
        } else {
            bin(op, f, lit(l))
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn pushdown_scan_matches_brute_force(
        conjuncts in proptest::collection::vec(conjunct(), 1..=3),
        rows in proptest::sample::select(vec![1usize, 97, 4_096, 10_000]),
    ) {
        let (tde, full) = oracle_table(rows);
        let pred = tabviz::tql::expr::and_all(conjuncts);
        check_against_oracle(&tde, &full, &pred);
    }

    #[test]
    fn arith_pushdown_matches_brute_force(
        conjuncts in proptest::collection::vec(arith_conjunct(), 1..=2),
        rows in proptest::sample::select(vec![97usize, 4_096, 10_000]),
    ) {
        let (tde, full) = oracle_table(rows);
        let pred = tabviz::tql::expr::and_all(conjuncts);
        check_against_oracle(&tde, &full, &pred);
    }
}

#[test]
fn empty_table_all_configs_agree() {
    let (tde, full) = oracle_table(0);
    for pred in [
        bin(BinOp::Gt, col("d"), lit(5i64)),
        bin(BinOp::Eq, col("g"), lit("ak")),
    ] {
        check_against_oracle(&tde, &full, &pred);
    }
}

/// Predicates engineered for the corners: all-null blocks, null literals,
/// never-match and always-match zones, IS NULL over the half-null column.
#[test]
fn corner_predicates_match_brute_force() {
    let (tde, full) = oracle_table(10_000);
    let preds = vec![
        bin(BinOp::Gt, col("d"), lit(9_990i64)), // last block only
        bin(BinOp::Lt, col("d"), lit(0i64)),     // nothing
        bin(BinOp::Ge, col("d"), lit(0i64)),     // everything
        bin(BinOp::Eq, col("d"), Expr::Literal(Value::Null)), // null literal
        Expr::Unary {
            op: UnaryOp::IsNull,
            expr: Box::new(col("z")),
        }, // exactly the all-null first half
        Expr::Unary {
            op: UnaryOp::IsNotNull,
            expr: Box::new(col("nv")),
        },
        bin(BinOp::Gt, col("z"), lit(7_000i64)), // skips the all-null blocks
        bin(
            BinOp::And,
            bin(BinOp::Eq, col("g"), lit("tx")),
            bin(BinOp::Lt, col("v"), lit(0i64)),
        ),
        Expr::In {
            expr: Box::new(col("g")),
            list: vec![Value::Str("zz".into()), Value::Null],
            negated: false,
        },
        Expr::In {
            expr: Box::new(col("s")),
            list: vec![Value::Str("jfk".into()), Value::Str("lax".into())],
            negated: true,
        },
        Expr::Between {
            expr: Box::new(col("r")),
            low: Value::Int(3),
            high: Value::Int(4),
        },
    ];
    for pred in preds {
        check_against_oracle(&tde, &full, &pred);
    }
}

/// Arithmetic corners: wrapping overflow, negative multipliers, division by
/// negative/fractional literals, null-heavy and all-null-block columns. The
/// brute force evaluates the same wrapping engine semantics, so any zone
/// prune that disagrees with wrapped evaluation would diverge here.
#[test]
fn arith_corner_predicates_match_brute_force() {
    let (tde, full) = oracle_table(10_000);
    let preds = vec![
        // Image of d's first two blocks sits below the bound → skippable.
        bin(
            BinOp::Gt,
            bin(BinOp::Add, col("d"), lit(10i64)),
            lit(9_000i64),
        ),
        // Negative multiplier: orientation must flip, not prune wrongly.
        bin(
            BinOp::Lt,
            bin(BinOp::Mul, col("d"), lit(-3i64)),
            lit(-29_000i64),
        ),
        // lit - col is decreasing.
        bin(
            BinOp::Ge,
            bin(BinOp::Sub, lit(100i64), col("v")),
            lit(150i64),
        ),
        // Division promotes to Real; negative divisor flips.
        bin(
            BinOp::Le,
            bin(BinOp::Div, col("z"), lit(-2.0f64)),
            lit(-4_000i64),
        ),
        // Multiplier zero collapses the image to a constant.
        bin(BinOp::Eq, bin(BinOp::Mul, col("v"), lit(0i64)), lit(0i64)),
        // Null-heavy column: NULL rows must stay excluded.
        bin(BinOp::Gt, bin(BinOp::Add, col("nv"), lit(5i64)), lit(30i64)),
        // Comparison literal NULL matches nothing even through arithmetic.
        bin(
            BinOp::Gt,
            bin(BinOp::Add, col("d"), lit(1i64)),
            Expr::Literal(Value::Null),
        ),
        // Division by literal zero: engine yields all-NULL; not pushed, and
        // either way nothing may match.
        bin(BinOp::Gt, bin(BinOp::Div, col("d"), lit(0i64)), lit(1i64)),
    ];
    for pred in preds {
        check_against_oracle(&tde, &full, &pred);
    }
}

/// Values near `i64::MAX` make `col + shift` wrap in the engine. The checked
/// endpoint evaluation must refuse to prune such blocks so the scan result
/// still equals wrapped brute-force evaluation.
#[test]
fn arith_overflow_wraps_consistently() {
    let schema = Arc::new(Schema::new(vec![Field::new("h", DataType::Int)]).unwrap());
    let data: Vec<Vec<Value>> = (0..5_000)
        .map(|i| {
            let v = if i % 3 == 0 {
                i64::MAX - (i as i64 % 7)
            } else {
                i as i64
            };
            vec![Value::Int(v)]
        })
        .collect();
    let chunk = Chunk::from_rows(schema, &data).unwrap();
    let db = Arc::new(Database::new("ovf"));
    db.put(Table::from_chunk("t", &chunk, &[]).unwrap())
        .unwrap();
    let tde = Tde::new(db);
    let preds = vec![
        // Wraps to negative for the near-MAX rows.
        bin(BinOp::Lt, bin(BinOp::Add, col("h"), lit(100i64)), lit(0i64)),
        bin(
            BinOp::Gt,
            bin(BinOp::Mul, col("h"), lit(2i64)),
            lit(1_000i64),
        ),
        bin(
            BinOp::Ge,
            bin(BinOp::Sub, lit(-5i64), col("h")),
            lit(i64::MIN + 10),
        ),
    ];
    for pred in preds {
        check_against_oracle(&tde, &chunk, &pred);
    }
}

/// The planner must actually push the arithmetic comparison into the scan,
/// and zone maps must skip blocks whose mapped interval refutes it.
#[test]
fn arith_predicates_are_pushed_and_skip_blocks() {
    let (tde, _full) = oracle_table(10_000); // 3 zone-map blocks over d
    let pred = bin(
        BinOp::Gt,
        bin(BinOp::Add, col("d"), lit(10i64)),
        lit(10_000i64),
    );
    let plan = LogicalPlan::scan("t").select(pred);
    let phys = tde.plan_physical(&plan, &ExecOptions::serial()).unwrap();
    assert!(
        phys.explain().contains("pushed=["),
        "arith comparison must be pushed into the scan: {}",
        phys.explain()
    );
    let before = tabviz::obs::global().snapshot();
    let out = tde.execute_plan(&plan, &ExecOptions::serial()).unwrap();
    assert_eq!(out.len(), 9); // d + 10 > 10_000 ⇒ d ≥ 9_991, i.e. 9_991..=9_999
    let after = tabviz::obs::global().snapshot();
    let delta = |name: &str| {
        let get =
            |m: &std::collections::BTreeMap<String, tabviz::obs::MetricValue>| match m.get(name) {
                Some(tabviz::obs::MetricValue::Counter(c)) => *c,
                _ => 0,
            };
        get(&after).saturating_sub(get(&before))
    };
    assert!(
        delta("tv_tde_blocks_skipped_total") >= 2,
        "blocks whose a+10 image sits below the bound must be zone-skipped"
    );
    // A string column stays unpushed even in arithmetic-free comparisons of
    // unsupported shape (sanity check of the dtype gate).
    let strp = bin(BinOp::Gt, bin(BinOp::Add, col("g"), lit(1i64)), lit(0i64));
    let plan = LogicalPlan::scan("t").select(strp);
    let phys = tde.plan_physical(&plan, &ExecOptions::serial()).unwrap();
    assert!(
        !phys.explain().contains("pushed=["),
        "string-column arithmetic must not be pushed: {}",
        phys.explain()
    );
}

/// RunAgg — MIN/MAX/SUM/COUNT computed at run granularity over RLE columns
/// without decoding — must agree with a brute-force aggregation over the
/// decoded chunk and with the decode-then-aggregate path
/// (`enable_run_agg = false`), across all scan configs.
#[test]
fn run_agg_min_max_matches_brute_force() {
    let (tde, full) = oracle_table(10_000);
    let q = "(aggregate ((g)) \
             ((min r as lo) (max r as hi) (sum r as s) (count r as c) (count as n)) \
             (scan t))";
    let plan = tabviz::tql::parse_plan(q).unwrap();
    // The serial plan must actually take the run-granularity path — `g` is
    // dict-rle and `r` is rle, so nothing forces a decode.
    let phys = tde.plan_physical(&plan, &ExecOptions::serial()).unwrap();
    assert!(phys.explain().contains("RunAgg"), "{}", phys.explain());

    use std::collections::BTreeMap;
    let mut groups: BTreeMap<String, (i64, i64, i64, i64, i64)> = BTreeMap::new();
    for row in full.to_rows() {
        let (Value::Str(g), Value::Int(r)) = (row[0].clone(), row[3].clone()) else {
            panic!("unexpected row shape");
        };
        let e = groups.entry(g).or_insert((i64::MAX, i64::MIN, 0, 0, 0));
        e.0 = e.0.min(r);
        e.1 = e.1.max(r);
        e.2 += r;
        e.3 += 1;
        e.4 += 1;
    }
    let mut expected: Vec<Vec<Value>> = groups
        .into_iter()
        .map(|(g, (lo, hi, s, c, n))| {
            vec![
                Value::Str(g),
                Value::Int(lo),
                Value::Int(hi),
                Value::Int(s),
                Value::Int(c),
                Value::Int(n),
            ]
        })
        .collect();
    expected.sort();

    let mut no_run = ExecOptions::serial();
    no_run.physical.enable_run_agg = false;
    for (name, opts) in configs().into_iter().chain([("serial-no-run-agg", no_run)]) {
        let mut rows = tde.execute_plan(&plan, &opts).unwrap().to_rows();
        rows.sort();
        assert_eq!(rows, expected, "config {name} diverged");
    }
}

/// MIN/MAX at run granularity must skip null runs exactly like the decoding
/// aggregators: `nz` is an RLE integer column whose every other run is NULL,
/// and one group ("none") is entirely NULL, so its MIN/MAX must come back
/// NULL rather than a sentinel.
#[test]
fn run_agg_min_max_skips_null_runs() {
    let schema = Arc::new(
        Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("nz", DataType::Int),
        ])
        .unwrap(),
    );
    let mut data: Vec<Vec<Value>> = Vec::new();
    for i in 0..4_000usize {
        let k = if i < 2_000 { "some" } else { "none" };
        // 100-row runs; in "some" every other run is NULL, "none" is all NULL.
        let nz = if k == "none" || (i / 100) % 2 == 0 {
            Value::Null
        } else {
            Value::Int((i / 100) as i64)
        };
        data.push(vec![Value::Str(k.into()), nz]);
    }
    let chunk = Chunk::from_rows(schema, &data).unwrap();
    let db = Arc::new(Database::new("nulls"));
    db.put(Table::from_chunk("t", &chunk, &["k"]).unwrap())
        .unwrap();
    let tde = Tde::new(db);
    let q = "(aggregate ((k)) ((min nz as lo) (max nz as hi) (count nz as c)) (scan t))";
    let plan = tabviz::tql::parse_plan(q).unwrap();
    let phys = tde.plan_physical(&plan, &ExecOptions::serial()).unwrap();
    assert!(phys.explain().contains("RunAgg"), "{}", phys.explain());
    let mut rows = tde
        .execute_plan(&plan, &ExecOptions::serial())
        .unwrap()
        .to_rows();
    rows.sort();
    let mut no_run = ExecOptions::serial();
    no_run.physical.enable_run_agg = false;
    let mut baseline = tde.execute_plan(&plan, &no_run).unwrap().to_rows();
    baseline.sort();
    assert_eq!(rows, baseline);
    // "none" sorts first: all-NULL group aggregates to NULL / NULL / 0.
    assert_eq!(
        rows[0],
        vec![
            Value::Str("none".into()),
            Value::Null,
            Value::Null,
            Value::Int(0)
        ]
    );
    // Odd runs 1,3,...,19 carry values 1..=19.
    assert_eq!(
        rows[1],
        vec![
            Value::Str("some".into()),
            Value::Int(1),
            Value::Int(19),
            Value::Int(1_000)
        ]
    );
}

/// Multi-column RunAgg: a GROUP BY over several RLE columns whose run
/// boundaries do NOT align (runs of 300 and 700 rows) must walk the
/// intersected segments and agree with both a brute-force aggregation over
/// decoded rows and the decode-then-aggregate path. Aggregate arguments are
/// RLE columns with their own misaligned runs, one with periodic NULL runs.
#[test]
fn run_agg_multi_column_groups_match_brute_force() {
    const ROWS: usize = 6_300; // 3 × lcm(300, 700): boundaries interleave
    let schema = Arc::new(
        Schema::new(vec![
            Field::new("a", DataType::Str),
            Field::new("b", DataType::Int),
            Field::new("val", DataType::Int),
            Field::new("w", DataType::Int),
        ])
        .unwrap(),
    );
    let mut data: Vec<Vec<Value>> = Vec::with_capacity(ROWS);
    for i in 0..ROWS {
        let a = format!("a{}", (i / 300) % 5);
        let b = (i / 700) as i64;
        // Runs of 90; every third run is NULL so run-granularity COUNT/SUM
        // must skip null runs exactly like the decoding aggregators.
        let val = if (i / 90) % 3 == 0 {
            Value::Null
        } else {
            Value::Int((i / 90) as i64 - 20)
        };
        let w = Value::Int((i / 110) as i64 % 13);
        data.push(vec![Value::Str(a), Value::Int(b), val, w]);
    }
    let chunk = Chunk::from_rows(schema, &data).unwrap();
    let db = Arc::new(Database::new("multi"));
    db.put(Table::from_chunk("t", &chunk, &[]).unwrap())
        .unwrap();
    let tde = Tde::new(db);

    for q in [
        // Two group columns, misaligned boundaries.
        "(aggregate ((a) (b)) \
         ((count as n) (count val as c) (sum val as s) (min val as lo) (max w as hi)) \
         (scan t))",
        // Three group columns: w's 110-row runs cut the segments finer.
        "(aggregate ((a) (b) (w)) ((count as n) (sum val as s)) (scan t))",
    ] {
        let plan = tabviz::tql::parse_plan(q).unwrap();
        let phys = tde.plan_physical(&plan, &ExecOptions::serial()).unwrap();
        assert!(phys.explain().contains("RunAgg"), "{}", phys.explain());

        // Brute force over decoded rows via the generic hash-agg path.
        let mut no_run = ExecOptions::serial();
        no_run.physical.enable_run_agg = false;
        let no_run_phys = tde.plan_physical(&plan, &no_run).unwrap();
        assert!(
            !no_run_phys.explain().contains("RunAgg"),
            "{}",
            no_run_phys.explain()
        );
        let mut expected = tde.execute_plan(&plan, &no_run).unwrap().to_rows();
        expected.sort();
        assert!(!expected.is_empty());

        for (name, opts) in configs() {
            let mut rows = tde.execute_plan(&plan, &opts).unwrap().to_rows();
            rows.sort();
            assert_eq!(rows, expected, "config {name} diverged on {q}");
        }
    }
}

/// Planner guard: a multi-column group with any non-RLE member must fall
/// through to the ordinary aggregate paths (here `s` is dict with plain
/// codes), while an all-RLE pair over the oracle table takes RunAgg and
/// still matches the decode path.
#[test]
fn run_agg_multi_column_requires_all_rle() {
    let (tde, full) = oracle_table(10_000);
    let mixed = tabviz::tql::parse_plan("(aggregate ((g) (s)) ((count as n)) (scan t))").unwrap();
    let phys = tde.plan_physical(&mixed, &ExecOptions::serial()).unwrap();
    assert!(
        !phys.explain().contains("RunAgg"),
        "non-RLE group member must disable RunAgg: {}",
        phys.explain()
    );

    let all_rle = tabviz::tql::parse_plan(
        "(aggregate ((g) (r)) ((count as n) (sum r as s) (min r as lo)) (scan t))",
    )
    .unwrap();
    let phys = tde.plan_physical(&all_rle, &ExecOptions::serial()).unwrap();
    assert!(phys.explain().contains("RunAgg"), "{}", phys.explain());

    use std::collections::BTreeMap;
    let mut groups: BTreeMap<(String, i64), (i64, i64, i64)> = BTreeMap::new();
    for row in full.to_rows() {
        let (Value::Str(g), Value::Int(r)) = (row[0].clone(), row[3].clone()) else {
            panic!("unexpected row shape");
        };
        let e = groups.entry((g, r)).or_insert((0, 0, i64::MAX));
        e.0 += 1;
        e.1 += r;
        e.2 = e.2.min(r);
    }
    let mut expected: Vec<Vec<Value>> = groups
        .into_iter()
        .map(|((g, r), (n, s, lo))| {
            vec![
                Value::Str(g),
                Value::Int(r),
                Value::Int(n),
                Value::Int(s),
                Value::Int(lo),
            ]
        })
        .collect();
    expected.sort();
    let mut rows = tde
        .execute_plan(&all_rle, &ExecOptions::serial())
        .unwrap()
        .to_rows();
    rows.sort();
    assert_eq!(rows, expected);
}

/// The skip counters must actually move: a selective predicate over the
/// sorted delta column proves most blocks unsatisfiable. (Counters are
/// global and monotone, so concurrent tests only add to the delta.)
#[test]
fn selective_scan_skips_blocks() {
    let (tde, _full) = oracle_table(10_000); // 3 zone-map blocks
    let before = tabviz::obs::global().snapshot();
    let plan = LogicalPlan::scan("t").select(bin(BinOp::Gt, col("d"), lit(9_990i64)));
    let out = tde.execute_plan(&plan, &ExecOptions::serial()).unwrap();
    assert_eq!(out.len(), 9);
    let after = tabviz::obs::global().snapshot();
    let delta = |name: &str| {
        let get =
            |m: &std::collections::BTreeMap<String, tabviz::obs::MetricValue>| match m.get(name) {
                Some(tabviz::obs::MetricValue::Counter(c)) => *c,
                _ => 0,
            };
        get(&after).saturating_sub(get(&before))
    };
    assert!(
        delta("tv_tde_blocks_skipped_total") >= 2,
        "first two 4096-row blocks must be zone-skipped"
    );
    assert!(
        delta("tv_tde_rows_prefiltered_total") >= 8_192,
        "prefiltered rows must cover the skipped blocks"
    );
}

/// Range predicates on the sorted delta column must be resolved by the
/// binary search over zone maps — blocks outside the computed interval are
/// refuted without per-block zone tests, and the dedicated counter moves.
/// The result set itself is already covered by the oracle proptests; this
/// pins the mechanism.
#[test]
fn sorted_range_predicates_binary_search_blocks() {
    let (tde, full) = oracle_table(10_000); // 3 zone-map blocks over d
    let before = tabviz::obs::global().snapshot();
    // d is globally ascending even after the (g, d) sort, so the interval
    // for d > 9_990 is exactly the last block.
    let plan = LogicalPlan::scan("t").select(bin(BinOp::Gt, col("d"), lit(9_990i64)));
    let out = tde.execute_plan(&plan, &ExecOptions::serial()).unwrap();
    assert_eq!(out.len(), 9);
    // A BETWEEN over the middle block prunes both ends of the table.
    let between = Expr::Between {
        expr: Box::new(col("d")),
        low: Value::Int(4_200),
        high: Value::Int(4_300),
    };
    check_against_oracle(&tde, &full, &between);
    let after = tabviz::obs::global().snapshot();
    let delta = |name: &str| {
        let get =
            |m: &std::collections::BTreeMap<String, tabviz::obs::MetricValue>| match m.get(name) {
                Some(tabviz::obs::MetricValue::Counter(c)) => *c,
                _ => 0,
            };
        get(&after).saturating_sub(get(&before))
    };
    assert!(
        delta("tv_tde_sorted_range_prunes_total") >= 2,
        "sorted-column binary search must refute out-of-interval blocks"
    );
}
