//! SLO-plane properties: federated histogram merges are exact (quantiles
//! equal the merged stream's), and burn-rate alerting is well-behaved at
//! the edges — empty windows, 100% error storms, boundary-riding burns.

use proptest::prelude::*;
use tabviz::obs::{Federation, Histogram, Objective, Registry, ServeEvent, SloConfig, SloTracker};

fn serve(latency_micros: u64, ok: bool) -> ServeEvent {
    ServeEvent {
        latency_micros,
        ok,
        degraded: false,
    }
}

fn tracker(objectives: Vec<Objective>) -> SloTracker {
    SloTracker::new(
        SloConfig {
            bucket_ms: 100,
            fast_window_ms: 500,
            slow_window_ms: 2_000,
            fire_burn: 2.0,
            clear_burn: 1.0,
            min_events: 4,
        },
        objectives,
    )
}

/// An empty window is not an outage: with no events recorded at all, no
/// objective may fire no matter how often the tracker is evaluated.
#[test]
fn empty_window_never_fires() {
    let mut t = tracker(vec![
        Objective::availability("availability", 0.999),
        Objective::latency_p95("latency", 10_000),
    ]);
    for now_ms in (0..10_000).step_by(100) {
        t.evaluate(now_ms, true);
    }
    for st in t.status(10_000) {
        assert!(!st.firing, "{} fired on an empty window", st.name);
        assert_eq!(st.times_fired, 0);
        assert_eq!(st.fast_events, 0);
    }
}

/// A 100% error storm is the worst representable burn: availability fires
/// as soon as both windows have evidence, and the burn rate equals the
/// budget's reciprocal (every event is bad).
#[test]
fn total_error_storm_fires_at_max_burn() {
    let mut t = tracker(vec![Objective::availability("availability", 0.999)]);
    let mut fired_at = None;
    for i in 0..100u64 {
        let now_ms = i * 50;
        t.record(now_ms, serve(1_000, false));
        t.evaluate(now_ms, true);
        if fired_at.is_none() && t.status(now_ms)[0].firing {
            fired_at = Some(now_ms);
        }
    }
    let fired_at = fired_at.expect("100% errors must fire");
    assert!(fired_at <= 2_000, "fired late: {fired_at}ms");
    let st = &t.status(5_000 - 1)[0];
    let budget = 1.0 - 0.999;
    assert!(
        (st.fast_burn - 1.0 / budget).abs() < 1e-6,
        "all-bad burn is 1/budget: {}",
        st.fast_burn
    );
}

/// Alert-state hysteresis: a burn that rides the fire threshold — dipping
/// just under and over it bucket after bucket — may fire once, but must
/// not flap, because clearing requires dropping under the (lower) clear
/// threshold, not just under the fire threshold.
#[test]
fn boundary_riding_burn_fires_once_not_flaps() {
    // 5% budget, 12.5% errors evenly spread: the burn hovers at ~2.5×,
    // wobbling around the 2.0 fire line as window alignment shifts the
    // per-window bad count, but never dropping near the 1.0 clear line.
    let mut t = tracker(vec![Objective::availability("availability", 0.95)]);
    let mut fires = 0u32;
    let mut clears = 0u32;
    for i in 0..4_000u64 {
        let now_ms = i * 10;
        t.record(now_ms, serve(500, i % 8 != 0));
        for st in t.evaluate(now_ms, true) {
            fires += u32::from(st.just_fired);
            clears += u32::from(st.just_cleared);
        }
    }
    assert_eq!(fires, 1, "sustained over-budget burn fires exactly once");
    assert_eq!(clears, 0, "burn never near the clear line: no flapping");
}

/// Recovery clears: a hard error burst fires, then a long clean stretch
/// drains both windows and the alert clears exactly once.
#[test]
fn recovery_clears_exactly_once() {
    let mut t = tracker(vec![Objective::availability("availability", 0.999)]);
    for i in 0..50u64 {
        t.record(i * 10, serve(1_000, false));
        t.evaluate(i * 10, true);
    }
    assert!(t.status(500)[0].firing, "burst fires");
    let mut clears = 0u32;
    for i in 0..1_000u64 {
        let now_ms = 500 + i * 10;
        t.record(now_ms, serve(1_000, true));
        if t.evaluate(now_ms, true)[0].just_cleared {
            clears += 1;
        }
    }
    assert_eq!(clears, 1, "alert clears exactly once");
    assert!(!t.status(10_500)[0].firing);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Federation is exact, not approximate: because every node shares the
    /// same log2 bucket edges, bucket-wise merging loses nothing — every
    /// quantile of the federated histogram equals the same quantile of one
    /// histogram fed the concatenated stream.
    #[test]
    fn federated_quantiles_equal_merged_stream(
        streams in proptest::collection::vec(
            proptest::collection::vec(1u64..50_000_000, 0..40),
            1..5,
        ),
        q in 0.0f64..1.0,
    ) {
        let mut fed = Federation::new();
        let registries: Vec<Registry> = streams.iter().map(|_| Registry::new()).collect();
        let reference = Histogram::new();
        for (i, (stream, reg)) in streams.iter().zip(&registries).enumerate() {
            let h = reg.histogram("tv_core_query_seconds");
            for &v in stream {
                h.observe_micros(v);
                reference.observe_micros(v);
            }
            fed.add_node(&format!("node-{i}"), reg);
        }
        let total: usize = streams.iter().map(Vec::len).sum();
        let merged = fed.merged_histogram("tv_core_query_seconds");
        if total == 0 {
            prop_assert!(merged.is_none() || merged.unwrap().count == 0);
        } else {
            let merged = merged.expect("merged histogram");
            prop_assert_eq!(merged.count, total as u64);
            prop_assert_eq!(merged.sum_micros, reference.sum_micros());
            for q in [q, 0.0, 0.5, 0.95, 0.99, 1.0] {
                prop_assert_eq!(merged.quantile_micros(q), reference.quantile_micros(q));
            }
        }
    }

    /// Burn rates are scale-invariant in event count and bounded by the
    /// all-bad worst case: for any mix of good/bad events in one window,
    /// 0 ≤ burn ≤ 1/budget, and all-good traffic stays strictly under the
    /// clear threshold.
    #[test]
    fn burn_rate_bounded_and_clean_traffic_clears(
        bad_every in 1u64..40,
        n in 8u64..200,
    ) {
        let mut t = tracker(vec![Objective::availability("availability", 0.999)]);
        for i in 0..n {
            t.record(i, serve(1_000, i % bad_every != 0));
        }
        t.evaluate(n, true);
        let st = &t.status(n)[0];
        let max_burn = 1.0 / (1.0 - 0.999);
        prop_assert!(st.fast_burn >= 0.0 && st.fast_burn <= max_burn + 1e-9);
        prop_assert!(st.slow_burn >= 0.0 && st.slow_burn <= max_burn + 1e-9);

        let mut clean = tracker(vec![Objective::availability("availability", 0.999)]);
        for i in 0..n {
            clean.record(i, serve(1_000, true));
        }
        clean.evaluate(n, true);
        let st = &clean.status(n)[0];
        prop_assert!(st.fast_burn == 0.0 && !st.firing);
    }
}
