//! Cache correctness oracle: whatever the intelligent cache answers must be
//! byte-identical to executing the request directly. Randomized over
//! filters, groupings and aggregates (proptest).

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use tabviz::cache::{intelligent::CacheConfig, IntelligentCache, QuerySpec};
use tabviz::prelude::*;
use tabviz::workloads::{generate_flights, FaaConfig};

/// Shared engine + data for the oracle.
struct Oracle {
    tde: Tde,
}

impl Oracle {
    fn new() -> Self {
        let flights = generate_flights(&FaaConfig {
            rows: 4_000,
            seed: 42,
            ..Default::default()
        })
        .unwrap();
        let db = Arc::new(Database::new("faa"));
        db.put(Table::from_chunk("flights", &flights, &["carrier"]).unwrap())
            .unwrap();
        Oracle { tde: Tde::new(db) }
    }

    fn run(&self, spec: &QuerySpec) -> Vec<Vec<Value>> {
        let plan = spec.to_plan().unwrap();
        let mut rows = self
            .tde
            .execute_plan(&plan, &ExecOptions::serial())
            .unwrap()
            .to_rows();
        if spec.topn.is_none() {
            rows.sort();
        }
        rows
    }
}

/// Candidate group columns.
const GROUPS: &[&str] = &["carrier", "origin_state", "dest_state", "weekday"];
const CARRIERS: &[&str] = &["WN", "DL", "AA", "UA", "US", "EV"];
const STATES: &[&str] = &["CA", "TX", "NY", "FL", "IL", "GA"];

fn arb_filter() -> impl Strategy<Value = Expr> {
    prop_oneof![
        // carrier IN (subset)
        proptest::sample::subsequence(CARRIERS.to_vec(), 1..CARRIERS.len()).prop_map(|subset| {
            Expr::In {
                expr: Box::new(col("carrier")),
                list: subset.into_iter().map(Value::from).collect(),
                negated: false,
            }
        }),
        // origin_state = X
        proptest::sample::select(STATES.to_vec()).prop_map(|s| bin(
            BinOp::Eq,
            col("origin_state"),
            lit(s)
        )),
        // weekday range
        (0i64..5).prop_map(|lo| Expr::Between {
            expr: Box::new(col("weekday")),
            low: Value::Int(lo),
            high: Value::Int(lo + 2),
        }),
        // dep_hour comparison
        (5i64..20).prop_map(|h| bin(BinOp::Ge, col("dep_hour"), lit(h))),
    ]
}

fn arb_fine_spec() -> impl Strategy<Value = QuerySpec> {
    (
        proptest::sample::subsequence(GROUPS.to_vec(), 2..=GROUPS.len()),
        proptest::collection::vec(arb_filter(), 0..2),
    )
        .prop_map(|(groups, filters)| {
            let mut spec = QuerySpec::new("faa", LogicalPlan::scan("flights"));
            for f in filters {
                spec = spec.filter(f);
            }
            for g in groups {
                spec = spec.group(g);
            }
            spec.agg(AggCall::new(AggFunc::Count, None, "n"))
                .agg(AggCall::new(AggFunc::Sum, Some(col("distance")), "dist"))
                .agg(AggCall::new(
                    AggFunc::Count,
                    Some(col("distance")),
                    "dist_cnt",
                ))
                .agg(AggCall::new(AggFunc::Min, Some(col("dep_delay")), "lo"))
                .agg(AggCall::new(AggFunc::Max, Some(col("dep_delay")), "hi"))
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Store a fine-grained result, then ask derived questions: coarser
    /// groupings, extra group-column filters, AVG from SUM+COUNT. Every
    /// cache answer must equal direct execution.
    #[test]
    fn cache_answers_equal_direct_execution(
        fine in arb_fine_spec(),
        coarse_pick in 0usize..4,
        extra_filter in proptest::option::of(proptest::sample::select(STATES.to_vec())),
    ) {
        let oracle = Oracle::new();
        let cache = IntelligentCache::new(CacheConfig {
            min_cost: Duration::ZERO,
            ..Default::default()
        });
        let fine_rows = oracle.run(&fine);
        let fine_chunk = oracle
            .tde
            .execute_plan(&fine.to_plan().unwrap(), &ExecOptions::serial())
            .unwrap();
        cache.put(fine.clone(), fine_chunk, Duration::from_millis(50));
        prop_assert!(!fine_rows.is_empty() || !fine.filters.is_empty());

        // Derived request: keep a subset of the groups, maybe add a filter
        // on a kept group column, ask for rollup-able aggregates plus AVG.
        let kept: Vec<String> = fine
            .group_by
            .iter()
            .take((coarse_pick % fine.group_by.len()) + 1)
            .cloned()
            .collect();
        let mut req = QuerySpec::new("faa", LogicalPlan::scan("flights"));
        for f in &fine.filters {
            req = req.filter(f.clone());
        }
        if let Some(state) = extra_filter {
            if kept.iter().any(|g| g == "origin_state") {
                req = req.filter(bin(BinOp::Eq, col("origin_state"), lit(state)));
            }
        }
        for g in &kept {
            req = req.group(g.clone());
        }
        req = req
            .agg(AggCall::new(AggFunc::Count, None, "n"))
            .agg(AggCall::new(AggFunc::Sum, Some(col("distance")), "dist"))
            .agg(AggCall::new(AggFunc::Avg, Some(col("distance")), "avg_dist"))
            .agg(AggCall::new(AggFunc::Min, Some(col("dep_delay")), "lo"))
            .agg(AggCall::new(AggFunc::Max, Some(col("dep_delay")), "hi"));

        let Some(cached_answer) = cache.get(&req) else {
            // The cache may conservatively miss; that is always allowed.
            return Ok(());
        };
        let mut got = cached_answer.to_rows();
        got.sort();
        let want = oracle.run(&req);
        prop_assert_eq!(got, want);
    }

    /// Exact-spec round trip: store then fetch must return the same rows.
    #[test]
    fn exact_hit_is_identity(fine in arb_fine_spec()) {
        let oracle = Oracle::new();
        let cache = IntelligentCache::new(CacheConfig {
            min_cost: Duration::ZERO,
            ..Default::default()
        });
        let chunk = oracle
            .tde
            .execute_plan(&fine.to_plan().unwrap(), &ExecOptions::serial())
            .unwrap();
        cache.put(fine.clone(), chunk.clone(), Duration::from_millis(10));
        let got = cache.get(&fine).expect("exact spec must hit");
        prop_assert_eq!(got.to_rows(), chunk.to_rows());
    }
}

// ---------------------------------------------------------------------------
// Implication prover soundness: `implies(a, b)` claims every row satisfying
// `a` satisfies `b`. Check that claim against a brute-force evaluation of
// both predicates over a dense value grid — a false implication here would
// mean the intelligent cache can serve wrong rows.
// ---------------------------------------------------------------------------

/// Brute-force row-level oracle for the single-column constraint shapes the
/// prover handles. `None` = shape not evaluable (never generated below).
fn row_satisfies(e: &Expr, v: &Value) -> Option<bool> {
    fn side(e: &Expr, v: &Value) -> Option<Value> {
        match e {
            Expr::Column(_) => Some(v.clone()),
            Expr::Literal(l) => Some(l.clone()),
            _ => None,
        }
    }
    match e {
        Expr::Binary { op, left, right } => {
            let (l, r) = (side(left, v)?, side(right, v)?);
            let ord = l.cmp(&r);
            Some(match op {
                BinOp::Eq => ord.is_eq(),
                BinOp::Lt => ord.is_lt(),
                BinOp::Le => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::Ge => ord.is_ge(),
                _ => return None,
            })
        }
        Expr::In { list, negated, .. } => Some(list.contains(v) != *negated),
        Expr::Between { low, high, .. } => Some(v.cmp(low).is_ge() && v.cmp(high).is_le()),
        _ => None,
    }
}

fn cmp_ops() -> Vec<BinOp> {
    vec![BinOp::Eq, BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge]
}

/// Single-column integer constraints in every shape the prover analyzes,
/// including flipped literal-comparison order.
fn arb_int_constraint() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (
            proptest::sample::select(cmp_ops()),
            -5i64..15,
            any::<bool>()
        )
            .prop_map(|(op, v, flipped)| {
                if flipped {
                    bin(op, lit(v), col("x"))
                } else {
                    bin(op, col("x"), lit(v))
                }
            }),
        proptest::collection::btree_set(-5i64..15, 1..5).prop_map(|s| Expr::In {
            expr: Box::new(col("x")),
            list: s.into_iter().map(Value::Int).collect(),
            negated: false,
        }),
        (-5i64..15, 0i64..8).prop_map(|(lo, w)| Expr::Between {
            expr: Box::new(col("x")),
            low: Value::Int(lo),
            high: Value::Int(lo + w),
        }),
    ]
}

/// String constraints: equality and IN over a small alphabet.
fn arb_str_constraint() -> impl Strategy<Value = Expr> {
    let alphabet = || vec!["a", "b", "c", "d", "e"];
    prop_oneof![
        proptest::sample::select(alphabet()).prop_map(|s| bin(BinOp::Eq, col("s"), lit(s))),
        proptest::sample::subsequence(alphabet(), 1..4).prop_map(|ss| Expr::In {
            expr: Box::new(col("s")),
            list: ss.into_iter().map(Value::from).collect(),
            negated: false,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// No false implications over integers: whenever the prover says
    /// `a ⇒ b`, every grid value satisfying `a` must satisfy `b`.
    #[test]
    fn implication_is_sound_over_int_grid(
        a in arb_int_constraint(),
        b in arb_int_constraint(),
    ) {
        prop_assume!(tabviz::cache::implication::implies(&a, &b));
        for i in -12i64..=25 {
            let v = Value::Int(i);
            let sat_a = row_satisfies(&a, &v).expect("generated shape is evaluable");
            let sat_b = row_satisfies(&b, &v).expect("generated shape is evaluable");
            prop_assert!(
                !sat_a || sat_b,
                "false implication: {a:?} => {b:?} but x={i} satisfies only the premise"
            );
        }
    }

    /// Same soundness property over the string domain.
    #[test]
    fn implication_is_sound_over_str_grid(
        a in arb_str_constraint(),
        b in arb_str_constraint(),
    ) {
        prop_assume!(tabviz::cache::implication::implies(&a, &b));
        for s in ["a", "b", "c", "d", "e", "f", ""] {
            let v = Value::from(s);
            let sat_a = row_satisfies(&a, &v).expect("generated shape is evaluable");
            let sat_b = row_satisfies(&b, &v).expect("generated shape is evaluable");
            prop_assert!(
                !sat_a || sat_b,
                "false implication: {a:?} => {b:?} but s={s:?} satisfies only the premise"
            );
        }
    }

    /// The prover must at least accept reflexivity — a constraint implies
    /// itself — so provable cache hits are not silently lost.
    #[test]
    fn implication_is_reflexive(a in arb_int_constraint()) {
        prop_assert!(tabviz::cache::implication::implies(&a, &a));
    }
}

#[test]
fn persisted_cache_round_trip_preserves_answers() {
    let oracle = Oracle::new();
    let caches = QueryCaches::new(
        CacheConfig {
            min_cost: Duration::ZERO,
            ..Default::default()
        },
        1 << 20,
    );
    let spec = QuerySpec::new("faa", LogicalPlan::scan("flights"))
        .filter(bin(BinOp::Ge, col("dep_hour"), lit(6i64)))
        .group("carrier")
        .group("origin_state")
        .agg(AggCall::new(AggFunc::Count, None, "n"))
        .agg(AggCall::new(AggFunc::Sum, Some(col("distance")), "dist"))
        .agg(AggCall::new(AggFunc::Count, Some(col("distance")), "dc"));
    let chunk = oracle
        .tde
        .execute_plan(&spec.to_plan().unwrap(), &ExecOptions::serial())
        .unwrap();
    caches.store(spec.clone(), "SQL", &chunk, Duration::from_millis(40));

    let img = tabviz::cache::persist::save(&caches).unwrap();
    let session2 = QueryCaches::new(
        CacheConfig {
            min_cost: Duration::ZERO,
            ..Default::default()
        },
        1 << 20,
    );
    tabviz::cache::persist::load(&session2, &img).unwrap();

    // A derived question answered by the *reloaded* cache equals direct.
    let req = QuerySpec::new("faa", LogicalPlan::scan("flights"))
        .filter(bin(BinOp::Ge, col("dep_hour"), lit(6i64)))
        .group("carrier")
        .agg(AggCall::new(
            AggFunc::Avg,
            Some(col("distance")),
            "avg_dist",
        ));
    let got = session2
        .intelligent
        .get(&req)
        .expect("reloaded cache must subsume");
    let mut got_rows = got.to_rows();
    got_rows.sort();
    assert_eq!(got_rows, oracle.run(&req));
}
