//! End-to-end integration: FAA data → TDE extract → simulated warehouse →
//! query processor → dashboards, crossing every crate boundary.

use std::sync::Arc;
use tabviz::prelude::*;
use tabviz::workloads::{
    carriers_dim, fig1_dashboard, fig2_dashboard, generate_flights, FaaConfig,
};

fn warehouse(rows: usize) -> (QueryProcessor, SimDb, Arc<Database>) {
    let flights = generate_flights(&FaaConfig::with_rows(rows)).unwrap();
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &["carrier"]).unwrap())
        .unwrap();
    db.put(Table::from_chunk("carriers", &carriers_dim().unwrap(), &["code"]).unwrap())
        .unwrap();
    let sim = SimDb::new("warehouse", Arc::clone(&db), SimConfig::default());
    let qp = QueryProcessor::default();
    qp.registry.register(Arc::new(sim.clone()), 8);
    (qp, sim, db)
}

#[test]
fn tde_and_processor_agree_on_results() {
    let (qp, _, db) = warehouse(20_000);
    // The same question through the raw TDE and through the full pipeline.
    let tde = Tde::new(db);
    let direct = tde
        .query("(aggregate ((carrier)) ((count as n) (sum distance as dist)) (scan flights))")
        .unwrap();
    let spec = QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
        .group("carrier")
        .agg(AggCall::new(AggFunc::Count, None, "n"))
        .agg(AggCall::new(AggFunc::Sum, Some(col("distance")), "dist"));
    let (through_pipeline, _) = qp.execute(&spec).unwrap();
    let mut a = direct.to_rows();
    let mut b = through_pipeline.to_rows();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn both_paper_dashboards_render_and_interact() {
    let (qp, sim, _) = warehouse(30_000);
    let fig1 = fig1_dashboard("warehouse", "flights");
    let mut state = DashboardState::default();
    let (r1, _) = fig1
        .render(&qp, &mut state, &BatchOptions::default(), true)
        .unwrap();
    assert_eq!(r1["TotalVisible"].row(0)[0], Value::Int(30_000));
    assert_eq!(r1["__domain_carrier"].len(), 12);
    assert_eq!(r1["CancellationsByWeekday"].len(), 7);

    // Interact: state selection narrows the slaves but not the masters.
    state.select("OriginsByState", Value::Str("TX".into()));
    let (r2, _) = fig1
        .render(&qp, &mut state, &BatchOptions::default(), false)
        .unwrap();
    let visible = r2["TotalVisible"].row(0)[0].as_int().unwrap();
    assert!(visible > 0 && visible < 30_000);
    assert_eq!(r2["OriginsByState"].len(), r1["OriginsByState"].len());

    let fig2 = fig2_dashboard("warehouse", "flights", "carriers");
    let mut state2 = DashboardState::default();
    let (r3, _) = fig2
        .render(&qp, &mut state2, &BatchOptions::default(), false)
        .unwrap();
    assert_eq!(r3["Carrier"].len(), 5);
    assert!(sim.stats().queries > 0);
}

#[test]
fn repeat_renders_generate_no_backend_traffic() {
    let (qp, sim, _) = warehouse(10_000);
    let dash = fig1_dashboard("warehouse", "flights");
    let mut state = DashboardState::default();
    dash.render(&qp, &mut state, &BatchOptions::default(), true)
        .unwrap();
    let after_first = sim.stats().queries;
    for _ in 0..5 {
        dash.render(&qp, &mut state, &BatchOptions::default(), true)
            .unwrap();
    }
    assert_eq!(
        sim.stats().queries,
        after_first,
        "warm renders must be answered entirely from cache"
    );
}

#[test]
fn single_file_database_roundtrip_through_full_stack() {
    let (_, _, db) = warehouse(5_000);
    let path = std::env::temp_dir().join("tabviz_e2e_pack.tvdb");
    tabviz::storage::pack::pack_to_file(&db, &path).unwrap();
    let tde2 = Tde::open_file(&path).unwrap();
    let out = tde2
        .query("(aggregate () ((count as n)) (scan flights))")
        .unwrap();
    assert_eq!(out.row(0)[0], Value::Int(5_000));
    std::fs::remove_file(path).ok();
}

#[test]
fn serial_parallel_and_rle_paths_agree_at_scale() {
    let flights = generate_flights(&FaaConfig::with_rows(200_000)).unwrap();
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &["carrier"]).unwrap())
        .unwrap();
    let tde = Tde::new(db);
    let q = "(aggregate ((carrier) (origin_state))
                        ((count as n) (avg arr_delay as d) (min dep_delay as lo) (max dep_delay as hi))
               (select (= cancelled false) (scan flights)))";
    let serial = tde.query_with(q, &ExecOptions::serial()).unwrap();
    let mut fast = ExecOptions::default();
    fast.parallel.profile.min_work_per_thread = 1_000;
    let parallel = tde.query_with(q, &fast).unwrap();
    let mut no_rle = ExecOptions::serial();
    no_rle.physical.enable_rle_index = false;
    let no_rle_out = tde.query_with(q, &no_rle).unwrap();

    let mut a = serial.to_rows();
    let mut b = parallel.to_rows();
    let mut c = no_rle_out.to_rows();
    a.sort();
    b.sort();
    c.sort();
    assert_eq!(a, b);
    assert_eq!(a, c);
}

#[test]
fn multi_source_isolation() {
    // Two registered sources with same table names: caches must not mix.
    let (qp, _, _) = warehouse(1_000);
    let other_flights = generate_flights(&FaaConfig {
        rows: 2_000,
        seed: 777,
        ..Default::default()
    })
    .unwrap();
    let db2 = Arc::new(Database::new("other"));
    db2.put(Table::from_chunk("flights", &other_flights, &[]).unwrap())
        .unwrap();
    qp.registry
        .register(Arc::new(SimDb::new("other", db2, SimConfig::default())), 4);

    let count = |source: &str| {
        let spec = QuerySpec::new(source, LogicalPlan::scan("flights")).agg(AggCall::new(
            AggFunc::Count,
            None,
            "n",
        ));
        qp.execute(&spec).unwrap().0.row(0)[0].as_int().unwrap()
    };
    assert_eq!(count("warehouse"), 1_000);
    assert_eq!(count("other"), 2_000);
    // Cached reads stay correct per source.
    assert_eq!(count("warehouse"), 1_000);
    assert_eq!(count("other"), 2_000);
}
