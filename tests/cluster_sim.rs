//! Deterministic cluster harness: same seed ⇒ identical routing tables and
//! per-query node assignment; node kill mid-storm ⇒ sessions fail over and
//! complete; ring membership changes re-map a bounded fraction of keys.

use proptest::prelude::*;
use std::sync::Arc;
use tabviz::cluster::{Cluster, ClusterConfig, HashRing, RouteKind};
use tabviz::prelude::*;
use tabviz::workloads::{generate_storm, schedule_digest, StormConfig, StormStep};

const DASHBOARDS: usize = 12;

fn sample_db() -> Arc<Database> {
    let flights =
        tabviz::workloads::generate_flights(&tabviz::workloads::FaaConfig::with_rows(2_000))
            .expect("generate");
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &["carrier"]).expect("table"))
        .expect("put");
    db
}

fn build_cluster(db: &Arc<Database>, nodes: usize, seed: u64) -> Arc<Cluster> {
    let db = Arc::clone(db);
    Cluster::build(
        ClusterConfig {
            nodes,
            replication: 2,
            vnodes: 32,
            seed,
            peer_op_latency: std::time::Duration::ZERO,
        },
        move |name| {
            let sim = SimDb::new("warehouse", Arc::clone(&db), SimConfig::default());
            let qp = QueryProcessor::default();
            qp.registry.register(Arc::new(sim), 4);
            let server = Arc::new(DataServer::named(qp, name));
            for d in 0..DASHBOARDS {
                server.publish(PublishedSource::new(
                    format!("dash-{d}"),
                    "warehouse",
                    LogicalPlan::scan("flights"),
                ));
            }
            Ok(server)
        },
    )
    .expect("build cluster")
}

fn query_for(kind: &StormStep) -> ClientQuery {
    match kind {
        StormStep::Load => ClientQuery {
            group_by: vec!["carrier".into()],
            aggs: vec![AggCall::new(AggFunc::Count, None, "n")],
            ..Default::default()
        },
        StormStep::Drill { dimension } => ClientQuery {
            group_by: vec![["carrier", "dep_hour", "origin_state", "weekday"]
                [*dimension as usize % 4]
                .into()],
            aggs: vec![AggCall::new(AggFunc::Count, None, "n")],
            ..Default::default()
        },
        StormStep::Filter { selector } => ClientQuery {
            filters: vec![bin(
                BinOp::Le,
                col("distance"),
                lit(200 + (*selector as i64 % 2200)),
            )],
            group_by: vec!["carrier".into()],
            aggs: vec![AggCall::new(AggFunc::Count, None, "n")],
            ..Default::default()
        },
        StormStep::TopN { n } => ClientQuery {
            group_by: vec!["market".into()],
            aggs: vec![AggCall::new(AggFunc::Count, None, "n")],
            order: vec![SortKey {
                column: "n".into(),
                asc: false,
            }],
            topn: Some(*n as usize),
            ..Default::default()
        },
    }
}

fn small_storm(seed: u64) -> StormConfig {
    StormConfig {
        sessions: 40,
        dashboards: DASHBOARDS,
        zipf_s: 1.1,
        horizon_ms: 1_000,
        diurnal_amplitude: 0.4,
        steps_per_session: 3,
        mean_think_ms: 50.0,
        seed,
    }
}

/// Same seed, same membership ⇒ the full routing table (ring points plus
/// per-published owner lists) and every per-query node assignment replay
/// byte-identically; a different seed produces a different placement.
#[test]
fn routing_is_deterministic_per_seed() {
    let db = sample_db();
    let a = build_cluster(&db, 4, 7);
    let b = build_cluster(&db, 4, 7);
    assert_eq!(a.routing_table(), b.routing_table());
    assert_eq!(a.ring_digest(), b.ring_digest());

    let schedule = generate_storm(&small_storm(7));
    assert_eq!(schedule_digest(&schedule), schedule_digest(&schedule));
    let assignments = |cluster: &Arc<Cluster>| -> Vec<String> {
        schedule
            .iter()
            .map(|arr| {
                let published = format!("dash-{}", arr.dashboard);
                let session_key = format!("viewer-{}@{published}", arr.session % 4);
                cluster.route(&published, &session_key).expect("route").node
            })
            .collect()
    };
    assert_eq!(assignments(&a), assignments(&b));

    let c = build_cluster(&db, 4, 8);
    assert_ne!(a.routing_table(), c.routing_table());
}

/// Kill a node mid-storm: every remaining query still completes (served by
/// a replica owner — degraded is allowed, lost answers are not), failovers
/// are attributed, and the routing decisions skip the dead node entirely.
#[test]
fn node_kill_mid_storm_fails_over_and_completes() {
    let db = sample_db();
    let cluster = build_cluster(&db, 4, 11);
    let schedule = generate_storm(&small_storm(11));
    let kill_index = schedule.len() / 3;

    // The victim: whichever node the first post-kill arrival is affine to,
    // so the kill provably forces at least one failover.
    let victim = {
        let arr = &schedule[kill_index];
        let published = format!("dash-{}", arr.dashboard);
        let session_key = format!("viewer-{}@{published}", arr.session % 4);
        cluster.route(&published, &session_key).expect("route").node
    };

    let mut failovers = 0usize;
    let mut completed = 0usize;
    let mut sessions: std::collections::HashMap<u32, tabviz::cluster::ClusterSession> =
        std::collections::HashMap::new();
    for (i, arr) in schedule.iter().enumerate() {
        if i == kill_index {
            assert!(cluster.kill(&victim));
            assert_eq!(cluster.nodes_up(), 3);
        }
        let session = sessions.entry(arr.session).or_insert_with(|| {
            cluster
                .open_session(
                    &format!("dash-{}", arr.dashboard),
                    format!("viewer-{}", arr.session % 4),
                )
                .expect("open")
        });
        let resp = session.query(&query_for(&arr.kind)).expect("cluster query");
        if arr.kind == StormStep::Load {
            assert!(!resp.chunk.is_empty(), "no lost zones: loads render");
        }
        if i >= kill_index {
            assert_ne!(resp.node, victim, "dead node must not serve");
            if resp.route != RouteKind::Primary {
                failovers += 1;
            }
        }
        completed += 1;
    }
    assert_eq!(completed, schedule.len(), "every arrival completes");
    assert!(failovers > 0, "kill must force failovers");
    let snapshot = cluster.registry.snapshot();
    match snapshot.get("tv_cluster_failovers_total") {
        Some(tabviz::obs::MetricValue::Counter(n)) => {
            assert!(*n >= failovers as u64, "failovers attributed in metrics")
        }
        other => panic!("missing failover counter: {other:?}"),
    }

    // Revive: the node serves its affinity sessions again.
    assert!(cluster.revive(&victim));
    assert_eq!(cluster.nodes_up(), 4);
    let arr = &schedule[kill_index];
    let session = &sessions[&arr.session];
    let resp = session.query(&query_for(&arr.kind)).expect("post-revive");
    assert_eq!(resp.node, victim, "affinity returns to the revived node");
    assert_eq!(resp.route, RouteKind::Primary);
}

/// The cluster-level flight recorder attributes routing decisions: traces
/// carry `cluster_route` events with primary/failover reason codes.
#[test]
fn flight_recorder_attributes_routing() {
    let db = sample_db();
    let cluster = build_cluster(&db, 3, 5);
    let session = cluster.open_session("dash-0", "alice").expect("open");
    session
        .query(&query_for(&StormStep::Load))
        .expect("healthy query");
    let affinity = session.affinity_node().expect("affinity");
    cluster.kill(&affinity);
    session
        .query(&query_for(&StormStep::Load))
        .expect("failover query");
    cluster.revive(&affinity);

    let traces = cluster.recorder.recent();
    assert!(traces.len() >= 2, "cluster traces recorded");
    let mut reasons: Vec<&str> = traces.iter().flat_map(|t| t.reasons()).collect();
    reasons.sort_unstable();
    assert!(
        reasons.contains(&"route_primary"),
        "primary route attributed: {reasons:?}"
    );
    assert!(
        reasons.contains(&"route_failover"),
        "failover attributed: {reasons:?}"
    );
    assert!(
        traces.iter().any(|t| t.has_stage("cluster_route")),
        "cluster_route stage present"
    );
    assert!(
        traces.iter().any(|t| t.has_stage("peer_cache")),
        "peer_cache stage present"
    );
}

/// Affinity is *lazily* recomputed: `route()` reads the live ring on every
/// call, so a node joined after sessions opened absorbs its share of them
/// on their very next query — no reopen, no pinned stale owner lists.
#[test]
fn join_absorbs_existing_sessions() {
    let db = sample_db();
    let cluster = build_cluster(&db, 3, 9);
    let sessions: Vec<_> = (0..DASHBOARDS)
        .map(|d| {
            cluster
                .open_session(&format!("dash-{d}"), "alice")
                .expect("open")
        })
        .collect();
    let serve_nodes = |sessions: &[tabviz::cluster::ClusterSession]| -> Vec<String> {
        sessions
            .iter()
            .map(|s| s.query(&query_for(&StormStep::Load)).expect("query").node)
            .collect()
    };
    let before = serve_nodes(&sessions);
    assert!(!before.iter().any(|n| n == "node-3"));

    cluster.add_node("node-3").expect("join");
    assert_eq!(cluster.nodes_up(), 4);

    // No session was reopened, yet the next query of each routes on the
    // new ring: the joiner picks up every session whose owner moved.
    let after = serve_nodes(&sessions);
    assert!(
        after.iter().any(|n| n == "node-3"),
        "joiner absorbs existing sessions: {after:?}"
    );
    for (session, node) in sessions.iter().zip(&after) {
        assert_eq!(
            &session.affinity_node().expect("affinity"),
            node,
            "served node matches live-ring affinity"
        );
    }
    // Consistent hashing keeps the move bounded: most sessions stay where
    // their caches are warm.
    let unchanged = before.iter().zip(&after).filter(|(b, a)| b == a).count();
    assert!(
        unchanged * 2 > DASHBOARDS,
        "a join must not reshuffle most sessions ({unchanged}/{DASHBOARDS} unchanged)"
    );
}

/// Brown-out (no hard kill): the victim's backend turns 40ms-slow but keeps
/// answering. The EWMA health scorer demotes it from latency alone, routing
/// steers the session to a healthy replica, 1-in-8 probes keep the victim
/// observed, and once the fault clears those probes restore it to Primary.
#[test]
fn brownout_demotes_reroutes_then_probes_restore() {
    let db = sample_db();
    let dbs: Arc<std::sync::Mutex<std::collections::HashMap<String, Arc<SimDb>>>> =
        Arc::new(std::sync::Mutex::new(std::collections::HashMap::new()));
    let cluster = {
        let db = Arc::clone(&db);
        let dbs = Arc::clone(&dbs);
        Cluster::build(
            ClusterConfig {
                nodes: 3,
                replication: 2,
                vnodes: 32,
                seed: 5,
                peer_op_latency: std::time::Duration::ZERO,
            },
            move |name| {
                let sim = Arc::new(SimDb::new(
                    "warehouse",
                    Arc::clone(&db),
                    SimConfig::default(),
                ));
                dbs.lock()
                    .unwrap()
                    .insert(name.to_string(), Arc::clone(&sim));
                let qp = QueryProcessor::default();
                qp.registry.register(Arc::clone(&sim) as Arc<_>, 4);
                let server = Arc::new(DataServer::named(qp, name));
                for d in 0..DASHBOARDS {
                    server.publish(PublishedSource::new(
                        format!("dash-{d}"),
                        "warehouse",
                        LogicalPlan::scan("flights"),
                    ));
                }
                Ok(server)
            },
        )
        .expect("build cluster")
    };
    let session = cluster.open_session("dash-0", "alice").expect("open");
    let victim = session.affinity_node().expect("affinity");
    let filter_q = |selector: i64| ClientQuery {
        filters: vec![bin(BinOp::Le, col("distance"), lit(200 + selector % 2200))],
        group_by: vec!["carrier".into()],
        aggs: vec![AggCall::new(AggFunc::Count, None, "n")],
        ..Default::default()
    };

    // Warm the victim's baseline with fast serves (distinct selectors force
    // backend hits, so the scorer sees real latencies, not cache echoes).
    for i in 0..20 {
        let resp = session.query(&filter_q(i)).expect("warm query");
        assert_eq!(resp.node, victim);
    }
    assert!(!cluster.node(&victim).expect("node").is_demoted());

    // Brown-out: every backend query on the victim now takes 40ms.
    dbs.lock().unwrap()[&victim].set_fault_plan(Some(FaultPlan {
        slow_query: 1.0,
        slow_query_delay: std::time::Duration::from_millis(40),
        ..Default::default()
    }));
    let mut demoted_after = None;
    for i in 0..30 {
        session.query(&filter_q(1_000 + i)).expect("brownout query");
        if cluster.node(&victim).expect("node").is_demoted() {
            demoted_after = Some(i + 1);
            break;
        }
    }
    let demoted_after = demoted_after.expect("brown-out must demote the victim");
    assert!(demoted_after <= 10, "demoted after {demoted_after} serves");

    // While demoted, routes avoid the victim except the 1-in-8 probes.
    let mut on_victim = 0usize;
    let mut elsewhere = 0usize;
    for i in 0..24 {
        let resp = session.query(&filter_q(2_000 + i)).expect("demoted query");
        if resp.node == victim {
            on_victim += 1;
        } else {
            assert_ne!(resp.route, RouteKind::Primary, "reroute is attributed");
            elsewhere += 1;
        }
    }
    assert!(elsewhere >= 18, "routing steers around the sick node");
    assert!(
        (1..=5).contains(&on_victim),
        "probes keep observing the victim ({on_victim}/24)"
    );
    let snapshot = cluster.registry.snapshot();
    for counter in [
        "tv_cluster_health_reroutes_total",
        "tv_cluster_health_probes_total",
    ] {
        match snapshot.get(counter) {
            Some(tabviz::obs::MetricValue::Counter(n)) => assert!(*n > 0, "{counter} counted"),
            other => panic!("missing {counter}: {other:?}"),
        }
    }

    // Clear the fault: fast probe serves decay the EWMA and restore the
    // node; the session's very next query is Primary on it again.
    dbs.lock().unwrap()[&victim].set_fault_plan(None);
    let mut restored = false;
    for i in 0..400 {
        session.query(&filter_q(3_000 + i)).expect("recovery query");
        if !cluster.node(&victim).expect("node").is_demoted() {
            restored = true;
            break;
        }
    }
    assert!(restored, "cleared fault must restore the victim");
    let resp = session.query(&filter_q(9_999)).expect("post-restore");
    assert_eq!(resp.node, victim);
    assert_eq!(resp.route, RouteKind::Primary);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Consistent hashing's re-mapping bound, over ring sizes and seeds: a
    /// join moves at most ~K/N_new primary assignments (generous 2x + slack
    /// tolerance for vnode variance), and keys that do move all land on the
    /// joining node.
    #[test]
    fn join_remaps_bounded_key_fraction(nodes in 2usize..8, seed in 0u64..1_000) {
        let mut before = HashRing::new(seed, 48);
        for i in 0..nodes {
            before.add_node(&format!("node-{i}"));
        }
        let mut after = before.clone();
        after.add_node("joiner");

        const KEYS: usize = 600;
        let mut moved = 0usize;
        for k in 0..KEYS {
            let key = format!("key-{k}");
            let (p0, p1) = (before.primary(&key).unwrap(), after.primary(&key).unwrap());
            if p0 != p1 {
                prop_assert_eq!(p1, "joiner", "moved keys land on the joiner");
                moved += 1;
            }
        }
        let bound = 2 * KEYS / (nodes + 1) + KEYS / 20;
        prop_assert!(moved <= bound, "join moved {}/{} keys (bound {})", moved, KEYS, bound);

        // Leave is symmetric: removing the joiner restores the old map.
        let mut restored = after.clone();
        restored.remove_node("joiner");
        for k in 0..KEYS {
            let key = format!("key-{k}");
            prop_assert_eq!(before.primary(&key), restored.primary(&key));
        }
    }
}
