//! Data Server integration: the proxy path must be semantically identical
//! to a direct connection (Sect. 5.3: "other than imposing data permissions,
//! there is conceptually no reason why proxied interactions ... would be
//! different from the ones against equivalent direct connections").

use std::sync::Arc;
use tabviz::prelude::*;
use tabviz::workloads::{generate_flights, FaaConfig};

fn setup() -> (Arc<DataServer>, SimDb, Arc<Database>) {
    let flights = generate_flights(&FaaConfig::with_rows(30_000)).unwrap();
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &["carrier"]).unwrap())
        .unwrap();
    let sim = SimDb::new("warehouse", Arc::clone(&db), SimConfig::default());
    let qp = QueryProcessor::default();
    qp.registry.register(Arc::new(sim.clone()), 8);
    let server = Arc::new(DataServer::new(qp));
    server.publish(PublishedSource::new(
        "flights-model",
        "warehouse",
        LogicalPlan::scan("flights"),
    ));
    (server, sim, db)
}

#[test]
fn proxied_equals_direct() {
    let (server, _, db) = setup();
    let session = server.connect("flights-model", "anyone").unwrap();
    let q = ClientQuery {
        filters: vec![bin(BinOp::Eq, col("cancelled"), lit(false))],
        group_by: vec!["carrier".into()],
        aggs: vec![
            AggCall::new(AggFunc::Count, None, "n"),
            AggCall::new(AggFunc::Avg, Some(col("arr_delay")), "d"),
        ],
        ..Default::default()
    };
    let (proxied, _) = session.query(&q).unwrap();

    let tde = Tde::new(db);
    let direct = tde
        .query(
            "(aggregate ((carrier)) ((count as n) (avg arr_delay as d))
               (select (= cancelled false) (scan flights)))",
        )
        .unwrap();
    let mut a = proxied.to_rows();
    let mut b = direct.to_rows();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn user_filters_partition_the_data_exactly() {
    let (server, _, _) = setup();
    let p = server.published("flights-model").unwrap();
    p.set_user_filter("west", bin(BinOp::Eq, col("origin_state"), lit("CA")));
    p.set_user_filter(
        "not_west",
        Expr::Unary {
            op: tabviz::tql::UnaryOp::Not,
            expr: Box::new(bin(BinOp::Eq, col("origin_state"), lit("CA"))),
        },
    );
    let q = ClientQuery {
        group_by: vec![],
        aggs: vec![AggCall::new(AggFunc::Count, None, "n")],
        ..Default::default()
    };
    let count = |user: &str| {
        let s = server.connect("flights-model", user).unwrap();
        s.query(&q).unwrap().0.row(0)[0].as_int().unwrap()
    };
    let all = count("admin");
    let west = count("west");
    let rest = count("not_west");
    assert_eq!(all, 30_000);
    assert!(west > 0);
    assert_eq!(west + rest, all);
}

#[test]
fn temp_table_pushdown_vs_fallback_same_results() {
    let (server, sim, _) = setup();
    let mut session = server.connect("flights-model", "hq").unwrap();
    let markets: Vec<Value> = (0..80).map(|i| Value::Str(format!("M{i}"))).collect();
    let set = session.define_set("market", markets.clone()).unwrap();
    let q = ClientQuery {
        group_by: vec!["carrier".into()],
        aggs: vec![AggCall::new(AggFunc::Count, None, "n")],
        set_refs: vec![set],
        ..Default::default()
    };
    let (with_push, _) = session.query(&q).unwrap();
    assert!(sim.stats().temp_tables_created >= 1);

    // Break temp-table creation: the server rewrites to inline evaluation.
    sim.set_fail_temp_tables(true);
    server.processor.caches.clear();
    let (with_fallback, _) = session.query(&q).unwrap();
    let mut a = with_push.to_rows();
    let mut b = with_fallback.to_rows();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn server_side_caching_spans_clients() {
    let (server, sim, _) = setup();
    let q = ClientQuery {
        group_by: vec!["origin_state".into()],
        aggs: vec![AggCall::new(AggFunc::Count, None, "n")],
        ..Default::default()
    };
    let s1 = server.connect("flights-model", "u1").unwrap();
    let (_, o1) = s1.query(&q).unwrap();
    assert_eq!(o1, ExecOutcome::Remote);
    // A different client asking the same question is a cache hit.
    let s2 = server.connect("flights-model", "u2").unwrap();
    let (_, o2) = s2.query(&q).unwrap();
    assert_eq!(o2, ExecOutcome::IntelligentHit);
    assert_eq!(sim.stats().queries, 1);
}

#[test]
fn shared_extract_refresh_instead_of_per_workbook() {
    let (server, _, db) = setup();
    let p = server.published("flights-model").unwrap();
    // 100 "workbooks" use the shared extract; refreshing it is one load.
    let new_data = generate_flights(&FaaConfig {
        rows: 1_000,
        seed: 9,
        ..Default::default()
    })
    .unwrap();
    db.put(Table::from_chunk("flights", &new_data, &["carrier"]).unwrap())
        .unwrap();
    p.record_refresh();
    server.processor.caches.purge_source("warehouse");
    assert_eq!(p.refresh_count(), 1);

    let s = server.connect("flights-model", "u").unwrap();
    let q = ClientQuery {
        aggs: vec![AggCall::new(AggFunc::Count, None, "n")],
        group_by: vec![],
        ..Default::default()
    };
    let (out, _) = s.query(&q).unwrap();
    assert_eq!(out.row(0)[0], Value::Int(1_000), "refreshed data visible");
}
