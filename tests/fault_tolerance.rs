//! Fault-tolerance contract for the dashboard pipeline: under any injected
//! backend fault, a batch must (a) complete with correct fresh results,
//! (b) render marked-stale cached results, or (c) fail with a typed error —
//! never hang and never return wrong data. Fault injection is seeded, so
//! identical plans must produce identical outcomes run after run.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tabviz::core::processor::ProcessorOptions;
use tabviz::prelude::*;
use tabviz::workloads::{generate_flights, FaaConfig};

/// One processor + simulated warehouse over FAA-style flight data.
fn harness(pool: usize) -> (QueryProcessor, SimDb) {
    let flights = generate_flights(&FaaConfig {
        rows: 3_000,
        seed: 17,
        ..Default::default()
    })
    .unwrap();
    let db = Arc::new(Database::new("remote"));
    db.put(Table::from_chunk("flights", &flights, &[]).unwrap())
        .unwrap();
    let sim = SimDb::new("warehouse", db, SimConfig::default());
    let qp = QueryProcessor::default();
    qp.registry.register(Arc::new(sim.clone()), pool);
    (qp, sim)
}

/// A five-zone dashboard batch with derivation opportunities.
fn dashboard() -> Vec<(String, QuerySpec)> {
    let rel = || LogicalPlan::scan("flights");
    let f = || bin(BinOp::Ge, col("dep_hour"), lit(6i64));
    vec![
        (
            "carrier_state".into(),
            QuerySpec::new("warehouse", rel())
                .filter(f())
                .group("carrier")
                .group("origin_state")
                .agg(AggCall::new(AggFunc::Count, None, "n"))
                .agg(AggCall::new(AggFunc::Sum, Some(col("distance")), "dist"))
                .agg(AggCall::new(AggFunc::Count, Some(col("distance")), "dc")),
        ),
        (
            "by_carrier".into(),
            QuerySpec::new("warehouse", rel())
                .filter(f())
                .group("carrier")
                .agg(AggCall::new(AggFunc::Count, None, "n")),
        ),
        (
            "by_state".into(),
            QuerySpec::new("warehouse", rel())
                .filter(f())
                .group("origin_state")
                .agg(AggCall::new(AggFunc::Count, None, "n")),
        ),
        (
            "avg_distance".into(),
            QuerySpec::new("warehouse", rel())
                .filter(f())
                .group("carrier")
                .agg(AggCall::new(AggFunc::Avg, Some(col("distance")), "avg")),
        ),
        (
            "by_weekday".into(),
            QuerySpec::new("warehouse", rel())
                .filter(f())
                .group("weekday")
                .agg(AggCall::new(AggFunc::Count, None, "n"))
                .agg(AggCall::new(AggFunc::Sum, Some(col("distance")), "dist")),
        ),
    ]
}

fn kind(e: &TvError) -> &'static str {
    match e {
        TvError::Transient(_) => "transient",
        TvError::Timeout(_) => "timeout",
        TvError::Cancelled(_) => "cancelled",
        TvError::Backend(_) => "backend",
        _ => "other",
    }
}

/// Collapse a batch outcome into a comparable per-zone summary:
/// `ok`/`stale` with the (sorted) rows, or the failure's error class.
fn summarize(out: &tabviz::core::BatchResult) -> BTreeMap<String, String> {
    let mut summary = BTreeMap::new();
    for (name, chunk) in &out.results {
        let mut rows = chunk.to_rows();
        rows.sort();
        let tag = if out.stale.contains(name) {
            "stale"
        } else {
            "ok"
        };
        summary.insert(name.clone(), format!("{tag}:{rows:?}"));
    }
    for (name, err) in &out.failed {
        summary.insert(name.clone(), format!("err:{}", kind(err)));
    }
    summary
}

/// The same seeded fault plan must yield byte-identical batch outcomes on
/// every run. (Serial submission: the per-site fault ordinals are consumed
/// in query order, so the roll sequence is reproducible.)
#[test]
fn fault_outcomes_are_deterministic_across_runs() {
    let mut reference: Option<BTreeMap<String, String>> = None;
    for run in 0..3 {
        let (qp, sim) = harness(4);
        let mut plan = FaultPlan::seeded(21);
        plan.connection_drop = 0.4;
        plan.transient_query_failure = 0.3;
        sim.set_fault_plan(Some(plan));
        let opts = BatchOptions {
            concurrent: false,
            ..Default::default()
        };
        let out = execute_batch(&qp, &dashboard(), &opts).unwrap();
        let summary = summarize(&out);
        assert_eq!(
            summary.len(),
            dashboard().len(),
            "run {run}: every zone must land in exactly one bucket"
        );
        match &reference {
            None => reference = Some(summary),
            Some(r) => assert_eq!(r, &summary, "run {run} diverged from run 0"),
        }
    }
}

/// The acceptance scenario: connections drop mid-batch after the caches have
/// been warmed (and invalidated to stale). The dashboard renders every zone
/// from stale cache entries — degraded, flagged, but never blank and never
/// wrong.
#[test]
fn connection_drops_degrade_to_stale_dashboard_not_errors() {
    let (qp, sim) = harness(4);
    let batch = dashboard();
    let healthy = execute_batch(&qp, &batch, &BatchOptions::default()).unwrap();
    assert!(healthy.is_complete(), "failed: {:?}", healthy.failed);
    qp.mark_source_stale("warehouse");

    let mut plan = FaultPlan::seeded(9);
    plan.connection_drop = 1.0;
    sim.set_fault_plan(Some(plan));
    let degraded = execute_batch(&qp, &batch, &BatchOptions::default()).unwrap();

    assert_eq!(degraded.results.len(), batch.len());
    assert!(degraded.failed.is_empty(), "failed: {:?}", degraded.failed);
    assert_eq!(degraded.stale.len(), batch.len());
    for (name, chunk) in &degraded.results {
        let mut got = chunk.to_rows();
        let mut want = healthy.results[name].to_rows();
        got.sort();
        want.sort();
        assert_eq!(got, want, "stale zone {name} served wrong data");
    }

    // Once the backend heals, the next batch is fresh again.
    sim.set_fault_plan(None);
    let fresh = execute_batch(&qp, &batch, &BatchOptions::default()).unwrap();
    assert!(fresh.stale.is_empty(), "healed batch still stale");
    assert!(fresh.failed.is_empty());
}

/// With cold caches there is nothing to degrade to: a full outage must
/// surface as typed, retryable-or-cancelled errors — quickly, not by
/// hanging on a dead backend.
#[test]
fn cold_cache_outage_fails_typed_and_fast() {
    let (qp, sim) = harness(4);
    let mut plan = FaultPlan::seeded(33);
    plan.connection_drop = 1.0;
    sim.set_fault_plan(Some(plan));
    let t0 = Instant::now();
    let out = execute_batch(&qp, &dashboard(), &BatchOptions::default()).unwrap();
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "outage handling took {:?}",
        t0.elapsed()
    );
    assert!(
        out.results.is_empty(),
        "rendered from nothing: {:?}",
        out.results.keys()
    );
    assert_eq!(out.failed.len(), dashboard().len());
    for (name, e) in &out.failed {
        assert!(
            e.is_degradable() || matches!(e, TvError::Cancelled(_)),
            "zone {name}: unexpected error class {e:?}"
        );
    }
}

/// A backend that stalls for a minute must be cut off by the per-query
/// deadline, producing `TvError::Timeout` in bounded time.
#[test]
fn slow_backend_times_out_instead_of_hanging() {
    let (mut qp, sim) = harness(2);
    qp.options = ProcessorOptions {
        query_timeout: Some(Duration::from_millis(50)),
        ..Default::default()
    };
    let mut plan = FaultPlan::seeded(5);
    plan.slow_query = 1.0;
    plan.slow_query_delay = Duration::from_secs(60);
    sim.set_fault_plan(Some(plan));

    let spec = QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
        .group("carrier")
        .agg(AggCall::new(AggFunc::Count, None, "n"));
    let t0 = Instant::now();
    let err = qp
        .execute(&spec)
        .expect_err("stalled query must not succeed");
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "deadline did not bound the stall: {:?}",
        t0.elapsed()
    );
    assert!(matches!(err, TvError::Timeout(_)), "got {err:?}");
    assert!(sim.stats().timeouts >= 1);
}

/// Partial-fault sweep: at every fault rate, each zone lands in exactly one
/// of `results`/`failed`, stale flags only mark rendered zones, and every
/// rendered chunk — fresh or stale — matches the fault-free oracle.
#[test]
fn partial_faults_never_produce_wrong_or_duplicated_zones() {
    let batch = dashboard();
    let oracle = {
        let (qp, _) = harness(4);
        let healthy = execute_batch(&qp, &batch, &BatchOptions::default()).unwrap();
        assert!(healthy.is_complete());
        healthy
            .results
            .into_iter()
            .map(|(name, chunk)| {
                let mut rows = chunk.to_rows();
                rows.sort();
                (name, rows)
            })
            .collect::<BTreeMap<_, _>>()
    };

    for (seed, rate) in [(101u64, 0.3f64), (202, 0.7)] {
        let (qp, sim) = harness(4);
        // Warm, then invalidate, so the degraded path is reachable too.
        execute_batch(&qp, &batch, &BatchOptions::default()).unwrap();
        qp.mark_source_stale("warehouse");
        let mut plan = FaultPlan::seeded(seed);
        plan.connection_drop = rate;
        plan.transient_query_failure = rate / 2.0;
        sim.set_fault_plan(Some(plan));

        let out = execute_batch(&qp, &batch, &BatchOptions::default()).unwrap();
        for (name, _) in &batch {
            let rendered = out.results.contains_key(name);
            let failed = out.failed.contains_key(name);
            assert!(
                rendered ^ failed,
                "rate {rate}: zone {name} rendered={rendered} failed={failed}"
            );
        }
        for name in &out.stale {
            assert!(
                out.results.contains_key(name),
                "rate {rate}: stale flag on unrendered zone {name}"
            );
        }
        for (name, chunk) in &out.results {
            let mut got = chunk.to_rows();
            got.sort();
            assert_eq!(&got, &oracle[name], "rate {rate}: zone {name} wrong data");
        }
    }
}
