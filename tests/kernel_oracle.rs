//! Vectorized-kernel oracle: every aggregation and join runs twice — once
//! through the type-specialized fast path (packed keys, batch hashing, typed
//! aggregate states, selection vectors) and once through the retained
//! Value-row fallback (`enable_vector_kernels = false`) — and the two arms
//! must produce identical result sets. The generated tables cover every
//! `DataType`, null-heavy columns, inline (≤ 7 byte) and interned long
//! strings, case-insensitive collation, empty inputs, and group keys wide
//! enough to force the fallback on its own.

#![allow(clippy::field_reassign_with_default)]

use proptest::prelude::*;
use std::sync::Arc;
use tabviz::prelude::*;
use tabviz::tql::expr::{bin, col, lit};

const SHORT: [&str; 6] = ["ak", "ca", "ny", "tx", "wa", "or"];
const LONG: [&str; 5] = [
    "north-region-alpha",
    "south-region-bravo",
    "east-region-charlie",
    "west-region-delta",
    "central-region-echo",
];
// Pairs differing only by case: under CI collation they must land in the
// same group / join partition, under the kernels and the fallback alike.
const CASED: [&str; 6] = ["Alpha", "alpha", "BETA", "beta", "Gamma", "GAMMA"];

/// Fact table exercising every value type the packed-key encoder handles:
/// * `b`   Bool with scattered nulls;
/// * `i`   small Int with scattered nulls;
/// * `s`   short Str (≤ 7 bytes → inline-word fast path) with nulls;
/// * `ls`  long Str (> 7 bytes → interner dict codes) with nulls;
/// * `ci`  case-insensitively collated Str (mixed-case spellings);
/// * `d`   Date with nulls;
/// * `nh`  Int, ~90% null;
/// * `v`   Int aggregate argument (small range — overflow-free);
/// * `w`   Real aggregate argument (negatives and fractions).
fn fact_schema() -> Arc<Schema> {
    Arc::new(
        Schema::new(vec![
            Field::new("b", DataType::Bool),
            Field::new("i", DataType::Int),
            Field::new("s", DataType::Str),
            Field::new("ls", DataType::Str),
            Field::new("ci", DataType::Str).with_collation(Collation::CaseInsensitive),
            Field::new("d", DataType::Date),
            Field::new("nh", DataType::Int),
            Field::new("v", DataType::Int),
            Field::new("w", DataType::Real),
        ])
        .unwrap(),
    )
}

fn fact_rows(rows: usize) -> Vec<Vec<Value>> {
    let mut data = Vec::with_capacity(rows);
    for row in 0..rows {
        // Deterministic pseudo-random stream (no external RNG needed).
        let h = (row as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 33;
        let null_every = |k: u64| h.is_multiple_of(k);
        let b = if null_every(13) {
            Value::Null
        } else {
            Value::Bool(h & 1 == 0)
        };
        let i = if null_every(11) {
            Value::Null
        } else {
            Value::Int((h % 7) as i64 - 3)
        };
        let s = if null_every(17) {
            Value::Null
        } else {
            Value::Str(SHORT[(h % 6) as usize].into())
        };
        let ls = if null_every(19) {
            Value::Null
        } else {
            Value::Str(LONG[(h % 5) as usize].into())
        };
        let ci = Value::Str(CASED[(h % 6) as usize].into());
        let d = if null_every(23) {
            Value::Null
        } else {
            Value::Date((h % 90) as i32 - 30)
        };
        let nh = if h.is_multiple_of(10) {
            Value::Int((h % 4) as i64)
        } else {
            Value::Null
        };
        let v = if null_every(29) {
            Value::Null
        } else {
            Value::Int((h % 2_001) as i64 - 1_000)
        };
        let w = if null_every(31) {
            Value::Null
        } else {
            Value::Real((h % 997) as f64 / 8.0 - 60.0)
        };
        data.push(vec![b, i, s, ls, ci, d, nh, v, w]);
    }
    data
}

/// Dimension table joinable against the fact on four different key types.
/// Each key column deliberately omits some fact-side values (unmatched probe
/// rows; for long strings this exercises the frozen-interner miss path) and
/// includes one value the fact never produces (unmatched build rows).
fn dim_chunk() -> Chunk {
    let schema = Arc::new(
        Schema::new(vec![
            Field::new("code", DataType::Str),
            Field::new("lcode", DataType::Str),
            Field::new("cicode", DataType::Str).with_collation(Collation::CaseInsensitive),
            Field::new("k", DataType::Int),
            Field::new("label", DataType::Str),
            Field::new("weight", DataType::Real),
        ])
        .unwrap(),
    );
    let rows: Vec<Vec<Value>> = vec![
        // (code, lcode, cicode, k, label, weight)
        vec![
            Value::Str("ak".into()),
            Value::Str("north-region-alpha".into()),
            Value::Str("ALPHA".into()),
            Value::Int(-2),
            Value::Str("first".into()),
            Value::Real(1.5),
        ],
        vec![
            Value::Str("ny".into()),
            Value::Str("east-region-charlie".into()),
            Value::Str("beta".into()),
            Value::Int(0),
            Value::Null,
            Value::Real(-0.25),
        ],
        vec![
            Value::Str("tx".into()),
            Value::Str("west-region-delta".into()),
            Value::Str("gAmMa".into()),
            Value::Int(2),
            Value::Str("third".into()),
            Value::Null,
        ],
        // Values the fact never produces: build rows with zero matches.
        vec![
            Value::Str("zz".into()),
            Value::Str("phantom-region-zulu".into()),
            Value::Str("Delta".into()),
            Value::Int(99),
            Value::Str("ghost".into()),
            Value::Real(9.0),
        ],
    ];
    Chunk::from_rows(schema, &rows).unwrap()
}

fn oracle_tde(rows: usize) -> Tde {
    let db = Arc::new(Database::new("kernel_oracle"));
    let fact = Chunk::from_rows(fact_schema(), &fact_rows(rows)).unwrap();
    // Unsorted so the planner cannot sidestep HashAgg via Stream/RunAgg.
    db.put(Table::from_chunk("t", &fact, &[]).unwrap()).unwrap();
    db.put(Table::from_chunk("dim", &dim_chunk(), &[]).unwrap())
        .unwrap();
    Tde::new(db)
}

/// The two arms under comparison. Streaming/run aggregation is disabled in
/// BOTH so every aggregate actually goes through HashAgg — the operator the
/// kernels specialize — rather than an order-exploiting plan shape.
fn arms() -> Vec<(&'static str, ExecOptions)> {
    let mut fast = ExecOptions::serial();
    fast.physical.enable_streaming_agg = false;
    fast.physical.enable_run_agg = false;
    let mut slow = fast.clone();
    slow.physical.enable_vector_kernels = false;
    vec![("kernels", fast), ("value-row-fallback", slow)]
}

fn check_arms_agree(tde: &Tde, plan: &LogicalPlan) {
    let mut results = Vec::new();
    for (name, opts) in arms() {
        let mut rows = tde.execute_plan(plan, &opts).unwrap().to_rows();
        rows.sort();
        results.push((name, rows));
    }
    let (base_name, expected) = &results[0];
    for (name, rows) in &results[1..] {
        assert_eq!(
            rows, expected,
            "arm {name} diverged from {base_name} on {plan}"
        );
    }
}

/// The full aggregate spread: typed fast-path states (COUNT, COUNT(col),
/// SUM int/real, MIN/MAX int/real, AVG) plus calls that stay on the
/// Value-row state even under the kernels (MIN over Str, MAX over Date).
fn agg_calls() -> Vec<AggCall> {
    vec![
        AggCall::new(AggFunc::Count, None, "n"),
        AggCall::new(AggFunc::Count, Some(col("v")), "cv"),
        AggCall::new(AggFunc::Sum, Some(col("v")), "sv"),
        AggCall::new(AggFunc::Sum, Some(col("w")), "sw"),
        AggCall::new(AggFunc::Min, Some(col("v")), "lov"),
        AggCall::new(AggFunc::Max, Some(col("v")), "hiv"),
        AggCall::new(AggFunc::Min, Some(col("w")), "low"),
        AggCall::new(AggFunc::Max, Some(col("w")), "hiw"),
        AggCall::new(AggFunc::Avg, Some(col("v")), "av"),
        AggCall::new(AggFunc::Min, Some(col("s")), "los"),
        AggCall::new(AggFunc::Max, Some(col("d")), "hid"),
    ]
}

fn group_plan(group_cols: &[&str]) -> LogicalPlan {
    let group_by = group_cols
        .iter()
        .map(|c| (col(*c), (*c).to_string()))
        .collect();
    LogicalPlan::scan("t").aggregate(group_by, agg_calls())
}

fn groupable_col() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(vec!["b", "i", "s", "ls", "ci", "d", "nh"])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Randomized GROUP BY over 1-3 mixed-type key columns.
    #[test]
    fn grouped_agg_arms_agree(
        cols in proptest::collection::vec(groupable_col(), 1..=3),
        rows in proptest::sample::select(vec![1usize, 257, 4_096]),
    ) {
        let mut seen = std::collections::HashSet::new();
        let mut cols = cols;
        cols.retain(|c| seen.insert(*c));
        let tde = oracle_tde(rows);
        check_arms_agree(&tde, &group_plan(&cols));
    }

    /// A residual (non-sargable-into-scan) filter under the aggregate: the
    /// kernels evaluate it into a selection vector and fuse it into the
    /// HashAgg; the fallback rematerializes. Results must not differ.
    #[test]
    fn filtered_agg_arms_agree(
        gcol in groupable_col(),
        bound in -3i64..=3i64,
        ge in any::<bool>(),
    ) {
        let tde = oracle_tde(2_048);
        let pred = if ge {
            bin(BinOp::Ge, col("i"), lit(bound))
        } else {
            bin(BinOp::Lt, col("i"), lit(bound))
        };
        let plan = LogicalPlan::scan("t").select(pred).aggregate(
            vec![(col(gcol), gcol.to_string())],
            agg_calls(),
        );
        check_arms_agree(&tde, &plan);
    }

    /// Joins on each key type (inline Str, interned long Str, CI-collated
    /// Str, Int), inner and left. Null probe keys must never match; left
    /// misses must null-fill; CI keys must match across case spellings.
    #[test]
    fn join_arms_agree(
        key in proptest::sample::select(vec![
            ("s", "code"),
            ("ls", "lcode"),
            ("ci", "cicode"),
            ("i", "k"),
        ]),
        left in any::<bool>(),
        rows in proptest::sample::select(vec![1usize, 513, 3_000]),
    ) {
        let tde = oracle_tde(rows);
        let jt = if left { JoinType::Left } else { JoinType::Inner };
        let plan = LogicalPlan::scan("t").join(
            LogicalPlan::scan("dim"),
            vec![(key.0.to_string(), key.1.to_string())],
            jt,
        );
        check_arms_agree(&tde, &plan);
    }
}

/// Group keys wider than the packed-key budget (`MAX_KEY_COLS = 8`) make the
/// kernels' own selection logic fall back; 8 columns is the widest fast-path
/// key. Both widths must agree across arms.
#[test]
fn wide_keys_agree_at_and_past_the_fastpath_limit() {
    let tde = oracle_tde(1_500);
    // Exactly at the limit: fast path vs forced fallback.
    check_arms_agree(
        &tde,
        &group_plan(&["b", "i", "s", "ls", "ci", "d", "nh", "v"]),
    );
    // Past the limit: the kernels arm itself selects the fallback.
    check_arms_agree(
        &tde,
        &group_plan(&["b", "i", "s", "ls", "ci", "d", "nh", "v", "w"]),
    );
}

/// Empty inputs: a grouped aggregate yields no rows, a global aggregate
/// yields exactly one row of identity values, and a join yields nothing —
/// identically in both arms.
#[test]
fn empty_input_arms_agree() {
    let tde = oracle_tde(0);
    check_arms_agree(&tde, &group_plan(&["s", "i"]));
    check_arms_agree(&tde, &LogicalPlan::scan("t").aggregate(vec![], agg_calls()));
    for jt in [JoinType::Inner, JoinType::Left] {
        let plan = LogicalPlan::scan("t").join(
            LogicalPlan::scan("dim"),
            vec![("s".to_string(), "code".to_string())],
            jt,
        );
        check_arms_agree(&tde, &plan);
    }
}

/// Join followed by aggregation over the dimension payload — the e23 shape:
/// probe-side kernels feed a packed-key aggregate over build-side columns.
#[test]
fn join_then_agg_arms_agree() {
    let tde = oracle_tde(3_000);
    for (probe, build) in [("s", "code"), ("ls", "lcode"), ("i", "k")] {
        let plan = LogicalPlan::scan("t")
            .join(
                LogicalPlan::scan("dim"),
                vec![(probe.to_string(), build.to_string())],
                JoinType::Inner,
            )
            .aggregate(
                vec![(col("label"), "label".into())],
                vec![
                    AggCall::new(AggFunc::Count, None, "n"),
                    AggCall::new(AggFunc::Sum, Some(col("v")), "sv"),
                    AggCall::new(AggFunc::Min, Some(col("weight")), "lo"),
                ],
            );
        check_arms_agree(&tde, &plan);
    }
}

/// Case-insensitive grouping must merge case variants into one group — and
/// produce the same representative set in both arms.
#[test]
fn ci_grouping_merges_case_variants() {
    let tde = oracle_tde(1_200);
    let plan = group_plan(&["ci"]);
    for (name, opts) in arms() {
        let out = tde.execute_plan(&plan, &opts).unwrap();
        // CASED holds 3 distinct names under CI collation.
        assert_eq!(out.len(), 3, "arm {name} group count");
    }
    check_arms_agree(&tde, &plan);
}
