//! Replayable traffic generator: one seed ⇒ one byte-identical arrival
//! timeline and aggregate statistics; the Zipf popularity model
//! concentrates traffic the way the analytic weights say it should.

use tabviz::workloads::{
    expected_top1pct_share, generate_storm, schedule_digest, storm_stats, StormConfig, StormStep,
};

fn storm(seed: u64) -> StormConfig {
    StormConfig {
        sessions: 1_500,
        dashboards: 150,
        zipf_s: 1.2,
        horizon_ms: 30_000,
        diurnal_amplitude: 0.6,
        steps_per_session: 4,
        mean_think_ms: 800.0,
        seed,
    }
}

/// Two runs with one seed produce identical timelines — element-for-element
/// equality, digest equality, and identical aggregate statistics. A
/// different seed diverges.
#[test]
fn same_seed_replays_identical_timeline_and_stats() {
    let cfg = storm(99);
    let a = generate_storm(&cfg);
    let b = generate_storm(&cfg);
    assert_eq!(a, b, "timelines must replay byte-identically");
    assert_eq!(schedule_digest(&a), schedule_digest(&b));
    assert_eq!(storm_stats(&cfg, &a), storm_stats(&cfg, &b));

    let other = generate_storm(&storm(100));
    assert_ne!(
        schedule_digest(&a),
        schedule_digest(&other),
        "different seeds must diverge"
    );
}

/// Generation is order-independent: the schedule is a pure function of the
/// config, not of how many schedules were generated before it.
#[test]
fn generation_has_no_hidden_state() {
    let cfg = storm(7);
    let fresh = generate_storm(&cfg);
    // Interleave other generations, then regenerate.
    let _noise1 = generate_storm(&storm(8));
    let _noise2 = generate_storm(&storm(9));
    let again = generate_storm(&cfg);
    assert_eq!(fresh, again);
}

/// Zipf skew concentrates mass: the top-1% most popular dashboards receive
/// the analytically expected share of arrivals, within tolerance — and far
/// more than a uniform spread would give them.
#[test]
fn zipf_concentrates_on_popular_dashboards() {
    let cfg = storm(3);
    let schedule = generate_storm(&cfg);
    let stats = storm_stats(&cfg, &schedule);
    let expected = expected_top1pct_share(&cfg);
    assert!(
        (stats.top1pct_share - expected).abs() < 0.04,
        "top-1% share {} should be within tolerance of analytic {expected}",
        stats.top1pct_share
    );
    let uniform_share = cfg.dashboards.div_ceil(100) as f64 / cfg.dashboards as f64;
    assert!(
        stats.top1pct_share > 4.0 * uniform_share,
        "skew {} must beat uniform {uniform_share}",
        stats.top1pct_share
    );
}

/// Structural invariants of the schedule: sorted arrivals, every session
/// starts with a load, step counts match, and the diurnal curve places more
/// arrivals mid-horizon than at the edges.
#[test]
fn schedule_shape_invariants() {
    let cfg = storm(21);
    let schedule = generate_storm(&cfg);
    assert_eq!(schedule.len(), cfg.sessions * cfg.steps_per_session);
    assert!(
        schedule.windows(2).all(|w| {
            (w[0].at_ms, w[0].session, w[0].step) <= (w[1].at_ms, w[1].session, w[1].step)
        }),
        "arrivals sorted by (time, session, step)"
    );
    for s in 0..cfg.sessions as u32 {
        let steps: Vec<_> = schedule.iter().filter(|a| a.session == s).collect();
        assert_eq!(steps.len(), cfg.steps_per_session);
        let first = steps.iter().min_by_key(|a| a.step).unwrap();
        assert_eq!(first.kind, StormStep::Load, "session {s} starts with load");
        assert!(
            steps.iter().all(|a| a.dashboard == first.dashboard),
            "a session stays on its dashboard"
        );
    }
    let stats = storm_stats(&cfg, &schedule);
    let edges = stats.per_decile[0] + stats.per_decile[9];
    let middle = stats.per_decile[4] + stats.per_decile[5];
    assert!(
        middle > edges,
        "diurnal curve: middle {middle} vs edges {edges}"
    );
}
