//! Stale-cache revalidation end to end: a backend outage flips cache
//! entries to degraded serving; after the source recovers, the maintenance
//! lane re-fetches overdue entries at Background priority so dashboards go
//! back to fresh data without waiting for an organic cache miss.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tabviz::prelude::*;
use tabviz::workloads::{generate_flights, FaaConfig};

fn setup() -> (Arc<DataServer>, SimDb) {
    let flights = generate_flights(&FaaConfig::with_rows(20_000)).unwrap();
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &["carrier"]).unwrap())
        .unwrap();
    let sim = SimDb::new("warehouse", Arc::clone(&db), SimConfig::default());
    let qp = QueryProcessor::default();
    qp.registry.register(Arc::new(sim.clone()), 8);
    let server = Arc::new(DataServer::new(qp));
    server.publish(PublishedSource::new(
        "flights-model",
        "warehouse",
        LogicalPlan::scan("flights"),
    ));
    (server, sim)
}

fn outage() -> FaultPlan {
    FaultPlan {
        connect_failure: 1.0,
        transient_query_failure: 1.0,
        ..FaultPlan::seeded(11)
    }
}

fn carrier_counts() -> ClientQuery {
    ClientQuery {
        group_by: vec!["carrier".into()],
        aggs: vec![AggCall::new(AggFunc::Count, None, "n")],
        ..Default::default()
    }
}

/// The full arc: warm cache -> outage -> degraded serving -> recovery ->
/// revalidation sweep -> fresh serving, with no organic miss in between.
#[test]
fn recovered_source_is_revalidated_within_budget() {
    let (server, sim) = setup();
    let session = server.connect("flights-model", "analyst").unwrap();
    let q = carrier_counts();

    // Warm the caches with a healthy backend.
    let (fresh, outcome) = session.query(&q).unwrap();
    assert_eq!(outcome, ExecOutcome::Remote);

    // The source goes down; published entries are flagged stale.
    sim.set_fault_plan(Some(outage()));
    let marked = server.mark_backing_stale("flights-model").unwrap();
    assert!(marked >= 1, "expected stale-marked entries, got {marked}");

    // Dashboards keep rendering, degraded, from the stale entry.
    let (degraded, outcome) = session.query(&q).unwrap();
    assert_eq!(outcome, ExecOutcome::DegradedStale);
    assert_eq!(degraded.to_rows(), fresh.to_rows());

    // While the source is still down, a sweep cannot refresh anything.
    let opts = RevalidateOptions {
        staleness_budget: Duration::ZERO,
        ..Default::default()
    };
    let report = server.revalidate_now(&opts);
    assert!(report.examined >= 1);
    assert_eq!(report.refreshed, 0);
    assert!(report.still_stale >= 1);

    // The source recovers. One sweep refreshes every overdue entry.
    sim.set_fault_plan(None);
    let report = server.revalidate_now(&opts);
    assert!(
        report.refreshed >= 1,
        "expected refreshes after recovery, got {report:?}"
    );
    assert_eq!(report.still_stale, 0);
    assert!(
        server.processor.caches.stale_entries().is_empty(),
        "no entries should remain stale after a full sweep"
    );

    // The next dashboard query is served fresh again, same answer.
    let (after, outcome) = session.query(&q).unwrap();
    assert_ne!(outcome, ExecOutcome::DegradedStale);
    assert_eq!(after.to_rows(), fresh.to_rows());
}

/// Entries stale for less than the budget are deliberately left alone —
/// revalidation is for overdue entries, not a cache-wide stampede.
#[test]
fn entries_within_budget_are_left_alone() {
    let (server, _sim) = setup();
    let session = server.connect("flights-model", "analyst").unwrap();
    session.query(&carrier_counts()).unwrap();
    server.mark_backing_stale("flights-model").unwrap();

    let opts = RevalidateOptions {
        staleness_budget: Duration::from_secs(3600),
        ..Default::default()
    };
    let report = server.revalidate_now(&opts);
    assert!(report.examined >= 1);
    assert_eq!(report.refreshed, 0);
    assert_eq!(report.still_stale, 0);
    assert_eq!(report.within_budget, report.examined);
    assert!(
        !server.processor.caches.stale_entries().is_empty(),
        "entries inside the budget must stay stale until overdue"
    );
}

/// The background lane does the same thing unattended: entries flagged
/// stale during an outage are refreshed shortly after recovery.
#[test]
fn maintenance_lane_refreshes_after_recovery() {
    let (server, sim) = setup();
    let session = server.connect("flights-model", "analyst").unwrap();
    session.query(&carrier_counts()).unwrap();

    sim.set_fault_plan(Some(outage()));
    server.mark_backing_stale("flights-model").unwrap();
    let lane = server.start_maintenance(
        Duration::from_millis(5),
        RevalidateOptions {
            staleness_budget: Duration::ZERO,
            ..Default::default()
        },
    );

    // Give the lane a few passes against the dead source: entries stay
    // stale (and keep serving degraded) rather than being dropped.
    std::thread::sleep(Duration::from_millis(40));
    assert!(!server.processor.caches.stale_entries().is_empty());

    sim.set_fault_plan(None);
    let deadline = Instant::now() + Duration::from_secs(10);
    while !server.processor.caches.stale_entries().is_empty() {
        assert!(
            Instant::now() < deadline,
            "maintenance lane never revalidated the stale entries"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    lane.stop();

    let (_, outcome) = session.query(&carrier_counts()).unwrap();
    assert_ne!(outcome, ExecOutcome::DegradedStale);
}
