//! Shadow extracts.
//!
//! "When a text or excel file is connected, Tableau extracts the data from
//! the file, and stores them in temporary tables in the TDE. Subsequently,
//! all queries are executed by the TDE instead of parsing the entire file
//! each time. ... we need to pay a one-time cost of creating the temporary
//! database. Last but not least, the system can persist extracts in
//! workbooks to avoid recreating temporary tables at every load" (Sect. 4.4).

use crate::csv::{parse_csv, CsvOptions};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use tabviz_common::{Chunk, Result};
use tabviz_storage::{Database, Table};

/// Manages shadow extracts inside a TDE database's TEMP schema, keyed by
/// source identity so re-connecting to an unchanged file reuses the extract.
pub struct ShadowExtracts {
    db: Arc<Database>,
    /// source name → fingerprint of the text it was extracted from
    fingerprints: Mutex<HashMap<String, u64>>,
    /// Number of full-file parses performed (one-time costs paid).
    parses: Mutex<usize>,
}

fn fingerprint(text: &str) -> u64 {
    let mut h = DefaultHasher::new();
    text.hash(&mut h);
    h.finish()
}

impl ShadowExtracts {
    pub fn new(db: Arc<Database>) -> Self {
        ShadowExtracts {
            db,
            fingerprints: Mutex::new(HashMap::new()),
            parses: Mutex::new(0),
        }
    }

    /// Connect to a text source: parse once, store as a TEMP table, and on
    /// subsequent calls with unchanged content reuse the stored extract.
    /// Returns the extract table.
    pub fn connect_text(&self, name: &str, text: &str, opts: &CsvOptions) -> Result<Arc<Table>> {
        let fp = fingerprint(text);
        {
            let fps = self.fingerprints.lock();
            if fps.get(name) == Some(&fp) {
                if let Ok(t) = self
                    .db
                    .get_table(tabviz_storage::database::TEMP_SCHEMA, name)
                {
                    return Ok(t);
                }
            }
        }
        let chunk = self.parse_counted(text, opts)?;
        let table = Table::from_chunk(name, &chunk, &[])?;
        let arc = self.db.put_temp(table)?;
        self.fingerprints.lock().insert(name.to_string(), fp);
        Ok(arc)
    }

    /// The Jet-era baseline: parse the entire file for this one query and
    /// return the parsed rows (the caller filters/aggregates locally).
    pub fn parse_per_query(&self, text: &str, opts: &CsvOptions) -> Result<Chunk> {
        self.parse_counted(text, opts)
    }

    fn parse_counted(&self, text: &str, opts: &CsvOptions) -> Result<Chunk> {
        *self.parses.lock() += 1;
        parse_csv(text, opts)
    }

    /// How many full-file parses have been paid so far.
    pub fn parse_count(&self) -> usize {
        *self.parses.lock()
    }

    /// Drop all extracts (connection close).
    pub fn clear(&self) {
        self.db.clear_temp();
        self.fingerprints.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_common::Value;

    fn csv(rows: usize) -> String {
        let mut s = String::from("carrier,delay\n");
        for i in 0..rows {
            s.push_str(&format!("{},{}\n", ["AA", "DL", "WN"][i % 3], i % 60));
        }
        s
    }

    #[test]
    fn extract_parsed_once_and_reused() {
        let db = Arc::new(Database::new("d"));
        let se = ShadowExtracts::new(Arc::clone(&db));
        let text = csv(100);
        let t1 = se
            .connect_text("flights_csv", &text, &CsvOptions::default())
            .unwrap();
        assert_eq!(t1.row_count(), 100);
        assert_eq!(se.parse_count(), 1);
        // Re-connect with identical content: no new parse.
        let t2 = se
            .connect_text("flights_csv", &text, &CsvOptions::default())
            .unwrap();
        assert_eq!(se.parse_count(), 1);
        assert!(Arc::ptr_eq(&t1, &t2));
    }

    #[test]
    fn changed_content_reparses() {
        let db = Arc::new(Database::new("d"));
        let se = ShadowExtracts::new(Arc::clone(&db));
        se.connect_text("f", &csv(10), &CsvOptions::default())
            .unwrap();
        let t = se
            .connect_text("f", &csv(20), &CsvOptions::default())
            .unwrap();
        assert_eq!(se.parse_count(), 2);
        assert_eq!(t.row_count(), 20);
    }

    #[test]
    fn queryable_through_tde() {
        let db = Arc::new(Database::new("d"));
        let se = ShadowExtracts::new(Arc::clone(&db));
        se.connect_text("flights_csv", &csv(300), &CsvOptions::default())
            .unwrap();
        let tde = tabviz_tde::Tde::new(db);
        let out = tde
            .query("(aggregate ((carrier)) ((count as n)) (scan flights_csv))")
            .unwrap();
        assert_eq!(out.len(), 3);
        let total: i64 = (0..3).map(|i| out.row(i)[1].as_int().unwrap()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn parse_per_query_pays_every_time() {
        let db = Arc::new(Database::new("d"));
        let se = ShadowExtracts::new(db);
        let text = csv(50);
        for _ in 0..3 {
            let c = se.parse_per_query(&text, &CsvOptions::default()).unwrap();
            assert_eq!(c.len(), 50);
        }
        assert_eq!(se.parse_count(), 3);
    }

    #[test]
    fn clear_drops_extracts() {
        let db = Arc::new(Database::new("d"));
        let se = ShadowExtracts::new(Arc::clone(&db));
        se.connect_text("f", &csv(10), &CsvOptions::default())
            .unwrap();
        se.clear();
        assert!(db.resolve("f").is_err());
        // Reconnect re-parses even with the same fingerprint.
        let t = se
            .connect_text("f", &csv(10), &CsvOptions::default())
            .unwrap();
        assert_eq!(se.parse_count(), 2);
        assert_eq!(t.scan(None).unwrap().row(0)[0], Value::Str("AA".into()));
    }
}
