//! Text-file parsing and shadow extracts.
//!
//! Sect. 4.4 of the paper: querying text/Excel files through Jet "was
//! inherently slow because the system had to parse the file for every query.
//! Shadow extracts have been introduced to speed up the query execution":
//! the file is parsed once into TDE temp tables and all subsequent queries
//! run against the engine. "The text parser accepts a schema file as
//! additional input if one is available. Otherwise, it attempts to discover
//! the metadata by performing type and column name inference."
//!
//! * [`csv`] — an in-house CSV parser (quoted fields, escapes, embedded
//!   newlines) with type and header inference;
//! * [`shadow`] — shadow-extract management over a TDE database, plus the
//!   parse-per-query baseline used by the benchmarks.

pub mod csv;
pub mod shadow;

pub use csv::{parse_csv, CsvOptions, HeaderMode};
pub use shadow::ShadowExtracts;
