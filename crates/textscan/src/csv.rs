//! CSV parsing with metadata inference.

use std::sync::Arc;
use tabviz_common::{Chunk, DataType, Field, Result, Schema, SchemaRef, TvError, Value};
use tabviz_tql::datefn;

/// Whether the first record holds column names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeaderMode {
    /// Detect: a first row whose cells are all non-numeric strings while the
    /// second row contains at least one non-string value is taken as header.
    #[default]
    Auto,
    Yes,
    No,
}

/// Parser configuration.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    pub delimiter: char,
    pub header: HeaderMode,
    /// Cell texts treated as NULL (besides the empty string).
    pub null_tokens: Vec<String>,
    /// Explicit schema (the "schema file"); skips inference entirely.
    pub schema: Option<SchemaRef>,
    /// Rows sampled for type inference.
    pub infer_rows: usize,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            header: HeaderMode::Auto,
            null_tokens: vec!["NULL".into(), "NA".into()],
            schema: None,
            infer_rows: 1000,
        }
    }
}

/// Split raw text into records of fields, honoring quotes.
fn split_records(text: &str, delimiter: char) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                if field.is_empty() {
                    in_quotes = true;
                } else {
                    field.push('"');
                }
            }
            c if c == delimiter => {
                record.push(std::mem::take(&mut field));
                any = true;
            }
            '\r' => {} // swallow CR of CRLF
            '\n' => {
                record.push(std::mem::take(&mut field));
                if record.len() > 1 || !record[0].is_empty() {
                    records.push(std::mem::take(&mut record));
                } else {
                    record.clear(); // skip blank line
                }
                any = false;
            }
            _ => field.push(c),
        }
    }
    if in_quotes {
        return Err(TvError::Parse("unterminated quoted field".into()));
    }
    if !field.is_empty() || any || !record.is_empty() {
        record.push(field);
        if record.len() > 1 || !record[0].is_empty() {
            records.push(record);
        }
    }
    Ok(records)
}

/// Try to interpret a cell as the narrowest matching type.
fn sniff(cell: &str) -> DataType {
    let t = cell.trim();
    if t.parse::<i64>().is_ok() {
        return DataType::Int;
    }
    if t.parse::<f64>().is_ok() {
        return DataType::Real;
    }
    if parse_date(t).is_some() {
        return DataType::Date;
    }
    if t.eq_ignore_ascii_case("true") || t.eq_ignore_ascii_case("false") {
        return DataType::Bool;
    }
    DataType::Str
}

/// `YYYY-MM-DD` (or `/`-separated) dates.
fn parse_date(t: &str) -> Option<i32> {
    let sep = if t.contains('-') { '-' } else { '/' };
    let parts: Vec<&str> = t.split(sep).collect();
    if parts.len() != 3 {
        return None;
    }
    let y: i32 = parts[0].parse().ok()?;
    let m: u32 = parts[1].parse().ok()?;
    let d: u32 = parts[2].parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) || !(1000..=9999).contains(&y) {
        return None;
    }
    Some(datefn::days_from_civil(y, m, d))
}

/// Widen `a` to also accommodate `b`.
fn unify(a: DataType, b: DataType) -> DataType {
    use DataType::*;
    match (a, b) {
        (x, y) if x == y => x,
        (Int, Real) | (Real, Int) => Real,
        _ => Str,
    }
}

fn is_null(cell: &str, opts: &CsvOptions) -> bool {
    let t = cell.trim();
    t.is_empty() || opts.null_tokens.iter().any(|n| n.eq_ignore_ascii_case(t))
}

/// Parse CSV text into a chunk, inferring names and types unless an explicit
/// schema is supplied.
pub fn parse_csv(text: &str, opts: &CsvOptions) -> Result<Chunk> {
    let records = split_records(text, opts.delimiter)?;
    if records.is_empty() {
        return Ok(Chunk::empty(
            opts.schema
                .clone()
                .unwrap_or_else(|| Arc::new(Schema::empty())),
        ));
    }
    let width = records.iter().map(Vec::len).max().unwrap_or(0);

    // Header decision.
    let has_header = match opts.header {
        HeaderMode::Yes => true,
        HeaderMode::No => false,
        HeaderMode::Auto => {
            let first_all_str = records[0]
                .iter()
                .all(|c| !is_null(c, opts) && sniff(c) == DataType::Str);
            let second_typed = records.len() > 1
                && records[1]
                    .iter()
                    .any(|c| !is_null(c, opts) && sniff(c) != DataType::Str);
            first_all_str && second_typed
        }
    };
    let data_start = usize::from(has_header);

    let schema: SchemaRef = match &opts.schema {
        Some(s) => {
            if s.len() != width {
                return Err(TvError::Schema(format!(
                    "schema has {} columns but file has {width}",
                    s.len()
                )));
            }
            Arc::clone(s)
        }
        None => {
            // Column names: header cells or F1..Fn.
            let names: Vec<String> = (0..width)
                .map(|i| {
                    if has_header {
                        records[0]
                            .get(i)
                            .filter(|s| !s.trim().is_empty())
                            .map(|s| s.trim().to_string())
                            .unwrap_or_else(|| format!("F{}", i + 1))
                    } else {
                        format!("F{}", i + 1)
                    }
                })
                .collect();
            // Type inference over a sample.
            let mut types: Vec<Option<DataType>> = vec![None; width];
            for rec in records.iter().skip(data_start).take(opts.infer_rows) {
                for (i, slot) in types.iter_mut().enumerate() {
                    let cell = rec.get(i).map(String::as_str).unwrap_or("");
                    if is_null(cell, opts) {
                        continue;
                    }
                    let t = sniff(cell);
                    *slot = Some(match *slot {
                        None => t,
                        Some(prev) => unify(prev, t),
                    });
                }
            }
            let fields: Vec<Field> = names
                .into_iter()
                .zip(types)
                .map(|(n, t)| Field::new(n, t.unwrap_or(DataType::Str)))
                .collect();
            Arc::new(Schema::new(fields)?)
        }
    };

    // Materialize values.
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(records.len() - data_start);
    for rec in records.iter().skip(data_start) {
        let mut row = Vec::with_capacity(width);
        for (i, f) in schema.fields().iter().enumerate() {
            let cell = rec.get(i).map(String::as_str).unwrap_or("");
            row.push(parse_cell(cell, f.dtype, opts)?);
        }
        rows.push(row);
    }
    Chunk::from_rows(schema, &rows)
}

fn parse_cell(cell: &str, dtype: DataType, opts: &CsvOptions) -> Result<Value> {
    if is_null(cell, opts) {
        return Ok(Value::Null);
    }
    let t = cell.trim();
    Ok(match dtype {
        DataType::Int => match t.parse::<i64>() {
            Ok(i) => Value::Int(i),
            Err(_) => Value::Null, // row outside the inference sample
        },
        DataType::Real => t.parse::<f64>().map(Value::Real).unwrap_or(Value::Null),
        DataType::Date => parse_date(t).map(Value::Date).unwrap_or(Value::Null),
        DataType::Bool => {
            if t.eq_ignore_ascii_case("true") {
                Value::Bool(true)
            } else if t.eq_ignore_ascii_case("false") {
                Value::Bool(false)
            } else {
                Value::Null
            }
        }
        DataType::Str => Value::Str(cell.to_string()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infers_header_and_types() {
        let text = "carrier,delay,date,ok\nAA,12,2015-05-31,true\nDL,,2015-06-01,false\n";
        let c = parse_csv(text, &CsvOptions::default()).unwrap();
        assert_eq!(c.schema().names(), vec!["carrier", "delay", "date", "ok"]);
        assert_eq!(c.schema().field(1).dtype, DataType::Int);
        assert_eq!(c.schema().field(2).dtype, DataType::Date);
        assert_eq!(c.schema().field(3).dtype, DataType::Bool);
        assert_eq!(c.len(), 2);
        assert_eq!(c.row(1)[1], Value::Null);
    }

    #[test]
    fn no_header_generates_names() {
        let text = "1,2.5\n3,4.0\n";
        let c = parse_csv(text, &CsvOptions::default()).unwrap();
        assert_eq!(c.schema().names(), vec!["F1", "F2"]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.schema().field(0).dtype, DataType::Int);
        assert_eq!(c.schema().field(1).dtype, DataType::Real);
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let text = "name,notes\n\"O'Hare, Chicago\",\"said \"\"hi\"\"\"\n\"multi\nline\",x\n";
        let opts = CsvOptions {
            header: HeaderMode::Yes,
            ..Default::default()
        };
        let c = parse_csv(text, &opts).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.row(0)[0], Value::Str("O'Hare, Chicago".into()));
        assert_eq!(c.row(0)[1], Value::Str("said \"hi\"".into()));
        assert_eq!(c.row(1)[0], Value::Str("multi\nline".into()));
    }

    #[test]
    fn int_widens_to_real_then_str() {
        let text = "x\n1\n2.5\n";
        let c = parse_csv(text, &CsvOptions::default()).unwrap();
        assert_eq!(c.schema().field(0).dtype, DataType::Real);
        let text2 = "x\n1\nabc\n";
        let c2 = parse_csv(text2, &CsvOptions::default()).unwrap();
        assert_eq!(c2.schema().field(0).dtype, DataType::Str);
    }

    #[test]
    fn explicit_schema_skips_inference() {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("a", DataType::Str),
                Field::new("b", DataType::Str),
            ])
            .unwrap(),
        );
        let text = "a,b\n1,2\n";
        let opts = CsvOptions {
            schema: Some(schema),
            header: HeaderMode::Yes,
            ..Default::default()
        };
        let c = parse_csv(text, &opts).unwrap();
        assert_eq!(c.row(0)[0], Value::Str("1".into()));
        // Arity mismatch rejected.
        let bad = CsvOptions {
            schema: Some(Arc::new(
                Schema::new(vec![Field::new("a", DataType::Str)]).unwrap(),
            )),
            ..Default::default()
        };
        assert!(parse_csv(text, &bad).is_err());
    }

    #[test]
    fn custom_delimiter_and_nulls() {
        let text = "a|b\n1|NA\n2|x\n";
        let opts = CsvOptions {
            delimiter: '|',
            ..Default::default()
        };
        let c = parse_csv(text, &opts).unwrap();
        assert_eq!(c.row(0)[1], Value::Null);
        assert_eq!(c.row(1)[1], Value::Str("x".into()));
    }

    #[test]
    fn crlf_and_blank_lines() {
        let text = "a,b\r\n1,2\r\n\r\n3,4\r\n";
        let c = parse_csv(text, &CsvOptions::default()).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.row(1)[0], Value::Int(3));
    }

    #[test]
    fn ragged_rows_pad_with_null() {
        let text = "a,b,c\n1,2,3\n4,5\n";
        let c = parse_csv(text, &CsvOptions::default()).unwrap();
        assert_eq!(c.row(1)[2], Value::Null);
    }

    #[test]
    fn empty_and_malformed() {
        assert_eq!(parse_csv("", &CsvOptions::default()).unwrap().len(), 0);
        assert!(parse_csv("a\n\"unterminated", &CsvOptions::default()).is_err());
    }

    #[test]
    fn header_auto_negative_case() {
        // All-string rows everywhere: first row is data, not a header.
        let text = "AA,JFK\nDL,LAX\n";
        let c = parse_csv(text, &CsvOptions::default()).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.schema().names(), vec!["F1", "F2"]);
    }
}
