//! Workload management for the data server (paper Sect. 3.5).
//!
//! The paper's throttling discussion is about protecting a shared backend
//! from dashboard query storms: connection limits keep the database healthy,
//! but a FIFO queue in front of a small pool lets one heavy session (or a
//! prefetch burst) starve every interactive user behind it. This crate adds
//! the missing admission layer:
//!
//! - **Tickets**: every backend-bound query asks the [`Scheduler`] for a
//!   [`Ticket`] before it may consume a connection. The ticket is an RAII
//!   concurrency slot; dropping it dispatches the next queued query.
//! - **Priority classes**: [`Priority::Interactive`] (a human is waiting) >
//!   [`Priority::Batch`] (dashboard zone batches) > [`Priority::Background`]
//!   (prefetch, cache revalidation). Strict priority between classes: a
//!   queued interactive ticket always dispatches before any batch ticket.
//! - **Weighted fair queuing within a class**: per-session queues served by
//!   deficit round-robin. Each visit tops a session's deficit up by
//!   `quantum × weight`; a session is served while it has ≥ 1 credit. A
//!   low-weight session accumulates credit every round, so it is served at
//!   its weight fraction but never starved.
//! - **Deadline-aware queuing**: a ticket whose deadline expires while still
//!   queued is shed with [`TvError::Timeout`] *before* consuming any backend
//!   work — the query never opens a connection.
//! - **Interactive reservation**: [`SchedConfig::reserve_interactive`]
//!   holds concurrency slots that only Interactive grants may use, so a
//!   human arriving at full batch load starts immediately instead of
//!   waiting out a running batch query.
//! - **Load shedding**: when the queue grows past per-class watermarks,
//!   Background tickets are dropped first, then Batch; Interactive arrivals
//!   are rejected only past a hard high watermark. Queued Interactive
//!   tickets are never evicted.
//!
//! Everything is a plain mutex + condvar state machine: deterministic under
//! a seeded storm, no async runtime, offline-safe.

use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::OnceLock;
use std::time::{Duration, Instant};
use tabviz_common::{Result, TvError};
use tabviz_obs::{Counter, Gauge, Histogram, Registry};

/// Priority classes, best first. The discriminant doubles as the index into
/// per-class arrays ([`SchedStats::admitted`] etc).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// A human is waiting on this query (data-server client sessions).
    Interactive = 0,
    /// Dashboard zone batches: latency-visible but amortized.
    Batch = 1,
    /// Speculative / maintenance work: prefetch, cache revalidation.
    Background = 2,
}

impl Priority {
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Batch, Priority::Background];

    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::Background => "background",
        }
    }

    /// Index into the per-class stat arrays ([`SchedStats::admitted`] etc).
    pub fn idx(self) -> usize {
        self as usize
    }
}

/// What a caller presents at admission: who it is, how important the work
/// is, and how long it is willing to queue.
#[derive(Debug, Clone)]
pub struct AdmitRequest {
    pub priority: Priority,
    /// Fairness domain: tickets from the same session share one deficit
    /// round-robin queue within their class.
    pub session: String,
    /// Relative share within the class (1.0 = normal). Clamped to a small
    /// positive minimum so a zero-weight session still cannot starve.
    pub weight: f64,
    /// Maximum time this ticket may wait in the queue. `None` falls back to
    /// [`SchedConfig::default_deadline`].
    pub deadline: Option<Duration>,
    /// The backend data source this query will run against. When the
    /// scheduler has a per-source limit for it
    /// ([`SchedConfig::source_limits`]), the grant additionally waits for
    /// that source's running count to drop below the limit — so a
    /// saturated backend queues *its own* work without consuming the
    /// global admission budget that other backends' queries need.
    pub source: Option<String>,
}

impl AdmitRequest {
    pub fn new(priority: Priority, session: impl Into<String>) -> Self {
        AdmitRequest {
            priority,
            session: session.into(),
            weight: 1.0,
            deadline: None,
            source: None,
        }
    }

    pub fn interactive(session: impl Into<String>) -> Self {
        Self::new(Priority::Interactive, session)
    }

    pub fn batch(session: impl Into<String>) -> Self {
        Self::new(Priority::Batch, session)
    }

    pub fn background(session: impl Into<String>) -> Self {
        Self::new(Priority::Background, session)
    }

    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    pub fn with_source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }
}

/// Scheduler tuning. Watermarks are *queued-ticket* depths (running tickets
/// are not counted): once the queue reaches `shed_depth[class]`, that class
/// is no longer allowed to grow the queue, and queued tickets of that class
/// may be evicted to make room for better ones.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Global concurrency limit — how many tickets run at once. Derive this
    /// from pool capacity ([`SchedConfig::for_pool_capacity`]): admitting
    /// more than the pools can serve just moves the queue into the pool.
    pub max_concurrent: usize,
    /// Deficit credit granted per round-robin visit, scaled by session
    /// weight. One ticket costs 1.0 credit.
    pub quantum: f64,
    /// Queue depth at which Background tickets are shed.
    pub shed_depth: [usize; 3],
    /// Queue deadline applied when the request carries none.
    pub default_deadline: Option<Duration>,
    /// Concurrency slots reserved for Interactive work: Batch/Background
    /// grants may not push total running tickets above
    /// `max_concurrent - reserve_interactive`, so an interactive arrival
    /// at full non-interactive load starts immediately instead of waiting
    /// out a running query. By default the reservation is not
    /// work-conserving (the reserved slots idle when no interactive work
    /// exists); see [`SchedConfig::work_conserving_after`]. It is clamped
    /// so at least one slot always remains for the other classes.
    pub reserve_interactive: usize,
    /// Work conservation for the interactive reservation: when no
    /// Interactive request has *arrived* for this long, reserved slots are
    /// granted to Batch/Background work instead of idling. Such grants
    /// carry the [`tabviz_obs::reason::SCHED_RESERVED_GRANT`] reason code.
    /// The next Interactive arrival re-arms the reservation (running
    /// borrowed tickets finish; new non-interactive grants are capped
    /// again). `None` (default) keeps the reservation strict.
    pub work_conserving_after: Option<Duration>,
    /// Per-source concurrency ceilings, normally each source's pool size.
    /// A ticket whose request names one of these sources is granted only
    /// while fewer than `limit` tickets for that source are running;
    /// otherwise it waits in its class queue while *other* sources' tickets
    /// are dispatched past it. Without this, `max_concurrent` (the sum of
    /// all pool sizes) lets one slow backend's queries occupy every global
    /// slot and starve healthy backends behind it. Sources without an
    /// entry are bounded only by `max_concurrent`.
    pub source_limits: HashMap<String, usize>,
}

impl SchedConfig {
    /// Watermarks derived from the concurrency limit: Background sheds at
    /// 2× the limit queued, Batch at 4×, Interactive rejects only at 16×.
    pub fn new(max_concurrent: usize) -> Self {
        let mc = max_concurrent.max(1);
        SchedConfig {
            max_concurrent: mc,
            quantum: 1.0,
            shed_depth: [mc * 16, mc * 4, mc * 2],
            default_deadline: None,
            reserve_interactive: 0,
            work_conserving_after: None,
            source_limits: HashMap::new(),
        }
    }

    /// The standard derivation: one running ticket per pooled connection.
    pub fn for_pool_capacity(capacity: usize) -> Self {
        Self::new(capacity)
    }

    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Enable work conservation for the interactive reservation (see
    /// [`SchedConfig::work_conserving_after`]).
    pub fn with_work_conserving_after(mut self, window: Duration) -> Self {
        self.work_conserving_after = Some(window);
        self
    }

    /// Cap one source's running tickets (see [`SchedConfig::source_limits`]).
    pub fn with_source_limit(mut self, source: impl Into<String>, limit: usize) -> Self {
        self.source_limits.insert(source.into(), limit.max(1));
        self
    }

    fn watermark(&self, p: Priority) -> usize {
        self.shed_depth[p.idx()]
    }

    /// The running-ticket ceiling a grant to `p` must stay under.
    fn class_limit(&self, p: Priority) -> usize {
        match p {
            Priority::Interactive => self.max_concurrent,
            _ => self
                .max_concurrent
                .saturating_sub(self.reserve_interactive)
                .max(1),
        }
    }
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig::new(8)
    }
}

/// Point-in-time scheduler statistics (all-time counters plus live depths).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Tickets granted a slot, per class.
    pub admitted: [u64; 3],
    /// Load sheds per class (arrival sheds + queue evictions). The
    /// Interactive cell counts hard-watermark rejections.
    pub shed: [u64; 3],
    /// Tickets whose deadline expired while queued, per class.
    pub deadline_shed: [u64; 3],
    /// Reserved interactive slots granted to Batch/Background work after
    /// the work-conserving window elapsed.
    pub reserved_grants: u64,
    /// Currently running / queued tickets.
    pub running: usize,
    pub queued: usize,
    /// High-water marks over the scheduler's lifetime.
    pub peak_running: usize,
    pub peak_queued: usize,
}

impl SchedStats {
    pub fn total_shed(&self) -> u64 {
        self.shed.iter().sum()
    }

    /// Fraction of tickets that got a slot: admitted over every arrival
    /// the scheduler decided on (admitted + sheds + deadline expiries).
    /// This is the scheduler-side feed for an availability SLO objective
    /// (`tabviz_obs::Objective::availability`): a shed is an unanswered
    /// user, exactly what the error budget meters. 1.0 when idle.
    pub fn availability(&self) -> f64 {
        let admitted: u64 = self.admitted.iter().sum();
        let denied = self.total_shed() + self.deadline_shed.iter().sum::<u64>();
        let total = admitted + denied;
        if total == 0 {
            1.0
        } else {
            admitted as f64 / total as f64
        }
    }
}

const MIN_WEIGHT: f64 = 0.01;

struct SessionQueue {
    session: String,
    weight: f64,
    deficit: f64,
    tickets: VecDeque<u64>,
}

#[derive(Default)]
struct ClassQueue {
    /// Only sessions with queued tickets appear here; entries are removed
    /// (deficit forfeited, per classic DRR) when their queue drains.
    sessions: Vec<SessionQueue>,
    cursor: usize,
}

impl ClassQueue {
    fn depth(&self) -> usize {
        self.sessions.iter().map(|s| s.tickets.len()).sum()
    }

    fn enqueue(&mut self, id: u64, session: &str, weight: f64) {
        match self.sessions.iter_mut().find(|s| s.session == session) {
            Some(sq) => {
                sq.weight = weight;
                sq.tickets.push_back(id);
            }
            None => self.sessions.push(SessionQueue {
                session: session.to_string(),
                weight,
                deficit: 0.0,
                tickets: VecDeque::from([id]),
            }),
        }
    }

    fn remove_session_at(&mut self, idx: usize) {
        self.sessions.remove(idx);
        if idx < self.cursor {
            self.cursor -= 1;
        }
        if !self.sessions.is_empty() {
            self.cursor %= self.sessions.len();
        } else {
            self.cursor = 0;
        }
    }

    /// Withdraw a specific ticket (deadline expiry). True if it was queued.
    fn remove_ticket(&mut self, id: u64) -> bool {
        for i in 0..self.sessions.len() {
            if let Some(pos) = self.sessions[i].tickets.iter().position(|&t| t == id) {
                self.sessions[i].tickets.remove(pos);
                if self.sessions[i].tickets.is_empty() {
                    self.remove_session_at(i);
                }
                return true;
            }
        }
        false
    }

    /// Evict the newest queued ticket (LIFO within the victim class: the
    /// oldest waiters keep their place). Returns the evicted ticket id.
    fn evict_newest(&mut self) -> Option<u64> {
        let i = (0..self.sessions.len())
            .rev()
            .find(|&i| !self.sessions[i].tickets.is_empty())?;
        let id = self.sessions[i].tickets.pop_back();
        if self.sessions[i].tickets.is_empty() {
            self.remove_session_at(i);
        }
        id
    }

    /// One deficit-round-robin pick. Visiting a session tops its deficit up
    /// by `quantum × weight`; a session with ≥ 1 credit is served (and the
    /// cursor stays, so a high-weight session drains its credit in
    /// consecutive picks); otherwise the cursor advances and the credit is
    /// kept for the next round.
    ///
    /// `eligible` is the per-source gate: a ticket it rejects (its backend
    /// is at its concurrency limit) is passed over — within a session the
    /// first eligible ticket is served, and a session holding only blocked
    /// tickets is skipped without topping up its deficit. Returns `None`
    /// when every queued ticket is blocked, so lower classes still get a
    /// chance at the free slot.
    fn pick(&mut self, quantum: f64, eligible: &dyn Fn(u64) -> bool) -> Option<u64> {
        if self.sessions.is_empty() {
            return None;
        }
        // Each full round strictly increases some session's deficit by at
        // least quantum × MIN_WEIGHT, so this terminates well inside the
        // guard; the guard only protects against pathological weights.
        let mut visits = 0usize;
        let mut blocked_streak = 0usize;
        let max_visits = self.sessions.len() * (1 + (1.0 / (quantum * MIN_WEIGHT)).ceil() as usize);
        loop {
            if blocked_streak >= self.sessions.len() {
                return None;
            }
            self.cursor %= self.sessions.len();
            let sq = &mut self.sessions[self.cursor];
            let Some(pos) = sq.tickets.iter().position(|&t| eligible(t)) else {
                blocked_streak += 1;
                self.cursor = (self.cursor + 1) % self.sessions.len();
                continue;
            };
            blocked_streak = 0;
            if sq.deficit < 1.0 {
                sq.deficit += quantum * sq.weight.max(MIN_WEIGHT);
            }
            if sq.deficit >= 1.0 || visits >= max_visits {
                sq.deficit = (sq.deficit - 1.0).max(0.0);
                let id = sq
                    .tickets
                    .remove(pos)
                    .expect("position found in this session's queue");
                let exhausted = sq.deficit < 1.0;
                if sq.tickets.is_empty() {
                    let at = self.cursor;
                    self.remove_session_at(at);
                } else if exhausted {
                    self.cursor = (self.cursor + 1) % self.sessions.len();
                }
                return Some(id);
            }
            self.cursor = (self.cursor + 1) % self.sessions.len();
            visits += 1;
        }
    }
}

#[derive(Default)]
struct State {
    running: usize,
    next_id: u64,
    classes: [ClassQueue; 3],
    /// Tickets that have been handed a slot but whose waiter has not woken
    /// yet, mapped to the grant's reason code. `running` already counts
    /// them.
    granted: HashMap<u64, &'static str>,
    /// Most recent Interactive *arrival* (not grant): the work-conserving
    /// clock. Seeded at scheduler creation so a fresh scheduler holds its
    /// reservation for one full window.
    last_interactive: Option<Instant>,
    /// Tickets evicted by load shedding while queued; the waiter observes
    /// membership and returns the shed error.
    shed: HashSet<u64>,
    /// Source of each *queued* ticket whose source carries a limit; moved
    /// into `running_by_source` at grant time.
    queued_sources: HashMap<u64, String>,
    /// Running tickets per limited source (the per-source gate).
    running_by_source: HashMap<String, usize>,
    /// Classes of shed/evicted tickets in the order the scheduler dropped
    /// them — lets tests assert Background goes before Batch.
    shed_log: Vec<Priority>,
    stats: SchedStats,
}

impl State {
    fn queued(&self) -> usize {
        self.classes.iter().map(|c| c.depth()).sum()
    }
}

struct SchedMetrics {
    queue_wait: [Histogram; 3],
    admitted: [Counter; 3],
    sheds: [Counter; 3],
    deadline_sheds: Counter,
    rejections: Counter,
    reserved_grants: Counter,
    running: Gauge,
    queued: Gauge,
}

impl SchedMetrics {
    fn bind(registry: &Registry) -> Self {
        let per_class = |prefix: &str| {
            Priority::ALL.map(|p| registry.counter(&format!("{prefix}_{}", p.name())))
        };
        SchedMetrics {
            queue_wait: Priority::ALL
                .map(|p| registry.histogram(&format!("tv_sched_queue_wait_seconds_{}", p.name()))),
            admitted: per_class("tv_sched_admitted_total"),
            sheds: per_class("tv_sched_sheds_total"),
            deadline_sheds: registry.counter("tv_sched_deadline_sheds_total"),
            rejections: registry.counter("tv_sched_rejections_total"),
            reserved_grants: registry.counter("tv_sched_reserved_grants_total"),
            running: registry.gauge("tv_sched_running"),
            queued: registry.gauge("tv_sched_queued"),
        }
    }
}

/// The admission controller. Shared (`Arc`) between the query processor,
/// the data server and the maintenance lane.
pub struct Scheduler {
    config: SchedConfig,
    state: Mutex<State>,
    cv: Condvar,
    metrics: OnceLock<SchedMetrics>,
}

impl Scheduler {
    pub fn new(config: SchedConfig) -> Self {
        let state = State {
            last_interactive: Some(Instant::now()),
            ..State::default()
        };
        Scheduler {
            config,
            state: Mutex::new(state),
            cv: Condvar::new(),
            metrics: OnceLock::new(),
        }
    }

    /// Register the `tv_sched_*` metrics family. First call wins.
    pub fn bind_obs(&self, registry: &Registry) {
        let _ = self.metrics.set(SchedMetrics::bind(registry));
    }

    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    pub fn stats(&self) -> SchedStats {
        let st = self.state.lock();
        let mut s = st.stats.clone();
        s.running = st.running;
        s.queued = st.queued();
        s
    }

    /// Classes of shed tickets, oldest first (test observability).
    pub fn shed_log(&self) -> Vec<Priority> {
        self.state.lock().shed_log.clone()
    }

    pub fn running(&self) -> usize {
        self.state.lock().running
    }

    pub fn queued(&self) -> usize {
        self.state.lock().queued()
    }

    /// Block until the request is granted a concurrency slot, its deadline
    /// expires, or it is load-shed. Shed and expired tickets fail with
    /// [`TvError::Timeout`] without ever consuming backend work.
    pub fn admit(&self, req: &AdmitRequest) -> Result<Ticket<'_>> {
        let arrived = Instant::now();
        let deadline = req
            .deadline
            .or(self.config.default_deadline)
            .map(|d| arrived + d);
        // Only sources with a configured limit are tracked; everything else
        // rides the global budget alone.
        let tracked = req
            .source
            .as_ref()
            .filter(|s| self.config.source_limits.contains_key(*s))
            .cloned();
        let mut st = self.state.lock();
        if req.priority == Priority::Interactive {
            // Arrival (not grant) re-arms the work-conserving clock.
            st.last_interactive = Some(arrived);
        }

        // Fast path: idle queue, a free slot, and source headroom — no
        // ticket churn.
        let source_saturated = !self.source_headroom(&st, tracked.as_deref());
        if st.running < self.effective_class_limit(&st, req.priority)
            && st.queued() == 0
            && !source_saturated
        {
            let reason = if req.priority != Priority::Interactive
                && st.running >= self.config.class_limit(req.priority)
            {
                self.note_reserved_grant(&mut st);
                tabviz_obs::reason::SCHED_RESERVED_GRANT
            } else {
                tabviz_obs::reason::SCHED_ADMITTED
            };
            self.grant_now(&mut st, req.priority, tracked.as_deref());
            return Ok(self.ticket(req.priority, Duration::ZERO, reason, tracked));
        }

        // Overload control. Evict strictly-worse queued work first
        // (Background, then Batch) while its class is over its watermark,
        // then decide the arrival's own fate against its class watermark.
        let mut evicted_any = false;
        for victim in [Priority::Background, Priority::Batch] {
            while req.priority < victim
                && st.queued() >= self.config.watermark(victim)
                && self.evict_one(&mut st, victim)
            {
                evicted_any = true;
            }
        }
        if st.queued() >= self.config.watermark(req.priority) {
            st.stats.shed[req.priority.idx()] += 1;
            st.shed_log.push(req.priority);
            if let Some(m) = self.metrics.get() {
                m.sheds[req.priority.idx()].inc();
                if req.priority == Priority::Interactive {
                    m.rejections.inc();
                }
            }
            tabviz_obs::event_with(
                tabviz_obs::stage::SCHED_QUEUE,
                Some(req.priority.name()),
                Some(st.queued() as u64),
                Some(tabviz_obs::reason::SCHED_SHED_WATERMARK),
            );
            return Err(TvError::Timeout(format!(
                "admission: {} load shed at queue depth {}",
                req.priority.name(),
                st.queued()
            )));
        }

        // Enqueue and wait for a grant.
        st.next_id += 1;
        let id = st.next_id;
        if let Some(src) = &tracked {
            st.queued_sources.insert(id, src.clone());
        }
        st.classes[req.priority.idx()].enqueue(id, &req.session, req.weight);
        let q = st.queued();
        st.stats.peak_queued = st.stats.peak_queued.max(q);
        if let Some(m) = self.metrics.get() {
            m.queued.set(q as i64);
        }
        self.dispatch(&mut st);
        loop {
            if let Some(granted_reason) = st.granted.remove(&id) {
                let waited = arrived.elapsed();
                let reason = if evicted_any {
                    tabviz_obs::reason::SCHED_ADMITTED_EVICTING
                } else if source_saturated {
                    // The wait (or part of it) was its own backend's fault,
                    // not global load — attribution the flight recorder
                    // surfaces per query.
                    tabviz_obs::reason::SCHED_SOURCE_SATURATED
                } else {
                    granted_reason
                };
                self.note_admitted(&mut st, req.priority, waited);
                return Ok(self.ticket(req.priority, waited, reason, tracked));
            }
            if st.shed.remove(&id) {
                tabviz_obs::event_with(
                    tabviz_obs::stage::SCHED_QUEUE,
                    Some(req.priority.name()),
                    Some(arrived.elapsed().as_micros() as u64),
                    Some(tabviz_obs::reason::SCHED_SHED_EVICTED),
                );
                return Err(TvError::Timeout(format!(
                    "admission: {} ticket evicted by load shedding",
                    req.priority.name()
                )));
            }
            match deadline {
                Some(d) if Instant::now() >= d => {
                    // Still queued (not granted, not shed): withdraw.
                    st.classes[req.priority.idx()].remove_ticket(id);
                    st.queued_sources.remove(&id);
                    st.stats.deadline_shed[req.priority.idx()] += 1;
                    if let Some(m) = self.metrics.get() {
                        m.deadline_sheds.inc();
                        m.queued.set(st.queued() as i64);
                    }
                    tabviz_obs::event_with(
                        tabviz_obs::stage::SCHED_QUEUE,
                        Some(req.priority.name()),
                        Some(arrived.elapsed().as_micros() as u64),
                        Some(tabviz_obs::reason::SCHED_DEADLINE_EXPIRED),
                    );
                    return Err(TvError::Timeout(format!(
                        "admission: {} ticket queue deadline expired",
                        req.priority.name()
                    )));
                }
                _ => {
                    // A queued non-interactive ticket also wakes when the
                    // work-conserving window elapses, so reserved slots
                    // are handed over promptly (no grant-side event
                    // exists to trigger a dispatch at that instant).
                    let mut wake = deadline;
                    if req.priority != Priority::Interactive {
                        if let (Some(w), Some(t)) =
                            (self.config.work_conserving_after, st.last_interactive)
                        {
                            // Only a *future* handover instant is worth a
                            // timed wake: once the window has elapsed the
                            // dispatch below already ran relaxed, and the
                            // next state change is a release (cv signal).
                            let wc = t + w;
                            if wc > Instant::now() {
                                wake = Some(wake.map_or(wc, |d| d.min(wc)));
                            }
                        }
                    }
                    match wake {
                        Some(d) => {
                            self.cv.wait_until(&mut st, d);
                        }
                        None => self.cv.wait(&mut st),
                    }
                    self.dispatch(&mut st);
                }
            }
        }
    }

    /// Non-blocking admission: grant only if a slot is free right now.
    /// Maintenance work uses this to stay strictly out of the way.
    pub fn try_admit(&self, req: &AdmitRequest) -> Option<Ticket<'_>> {
        let tracked = req
            .source
            .as_ref()
            .filter(|s| self.config.source_limits.contains_key(*s))
            .cloned();
        let mut st = self.state.lock();
        if st.running < self.effective_class_limit(&st, req.priority)
            && st.queued() == 0
            && self.source_headroom(&st, tracked.as_deref())
        {
            let reason = if req.priority != Priority::Interactive
                && st.running >= self.config.class_limit(req.priority)
            {
                self.note_reserved_grant(&mut st);
                tabviz_obs::reason::SCHED_RESERVED_GRANT
            } else {
                tabviz_obs::reason::SCHED_ADMITTED
            };
            self.grant_now(&mut st, req.priority, tracked.as_deref());
            Some(self.ticket(req.priority, Duration::ZERO, reason, tracked))
        } else {
            None
        }
    }

    fn ticket(
        &self,
        priority: Priority,
        waited: Duration,
        reason: &'static str,
        source: Option<String>,
    ) -> Ticket<'_> {
        Ticket {
            sched: self,
            priority,
            queued_for: waited,
            grant_reason: reason,
            source,
        }
    }

    /// Whether `source` (already filtered to limited sources) may start
    /// another ticket right now.
    fn source_headroom(&self, st: &State, source: Option<&str>) -> bool {
        let Some(src) = source else { return true };
        let limit = self.config.source_limits.get(src).copied().unwrap_or(0);
        st.running_by_source.get(src).copied().unwrap_or(0) < limit
    }

    /// Whether the interactive reservation is currently relaxed: work
    /// conservation is configured and no Interactive request has arrived
    /// within the window.
    fn reservation_relaxed(&self, st: &State) -> bool {
        match self.config.work_conserving_after {
            Some(window) => st.last_interactive.is_none_or(|t| t.elapsed() >= window),
            None => false,
        }
    }

    /// [`SchedConfig::class_limit`] with work conservation applied. Both
    /// non-interactive classes relax together, so limits stay
    /// non-increasing down the priority order (dispatch relies on that).
    fn effective_class_limit(&self, st: &State, p: Priority) -> usize {
        if p != Priority::Interactive && self.reservation_relaxed(st) {
            self.config.max_concurrent
        } else {
            self.config.class_limit(p)
        }
    }

    fn note_reserved_grant(&self, st: &mut State) {
        st.stats.reserved_grants += 1;
        if let Some(m) = self.metrics.get() {
            m.reserved_grants.inc();
        }
    }

    fn grant_now(&self, st: &mut State, priority: Priority, source: Option<&str>) {
        st.running += 1;
        if let Some(src) = source {
            *st.running_by_source.entry(src.to_string()).or_insert(0) += 1;
        }
        self.note_admitted(st, priority, Duration::ZERO);
    }

    fn note_admitted(&self, st: &mut State, priority: Priority, waited: Duration) {
        st.stats.admitted[priority.idx()] += 1;
        st.stats.peak_running = st.stats.peak_running.max(st.running);
        if let Some(m) = self.metrics.get() {
            m.admitted[priority.idx()].inc();
            m.queue_wait[priority.idx()].observe(waited);
            m.running.set(st.running as i64);
            m.queued.set(st.queued() as i64);
        }
    }

    fn evict_one(&self, st: &mut State, class: Priority) -> bool {
        let Some(id) = st.classes[class.idx()].evict_newest() else {
            return false;
        };
        st.queued_sources.remove(&id);
        st.shed.insert(id);
        st.stats.shed[class.idx()] += 1;
        st.shed_log.push(class);
        if let Some(m) = self.metrics.get() {
            m.sheds[class.idx()].inc();
            m.queued.set(st.queued() as i64);
        }
        self.cv.notify_all();
        true
    }

    /// Hand free slots to queued tickets: strict priority between classes,
    /// deficit round-robin within one, Batch/Background capped below the
    /// interactive reservation.
    fn dispatch(&self, st: &mut State) {
        let relaxed = self.reservation_relaxed(st);
        let mut woke = false;
        let mut reserved_grants = 0u64;
        loop {
            let running = st.running;
            let mut pick = None;
            {
                // Disjoint field borrows: the class queues are walked
                // mutably while the eligibility closure reads the
                // per-source occupancy maps.
                let State {
                    classes,
                    queued_sources,
                    running_by_source,
                    ..
                } = &mut *st;
                let limits = &self.config.source_limits;
                let eligible = |id: u64| match queued_sources.get(&id) {
                    Some(src) => {
                        let limit = limits.get(src).copied().unwrap_or(usize::MAX);
                        running_by_source.get(src).copied().unwrap_or(0) < limit
                    }
                    None => true,
                };
                for (ci, class) in classes.iter_mut().enumerate() {
                    let p = Priority::ALL[ci];
                    let limit = if relaxed && p != Priority::Interactive {
                        self.config.max_concurrent
                    } else {
                        self.config.class_limit(p)
                    };
                    // Class limits are non-increasing down the priority order
                    // (work conservation relaxes both lower classes together),
                    // so the first class over its limit ends the scan.
                    if running >= limit {
                        break;
                    }
                    if let Some(id) = class.pick(self.config.quantum, &eligible) {
                        // Over the strict (reserved) limit: this grant rides a
                        // reserved interactive slot.
                        let reason = if p != Priority::Interactive
                            && running >= self.config.class_limit(p)
                        {
                            reserved_grants += 1;
                            tabviz_obs::reason::SCHED_RESERVED_GRANT
                        } else {
                            tabviz_obs::reason::SCHED_QUEUED
                        };
                        pick = Some((id, reason));
                        break;
                    }
                }
            }
            let Some((id, reason)) = pick else { break };
            st.running += 1;
            if let Some(src) = st.queued_sources.remove(&id) {
                *st.running_by_source.entry(src).or_insert(0) += 1;
            }
            st.granted.insert(id, reason);
            woke = true;
        }
        for _ in 0..reserved_grants {
            self.note_reserved_grant(st);
        }
        if woke {
            self.cv.notify_all();
        }
    }

    fn release(&self, source: Option<&str>) {
        let mut st = self.state.lock();
        st.running = st.running.saturating_sub(1);
        if let Some(src) = source {
            if let Some(c) = st.running_by_source.get_mut(src) {
                *c = c.saturating_sub(1);
            }
        }
        if let Some(m) = self.metrics.get() {
            m.running.set(st.running as i64);
        }
        self.dispatch(&mut st);
    }
}

/// An RAII concurrency slot. Hold it across the backend work it admits;
/// dropping it releases the slot and dispatches the next queued ticket.
#[must_use = "a ticket is the admission slot itself; dropping it immediately releases it"]
pub struct Ticket<'a> {
    sched: &'a Scheduler,
    priority: Priority,
    queued_for: Duration,
    grant_reason: &'static str,
    /// Set only when the source carries a per-source limit: the slot this
    /// ticket holds against [`SchedConfig::source_limits`].
    source: Option<String>,
}

impl std::fmt::Debug for Ticket<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("priority", &self.priority)
            .field("queued_for", &self.queued_for)
            .field("grant_reason", &self.grant_reason)
            .finish()
    }
}

impl Ticket<'_> {
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// How long this ticket waited in the admission queue.
    pub fn queued_for(&self) -> Duration {
        self.queued_for
    }

    /// How the scheduler decided this grant (a
    /// [`tabviz_obs::reason`]`::SCHED_*` code): admitted immediately,
    /// after queueing, by evicting lower-priority work, or by riding a
    /// reserved interactive slot under work conservation.
    pub fn grant_reason(&self) -> &'static str {
        self.grant_reason
    }
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        self.sched.release(self.source.as_deref());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn availability_meters_sheds_against_admissions() {
        let idle = SchedStats::default();
        assert_eq!(
            idle.availability(),
            1.0,
            "no decisions yet: fully available"
        );

        let stats = SchedStats {
            admitted: [90, 5, 0],
            shed: [3, 1, 0],
            deadline_shed: [1, 0, 0],
            ..SchedStats::default()
        };
        // 95 admitted out of 100 decided-on arrivals.
        assert!((stats.availability() - 0.95).abs() < 1e-12);
        assert_eq!(stats.total_shed(), 4);
    }

    fn spin_until(pred: impl Fn() -> bool) {
        let start = Instant::now();
        while !pred() {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "spin_until timed out"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn fast_path_grants_immediately() {
        let s = Scheduler::new(SchedConfig::new(2));
        let a = s.admit(&AdmitRequest::interactive("a")).unwrap();
        let b = s.admit(&AdmitRequest::background("b")).unwrap();
        assert_eq!(s.running(), 2);
        assert_eq!(a.queued_for(), Duration::ZERO);
        drop(a);
        drop(b);
        assert_eq!(s.running(), 0);
        let st = s.stats();
        assert_eq!(st.admitted, [1, 0, 1]);
        assert_eq!(st.peak_running, 2);
    }

    #[test]
    fn interactive_reservation_leaves_headroom() {
        let mut cfg = SchedConfig::new(2);
        cfg.reserve_interactive = 1;
        let s = Arc::new(Scheduler::new(cfg));
        // Background fills the non-reserved capacity (one slot)...
        let bg = s.admit(&AdmitRequest::background("bg")).unwrap();
        // ...so a batch arrival queues even though a slot is physically free.
        let s2 = Arc::clone(&s);
        let batch = std::thread::spawn(move || {
            let t = s2.admit(&AdmitRequest::batch("etl")).unwrap();
            drop(t);
        });
        spin_until(|| s.queued() == 1);
        assert_eq!(s.running(), 1);
        // An interactive arrival takes the reserved slot without queuing.
        let human = s.admit(&AdmitRequest::interactive("human")).unwrap();
        assert_eq!(s.running(), 2);
        assert_eq!(s.queued(), 1, "batch must not ride the reservation");
        // Releasing the interactive slot hands nothing to the batch ticket
        // (that slot stays reserved); releasing the background one does.
        drop(human);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(s.queued(), 1);
        drop(bg);
        batch.join().unwrap();
        assert_eq!(s.stats().admitted, [1, 1, 1]);
    }

    #[test]
    fn work_conserving_reservation_grants_to_batch_when_interactive_idle() {
        let mut cfg = SchedConfig::new(2);
        cfg.reserve_interactive = 1;
        cfg.work_conserving_after = Some(Duration::from_millis(30));
        let s = Arc::new(Scheduler::new(cfg));
        // Non-reserved capacity is one slot.
        let bg = s.admit(&AdmitRequest::background("bg")).unwrap();
        assert_eq!(bg.grant_reason(), tabviz_obs::reason::SCHED_ADMITTED);
        // A second non-interactive arrival either queues until the
        // interactive-idle window elapses or (if the window already
        // elapsed) is granted on the spot — both must ride the reserved
        // slot and say so.
        let t = s.admit(&AdmitRequest::batch("etl")).unwrap();
        assert_eq!(
            t.grant_reason(),
            tabviz_obs::reason::SCHED_RESERVED_GRANT,
            "grant over the strict limit must be attributed to the reservation"
        );
        assert_eq!(s.running(), 2);
        assert!(s.stats().reserved_grants >= 1);
        drop(t);
        drop(bg);
        // An interactive arrival re-arms the clock: with the reservation
        // strict again, batch is capped below max_concurrent once more.
        let human = s.admit(&AdmitRequest::interactive("human")).unwrap();
        assert_eq!(human.grant_reason(), tabviz_obs::reason::SCHED_ADMITTED);
        assert!(
            s.try_admit(&AdmitRequest::batch("etl2")).is_none(),
            "reservation must be strict again right after an interactive arrival"
        );
        drop(human);
    }

    #[test]
    fn concurrency_limit_is_never_exceeded() {
        let mut cfg = SchedConfig::new(3);
        cfg.shed_depth = [256, 256, 256]; // no shedding in this test
        let s = Arc::new(Scheduler::new(cfg));
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..24 {
            let (s, live, peak) = (Arc::clone(&s), Arc::clone(&live), Arc::clone(&peak));
            handles.push(std::thread::spawn(move || {
                let t = s
                    .admit(&AdmitRequest::batch(format!("s{}", i % 4)))
                    .unwrap();
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(2));
                live.fetch_sub(1, Ordering::SeqCst);
                drop(t);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            peak.load(Ordering::SeqCst) <= 3,
            "ran over the concurrency limit"
        );
        assert_eq!(s.stats().admitted[Priority::Batch.idx()], 24);
        assert_eq!(s.running(), 0);
    }

    #[test]
    fn strict_priority_between_classes() {
        // Watermarks lifted out of the way: this test is about dispatch
        // order, not shedding.
        let mut cfg = SchedConfig::new(1);
        cfg.shed_depth = [64, 64, 64];
        let s = Arc::new(Scheduler::new(cfg));
        let gate = s.admit(&AdmitRequest::interactive("gate")).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        // Enqueue worst-first so arrival order opposes priority order.
        for p in [Priority::Background, Priority::Batch, Priority::Interactive] {
            let (s2, order) = (Arc::clone(&s), Arc::clone(&order));
            handles.push(std::thread::spawn(move || {
                let t = s2.admit(&AdmitRequest::new(p, "x")).unwrap();
                order.lock().push(p);
                // Hold briefly so the next grant happens after we recorded.
                std::thread::sleep(Duration::from_millis(2));
                drop(t);
            }));
            spin_until(|| s.queued() == handles.len());
        }
        drop(gate);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            *order.lock(),
            vec![Priority::Interactive, Priority::Batch, Priority::Background]
        );
    }

    #[test]
    fn deficit_round_robin_shares_by_weight() {
        // Two backlogged sessions with weights 1.0 and 0.25: picks must
        // interleave roughly 4:1, never starving the light one.
        let mut cq = ClassQueue::default();
        for i in 0..40 {
            cq.enqueue(100 + i, "heavy", 1.0);
        }
        for i in 0..10 {
            cq.enqueue(900 + i, "light", 0.25);
        }
        let mut picks = Vec::new();
        while let Some(id) = cq.pick(1.0, &|_| true) {
            picks.push(id);
        }
        assert_eq!(picks.len(), 50);
        // The light session's first ticket arrives within the first ~6 picks
        // (1/0.25 rounds), and it keeps its ~1/5 share from then on.
        let first_light = picks.iter().position(|&id| id >= 900).unwrap();
        assert!(
            first_light <= 6,
            "light session starved: first pick at {first_light}"
        );
        let light_in_first_half = picks[..25].iter().filter(|&&id| id >= 900).count();
        assert!(
            (4..=7).contains(&light_in_first_half),
            "light session share drifted: {light_in_first_half}/25"
        );
    }

    #[test]
    fn source_limit_gates_only_its_own_source() {
        // Global budget 4; source "slow" capped at 2. Two running "slow"
        // tickets leave its third queued, while "fast" tickets sail
        // through on the remaining global slots.
        let cfg = SchedConfig::new(4).with_source_limit("slow", 2);
        let s = Arc::new(Scheduler::new(cfg));
        let a = s
            .admit(&AdmitRequest::batch("s1").with_source("slow"))
            .unwrap();
        let b = s
            .admit(&AdmitRequest::batch("s2").with_source("slow"))
            .unwrap();
        assert!(
            s.try_admit(&AdmitRequest::batch("s3").with_source("slow"))
                .is_none(),
            "third slow ticket must wait at the per-source limit"
        );
        // A different source still has global headroom.
        let f = s
            .admit(&AdmitRequest::batch("f1").with_source("fast"))
            .unwrap();
        assert_eq!(s.running(), 3);
        // A queued slow ticket is granted as soon as a slow slot frees.
        let s2 = Arc::clone(&s);
        let waiter = std::thread::spawn(move || {
            let t = s2
                .admit(&AdmitRequest::batch("s3").with_source("slow"))
                .unwrap();
            assert_eq!(
                t.grant_reason(),
                tabviz_obs::reason::SCHED_SOURCE_SATURATED,
                "wait must be attributed to the saturated backend"
            );
            drop(t);
        });
        spin_until(|| s.queued() == 1);
        drop(a);
        waiter.join().unwrap();
        drop(b);
        drop(f);
        assert_eq!(s.running(), 0);
    }

    #[test]
    fn saturated_source_does_not_consume_global_budget() {
        // Global budget 3, "slow" capped at 1 and holding its slot; a
        // burst of queued slow tickets must not stop fast work from using
        // the other two slots (the pre-fix starvation).
        let cfg = SchedConfig::new(3).with_source_limit("slow", 1);
        let s = Arc::new(Scheduler::new(cfg));
        let gate = s
            .admit(&AdmitRequest::batch("s0").with_source("slow"))
            .unwrap();
        let mut waiters = Vec::new();
        for i in 0..4 {
            let s2 = Arc::clone(&s);
            waiters.push(std::thread::spawn(move || {
                s2.admit(&AdmitRequest::batch(format!("sq{i}")).with_source("slow"))
                    .map(drop)
            }));
        }
        spin_until(|| s.queued() == 4);
        // Fast work is dispatched past the four blocked slow tickets.
        let f1 = s
            .admit(&AdmitRequest::batch("f1").with_source("fast"))
            .unwrap();
        let f2 = s
            .admit(&AdmitRequest::batch("f2").with_source("fast"))
            .unwrap();
        assert_eq!(s.running(), 3);
        drop(f1);
        drop(f2);
        drop(gate);
        for w in waiters {
            w.join().unwrap().unwrap();
        }
        assert_eq!(s.running(), 0);
        assert_eq!(s.stats().admitted[Priority::Batch.idx()], 7);
    }

    #[test]
    fn shed_ordering_background_then_batch_never_interactive() {
        // Limit 1, slot held; Background and Batch both shed past depth 3,
        // Interactive only past 6. Two Background + two Batch arrivals fill
        // the queue, then three Interactive arrivals squeeze them out.
        let mut cfg = SchedConfig::new(1);
        cfg.shed_depth = [6, 3, 3];
        let s = Arc::new(Scheduler::new(cfg));
        let gate = s.admit(&AdmitRequest::interactive("gate")).unwrap();
        let mut handles = Vec::new();
        for (i, p) in [
            Priority::Background,
            Priority::Background,
            Priority::Batch,
            Priority::Batch,
        ]
        .into_iter()
        .enumerate()
        {
            let s2 = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                s2.admit(&AdmitRequest::new(p, format!("s{i}"))).map(drop)
            }));
            // The 4th arrival (2nd Batch) finds depth 3 ≥ the Background
            // watermark and evicts a Background ticket before enqueuing.
            if i < 3 {
                spin_until(|| s.queued() == i + 1);
            } else {
                spin_until(|| s.shed_log().len() == 1);
            }
        }
        // Interactive arrivals evict the remaining Background ticket first,
        // then Batch tickets, and are themselves always admitted.
        let mut front = Vec::new();
        for i in 0..3 {
            let s2 = Arc::clone(&s);
            front.push(std::thread::spawn(move || {
                s2.admit(&AdmitRequest::interactive(format!("c{i}")))
                    .map(|t| {
                        std::thread::sleep(Duration::from_millis(1));
                        drop(t)
                    })
            }));
            spin_until(|| s.shed_log().len() == i + 2);
        }
        drop(gate);
        for h in front {
            assert!(
                h.join().unwrap().is_ok(),
                "interactive must never be shed here"
            );
        }
        let outcomes: Vec<bool> = handles
            .into_iter()
            .map(|h| h.join().unwrap().is_ok())
            .collect();
        assert_eq!(
            outcomes,
            [false, false, false, false],
            "all bg/batch tickets shed"
        );
        assert_eq!(
            s.shed_log(),
            vec![
                Priority::Background,
                Priority::Background,
                Priority::Batch,
                Priority::Batch
            ]
        );
        let st = s.stats();
        assert_eq!(st.shed[Priority::Interactive.idx()], 0);
        assert_eq!(st.admitted[Priority::Interactive.idx()], 4); // gate + 3 arrivals
    }

    #[test]
    fn deadline_expires_while_queued() {
        let s = Scheduler::new(SchedConfig::new(1));
        let gate = s.admit(&AdmitRequest::interactive("gate")).unwrap();
        let err = s
            .admit(&AdmitRequest::interactive("late").with_deadline(Duration::from_millis(20)))
            .unwrap_err();
        assert!(matches!(err, TvError::Timeout(_)), "got {err:?}");
        let st = s.stats();
        assert_eq!(st.deadline_shed[Priority::Interactive.idx()], 1);
        assert_eq!(st.queued, 0, "expired ticket must leave the queue");
        drop(gate);
        // The slot is free again and nothing dangles.
        let t = s.admit(&AdmitRequest::interactive("next")).unwrap();
        drop(t);
        assert_eq!(s.running(), 0);
    }

    #[test]
    fn metrics_follow_transitions() {
        let reg = Registry::new();
        let s = Scheduler::new(SchedConfig::new(1));
        s.bind_obs(&reg);
        let t = s.admit(&AdmitRequest::interactive("m")).unwrap();
        let snap = reg.snapshot();
        match snap.get("tv_sched_running") {
            Some(tabviz_obs::MetricValue::Gauge(g)) => assert_eq!(*g, 1),
            other => panic!("missing running gauge: {other:?}"),
        }
        drop(t);
        match reg.snapshot().get("tv_sched_admitted_total_interactive") {
            Some(tabviz_obs::MetricValue::Counter(c)) => assert_eq!(*c, 1),
            other => panic!("missing admitted counter: {other:?}"),
        }
    }
}
