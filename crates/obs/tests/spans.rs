//! Span nesting and ordering determinism: events are recorded at span
//! *completion* (children before parents), but collection restores entry
//! order and depths are exact.

use std::time::Duration;
use tabviz_obs::{collect_since, event, mark, span, stage};

#[test]
fn nesting_depths_and_entry_order_are_deterministic() {
    let m = mark();
    {
        let _root = span(stage::REMOTE_EXEC);
        {
            let mut acquire = span(stage::POOL_ACQUIRE);
            acquire.label("opened");
        }
        {
            let mut post = span(stage::POST_PROCESS);
            post.detail(42);
            let _inner = span(stage::TDE_EXEC);
        }
    }
    let events = collect_since(&m);
    let shape: Vec<(&str, u32)> = events.iter().map(|e| (e.stage, e.depth)).collect();
    assert_eq!(
        shape,
        [
            (stage::REMOTE_EXEC, 0),
            (stage::POOL_ACQUIRE, 1),
            (stage::POST_PROCESS, 1),
            (stage::TDE_EXEC, 2),
        ]
    );
    assert_eq!(events[1].label, Some("opened"));
    assert_eq!(events[2].detail, Some(42));
    // Entry order is strictly increasing even though completion order was
    // child-first.
    for w in events.windows(2) {
        assert!(w[0].enter_seq < w[1].enter_seq);
    }
    // The parent span encloses its children in time.
    assert!(events[0].dur >= events[1].dur + events[3].dur);
}

#[test]
fn instantaneous_events_interleave_in_order() {
    let m = mark();
    {
        let _s = span(stage::REMOTE_EXEC);
        event(stage::RETRY, None, Some(1));
        event(
            stage::FAULT_INJECTED,
            Some("transient_query_failure"),
            Some(7),
        );
    }
    let events = collect_since(&m);
    let stages: Vec<&str> = events.iter().map(|e| e.stage).collect();
    assert_eq!(
        stages,
        [stage::REMOTE_EXEC, stage::RETRY, stage::FAULT_INJECTED]
    );
    assert_eq!(events[1].depth, 1);
    assert_eq!(events[1].dur, Duration::ZERO);
    assert_eq!(events[2].label, Some("transient_query_failure"));
    assert_eq!(events[2].detail, Some(7));
}

#[test]
fn marks_scope_collection_and_do_not_drain() {
    {
        let _old = span(stage::CACHE_LOOKUP);
    }
    let m1 = mark();
    {
        let _a = span(stage::COMPILE);
    }
    let m2 = mark();
    {
        let _b = span(stage::WIDEN);
    }
    // m2 sees only the later span; m1 still sees both (copy, not drain).
    let later = collect_since(&m2);
    assert_eq!(later.len(), 1);
    assert_eq!(later[0].stage, stage::WIDEN);
    let both = collect_since(&m1);
    let stages: Vec<&str> = both.iter().map(|e| e.stage).collect();
    assert_eq!(stages, [stage::COMPILE, stage::WIDEN]);
}

#[test]
fn ring_is_bounded() {
    let m = mark();
    for _ in 0..(tabviz_obs::span::RING_CAPACITY + 100) {
        event(stage::RETRY, None, None);
    }
    let events = collect_since(&m);
    assert_eq!(events.len(), tabviz_obs::span::RING_CAPACITY);
    assert!(tabviz_obs::dropped_events() >= 100);
}

#[test]
fn profiles_assemble_from_events() {
    use std::time::Instant;
    use tabviz_obs::{assemble, ProfileOutcome};
    let t0 = Instant::now();
    let m = mark();
    {
        let _root = span(stage::REMOTE_EXEC);
        event(stage::FAULT_INJECTED, Some("connection_drop"), Some(3));
        event(stage::RETRY, None, Some(1));
    }
    let events = collect_since(&m);
    let p = assemble(
        "(scan flights)",
        "faa",
        ProfileOutcome::Remote,
        1,
        t0,
        t0.elapsed(),
        &events,
    );
    assert_eq!(p.outcome, ProfileOutcome::Remote);
    assert!(p.has_stage(stage::REMOTE_EXEC));
    assert_eq!(p.faults.len(), 1);
    assert_eq!(p.faults[0].site, "connection_drop");
    assert_eq!(p.faults[0].ordinal, 3);
    assert!(p.render().contains("fault connection_drop#3"));
}
