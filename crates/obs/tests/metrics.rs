//! Histogram bucket boundaries and quantile extraction checked against
//! exact sorted-sample oracles, plus registry concurrency: N threads × M
//! increments must sum exactly.

use tabviz_obs::{Histogram, MetricValue, Registry, HIST_BUCKETS};

/// Oracle: the exact q-quantile of a sample set is the value at rank
/// ceil(q·n); the histogram must report the upper bound of the bucket
/// containing that value (fixed log buckets cannot be sample-exact).
fn oracle_bucket_upper(samples: &[u64], q: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Histogram::bucket_upper(Histogram::bucket_index(sorted[rank - 1]))
}

#[test]
fn bucket_boundaries_are_powers_of_two() {
    // Bucket 0 covers [0, 1]µs; bucket i covers (2^(i-1), 2^i]µs.
    assert_eq!(Histogram::bucket_index(0), 0);
    assert_eq!(Histogram::bucket_index(1), 0);
    assert_eq!(Histogram::bucket_index(2), 1);
    assert_eq!(Histogram::bucket_index(3), 2);
    assert_eq!(Histogram::bucket_index(4), 2);
    assert_eq!(Histogram::bucket_index(5), 3);
    for i in 1..HIST_BUCKETS - 1 {
        let upper = Histogram::bucket_upper(i);
        // The upper bound itself lands in bucket i; one past it does not.
        assert_eq!(Histogram::bucket_index(upper), i, "upper of bucket {i}");
        assert_eq!(Histogram::bucket_index(upper + 1), i + 1);
    }
    // Values beyond the last finite bucket land in the +Inf bucket.
    assert_eq!(Histogram::bucket_index(u64::MAX), HIST_BUCKETS - 1);
    assert_eq!(Histogram::bucket_upper(HIST_BUCKETS - 1), u64::MAX);
}

#[test]
fn quantiles_match_sorted_sample_oracle() {
    // Deterministic but irregular sample: a quadratic sweep spanning many
    // buckets, from sub-µs to ~16s.
    let samples: Vec<u64> = (0..500u64).map(|i| (i * i * 67) % 16_000_000).collect();
    let h = Histogram::new();
    for &s in &samples {
        h.observe_micros(s);
    }
    assert_eq!(h.count(), samples.len() as u64);
    assert_eq!(h.sum_micros(), samples.iter().sum::<u64>());
    for q in [0.0, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0] {
        assert_eq!(
            h.quantile_micros(q),
            Some(oracle_bucket_upper(&samples, q)),
            "quantile {q}"
        );
    }
}

#[test]
fn quantiles_on_single_bucket_and_empty() {
    let h = Histogram::new();
    assert_eq!(h.quantile_micros(0.5), None);
    for _ in 0..10 {
        h.observe_micros(700); // bucket (512, 1024]
    }
    assert_eq!(h.quantile_micros(0.01), Some(1024));
    assert_eq!(h.quantile_micros(0.99), Some(1024));
}

#[test]
fn registry_concurrent_increments_sum_exactly() {
    const THREADS: usize = 8;
    const INCS: u64 = 10_000;
    let reg = Registry::new();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let reg = reg.clone();
            scope.spawn(move || {
                let c = reg.counter("tv_test_hits_total");
                let h = reg.histogram("tv_test_latency_seconds");
                for i in 0..INCS {
                    c.inc();
                    h.observe_micros(i % 1000);
                }
            });
        }
    });
    let total = THREADS as u64 * INCS;
    assert_eq!(reg.counter("tv_test_hits_total").get(), total);
    assert_eq!(reg.histogram("tv_test_latency_seconds").count(), total);
}

#[test]
fn snapshot_is_sorted_and_stable() {
    let reg = Registry::new();
    reg.counter("tv_b_total").add(2);
    reg.gauge("tv_a_size").set(-3);
    reg.histogram("tv_c_seconds").observe_micros(10);
    let snap = reg.snapshot();
    let keys: Vec<&String> = snap.keys().collect();
    assert_eq!(keys, ["tv_a_size", "tv_b_total", "tv_c_seconds"]);
    match &snap["tv_b_total"] {
        MetricValue::Counter(v) => assert_eq!(*v, 2),
        other => panic!("wrong kind: {other:?}"),
    }
    match &snap["tv_a_size"] {
        MetricValue::Gauge(v) => assert_eq!(*v, -3),
        other => panic!("wrong kind: {other:?}"),
    }
    match &snap["tv_c_seconds"] {
        MetricValue::Histogram(h) => {
            assert_eq!(h.count, 1);
            assert_eq!(h.p50_micros, Some(16));
        }
        other => panic!("wrong kind: {other:?}"),
    }
}

#[test]
fn render_text_exposition_shape() {
    let reg = Registry::new();
    reg.counter("tv_core_queries_total").add(5);
    reg.gauge("tv_backend_pool_open").set(3);
    let h = reg.histogram("tv_core_query_seconds");
    h.observe_micros(100);
    h.observe_micros(2_000_000);
    let text = reg.render_text();
    assert!(text.contains("# TYPE tv_core_queries_total counter"));
    assert!(text.contains("tv_core_queries_total 5"));
    assert!(text.contains("# TYPE tv_backend_pool_open gauge"));
    assert!(text.contains("tv_backend_pool_open 3"));
    assert!(text.contains("# TYPE tv_core_query_seconds histogram"));
    assert!(text.contains("le=\"+Inf\"} 2"));
    assert!(text.contains("tv_core_query_seconds_count 2"));
    // Cumulative: the bucket holding the 2s observation reports both.
    assert!(text.contains("le=\"2.097152\"} 2"), "{text}");
}

#[test]
fn kind_mismatch_returns_detached_handle() {
    let reg = Registry::new();
    reg.counter("tv_x").inc();
    // Asking for the same name as a gauge must not panic or clobber.
    let g = reg.gauge("tv_x");
    g.set(99);
    match &reg.snapshot()["tv_x"] {
        MetricValue::Counter(v) => assert_eq!(*v, 1),
        other => panic!("wrong kind: {other:?}"),
    }
}
