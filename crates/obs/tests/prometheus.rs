//! Prometheus text-exposition conformance for [`Registry::render_text`]:
//! every metric family carries `# HELP` and `# TYPE` lines, histogram
//! buckets are cumulative with a `+Inf` bucket equal to `_count`, and no
//! series is emitted twice. Scrapers reject malformed expositions outright,
//! so this is pinned by test rather than by eyeball.

use std::collections::{HashMap, HashSet};
use std::time::Duration;
use tabviz_obs::Registry;

/// A parsed exposition: family name -> (type, help, sample lines).
#[derive(Default)]
struct Exposition {
    types: HashMap<String, String>,
    helps: HashMap<String, String>,
    /// Sample lines keyed by full series identity (name + labels).
    samples: Vec<(String, f64)>,
}

fn parse(text: &str) -> Exposition {
    let mut exp = Exposition::default();
    for line in text.lines() {
        assert!(!line.trim().is_empty(), "blank line in exposition");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP has name and text");
            assert!(
                exp.helps
                    .insert(name.to_string(), help.to_string())
                    .is_none(),
                "duplicate HELP for {name}"
            );
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, ty) = rest.split_once(' ').expect("TYPE has name and kind");
            assert!(
                matches!(ty, "counter" | "gauge" | "histogram"),
                "unknown TYPE '{ty}' for {name}"
            );
            assert!(
                exp.types.insert(name.to_string(), ty.to_string()).is_none(),
                "duplicate TYPE for {name}"
            );
        } else {
            assert!(!line.starts_with('#'), "unrecognized comment line: {line}");
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            let value: f64 = value.parse().unwrap_or_else(|_| {
                panic!("unparsable sample value in line: {line}");
            });
            exp.samples.push((series.to_string(), value));
        }
    }
    exp
}

/// Family a sample series belongs to: strip labels, then the histogram
/// suffixes.
fn family_of(series: &str) -> &str {
    let base = series.split('{').next().unwrap();
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = base.strip_suffix(suffix) {
            return stripped;
        }
    }
    base
}

fn populated_registry() -> Registry {
    let reg = Registry::new();
    reg.describe("tv_test_queries_total", "Queries executed.");
    let c = reg.counter("tv_test_queries_total");
    c.inc();
    c.add(4);
    reg.counter("tv_test_undocumented_total").inc();
    let g = reg.gauge("tv_test_inflight");
    g.set(3);
    g.add(-1);
    reg.describe("tv_test_latency_seconds", "End-to-end latency.");
    let h = reg.histogram("tv_test_latency_seconds");
    for micros in [90, 900, 9_000, 90_000, 900_000, 9_000_000] {
        h.observe(Duration::from_micros(micros));
    }
    // An empty histogram must still expose a consistent family.
    reg.histogram("tv_test_empty_seconds");
    reg
}

#[test]
fn every_family_has_help_and_type_lines() {
    let text = populated_registry().render_text();
    let exp = parse(&text);
    let families: HashSet<&str> = exp.samples.iter().map(|(s, _)| family_of(s)).collect();
    assert!(families.len() >= 5);
    for family in &families {
        assert!(
            exp.types.contains_key(*family),
            "family {family} missing # TYPE"
        );
        assert!(
            exp.helps.contains_key(*family),
            "family {family} missing # HELP"
        );
    }
    // HELP precedes TYPE precedes samples within each family block.
    for family in &families {
        let help_at = text.find(&format!("# HELP {family} ")).unwrap();
        let type_at = text.find(&format!("# TYPE {family} ")).unwrap();
        // Anchor sample lookups to line starts: a family's default help
        // text legitimately repeats the metric name.
        let sample_at = text
            .find(&format!("\n{family} "))
            .unwrap_or(usize::MAX)
            .min(
                text.find(&format!("\n{family}_bucket{{"))
                    .unwrap_or(usize::MAX),
            );
        assert!(help_at < type_at, "{family}: HELP must precede TYPE");
        assert!(type_at < sample_at, "{family}: TYPE must precede samples");
    }
    // Described metrics expose their text; undescribed ones get a default.
    assert_eq!(exp.helps["tv_test_queries_total"], "Queries executed.");
    assert!(exp.helps["tv_test_undocumented_total"].contains("tv_test_undocumented_total"));
}

#[test]
fn histogram_buckets_are_cumulative_and_close_with_inf() {
    let text = populated_registry().render_text();
    let exp = parse(&text);
    for family in ["tv_test_latency_seconds", "tv_test_empty_seconds"] {
        assert_eq!(exp.types[family], "histogram");
        let buckets: Vec<(&str, f64)> = exp
            .samples
            .iter()
            .filter_map(|(s, v)| {
                s.strip_prefix(&format!("{family}_bucket{{le=\""))
                    .map(|rest| (rest.trim_end_matches("\"}"), *v))
            })
            .collect();
        assert!(!buckets.is_empty(), "{family}: no buckets");
        let mut prev = 0.0;
        let mut prev_le = f64::MIN;
        for (le, cum) in &buckets {
            assert!(
                *cum >= prev,
                "{family}: bucket le={le} not cumulative ({cum} < {prev})"
            );
            let le_val = if *le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>().unwrap_or_else(|_| {
                    panic!("{family}: unparsable bucket bound {le}");
                })
            };
            assert!(le_val > prev_le, "{family}: bucket bounds not increasing");
            prev = *cum;
            prev_le = le_val;
        }
        let (last_le, last_cum) = buckets.last().unwrap();
        assert_eq!(*last_le, "+Inf", "{family}: final bucket must be +Inf");
        let count = exp
            .samples
            .iter()
            .find(|(s, _)| s == &format!("{family}_count"))
            .map(|(_, v)| *v)
            .expect("histogram _count present");
        let sum = exp
            .samples
            .iter()
            .find(|(s, _)| s == &format!("{family}_sum"))
            .map(|(_, v)| *v)
            .expect("histogram _sum present");
        assert_eq!(*last_cum, count, "{family}: +Inf bucket must equal _count");
        assert!(sum >= 0.0);
    }
    // Observed values landed in finite buckets, not just +Inf.
    let finite_nonzero = exp.samples.iter().any(|(s, v)| {
        s.starts_with("tv_test_latency_seconds_bucket") && !s.contains("+Inf") && *v > 0.0
    });
    assert!(finite_nonzero, "observations must land in finite buckets");
}

#[test]
fn no_duplicate_series_and_values_match_registry() {
    let reg = populated_registry();
    let text = reg.render_text();
    let exp = parse(&text);
    let mut seen = HashSet::new();
    for (series, _) in &exp.samples {
        assert!(seen.insert(series.clone()), "duplicate series {series}");
    }
    let value_of = |series: &str| -> f64 {
        exp.samples
            .iter()
            .find(|(s, _)| s == series)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing series {series}"))
    };
    assert_eq!(value_of("tv_test_queries_total"), 5.0);
    assert_eq!(value_of("tv_test_inflight"), 2.0);
    assert_eq!(value_of("tv_test_latency_seconds_count"), 6.0);
    assert_eq!(value_of("tv_test_empty_seconds_count"), 0.0);

    // Rendering is a pure read: a second scrape is byte-identical.
    assert_eq!(text, reg.render_text());
}

/// Label values are escaped per the exposition format (`\\`, `\"`, `\n`)
/// and a series identity (name + label set) is emitted at most once per
/// scrape, no matter how many writers try to emit it.
#[test]
fn label_values_escape_and_series_dedup() {
    use tabviz_obs::{escape_label_value, TextEmitter};

    assert_eq!(escape_label_value("plain"), "plain");
    assert_eq!(escape_label_value("a\\b"), "a\\\\b");
    assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
    assert_eq!(escape_label_value("two\nlines"), "two\\nlines");

    let mut em = TextEmitter::new();
    em.family("tv_test_labeled_total", "counter", "Labeled counter.");
    let hostile = "node\"0\"\\\nend";
    assert!(em.sample("tv_test_labeled_total", &[("node", hostile)], "1"));
    // Same identity again: suppressed, counted as a duplicate.
    assert!(!em.sample("tv_test_labeled_total", &[("node", hostile)], "2"));
    // A different label value is a different series.
    assert!(em.sample("tv_test_labeled_total", &[("node", "node-1")], "3"));
    assert_eq!(em.duplicates(), 1);
    let text = em.into_text();

    // The hostile value round-trips as one well-formed line.
    let expected = "tv_test_labeled_total{node=\"node\\\"0\\\"\\\\\\nend\"} 1";
    assert!(
        text.lines().any(|l| l == expected),
        "escaped series line present:\n{text}"
    );
    parse(&text);
    assert_eq!(
        text.lines()
            .filter(|l| l.starts_with("tv_test_labeled_total{"))
            .count(),
        2,
        "exactly two distinct series:\n{text}"
    );
}

/// Help text is escaped per the exposition format, so multi-line or
/// backslash-bearing descriptions cannot corrupt the line protocol.
#[test]
fn help_text_escapes_newlines_and_backslashes() {
    let reg = Registry::new();
    reg.describe("tv_test_escaped_total", "line one\nline two \\ done");
    reg.counter("tv_test_escaped_total").inc();
    let text = reg.render_text();
    assert!(text.contains("# HELP tv_test_escaped_total line one\\nline two \\\\ done"));
    // Still parses cleanly line-by-line.
    parse(&text);
}
