//! Per-query response-time profiles: the paper's Sect. 3 pipeline stages
//! (cache lookup → compile → pool acquire → remote execution → local
//! post-processing) assembled into one timeline per query, with retry
//! counts, injected-fault attribution, and a terminal outcome.

use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::metrics::Registry;
use crate::recorder::{FlightRecorder, FlightRecorderConfig};
use crate::span::SpanEvent;
use crate::stage;

/// How a query was ultimately answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProfileOutcome {
    /// Served from a cache (intelligent or literal).
    Hit,
    /// Served by post-processing a widened query's remote result.
    Derived,
    /// Executed against the remote backend.
    Remote,
    /// Backend unavailable; a stale cached result was served.
    DegradedStale,
    /// The query returned an error.
    Failed,
}

impl fmt::Display for ProfileOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProfileOutcome::Hit => "hit",
            ProfileOutcome::Derived => "derived",
            ProfileOutcome::Remote => "remote",
            ProfileOutcome::DegradedStale => "degraded_stale",
            ProfileOutcome::Failed => "failed",
        };
        f.write_str(s)
    }
}

/// One stage in a profile's timeline.
#[derive(Clone, Debug)]
pub struct StageSpan {
    pub stage: &'static str,
    pub label: Option<&'static str>,
    pub detail: Option<u64>,
    /// Decision reason code, if the stage carried one (see
    /// [`crate::reason`]).
    pub reason: Option<&'static str>,
    /// Start offset from the beginning of the query.
    pub offset: Duration,
    pub dur: Duration,
    pub depth: u32,
}

/// An injected fault that fired during this query (see `FaultPlan`):
/// `site` names the injection site, `ordinal` is the seed-roll index —
/// together with the plan seed they reproduce the exact fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultTag {
    pub site: &'static str,
    pub ordinal: u64,
}

/// The response-time profile of one query.
#[derive(Clone, Debug)]
pub struct QueryProfile {
    /// Canonical query text.
    pub query: String,
    /// Data source name.
    pub source: String,
    pub outcome: ProfileOutcome,
    pub total: Duration,
    /// Transient-failure retries spent by this query.
    pub retries: u64,
    /// Timeline in entry order (parents precede children).
    pub stages: Vec<StageSpan>,
    /// Injected faults observed while this query ran.
    pub faults: Vec<FaultTag>,
}

impl QueryProfile {
    /// First stage with this name, if any.
    pub fn stage(&self, name: &str) -> Option<&StageSpan> {
        self.stages.iter().find(|s| s.stage == name)
    }

    pub fn has_stage(&self, name: &str) -> bool {
        self.stage(name).is_some()
    }

    /// Sum of durations over all stages with this name.
    pub fn stage_total(&self, name: &str) -> Duration {
        self.stages
            .iter()
            .filter(|s| s.stage == name)
            .map(|s| s.dur)
            .sum()
    }

    /// Human-readable timeline, one stage per line, indented by depth.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "query [{}] {:?} retries={} :: {}",
            self.outcome, self.total, self.retries, self.query
        );
        for s in &self.stages {
            let _ = write!(
                out,
                "  {:>9.3}ms {}{}",
                s.offset.as_secs_f64() * 1e3,
                "  ".repeat(s.depth as usize),
                s.stage
            );
            if let Some(l) = s.label {
                let _ = write!(out, "/{l}");
            }
            if let Some(d) = s.detail {
                let _ = write!(out, " #{d}");
            }
            if let Some(r) = s.reason {
                let _ = write!(out, " [{r}]");
            }
            let _ = writeln!(out, " {:>9.3}ms", s.dur.as_secs_f64() * 1e3);
        }
        for f in &self.faults {
            let _ = writeln!(out, "  fault {}#{}", f.site, f.ordinal);
        }
        out
    }
}

/// Build a [`QueryProfile`] from the events collected since the query
/// started. Fault events (stage [`stage::FAULT_INJECTED`]) become
/// [`FaultTag`]s; everything else becomes a timeline stage.
pub fn assemble(
    query: impl Into<String>,
    source: impl Into<String>,
    outcome: ProfileOutcome,
    retries: u64,
    started: Instant,
    total: Duration,
    events: &[SpanEvent],
) -> QueryProfile {
    let mut stages = Vec::with_capacity(events.len());
    let mut faults = Vec::new();
    for e in events {
        if e.stage == stage::FAULT_INJECTED {
            faults.push(FaultTag {
                site: e.label.unwrap_or("unknown"),
                ordinal: e.detail.unwrap_or(0),
            });
        }
        stages.push(StageSpan {
            stage: e.stage,
            label: e.label,
            detail: e.detail,
            reason: e.reason,
            offset: e.start.saturating_duration_since(started),
            dur: e.dur,
            depth: e.depth,
        });
    }
    QueryProfile {
        query: query.into(),
        source: source.into(),
        outcome,
        total,
        retries,
        stages,
        faults,
    }
}

/// Bounded store of the most recent query profiles.
pub struct ProfileStore {
    cap: usize,
    inner: Mutex<VecDeque<QueryProfile>>,
}

impl ProfileStore {
    pub fn new(cap: usize) -> Self {
        ProfileStore {
            cap: cap.max(1),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    pub fn record(&self, profile: QueryProfile) {
        let mut q = self.inner.lock();
        if q.len() >= self.cap {
            q.pop_front();
        }
        q.push_back(profile);
    }

    /// Most recently recorded profile.
    pub fn last(&self) -> Option<QueryProfile> {
        self.inner.lock().back().cloned()
    }

    /// All retained profiles, oldest first.
    pub fn all(&self) -> Vec<QueryProfile> {
        self.inner.lock().iter().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    pub fn clear(&self) {
        self.inner.lock().clear();
    }
}

impl Default for ProfileStore {
    fn default() -> Self {
        ProfileStore::new(256)
    }
}

/// One processor's observability surface: a metrics [`Registry`], a
/// bounded [`ProfileStore`], and the query [`FlightRecorder`].
/// Deliberately per-instance rather than global so concurrent processors
/// (and tests) never pollute each other.
pub struct Obs {
    pub registry: Registry,
    pub profiles: ProfileStore,
    pub recorder: FlightRecorder,
    /// Streaming per-query-class latency fingerprints; the root-cause
    /// analyzer diffs a slow trace against its class baseline.
    pub baselines: crate::analyze::ClassBaselines,
}

impl Default for Obs {
    fn default() -> Self {
        let registry = Registry::new();
        let recorder = FlightRecorder::with_registry(FlightRecorderConfig::default(), &registry);
        Obs {
            registry,
            profiles: ProfileStore::default(),
            recorder,
            baselines: crate::analyze::ClassBaselines::new(),
        }
    }
}

impl Obs {
    pub fn new() -> Self {
        Obs::default()
    }
}
