//! The query flight recorder: a bounded store of recently completed
//! cross-thread traces plus automatic capture of slow queries.
//!
//! Recording happens once per query, after execution completes (the cold
//! path); the hot path — spans on executing threads — never touches the
//! recorder. Memory is bounded three ways: per-trace event caps
//! ([`crate::trace::TRACE_EVENT_CAPACITY`]), ring capacities for the
//! recent and slow stores, and an approximate total-bytes budget. Evicted
//! traces increment a counter; retained bytes are exported through the
//! `tv_obs_recorder_bytes` gauge.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::metrics::{Counter, Gauge, Registry};
use crate::profile::ProfileOutcome;
use crate::span::SpanEvent;
use crate::trace::FinishedTrace;

/// One completed query's flight record: identity, outcome, and the full
/// cross-thread event tree.
#[derive(Clone, Debug)]
pub struct RecordedTrace {
    pub trace_id: u64,
    /// Enclosing trace (batch / maintenance pass), if any.
    pub parent_trace: Option<u64>,
    /// Canonical query text.
    pub query: String,
    /// Data source name.
    pub source: String,
    /// Query-class key for baseline fingerprint joins (see
    /// [`crate::analyze::ClassBaselines`]); empty when unclassified.
    pub class: String,
    pub outcome: ProfileOutcome,
    pub total: Duration,
    pub started: Instant,
    /// Entry-ordered, depth-annotated event tree (see
    /// [`crate::trace::FinishedTrace`]).
    pub events: Vec<SpanEvent>,
    /// Events lost to the per-trace buffer cap.
    pub dropped_events: u64,
}

impl RecordedTrace {
    /// Build a record from a finished trace plus query identity.
    pub fn from_finished(
        finished: FinishedTrace,
        query: impl Into<String>,
        source: impl Into<String>,
        outcome: ProfileOutcome,
    ) -> Self {
        RecordedTrace {
            trace_id: finished.trace_id,
            parent_trace: finished.parent_trace,
            query: query.into(),
            source: source.into(),
            class: String::new(),
            outcome,
            total: finished.total,
            started: finished.started,
            events: finished.events,
            dropped_events: finished.dropped,
        }
    }

    /// Attach the query-class key used for baseline fingerprint joins.
    pub fn with_class(mut self, class: impl Into<String>) -> Self {
        self.class = class.into();
        self
    }

    /// Approximate retained heap footprint, used for the bytes budget.
    pub fn approx_bytes(&self) -> u64 {
        (std::mem::size_of::<Self>()
            + self.query.len()
            + self.source.len()
            + self.class.len()
            + self.events.capacity() * std::mem::size_of::<SpanEvent>()) as u64
    }

    /// All decision reason codes attributed to this query, in entry order.
    pub fn reasons(&self) -> Vec<&'static str> {
        self.events.iter().filter_map(|e| e.reason).collect()
    }

    /// First event for a stage, if any.
    pub fn stage(&self, name: &str) -> Option<&SpanEvent> {
        self.events.iter().find(|e| e.stage == name)
    }

    pub fn has_stage(&self, name: &str) -> bool {
        self.stage(name).is_some()
    }

    /// Sum of durations over all events with this stage name.
    pub fn stage_total(&self, name: &str) -> Duration {
        self.events
            .iter()
            .filter(|e| e.stage == name)
            .map(|e| e.dur)
            .sum()
    }

    /// Distinct thread lanes that contributed events.
    pub fn lanes(&self) -> Vec<u64> {
        let mut lanes: Vec<u64> = self.events.iter().map(|e| e.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        lanes
    }
}

/// Tunables for a [`FlightRecorder`].
#[derive(Clone, Copy, Debug)]
pub struct FlightRecorderConfig {
    /// Completed traces retained in the recent ring.
    pub recent_capacity: usize,
    /// Slow traces retained in the slow ring.
    pub slow_capacity: usize,
    /// Queries at or above this total duration are also captured in the
    /// slow ring (surviving recent-ring eviction).
    pub slow_threshold: Duration,
    /// Approximate total bytes budget across both rings; oldest recent
    /// traces are evicted first when exceeded.
    pub max_bytes: u64,
}

impl Default for FlightRecorderConfig {
    fn default() -> Self {
        FlightRecorderConfig {
            recent_capacity: 64,
            slow_capacity: 32,
            slow_threshold: Duration::from_millis(500),
            max_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Bounded store of completed query traces; see the module docs.
pub struct FlightRecorder {
    cfg: FlightRecorderConfig,
    enabled: AtomicBool,
    slow_threshold_micros: AtomicU64,
    recent: Mutex<VecDeque<Arc<RecordedTrace>>>,
    slow: Mutex<VecDeque<Arc<RecordedTrace>>>,
    /// Traces evicted from a ring while a histogram exemplar still exports
    /// their id (see [`Registry::exemplar_trace_ids`]): parked here so the
    /// exported id keeps resolving, released when the exemplar rotates out.
    pinned: Mutex<std::collections::HashMap<u64, Arc<RecordedTrace>>>,
    /// Registry whose exemplar slots define the pin set.
    pin_registry: Option<Registry>,
    bytes: AtomicU64,
    bytes_gauge: Gauge,
    pinned_gauge: Gauge,
    evictions: Counter,
}

impl FlightRecorder {
    pub fn new(cfg: FlightRecorderConfig) -> Self {
        let slow_micros = cfg.slow_threshold.as_micros().min(u64::MAX as u128) as u64;
        FlightRecorder {
            cfg,
            enabled: AtomicBool::new(true),
            slow_threshold_micros: AtomicU64::new(slow_micros),
            recent: Mutex::new(VecDeque::new()),
            slow: Mutex::new(VecDeque::new()),
            pinned: Mutex::new(std::collections::HashMap::new()),
            pin_registry: None,
            bytes: AtomicU64::new(0),
            bytes_gauge: Gauge::new(),
            pinned_gauge: Gauge::new(),
            evictions: Counter::new(),
        }
    }

    /// [`FlightRecorder::new`] with the bytes / pinned gauges and the
    /// eviction counter registered on `registry` (`tv_obs_recorder_bytes`,
    /// `tv_obs_recorder_pinned`, `tv_obs_recorder_evictions_total`), and —
    /// the other direction of the same contract — `registry`'s histogram
    /// exemplar slots adopted as this recorder's pin set: a trace whose id
    /// those slots export survives ring eviction until the exemplar
    /// rotates out.
    pub fn with_registry(cfg: FlightRecorderConfig, registry: &Registry) -> Self {
        let mut rec = FlightRecorder::new(cfg);
        registry.describe(
            "tv_obs_recorder_bytes",
            "Approximate bytes retained by the query flight recorder",
        );
        registry.describe(
            "tv_obs_recorder_evictions_total",
            "Traces evicted from the flight recorder rings",
        );
        registry.describe(
            "tv_obs_recorder_pinned",
            "Evicted traces kept alive because a histogram exemplar still references them",
        );
        rec.bytes_gauge = registry.gauge("tv_obs_recorder_bytes");
        rec.evictions = registry.counter("tv_obs_recorder_evictions_total");
        rec.pinned_gauge = registry.gauge("tv_obs_recorder_pinned");
        rec.pin_registry = Some(registry.clone());
        rec
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_slow_threshold(&self, t: Duration) {
        self.slow_threshold_micros.store(
            t.as_micros().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    pub fn slow_threshold(&self) -> Duration {
        Duration::from_micros(self.slow_threshold_micros.load(Ordering::Relaxed))
    }

    /// The current pin set: trace ids a registry exemplar slot exports.
    fn pin_set(&self) -> std::collections::HashSet<u64> {
        self.pin_registry
            .as_ref()
            .map(|r| r.exemplar_trace_ids())
            .unwrap_or_default()
    }

    /// Store a completed trace (no-op when disabled or the trace captured
    /// nothing). Cold path: called once per query after execution.
    pub fn record(&self, trace: RecordedTrace) {
        if !self.enabled() || trace.trace_id == 0 {
            return;
        }
        // A ring-evicted trace still referenced by an exemplar is parked
        // (bytes stay held, id stays resolvable) instead of dropped.
        fn park_or_free(
            pins: &std::collections::HashSet<u64>,
            pinned: &mut std::collections::HashMap<u64, Arc<RecordedTrace>>,
            freed: &mut u64,
            old: Arc<RecordedTrace>,
        ) {
            let b = old.approx_bytes();
            if pins.contains(&old.trace_id) {
                // A second ring's copy of an already-parked trace frees
                // its share; the park holds exactly one copy's bytes.
                if pinned.insert(old.trace_id, old).is_some() {
                    *freed += b;
                }
            } else {
                *freed += b;
            }
        }
        let is_slow = trace.total >= self.slow_threshold();
        let bytes = trace.approx_bytes();
        let trace = Arc::new(trace);
        let pins = self.pin_set();
        let mut freed = 0u64;
        let mut pinned = self.pinned.lock();
        // Exemplar rotation: a parked trace whose id left every exemplar
        // slot is no longer reachable from any exposition — release it.
        pinned.retain(|id, t| {
            if pins.contains(id) {
                true
            } else {
                freed += t.approx_bytes();
                false
            }
        });
        {
            let mut recent = self.recent.lock();
            recent.push_back(trace.clone());
            while recent.len() > self.cfg.recent_capacity {
                if let Some(old) = recent.pop_front() {
                    self.evictions.inc();
                    park_or_free(&pins, &mut pinned, &mut freed, old);
                }
            }
            // Bytes budget: evict oldest recent traces first.
            let mut held = (self.bytes.load(Ordering::Relaxed) + bytes).saturating_sub(freed);
            while held > self.cfg.max_bytes && recent.len() > 1 {
                if let Some(old) = recent.pop_front() {
                    let b = old.approx_bytes();
                    self.evictions.inc();
                    let before = freed;
                    park_or_free(&pins, &mut pinned, &mut freed, old);
                    held -= (freed - before).min(held).min(b);
                }
            }
        }
        let mut slow_bytes = 0u64;
        if is_slow {
            let mut slow = self.slow.lock();
            slow.push_back(trace);
            slow_bytes += bytes;
            while slow.len() > self.cfg.slow_capacity {
                if let Some(old) = slow.pop_front() {
                    self.evictions.inc();
                    park_or_free(&pins, &mut pinned, &mut freed, old);
                }
            }
        }
        self.pinned_gauge.set(pinned.len() as i64);
        drop(pinned);
        let added = bytes + slow_bytes;
        let prev = self.bytes.load(Ordering::Relaxed);
        let next = (prev + added).saturating_sub(freed);
        self.bytes.store(next, Ordering::Relaxed);
        self.bytes_gauge.set(next.min(i64::MAX as u64) as i64);
    }

    /// Retained traces, oldest first.
    pub fn recent(&self) -> Vec<Arc<RecordedTrace>> {
        self.recent.lock().iter().cloned().collect()
    }

    /// Auto-captured slow traces, oldest first.
    pub fn slow(&self) -> Vec<Arc<RecordedTrace>> {
        self.slow.lock().iter().cloned().collect()
    }

    /// Look a trace up by id (slow ring first — it outlives the recent
    /// ring; the exemplar-pinned park outlives both).
    pub fn get(&self, trace_id: u64) -> Option<Arc<RecordedTrace>> {
        if let Some(t) = self
            .slow
            .lock()
            .iter()
            .find(|t| t.trace_id == trace_id)
            .cloned()
        {
            return Some(t);
        }
        if let Some(t) = self
            .recent
            .lock()
            .iter()
            .find(|t| t.trace_id == trace_id)
            .cloned()
        {
            return Some(t);
        }
        self.pinned.lock().get(&trace_id).cloned()
    }

    /// Most recently recorded trace.
    pub fn last(&self) -> Option<Arc<RecordedTrace>> {
        self.recent.lock().back().cloned()
    }

    /// Most recent retained trace whose `parent_trace` links to
    /// `trace_id` — e.g. the node-side child of a cluster trace.
    pub fn get_child_of(&self, trace_id: u64) -> Option<Arc<RecordedTrace>> {
        if let Some(t) = self
            .slow
            .lock()
            .iter()
            .rev()
            .find(|t| t.parent_trace == Some(trace_id))
            .cloned()
        {
            return Some(t);
        }
        if let Some(t) = self
            .recent
            .lock()
            .iter()
            .rev()
            .find(|t| t.parent_trace == Some(trace_id))
            .cloned()
        {
            return Some(t);
        }
        self.pinned
            .lock()
            .values()
            .find(|t| t.parent_trace == Some(trace_id))
            .cloned()
    }

    /// The `k` slowest retained traces (both rings, deduplicated), slowest
    /// first.
    pub fn slowest(&self, k: usize) -> Vec<Arc<RecordedTrace>> {
        let mut all: Vec<Arc<RecordedTrace>> = self.recent.lock().iter().cloned().collect();
        all.extend(self.slow.lock().iter().cloned());
        all.sort_by(|a, b| b.total.cmp(&a.total).then(a.trace_id.cmp(&b.trace_id)));
        all.dedup_by_key(|t| t.trace_id);
        all.truncate(k);
        all
    }

    pub fn len(&self) -> usize {
        self.recent.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.recent.lock().is_empty()
    }

    /// Approximate retained bytes across both rings.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Traces evicted from either ring since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Evicted-but-exemplar-referenced traces currently parked.
    pub fn pinned_count(&self) -> usize {
        self.pinned.lock().len()
    }

    pub fn clear(&self) {
        self.recent.lock().clear();
        self.slow.lock().clear();
        self.pinned.lock().clear();
        self.pinned_gauge.set(0);
        self.bytes.store(0, Ordering::Relaxed);
        self.bytes_gauge.set(0);
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(FlightRecorderConfig::default())
    }
}
