//! Lock-free metrics: named counters, gauges and log-scale latency
//! histograms behind a get-or-create [`Registry`].
//!
//! Registration (name → handle) takes a short `RwLock` critical section and
//! happens once per call site; every increment after that is a relaxed
//! atomic operation on a cheap-clone handle. Names follow the
//! `tv_<crate>_<name>` convention (see DESIGN.md §8); durations are exposed
//! in seconds, stored internally at microsecond resolution.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

/// Monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed instantaneous value (pool sizes, queue depths, ...).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets. Bucket `i` covers `(2^(i-1), 2^i]`
/// microseconds (bucket 0 covers `[0, 1]`µs); the last bucket is +Inf.
pub const HIST_BUCKETS: usize = 32;

#[derive(Default)]
struct HistInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    exemplars: crate::exemplar::ExemplarSlots,
}

/// Fixed-bucket log2-scale latency histogram. Observations are recorded in
/// microseconds; quantile extraction returns the upper bound of the bucket
/// holding the requested rank, so results are exact to within one power of
/// two — enough to tell a 2ms cache hit from a 200ms remote round trip.
#[derive(Clone, Default)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Bucket index for a value in microseconds.
    pub fn bucket_index(micros: u64) -> usize {
        if micros <= 1 {
            0
        } else {
            (64 - (micros - 1).leading_zeros() as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `i` in microseconds
    /// (`u64::MAX` for the overflow bucket).
    pub fn bucket_upper(i: usize) -> u64 {
        if i >= HIST_BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    pub fn observe(&self, d: Duration) {
        self.observe_micros(d.as_micros().min(u64::MAX as u128) as u64);
    }

    pub fn observe_micros(&self, micros: u64) {
        let inner = &*self.0;
        let bucket = Self::bucket_index(micros);
        inner.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum_micros.fetch_add(micros, Ordering::Relaxed);
        // Exemplar capture: observations made inside a query trace stamp
        // their bucket with the trace id; untraced observations (startup,
        // tests, maintenance outside a trace) leave the slots empty.
        if let Some(trace_id) = crate::trace::active_trace_id() {
            inner.exemplars.record(bucket, trace_id, micros);
        }
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum_micros(&self) -> u64 {
        self.0.sum_micros.load(Ordering::Relaxed)
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile sample,
    /// or `None` when the histogram is empty. `q` is clamped to `[0, 1]`.
    pub fn quantile_micros(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for i in 0..HIST_BUCKETS {
            cum += self.0.buckets[i].load(Ordering::Relaxed);
            if cum >= rank {
                return Some(Self::bucket_upper(i));
            }
        }
        Some(u64::MAX)
    }

    /// Raw per-bucket counts (non-cumulative). Public so the federation
    /// layer can merge histograms bucket-wise — exact, because every
    /// histogram in the workspace shares the same log2 bucket edges.
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        let mut out = [0u64; HIST_BUCKETS];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.0.buckets[i].load(Ordering::Relaxed);
        }
        out
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum_micros: self.sum_micros(),
            p50_micros: self.quantile_micros(0.50),
            p95_micros: self.quantile_micros(0.95),
            p99_micros: self.quantile_micros(0.99),
        }
    }

    /// The exemplar stamped on bucket `i`, if any traced observation
    /// landed there.
    pub fn exemplar(&self, i: usize) -> Option<crate::exemplar::Exemplar> {
        self.0.exemplars.get(i)
    }

    /// Exemplar for the bucket holding the `q`-quantile sample — the
    /// "show me a trace that *is* the p99" accessor.
    pub fn quantile_exemplar(&self, q: f64) -> Option<crate::exemplar::Exemplar> {
        let upper = self.quantile_micros(q)?;
        let bucket = if upper == u64::MAX {
            HIST_BUCKETS - 1
        } else {
            Self::bucket_index(upper)
        };
        self.exemplar(bucket)
    }
}

/// Point-in-time view of a histogram with pre-extracted quantiles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum_micros: u64,
    pub p50_micros: Option<u64>,
    pub p95_micros: Option<u64>,
    pub p99_micros: Option<u64>,
}

/// One metric's value in a [`Registry::snapshot`].
#[derive(Clone, Debug)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

#[derive(Clone)]
pub(crate) enum MetricEntry {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Escape a label value for the Prometheus text exposition format:
/// backslash, double-quote and newline must be escaped inside the quoted
/// value (the same rules HELP text follows, plus the quote).
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Streaming writer for the Prometheus text format that understands
/// labels. Emits each family's `# HELP` / `# TYPE` header exactly once and
/// drops duplicate samples (same name + label set), which matters once
/// federation folds several per-node registries into one exposition.
pub struct TextEmitter {
    out: String,
    families: std::collections::HashSet<String>,
    seen: std::collections::HashSet<String>,
    /// Samples dropped because an identical series was already emitted.
    duplicates: usize,
}

impl Default for TextEmitter {
    fn default() -> Self {
        TextEmitter::new()
    }
}

impl TextEmitter {
    pub fn new() -> Self {
        TextEmitter {
            out: String::new(),
            families: std::collections::HashSet::new(),
            seen: std::collections::HashSet::new(),
            duplicates: 0,
        }
    }

    /// Emit the `# HELP` / `# TYPE` header for `family` once; repeat calls
    /// are no-ops so interleaved emitters can stay simple.
    pub fn family(&mut self, family: &str, kind: &str, help: &str) {
        if !self.families.insert(family.to_string()) {
            return;
        }
        let help = help.replace('\\', "\\\\").replace('\n', "\\n");
        let _ = writeln!(self.out, "# HELP {family} {help}");
        let _ = writeln!(self.out, "# TYPE {family} {kind}");
    }

    /// Emit one sample line. Label values are escaped here; `value` is
    /// pre-formatted by the caller (counters/gauges as integers, histogram
    /// series following [`Registry::render_text`]'s conventions). Returns
    /// `false` when the series (name + labels) was already written — the
    /// duplicate is suppressed rather than emitted twice.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: &str) -> bool {
        let series = if labels.is_empty() {
            name.to_string()
        } else {
            let body: Vec<String> = labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
                .collect();
            format!("{name}{{{}}}", body.join(","))
        };
        if !self.seen.insert(series.clone()) {
            self.duplicates += 1;
            return false;
        }
        let _ = writeln!(self.out, "{series} {value}");
        true
    }

    pub fn duplicates(&self) -> usize {
        self.duplicates
    }

    pub fn into_text(self) -> String {
        self.out
    }
}

/// Named metric registry. Cheap to clone (shared interior); get-or-create
/// lookups return handles whose increments never touch the registry lock.
///
/// Asking for an existing name with a different kind returns a fresh
/// *detached* handle rather than panicking: the caller's increments still
/// work, they just aren't exported. Keeps instrumentation from ever being
/// able to take the system down.
#[derive(Clone, Default)]
pub struct Registry {
    metrics: Arc<RwLock<HashMap<String, MetricEntry>>>,
    help: Arc<RwLock<HashMap<String, String>>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Attach help text to a metric name, exposed as the `# HELP` line in
    /// [`Registry::render_text`]. Metrics never described get a generated
    /// default so every exposed family still carries a HELP line.
    pub fn describe(&self, name: &str, help: &str) {
        self.help.write().insert(name.to_string(), help.to_string());
    }

    pub fn counter(&self, name: &str) -> Counter {
        if let Some(MetricEntry::Counter(c)) = self.metrics.read().get(name) {
            return c.clone();
        }
        let mut map = self.metrics.write();
        match map
            .entry(name.to_string())
            .or_insert_with(|| MetricEntry::Counter(Counter::new()))
        {
            MetricEntry::Counter(c) => c.clone(),
            _ => Counter::new(),
        }
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(MetricEntry::Gauge(g)) = self.metrics.read().get(name) {
            return g.clone();
        }
        let mut map = self.metrics.write();
        match map
            .entry(name.to_string())
            .or_insert_with(|| MetricEntry::Gauge(Gauge::new()))
        {
            MetricEntry::Gauge(g) => g.clone(),
            _ => Gauge::new(),
        }
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(MetricEntry::Histogram(h)) = self.metrics.read().get(name) {
            return h.clone();
        }
        let mut map = self.metrics.write();
        match map
            .entry(name.to_string())
            .or_insert_with(|| MetricEntry::Histogram(Histogram::new()))
        {
            MetricEntry::Histogram(h) => h.clone(),
            _ => Histogram::new(),
        }
    }

    /// Stable, sorted point-in-time view of every registered metric.
    pub fn snapshot(&self) -> BTreeMap<String, MetricValue> {
        self.metrics
            .read()
            .iter()
            .map(|(name, entry)| {
                let value = match entry {
                    MetricEntry::Counter(c) => MetricValue::Counter(c.get()),
                    MetricEntry::Gauge(g) => MetricValue::Gauge(g.get()),
                    MetricEntry::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect()
    }

    /// Sorted clone of the entry map — the federation layer walks this to
    /// merge several registries without holding any registry lock.
    pub(crate) fn entries(&self) -> BTreeMap<String, MetricEntry> {
        self.metrics
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Distinct trace ids currently referenced by any histogram exemplar
    /// slot in this registry. The flight recorder uses this as the pin
    /// set: a trace whose id is exported here must stay resolvable.
    pub fn exemplar_trace_ids(&self) -> std::collections::HashSet<u64> {
        let mut out = std::collections::HashSet::new();
        for entry in self.metrics.read().values() {
            if let MetricEntry::Histogram(h) = entry {
                h.0.exemplars.trace_ids(&mut out);
            }
        }
        out
    }

    /// HELP text for `name` (described, or the generated default), raw —
    /// escaping is the emitter's job.
    pub(crate) fn help_for(&self, name: &str) -> String {
        self.help
            .read()
            .get(name)
            .cloned()
            .unwrap_or_else(|| format!("tabviz metric {name}"))
    }

    /// Prometheus-style text exposition. Every family gets `# HELP` and
    /// `# TYPE` lines (help text set via [`Registry::describe`], or a
    /// generated default); histogram buckets and sums are in seconds,
    /// cumulative, with a final `+Inf` bucket. Label values (when a caller
    /// routes labeled series through the shared [`TextEmitter`]) are
    /// escaped and duplicate series dropped.
    pub fn render_text(&self) -> String {
        let mut emitter = TextEmitter::new();
        self.render_into(&mut emitter, &[]);
        emitter.into_text()
    }

    /// Render every metric into `emitter`, attaching `labels` to each
    /// sample. `render_text` calls this with no labels; federation calls
    /// it once per node with `[("node", name)]`.
    pub(crate) fn render_into(&self, emitter: &mut TextEmitter, labels: &[(&str, &str)]) {
        for (name, entry) in self.entries() {
            let help = self.help_for(&name);
            match entry {
                MetricEntry::Counter(c) => {
                    emitter.family(&name, "counter", &help);
                    emitter.sample(&name, labels, &c.get().to_string());
                }
                MetricEntry::Gauge(g) => {
                    emitter.family(&name, "gauge", &help);
                    emitter.sample(&name, labels, &g.get().to_string());
                }
                MetricEntry::Histogram(h) => {
                    emitter.family(&name, "histogram", &help);
                    emit_histogram_series(
                        emitter,
                        &name,
                        labels,
                        &h.bucket_counts(),
                        h.sum_micros(),
                        h.count(),
                        &|i| h.exemplar(i),
                    );
                }
            }
        }
    }
}

/// Shared histogram exposition: cumulative buckets in seconds (zero-count
/// buckets skipped for compactness, `+Inf` always closing the family),
/// then `_sum` / `_count`. Used by both [`Registry::render_text`] and the
/// federation's merged series so the two stay byte-compatible.
///
/// `exemplar_at` supplies the per-bucket exemplar (if any): an occupied
/// bucket's line gains an OpenMetrics-style ` # {trace_id="..."} <secs>`
/// suffix linking that latency band to a flight-recorder trace.
pub(crate) fn emit_histogram_series(
    emitter: &mut TextEmitter,
    name: &str,
    labels: &[(&str, &str)],
    counts: &[u64; HIST_BUCKETS],
    sum_micros: u64,
    count: u64,
    exemplar_at: &dyn Fn(usize) -> Option<crate::exemplar::Exemplar>,
) {
    let bucket_name = format!("{name}_bucket");
    let mut cum = 0u64;
    for (i, c) in counts.iter().enumerate() {
        cum += c;
        if *c == 0 && i < HIST_BUCKETS - 1 {
            continue; // keep the exposition compact
        }
        let le = if i >= HIST_BUCKETS - 1 {
            "+Inf".to_string()
        } else {
            format!("{}", Histogram::bucket_upper(i) as f64 / 1e6)
        };
        let mut all_labels: Vec<(&str, &str)> = labels.to_vec();
        all_labels.push(("le", le.as_str()));
        let mut value = cum.to_string();
        if *c > 0 {
            if let Some(ex) = exemplar_at(i) {
                value.push_str(&ex.suffix());
            }
        }
        emitter.sample(&bucket_name, &all_labels, &value);
    }
    emitter.sample(
        &format!("{name}_sum"),
        labels,
        &format!("{}", sum_micros as f64 / 1e6),
    );
    emitter.sample(&format!("{name}_count"), labels, &count.to_string());
}
