//! Cross-thread trace assembly: a propagatable per-query trace context.
//!
//! The per-thread ring in [`crate::span`] assumes a query executes wholly
//! on one thread — false since morsel-parallel scans, batch zone workers,
//! prefetch and the maintenance lane. This module adds a *trace*: a shared,
//! bounded event buffer keyed by trace id, plus a thread-local "active
//! trace" that spans join automatically.
//!
//! - [`begin_trace`] opens a trace on the current thread (the query's
//!   driver) and makes it active; every [`crate::span::span`] /
//!   [`crate::span::event`] on this thread is dual-written into the trace.
//! - [`TraceCtx::current`] captures a cheap handle (trace + the span open
//!   right now) to move into a worker closure; [`TraceCtx::install`] adopts
//!   the trace on the worker thread, parenting the worker's spans under the
//!   captured span. Because events are written into the shared buffer at
//!   completion, spans on short-lived worker threads survive the thread.
//! - [`TraceHandle::finish`] closes the trace, appends the root span, sorts
//!   by span id (allocation order: parents before children, across
//!   threads) and recomputes depths from parent links — yielding one
//!   connected tree per query.
//!
//! Span ids are allocated from a per-trace atomic counter; the shared
//! buffer is a short per-trace mutex contended only by that query's own
//! workers (the global hot path stays lock-free). The buffer is bounded at
//! [`TRACE_EVENT_CAPACITY`] events; overflow increments a drop counter
//! rather than growing.

use std::cell::RefCell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::span::SpanEvent;
use crate::stage;

/// Maximum events buffered per trace; overflow is counted, not stored, so
/// a runaway query cannot grow the recorder without bound.
pub const TRACE_EVENT_CAPACITY: usize = 16_384;

/// Span id of the synthetic root span appended by [`TraceHandle::finish`].
pub const ROOT_SPAN_ID: u64 = 1;

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_LANE_ID: AtomicU64 = AtomicU64::new(1);
static CAPTURE: AtomicBool = AtomicBool::new(true);

/// Globally enable / disable trace capture (the e20 overhead experiment's
/// "off" arm). When off, [`begin_trace`] returns an inert handle and spans
/// record only into the legacy per-thread ring.
pub fn set_capture(on: bool) {
    CAPTURE.store(on, Ordering::Relaxed);
}

/// Whether trace capture is globally enabled.
pub fn capture_enabled() -> bool {
    CAPTURE.load(Ordering::Relaxed)
}

thread_local! {
    static LANE_ID: u64 = NEXT_LANE_ID.fetch_add(1, Ordering::Relaxed);
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Stable per-thread lane id (used as the `tid` in Chrome exports).
pub fn lane_id() -> u64 {
    LANE_ID.with(|l| *l)
}

/// Trace id active on this thread, if any (diagnostics / tests).
pub fn active_trace_id() -> Option<u64> {
    ACTIVE.with(|a| a.borrow().as_ref().map(|at| at.inner.trace_id))
}

pub(crate) struct TraceInner {
    trace_id: u64,
    parent_trace: Option<u64>,
    started: Instant,
    next_span: AtomicU64,
    events: Mutex<Vec<SpanEvent>>,
    dropped: AtomicU64,
}

impl TraceInner {
    fn sink(&self, ev: SpanEvent) {
        let mut buf = self.events.lock();
        if buf.len() >= TRACE_EVENT_CAPACITY {
            drop(buf);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            buf.push(ev);
        }
    }
}

struct ActiveTrace {
    inner: Arc<TraceInner>,
    /// Span ids currently open on this thread, outermost first. Seeded
    /// with the adopted parent span on [`TraceCtx::install`] (the seed is
    /// never popped — it belongs to another thread).
    open: Vec<u64>,
}

/// Ids allocated for a span (or instantaneous event) joining the active
/// trace; held by the [`crate::span::Span`] guard so completion can reach
/// the shared buffer even if the thread's active trace changed meanwhile.
pub(crate) struct Slot {
    trace: Arc<TraceInner>,
    span_id: u64,
    parent: Option<u64>,
}

impl Slot {
    pub(crate) fn trace_id(&self) -> u64 {
        self.trace.trace_id
    }

    pub(crate) fn span_id(&self) -> u64 {
        self.span_id
    }

    pub(crate) fn parent(&self) -> Option<u64> {
        self.parent
    }
}

/// Allocate ids for a span entered on this thread and push it on the open
/// stack. `None` when no trace is active.
pub(crate) fn enter_span() -> Option<Slot> {
    ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        let at = a.as_mut()?;
        let span_id = at.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = at.open.last().copied();
        at.open.push(span_id);
        Some(Slot {
            trace: at.inner.clone(),
            span_id,
            parent,
        })
    })
}

/// Complete a span: pop it from the open stack (when this thread still has
/// the same trace active) and sink the event into the trace buffer.
pub(crate) fn exit_span(slot: Slot, ev: SpanEvent) {
    ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        if let Some(at) = a.as_mut() {
            if Arc::ptr_eq(&at.inner, &slot.trace) {
                if let Some(pos) = at.open.iter().rposition(|&id| id == slot.span_id) {
                    at.open.remove(pos);
                }
            }
        }
    });
    slot.trace.sink(ev);
}

/// Allocate ids for an instantaneous / pre-timed event (not pushed on the
/// open stack). `None` when no trace is active.
pub(crate) fn instant_slot() -> Option<Slot> {
    ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        let at = a.as_mut()?;
        let span_id = at.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = at.open.last().copied();
        Some(Slot {
            trace: at.inner.clone(),
            span_id,
            parent,
        })
    })
}

/// Sink an instantaneous event allocated via [`instant_slot`].
pub(crate) fn sink_instant(slot: Slot, ev: SpanEvent) {
    slot.trace.sink(ev);
}

/// A cheap, cloneable handle to an in-flight trace plus the span under
/// which work spawned from here should parent. Capture with
/// [`TraceCtx::current`] before handing work to another thread; install on
/// the worker with [`TraceCtx::install`].
#[derive(Clone)]
pub struct TraceCtx {
    inner: Arc<TraceInner>,
    parent: Option<u64>,
}

impl TraceCtx {
    /// Capture the trace active on this thread (and the innermost open
    /// span) for propagation. `None` when no trace is active.
    pub fn current() -> Option<TraceCtx> {
        ACTIVE.with(|a| {
            let a = a.borrow();
            a.as_ref().map(|at| TraceCtx {
                inner: at.inner.clone(),
                parent: at.open.last().copied(),
            })
        })
    }

    pub fn trace_id(&self) -> u64 {
        self.inner.trace_id
    }

    /// Adopt this trace on the current thread. Spans opened while the
    /// guard lives join the trace, parented under the captured span; the
    /// previously active trace (if any) is restored when the guard drops.
    pub fn install(&self) -> TraceGuard {
        let prev = ACTIVE.with(|a| {
            a.borrow_mut().replace(ActiveTrace {
                inner: self.inner.clone(),
                open: self.parent.into_iter().collect(),
            })
        });
        TraceGuard {
            prev: Some(prev),
            _not_send: PhantomData,
        }
    }
}

/// Restores the previously active trace on drop; see [`TraceCtx::install`].
pub struct TraceGuard {
    prev: Option<Option<ActiveTrace>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            ACTIVE.with(|a| *a.borrow_mut() = prev);
        }
    }
}

/// Start a new trace rooted on this thread and make it active. Finish (or
/// drop) the handle on the same thread. When capture is globally disabled
/// the handle is inert and [`TraceHandle::finish`] returns an empty trace.
pub fn begin_trace() -> TraceHandle {
    if !capture_enabled() {
        return TraceHandle {
            inner: None,
            prev: None,
            installed: false,
            finished: false,
            _not_send: PhantomData,
        };
    }
    let parent_trace = ACTIVE.with(|a| a.borrow().as_ref().map(|at| at.inner.trace_id));
    let inner = Arc::new(TraceInner {
        trace_id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
        parent_trace,
        started: Instant::now(),
        next_span: AtomicU64::new(ROOT_SPAN_ID + 1),
        events: Mutex::new(Vec::new()),
        dropped: AtomicU64::new(0),
    });
    let prev = ACTIVE.with(|a| {
        a.borrow_mut().replace(ActiveTrace {
            inner: inner.clone(),
            open: vec![ROOT_SPAN_ID],
        })
    });
    TraceHandle {
        inner: Some(inner),
        prev: Some(prev),
        installed: true,
        finished: false,
        _not_send: PhantomData,
    }
}

/// Owner of an in-flight trace; closing it assembles the tree.
pub struct TraceHandle {
    inner: Option<Arc<TraceInner>>,
    prev: Option<Option<ActiveTrace>>,
    installed: bool,
    finished: bool,
    _not_send: PhantomData<*const ()>,
}

impl TraceHandle {
    /// Whether this handle is actually capturing (capture globally on).
    pub fn is_capturing(&self) -> bool {
        self.inner.is_some()
    }

    pub fn trace_id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.trace_id)
    }

    /// Context for propagating this trace to workers spawned directly
    /// under the root (most callers should use [`TraceCtx::current`] at
    /// the spawn site instead, which parents under the innermost span).
    pub fn ctx(&self) -> Option<TraceCtx> {
        self.inner.as_ref().map(|i| TraceCtx {
            inner: i.clone(),
            parent: Some(ROOT_SPAN_ID),
        })
    }

    fn restore(&mut self) {
        if self.installed {
            self.installed = false;
            if let Some(prev) = self.prev.take() {
                ACTIVE.with(|a| *a.borrow_mut() = prev);
            }
        }
    }

    /// Close the trace: restore the previously active trace, append the
    /// root span (stage [`crate::stage::QUERY`], duration `total`), sort
    /// events into entry order and recompute depths from parent links.
    pub fn finish(mut self, total: Duration) -> FinishedTrace {
        self.finished = true;
        self.restore();
        let Some(inner) = self.inner.take() else {
            return FinishedTrace {
                trace_id: 0,
                parent_trace: None,
                started: Instant::now(),
                total,
                events: Vec::new(),
                dropped: 0,
            };
        };
        let mut events = std::mem::take(&mut *inner.events.lock());
        events.push(SpanEvent {
            stage: stage::QUERY,
            label: None,
            detail: None,
            reason: None,
            start: inner.started,
            dur: total,
            depth: 0,
            enter_seq: 0,
            trace_id: inner.trace_id,
            span_id: ROOT_SPAN_ID,
            parent: None,
            lane: lane_id(),
        });
        events.sort_by_key(|e| e.span_id);
        recompute_depths(&mut events);
        FinishedTrace {
            trace_id: inner.trace_id,
            parent_trace: inner.parent_trace,
            started: inner.started,
            total,
            events,
            dropped: inner.dropped.load(Ordering::Relaxed),
        }
    }
}

impl Drop for TraceHandle {
    fn drop(&mut self) {
        if !self.finished {
            self.restore();
        }
    }
}

/// Replace per-thread depths with tree depths derived from parent links
/// (events must be sorted by `span_id`, so parents precede children).
fn recompute_depths(events: &mut [SpanEvent]) {
    let mut depth_of: HashMap<u64, u32> = HashMap::with_capacity(events.len());
    for ev in events.iter_mut() {
        let depth = match ev.parent {
            Some(p) => depth_of.get(&p).map(|d| d + 1).unwrap_or(0),
            None => 0,
        };
        ev.depth = depth;
        depth_of.insert(ev.span_id, depth);
    }
}

/// A closed trace: one connected tree of events in entry order.
#[derive(Clone, Debug)]
pub struct FinishedTrace {
    /// 0 when capture was disabled (events empty).
    pub trace_id: u64,
    /// Trace active on the driver thread when this one began (a batch or
    /// maintenance pass enclosing this query), if any.
    pub parent_trace: Option<u64>,
    pub started: Instant,
    pub total: Duration,
    /// Sorted by `span_id` (entry order across threads; parents before
    /// children), depths recomputed from parent links.
    pub events: Vec<SpanEvent>,
    /// Events discarded because the trace buffer hit
    /// [`TRACE_EVENT_CAPACITY`].
    pub dropped: u64,
}

impl FinishedTrace {
    pub fn is_captured(&self) -> bool {
        self.trace_id != 0
    }
}
