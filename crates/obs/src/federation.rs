//! Metrics federation: merge per-node [`Registry`] snapshots into
//! cluster-scope series.
//!
//! Every node in the PR 6 cluster runs its own registry; operating the
//! cluster means asking questions *across* them — "what is the cluster-wide
//! interactive p95", "how many queries did each node shed". The federation
//! pulls each node's registry (cheap handle clones, no locks held across
//! nodes), merges counters and gauges by summation, and merges histograms
//! **bucket-wise** — exact, not an approximation, because every histogram
//! in the workspace shares the same [`HIST_BUCKETS`] log2 bucket edges
//! (see `metrics.rs`): the quantiles of a bucket-merged histogram equal
//! the quantiles of the concatenated observation stream, to within the
//! same one-power-of-two resolution a single node reports.
//!
//! [`Federation::render_text`] emits the Prometheus text format twice
//! over: once per node with a `node="..."` label, then the merged
//! cluster-scope series unlabeled — so one scrape shows both the
//! per-node breakdown and the aggregate.

use std::collections::BTreeMap;

use crate::metrics::{
    emit_histogram_series, Histogram, HistogramSnapshot, MetricEntry, MetricValue, Registry,
    TextEmitter, HIST_BUCKETS,
};

/// A histogram merged bucket-wise across nodes. Carries the same quantile
/// semantics as [`Histogram`]: `quantile_micros` returns the upper bound
/// of the bucket holding the requested rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergedHistogram {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum_micros: u64,
}

impl Default for MergedHistogram {
    fn default() -> Self {
        MergedHistogram {
            buckets: [0u64; HIST_BUCKETS],
            count: 0,
            sum_micros: 0,
        }
    }
}

impl MergedHistogram {
    pub fn absorb_counts(&mut self, counts: &[u64; HIST_BUCKETS], sum_micros: u64, count: u64) {
        for (slot, c) in self.buckets.iter_mut().zip(counts.iter()) {
            *slot += c;
        }
        self.count += count;
        self.sum_micros += sum_micros;
    }

    /// Same ranking rule as [`Histogram::quantile_micros`]: rank =
    /// `ceil(q * count)` clamped to `[1, count]`, scan buckets cumulatively.
    pub fn quantile_micros(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(Histogram::bucket_upper(i));
            }
        }
        Some(u64::MAX)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum_micros: self.sum_micros,
            p50_micros: self.quantile_micros(0.50),
            p95_micros: self.quantile_micros(0.95),
            p99_micros: self.quantile_micros(0.99),
        }
    }
}

/// Pulls per-node registries and merges them into cluster-scope series.
#[derive(Default)]
pub struct Federation {
    sources: Vec<(String, Registry)>,
}

impl Federation {
    pub fn new() -> Self {
        Federation::default()
    }

    /// Register one node's registry under `node` (the label value). The
    /// registry handle is a cheap clone sharing the node's live metrics —
    /// the federation always reads current values, no copies go stale.
    pub fn add_node(&mut self, node: &str, registry: &Registry) {
        self.sources.push((node.to_string(), registry.clone()));
    }

    pub fn nodes(&self) -> Vec<&str> {
        self.sources.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Cluster-scope merged snapshot: counters and gauges summed across
    /// nodes, histograms merged bucket-wise. Metric kind conflicts across
    /// nodes (same name, different kind) keep the first kind seen and skip
    /// the rest — mirroring `Registry`'s own never-panic policy.
    pub fn merged(&self) -> BTreeMap<String, MetricValue> {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, i64> = BTreeMap::new();
        let mut hists: BTreeMap<String, MergedHistogram> = BTreeMap::new();
        for (_, registry) in &self.sources {
            for (name, entry) in registry.entries() {
                match entry {
                    MetricEntry::Counter(c) => {
                        if gauges.contains_key(&name) || hists.contains_key(&name) {
                            continue;
                        }
                        *counters.entry(name).or_insert(0) += c.get();
                    }
                    MetricEntry::Gauge(g) => {
                        if counters.contains_key(&name) || hists.contains_key(&name) {
                            continue;
                        }
                        *gauges.entry(name).or_insert(0) += g.get();
                    }
                    MetricEntry::Histogram(h) => {
                        if counters.contains_key(&name) || gauges.contains_key(&name) {
                            continue;
                        }
                        hists.entry(name).or_default().absorb_counts(
                            &h.bucket_counts(),
                            h.sum_micros(),
                            h.count(),
                        );
                    }
                }
            }
        }
        let mut out: BTreeMap<String, MetricValue> = BTreeMap::new();
        for (name, v) in counters {
            out.insert(name, MetricValue::Counter(v));
        }
        for (name, v) in gauges {
            out.insert(name, MetricValue::Gauge(v));
        }
        for (name, h) in hists {
            out.insert(name, MetricValue::Histogram(h.snapshot()));
        }
        out
    }

    /// The bucket-wise merge of `name` across every node holding a
    /// histogram under that name, or `None` if no node does.
    pub fn merged_histogram(&self, name: &str) -> Option<MergedHistogram> {
        let mut merged: Option<MergedHistogram> = None;
        for (_, registry) in &self.sources {
            if let Some(MetricEntry::Histogram(h)) = registry.entries().get(name) {
                merged
                    .get_or_insert_with(MergedHistogram::default)
                    .absorb_counts(&h.bucket_counts(), h.sum_micros(), h.count());
            }
        }
        merged
    }

    /// Prometheus text exposition of the whole federation: per-node series
    /// labeled `node="..."` first, then the merged cluster-scope series
    /// unlabeled. Series dedup and label escaping come from
    /// [`TextEmitter`], so two nodes registered under the same label (or a
    /// node name needing escapes) cannot corrupt the exposition.
    pub fn render_text(&self) -> String {
        let mut emitter = TextEmitter::new();
        for (node, registry) in &self.sources {
            registry.render_into(&mut emitter, &[("node", node.as_str())]);
        }
        // Merged cluster scope: re-walk sources so histograms emit full
        // bucket series (merged() only keeps snapshots).
        let mut hists: BTreeMap<String, MergedHistogram> = BTreeMap::new();
        let mut help: BTreeMap<String, (String, String)> = BTreeMap::new();
        for (name, value) in self.merged() {
            let (kind, help_text) = self
                .sources
                .iter()
                .map(|(_, r)| r.help_for(&name))
                .next()
                .map(|h| {
                    let kind = match value {
                        MetricValue::Counter(_) => "counter",
                        MetricValue::Gauge(_) => "gauge",
                        MetricValue::Histogram(_) => "histogram",
                    };
                    (kind.to_string(), h)
                })
                .unwrap_or_else(|| ("untyped".to_string(), format!("tabviz metric {name}")));
            help.insert(name.clone(), (kind, help_text));
            match value {
                MetricValue::Counter(v) => {
                    let (kind, h) = &help[&name];
                    emitter.family(&name, kind, h);
                    emitter.sample(&name, &[], &v.to_string());
                }
                MetricValue::Gauge(v) => {
                    let (kind, h) = &help[&name];
                    emitter.family(&name, kind, h);
                    emitter.sample(&name, &[], &v.to_string());
                }
                MetricValue::Histogram(_) => {
                    if let Some(m) = self.merged_histogram(&name) {
                        hists.insert(name, m);
                    }
                }
            }
        }
        for (name, m) in hists {
            let (kind, h) = &help[&name];
            emitter.family(&name, kind, h);
            // Merged exemplar: first node holding a stamped slot for the
            // bucket wins — any exported id resolves on exactly one node.
            let exemplar_at = |i: usize| {
                self.sources
                    .iter()
                    .find_map(|(_, r)| match r.entries().get(&name) {
                        Some(MetricEntry::Histogram(h)) => h.exemplar(i),
                        _ => None,
                    })
            };
            emit_histogram_series(
                &mut emitter,
                &name,
                &[],
                &m.buckets,
                m.sum_micros,
                m.count,
                &exemplar_at,
            );
        }
        emitter.into_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_and_histograms_merge() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("tv_x_total").add(3);
        b.counter("tv_x_total").add(4);
        a.histogram("tv_lat").observe_micros(100);
        a.histogram("tv_lat").observe_micros(200);
        b.histogram("tv_lat").observe_micros(5_000);

        let mut fed = Federation::new();
        fed.add_node("node-0", &a);
        fed.add_node("node-1", &b);

        let merged = fed.merged();
        match merged.get("tv_x_total") {
            Some(MetricValue::Counter(7)) => {}
            other => panic!("bad counter merge: {other:?}"),
        }
        let h = fed.merged_histogram("tv_lat").expect("merged hist");
        assert_eq!(h.count, 3);
        assert_eq!(h.sum_micros, 5_300);

        // Merged quantiles equal quantiles of the concatenated stream.
        let reference = Histogram::new();
        for v in [100u64, 200, 5_000] {
            reference.observe_micros(v);
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile_micros(q), reference.quantile_micros(q));
        }
    }

    #[test]
    fn render_text_labels_nodes_and_dedups() {
        let a = Registry::new();
        a.counter("tv_q_total").inc();
        let mut fed = Federation::new();
        fed.add_node("node-0", &a);
        fed.add_node("node-0", &a); // same label twice: dedup, not double
        let text = fed.render_text();
        let labeled = text
            .lines()
            .filter(|l| l.starts_with("tv_q_total{node=\"node-0\"}"))
            .count();
        assert_eq!(labeled, 1, "duplicate series suppressed:\n{text}");
        assert!(
            text.lines().any(|l| l == "tv_q_total 2"),
            "merged unlabeled aggregate present:\n{text}"
        );
        assert_eq!(
            text.lines()
                .filter(|l| l.starts_with("# TYPE tv_q_total "))
                .count(),
            1,
            "one TYPE header per family:\n{text}"
        );
    }
}
