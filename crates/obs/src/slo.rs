//! Declarative SLOs with multi-window burn-rate alerting.
//!
//! The paper's promise is *bounded* user response time; measuring latency
//! (PR 2/5) is not the same as enforcing it. This module closes the loop
//! the way SRE practice does: each objective (interactive p95 ≤ X,
//! availability ≥ 99.9%, degraded-serve fraction ≤ Y) defines an **error
//! budget**, and the tracker watches the rate at which serves burn that
//! budget over two sliding windows — a fast window that reacts to sharp
//! brown-outs and a slow window that filters out blips. An alert fires
//! only when *both* windows burn faster than the `fire_burn` multiple of
//! budget, and clears only when both drop under the lower `clear_burn`
//! bound (hysteresis, so a boundary-riding signal cannot flap).
//!
//! Time is explicit (`now_ms`), so the tracker runs in simulated time for
//! experiments and wall-clock time in the cluster: the "5-min fast /
//! 1-h slow" production shape maps onto sim-scale windows via
//! [`SloConfig`].

use crate::metrics::Registry;
use crate::{Counter, Gauge, Histogram, HIST_BUCKETS};

/// Window and threshold shape for every objective in a tracker.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Ring-buffer bucket width, ms. Windows are quantized to this.
    pub bucket_ms: u64,
    /// Fast ("5-minute analogue") burn window, ms.
    pub fast_window_ms: u64,
    /// Slow ("1-hour analogue") burn window, ms.
    pub slow_window_ms: u64,
    /// Fire when both windows burn at ≥ this multiple of budget.
    pub fire_burn: f64,
    /// Clear only when both windows burn at ≤ this multiple (hysteresis:
    /// must be < `fire_burn`).
    pub clear_burn: f64,
    /// Minimum events in the fast window before an alert may fire —
    /// guards against a single bad serve in an empty window reading as a
    /// 100% burn.
    pub min_events: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            bucket_ms: 250,
            fast_window_ms: 5_000,
            slow_window_ms: 60_000,
            fire_burn: 2.0,
            clear_burn: 1.0,
            min_events: 8,
        }
    }
}

/// What an objective bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObjectiveKind {
    /// Windowed p95 latency must stay ≤ `max_micros`. A serve is "bad"
    /// when it exceeds the bound; the budget is the 5% of serves the p95
    /// statistic tolerates by construction.
    LatencyP95 { max_micros: u64 },
    /// Fraction of successful serves must stay ≥ `min` (e.g. 0.999).
    /// Budget = `1 - min`.
    Availability { min: f64 },
    /// Fraction of degraded serves (stale cache data, shed-then-served
    /// fallbacks) must stay ≤ `max`. Budget = `max`.
    DegradedFraction { max: f64 },
}

/// One declared objective.
#[derive(Debug, Clone)]
pub struct Objective {
    /// Short snake-case name; becomes part of `tv_slo_*` metric names.
    pub name: &'static str,
    pub kind: ObjectiveKind,
}

impl Objective {
    pub fn latency_p95(name: &'static str, max_micros: u64) -> Self {
        Objective {
            name,
            kind: ObjectiveKind::LatencyP95 { max_micros },
        }
    }

    pub fn availability(name: &'static str, min: f64) -> Self {
        Objective {
            name,
            kind: ObjectiveKind::Availability { min },
        }
    }

    pub fn degraded_fraction(name: &'static str, max: f64) -> Self {
        Objective {
            name,
            kind: ObjectiveKind::DegradedFraction { max },
        }
    }

    /// The error budget: tolerable bad fraction.
    fn budget(&self) -> f64 {
        match self.kind {
            ObjectiveKind::LatencyP95 { .. } => 0.05,
            ObjectiveKind::Availability { min } => (1.0 - min).max(1e-9),
            ObjectiveKind::DegradedFraction { max } => max.max(1e-9),
        }
    }
}

/// One served request, as the SLO plane sees it.
#[derive(Debug, Clone, Copy)]
pub struct ServeEvent {
    pub latency_micros: u64,
    /// `false` = the request errored or was shed without an answer.
    pub ok: bool,
    /// Served, but degraded (stale data, replica fallback, ...).
    pub degraded: bool,
}

/// Per-bucket tallies. `bad[i]` counts serves that violated objective `i`.
#[derive(Clone)]
struct Bucket {
    start_ms: u64,
    count: u64,
    bad: Vec<u64>,
    latency: [u64; HIST_BUCKETS],
}

impl Bucket {
    fn new(start_ms: u64, objectives: usize) -> Self {
        Bucket {
            start_ms,
            count: 0,
            bad: vec![0; objectives],
            latency: [0u64; HIST_BUCKETS],
        }
    }

    fn reset(&mut self, start_ms: u64) {
        self.start_ms = start_ms;
        self.count = 0;
        self.bad.iter_mut().for_each(|b| *b = 0);
        self.latency = [0u64; HIST_BUCKETS];
    }
}

/// Point-in-time status of one objective.
#[derive(Debug, Clone)]
pub struct SloStatus {
    pub name: &'static str,
    /// Currently in the alerting state.
    pub firing: bool,
    /// Transitioned into alerting on this evaluation.
    pub just_fired: bool,
    /// Transitioned out of alerting on this evaluation.
    pub just_cleared: bool,
    /// Burn multiple over the fast window (bad_fraction / budget).
    pub fast_burn: f64,
    /// Burn multiple over the slow window.
    pub slow_burn: f64,
    /// Events in the fast window.
    pub fast_events: u64,
    /// Windowed p95 over the slow window, µs (latency objectives).
    pub window_p95_micros: Option<u64>,
    /// Lifetime count of fire transitions.
    pub times_fired: u64,
}

struct ObjectiveState {
    objective: Objective,
    firing: bool,
    times_fired: u64,
    burn_fast_gauge: Option<Gauge>,
    burn_slow_gauge: Option<Gauge>,
    firing_gauge: Option<Gauge>,
    fired_total: Option<Counter>,
}

/// The tracker: a bucketed time ring covering the slow window, plus
/// per-objective alert state. Not thread-safe by itself — callers wrap it
/// in a mutex (`record` is a few adds; `evaluate` only does real work
/// when the clock enters a new bucket).
pub struct SloTracker {
    config: SloConfig,
    objectives: Vec<ObjectiveState>,
    ring: Vec<Bucket>,
    last_eval_bucket: u64,
    alerts_total: Option<Counter>,
    windowed_latency: Option<Histogram>,
}

impl SloTracker {
    pub fn new(config: SloConfig, objectives: Vec<Objective>) -> Self {
        let slots = (config.slow_window_ms / config.bucket_ms).max(1) as usize + 1;
        let n = objectives.len();
        SloTracker {
            config,
            objectives: objectives
                .into_iter()
                .map(|objective| ObjectiveState {
                    objective,
                    firing: false,
                    times_fired: 0,
                    burn_fast_gauge: None,
                    burn_slow_gauge: None,
                    firing_gauge: None,
                    fired_total: None,
                })
                .collect(),
            ring: (0..slots).map(|_| Bucket::new(u64::MAX, n)).collect(),
            last_eval_bucket: 0,
            alerts_total: None,
            windowed_latency: None,
        }
    }

    /// Register `tv_slo_*` series on `registry`. Objective names are
    /// embedded in metric names (the registry is label-free); burn rates
    /// export as ×1000 integer gauges.
    pub fn bind_obs(&mut self, registry: &Registry) {
        registry.describe(
            "tv_slo_burn_alerts_total",
            "SLO burn-rate alert fire transitions across all objectives",
        );
        self.alerts_total = Some(registry.counter("tv_slo_burn_alerts_total"));
        registry.describe(
            "tv_slo_serve_latency_seconds",
            "serve latency as observed by the SLO plane",
        );
        self.windowed_latency = Some(registry.histogram("tv_slo_serve_latency_seconds"));
        for st in &mut self.objectives {
            let name = st.objective.name;
            let fast = format!("tv_slo_{name}_burn_fast_x1000");
            registry.describe(&fast, "fast-window burn multiple x1000");
            st.burn_fast_gauge = Some(registry.gauge(&fast));
            let slow = format!("tv_slo_{name}_burn_slow_x1000");
            registry.describe(&slow, "slow-window burn multiple x1000");
            st.burn_slow_gauge = Some(registry.gauge(&slow));
            let firing = format!("tv_slo_{name}_firing");
            registry.describe(&firing, "1 while the burn-rate alert is firing");
            st.firing_gauge = Some(registry.gauge(&firing));
            let fired = format!("tv_slo_{name}_fired_total");
            registry.describe(&fired, "fire transitions for this objective");
            st.fired_total = Some(registry.counter(&fired));
        }
    }

    pub fn objectives(&self) -> Vec<Objective> {
        self.objectives
            .iter()
            .map(|s| s.objective.clone())
            .collect()
    }

    /// Append a latency objective after construction (e.g. once a healthy
    /// baseline has been measured to calibrate the bound). Must be called
    /// before any `record`, or the new objective's history starts empty.
    pub fn add_objective(&mut self, objective: Objective, registry: Option<&Registry>) {
        for b in &mut self.ring {
            b.bad.push(0);
        }
        let mut st = ObjectiveState {
            objective,
            firing: false,
            times_fired: 0,
            burn_fast_gauge: None,
            burn_slow_gauge: None,
            firing_gauge: None,
            fired_total: None,
        };
        if let Some(registry) = registry {
            let name = st.objective.name;
            st.burn_fast_gauge = Some(registry.gauge(&format!("tv_slo_{name}_burn_fast_x1000")));
            st.burn_slow_gauge = Some(registry.gauge(&format!("tv_slo_{name}_burn_slow_x1000")));
            st.firing_gauge = Some(registry.gauge(&format!("tv_slo_{name}_firing")));
            st.fired_total = Some(registry.counter(&format!("tv_slo_{name}_fired_total")));
        }
        self.objectives.push(st);
    }

    fn bucket_slot(&self, now_ms: u64) -> usize {
        ((now_ms / self.config.bucket_ms) as usize) % self.ring.len()
    }

    /// Record one serve at `now_ms`.
    pub fn record(&mut self, now_ms: u64, ev: ServeEvent) {
        let bucket_start = now_ms - (now_ms % self.config.bucket_ms);
        let slot = self.bucket_slot(now_ms);
        let n = self.objectives.len();
        let bucket = &mut self.ring[slot];
        if bucket.start_ms != bucket_start {
            bucket.reset(bucket_start);
            if bucket.bad.len() != n {
                bucket.bad = vec![0; n];
            }
        }
        bucket.count += 1;
        bucket.latency[Histogram::bucket_index(ev.latency_micros)] += 1;
        for (i, st) in self.objectives.iter().enumerate() {
            let bad = match st.objective.kind {
                ObjectiveKind::LatencyP95 { max_micros } => {
                    !ev.ok || ev.latency_micros > max_micros
                }
                ObjectiveKind::Availability { .. } => !ev.ok,
                ObjectiveKind::DegradedFraction { .. } => ev.degraded,
            };
            if bad {
                bucket.bad[i] += 1;
            }
        }
        if let Some(h) = &self.windowed_latency {
            h.observe_micros(ev.latency_micros);
        }
    }

    fn window_tally(&self, now_ms: u64, window_ms: u64, objective: usize) -> (u64, u64) {
        let from = now_ms.saturating_sub(window_ms);
        let mut count = 0u64;
        let mut bad = 0u64;
        for b in &self.ring {
            if b.start_ms != u64::MAX && b.start_ms >= from && b.start_ms <= now_ms {
                count += b.count;
                bad += b.bad.get(objective).copied().unwrap_or(0);
            }
        }
        (count, bad)
    }

    fn window_p95(&self, now_ms: u64, window_ms: u64) -> Option<u64> {
        let from = now_ms.saturating_sub(window_ms);
        let mut counts = [0u64; HIST_BUCKETS];
        let mut total = 0u64;
        for b in &self.ring {
            if b.start_ms != u64::MAX && b.start_ms >= from && b.start_ms <= now_ms {
                for (slot, c) in counts.iter_mut().zip(b.latency.iter()) {
                    *slot += c;
                }
                total += b.count;
            }
        }
        if total == 0 {
            return None;
        }
        let rank = ((0.95 * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(Histogram::bucket_upper(i));
            }
        }
        Some(u64::MAX)
    }

    /// Evaluate every objective at `now_ms`, driving alert transitions.
    /// Cheap to call per-query: full evaluation only happens when the
    /// clock has entered a new bucket since the last call (pass
    /// `force = true` to bypass the throttle, e.g. from tests or a final
    /// end-of-run check).
    pub fn evaluate(&mut self, now_ms: u64, force: bool) -> Vec<SloStatus> {
        let bucket = now_ms / self.config.bucket_ms;
        if !force && bucket == self.last_eval_bucket {
            return Vec::new();
        }
        self.last_eval_bucket = bucket;
        let mut out = Vec::with_capacity(self.objectives.len());
        let window_p95 = self.window_p95(now_ms, self.config.slow_window_ms);
        for i in 0..self.objectives.len() {
            let (fast_count, fast_bad) = self.window_tally(now_ms, self.config.fast_window_ms, i);
            let (slow_count, slow_bad) = self.window_tally(now_ms, self.config.slow_window_ms, i);
            let st = &mut self.objectives[i];
            let budget = st.objective.budget();
            let frac = |bad: u64, count: u64| {
                if count == 0 {
                    0.0
                } else {
                    bad as f64 / count as f64
                }
            };
            let fast_burn = frac(fast_bad, fast_count) / budget;
            let slow_burn = frac(slow_bad, slow_count) / budget;
            let mut just_fired = false;
            let mut just_cleared = false;
            if !st.firing
                && fast_count >= self.config.min_events
                && fast_burn >= self.config.fire_burn
                && slow_burn >= self.config.fire_burn
            {
                st.firing = true;
                st.times_fired += 1;
                just_fired = true;
                if let Some(c) = &st.fired_total {
                    c.inc();
                }
                if let Some(c) = &self.alerts_total {
                    c.inc();
                }
            } else if st.firing
                && fast_burn <= self.config.clear_burn
                && slow_burn <= self.config.clear_burn
            {
                st.firing = false;
                just_cleared = true;
            }
            if let Some(g) = &st.burn_fast_gauge {
                g.set((fast_burn * 1000.0) as i64);
            }
            if let Some(g) = &st.burn_slow_gauge {
                g.set((slow_burn * 1000.0) as i64);
            }
            if let Some(g) = &st.firing_gauge {
                g.set(st.firing as i64);
            }
            out.push(SloStatus {
                name: st.objective.name,
                firing: st.firing,
                just_fired,
                just_cleared,
                fast_burn,
                slow_burn,
                fast_events: fast_count,
                window_p95_micros: window_p95,
                times_fired: st.times_fired,
            });
        }
        out
    }

    /// Current status without advancing alert state (no transitions).
    pub fn status(&self, now_ms: u64) -> Vec<SloStatus> {
        let window_p95 = self.window_p95(now_ms, self.config.slow_window_ms);
        self.objectives
            .iter()
            .enumerate()
            .map(|(i, st)| {
                let (fast_count, fast_bad) =
                    self.window_tally(now_ms, self.config.fast_window_ms, i);
                let (slow_count, slow_bad) =
                    self.window_tally(now_ms, self.config.slow_window_ms, i);
                let budget = st.objective.budget();
                let frac = |bad: u64, count: u64| {
                    if count == 0 {
                        0.0
                    } else {
                        bad as f64 / count as f64
                    }
                };
                SloStatus {
                    name: st.objective.name,
                    firing: st.firing,
                    just_fired: false,
                    just_cleared: false,
                    fast_burn: frac(fast_bad, fast_count) / budget,
                    slow_burn: frac(slow_bad, slow_count) / budget,
                    fast_events: fast_count,
                    window_p95_micros: window_p95,
                    times_fired: st.times_fired,
                }
            })
            .collect()
    }

    pub fn config(&self) -> &SloConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> SloTracker {
        SloTracker::new(
            SloConfig {
                bucket_ms: 100,
                fast_window_ms: 1_000,
                slow_window_ms: 5_000,
                fire_burn: 2.0,
                clear_burn: 1.0,
                min_events: 4,
            },
            vec![
                Objective::availability("availability", 0.95),
                Objective::degraded_fraction("degraded", 0.10),
            ],
        )
    }

    #[test]
    fn empty_window_never_fires() {
        let mut t = tracker();
        let statuses = t.evaluate(10_000, true);
        assert!(statuses.iter().all(|s| !s.firing && s.fast_burn == 0.0));
    }

    #[test]
    fn full_error_window_fires_and_clears_with_hysteresis() {
        let mut t = tracker();
        // 100% errors: availability budget 0.05 → burn 20x in both windows.
        for ms in (0..2_000).step_by(50) {
            t.record(
                ms,
                ServeEvent {
                    latency_micros: 1_000,
                    ok: false,
                    degraded: false,
                },
            );
        }
        let st = t.evaluate(2_000, true);
        let avail = st.iter().find(|s| s.name == "availability").unwrap();
        assert!(avail.firing && avail.just_fired, "{avail:?}");
        assert_eq!(avail.times_fired, 1);
        let degraded = st.iter().find(|s| s.name == "degraded").unwrap();
        assert!(!degraded.firing, "only the violated objective fires");

        // Healthy traffic pushes the windows back under clear_burn.
        for ms in (2_000..9_000).step_by(20) {
            t.record(
                ms,
                ServeEvent {
                    latency_micros: 1_000,
                    ok: true,
                    degraded: false,
                },
            );
        }
        let st = t.evaluate(9_000, true);
        let avail = st.iter().find(|s| s.name == "availability").unwrap();
        assert!(!avail.firing && avail.just_cleared, "{avail:?}");
        assert_eq!(avail.times_fired, 1, "exactly one fire across the episode");
    }

    #[test]
    fn boundary_riding_burn_does_not_flap() {
        // Bad fraction parked between clear (1.0x) and fire (2.0x) burn:
        // ~6.25% bad on a 5% budget = 1.25x, spread evenly so no window
        // alignment spikes over the fire bound. Never fires, and had it
        // been firing it would not clear — the band absorbs oscillation.
        let mut t = SloTracker::new(
            SloConfig {
                bucket_ms: 100,
                fast_window_ms: 1_000,
                slow_window_ms: 5_000,
                fire_burn: 2.0,
                clear_burn: 1.0,
                min_events: 24,
            },
            vec![Objective::availability("availability", 0.95)],
        );
        let mut transitions = 0;
        for i in 0..400u64 {
            let ms = i * 25;
            t.record(
                ms,
                ServeEvent {
                    latency_micros: 500,
                    ok: i % 16 != 8, // one error per 16 serves
                    degraded: false,
                },
            );
            for s in t.evaluate(ms, false) {
                if s.just_fired || s.just_cleared {
                    transitions += 1;
                }
            }
        }
        assert_eq!(transitions, 0, "mid-band burn must not transition");
    }

    #[test]
    fn min_events_guards_sparse_windows() {
        let mut t = tracker();
        // One catastrophic serve in an otherwise empty window.
        t.record(
            50,
            ServeEvent {
                latency_micros: 10_000_000,
                ok: false,
                degraded: true,
            },
        );
        let st = t.evaluate(100, true);
        assert!(
            st.iter().all(|s| !s.firing),
            "a single event cannot fire an alert: {st:?}"
        );
    }

    #[test]
    fn latency_objective_tracks_windowed_p95() {
        let mut t = SloTracker::new(
            SloConfig {
                bucket_ms: 100,
                fast_window_ms: 1_000,
                slow_window_ms: 4_000,
                fire_burn: 2.0,
                clear_burn: 1.0,
                min_events: 4,
            },
            vec![Objective::latency_p95("interactive", 2_000)],
        );
        // 50% of serves at 10ms >> 2ms bound: burn = 0.5/0.05 = 10x.
        for i in 0..100u64 {
            t.record(
                i * 10,
                ServeEvent {
                    latency_micros: if i % 2 == 0 { 500 } else { 10_000 },
                    ok: true,
                    degraded: false,
                },
            );
        }
        let st = t.evaluate(1_000, true);
        let s = &st[0];
        assert!(s.firing, "{s:?}");
        assert!(s.window_p95_micros.unwrap() >= 8_192, "{s:?}");
    }
}
