//! A minimal JSON value, parser and escaper — just enough to validate and
//! inspect exported Chrome traces without external dependencies. Not a
//! general-purpose JSON library: numbers are `f64`, no `\u` surrogate-pair
//! recombination beyond the BMP escape itself.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Escape a string for embedding in a JSON document (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(format!(
                "expected '{}' at byte {}, got {:?}",
                b as char,
                self.pos.saturating_sub(1),
                got.map(|g| g as char)
            )),
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".to_string());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        self.pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        return Err(format!("bad escape {:?}", other.map(|b| b as char)));
                    }
                },
                Some(b) if b < 0x20 => return Err("control char in string".to_string()),
                Some(b) => {
                    // Re-attach multi-byte UTF-8 sequences.
                    let mut buf = vec![b];
                    while self
                        .peek()
                        .map(|n| (0x80..0xc0).contains(&n))
                        .unwrap_or(false)
                    {
                        buf.push(self.bump().unwrap());
                    }
                    out.push_str(std::str::from_utf8(&buf).unwrap_or("\u{fffd}"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Arr(out)),
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos.saturating_sub(1),
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Obj(out)),
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos.saturating_sub(1),
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }
}
