//! OpenMetrics-style histogram exemplars: each latency bucket remembers
//! the trace id of a recent occupant, so the p99 bucket in a metrics
//! exposition links directly to a readable flight-recorder trace.
//!
//! Capture is automatic: [`crate::metrics::Histogram::observe_micros`]
//! consults [`crate::trace::active_trace_id`] — if the observing thread is
//! inside a query trace, the observation's bucket slot is overwritten with
//! that trace id (last writer wins, one slot per bucket). Observations made
//! outside any trace leave the slots untouched, which keeps expositions
//! from non-traced contexts byte-identical to the pre-exemplar format.
//!
//! Emission rides on the shared histogram exposition
//! ([`crate::metrics::emit_histogram_series`]): a populated bucket line
//! gains a ` # {trace_id="..."} <seconds>` suffix. The suffix starts with
//! `#` mid-line (never at line start, so comment parsing is unaffected) and
//! ends with the exemplar value in seconds (so "last token parses as f64"
//! scrapers keep working).
//!
//! The flight recorder closes the loop: [`crate::FlightRecorder`] pins
//! evicted traces that are still referenced by a registry's exemplar slots,
//! so an exported trace id never dangles (see `recorder.rs`).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::metrics::HIST_BUCKETS;

/// One bucket's exemplar: the trace id of a recent occupant plus the
/// observed value that landed it there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exemplar {
    pub trace_id: u64,
    pub value_micros: u64,
}

impl Exemplar {
    /// The mid-line exposition suffix: ` # {trace_id="..."} <seconds>`.
    pub fn suffix(&self) -> String {
        format!(
            " # {{trace_id=\"{}\"}} {}",
            self.trace_id,
            self.value_micros as f64 / 1e6
        )
    }
}

/// Per-bucket exemplar slots for one histogram. Trace id 0 means "empty"
/// (real trace ids start at 1). Id and value are stored as independent
/// relaxed atomics: a torn pair under contention can at worst mislabel the
/// value of a *real* trace id — it can never fabricate a dangling id.
#[derive(Default)]
pub(crate) struct ExemplarSlots {
    ids: [AtomicU64; HIST_BUCKETS],
    values: [AtomicU64; HIST_BUCKETS],
}

impl ExemplarSlots {
    pub(crate) fn record(&self, bucket: usize, trace_id: u64, value_micros: u64) {
        self.values[bucket].store(value_micros, Ordering::Relaxed);
        self.ids[bucket].store(trace_id, Ordering::Relaxed);
    }

    pub(crate) fn get(&self, bucket: usize) -> Option<Exemplar> {
        let trace_id = self.ids[bucket].load(Ordering::Relaxed);
        if trace_id == 0 {
            return None;
        }
        Some(Exemplar {
            trace_id,
            value_micros: self.values[bucket].load(Ordering::Relaxed),
        })
    }

    /// Distinct trace ids currently referenced by any bucket slot.
    pub(crate) fn trace_ids(&self, out: &mut std::collections::HashSet<u64>) {
        for slot in &self.ids {
            let id = slot.load(Ordering::Relaxed);
            if id != 0 {
                out.insert(id);
            }
        }
    }
}

/// Parse every exemplar suffix out of a rendered exposition, returning
/// `(family_bucket_series, trace_id)` pairs. Operator tooling (and the e25
/// drill) uses this to check that exported ids resolve against a recorder.
pub fn scrape_exemplars(text: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some((series, suffix)) = line.split_once(" # {trace_id=\"") else {
            continue;
        };
        let Some((id, _)) = suffix.split_once('"') else {
            continue;
        };
        if let Ok(id) = id.parse::<u64>() {
            let name = series.split_whitespace().next().unwrap_or(series);
            out.push((name.to_string(), id));
        }
    }
    out
}
