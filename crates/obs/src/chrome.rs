//! Chrome `trace_event` export: render a [`RecordedTrace`] as JSON loadable
//! in `chrome://tracing` / Perfetto, plus a minimal schema validator used
//! by tests and the CI smoke check.
//!
//! Each span becomes a complete event (`"ph":"X"`) with microsecond `ts`
//! relative to the trace start and `tid` set to the recording thread's
//! lane id, so one query's morsel workers render as parallel tracks.
//! Events are emitted grouped by lane in ascending `ts` order — `ts` is
//! monotone within every `tid` lane, which the trace viewer requires for
//! correct nesting.

use std::fmt::Write as _;

use crate::json::{self, JsonValue};
use crate::recorder::RecordedTrace;

/// Render a recorded trace as a Chrome `trace_event` JSON document
/// (object form: `{"traceEvents": [...], ...}`).
pub fn to_chrome_trace(trace: &RecordedTrace) -> String {
    let mut events: Vec<&crate::span::SpanEvent> = trace.events.iter().collect();
    events.sort_by_key(|e| {
        (
            e.lane,
            e.start.saturating_duration_since(trace.started),
            e.span_id,
        )
    });

    let mut out = String::with_capacity(events.len() * 160 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |s: &str, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(s);
    };

    // Metadata: process name plus one thread name per lane.
    emit(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"tabviz\"}}",
        &mut out,
    );
    let mut lanes: Vec<u64> = events.iter().map(|e| e.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for lane in &lanes {
        emit(
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":{lane},\
                 \"args\":{{\"name\":\"lane-{lane}\"}}}}"
            ),
            &mut out,
        );
    }

    for e in &events {
        let ts = e.start.saturating_duration_since(trace.started).as_micros();
        let dur = e.dur.as_micros();
        let mut ev = String::with_capacity(160);
        let _ = write!(
            ev,
            "{{\"name\":\"{}\",\"cat\":\"tabviz\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
             \"pid\":1,\"tid\":{}",
            json::escape(e.stage),
            e.lane
        );
        let _ = write!(ev, ",\"args\":{{\"span_id\":{}", e.span_id);
        if let Some(p) = e.parent {
            let _ = write!(ev, ",\"parent\":{p}");
        }
        if let Some(l) = e.label {
            let _ = write!(ev, ",\"label\":\"{}\"", json::escape(l));
        }
        if let Some(d) = e.detail {
            let _ = write!(ev, ",\"detail\":{d}");
        }
        if let Some(r) = e.reason {
            let _ = write!(ev, ",\"reason\":\"{}\"", json::escape(r));
        }
        ev.push_str("}}");
        emit(&ev, &mut out);
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"trace_id\":{},\"query\":\"{}\",\
         \"source\":\"{}\",\"outcome\":\"{}\",\"total_us\":{},\"dropped_events\":{}}}}}",
        trace.trace_id,
        json::escape(&trace.query),
        json::escape(&trace.source),
        trace.outcome,
        trace.total.as_micros(),
        trace.dropped_events
    );
    out
}

/// Validate an exported document against the minimal Chrome `trace_event`
/// schema: a JSON object with a `traceEvents` array whose members carry
/// `name` (string), `ph` (string), `ts` (number), `pid`/`tid` (numbers),
/// and — for complete events — a non-negative `dur`. Also checks that `ts`
/// is monotone non-decreasing within each `tid` lane.
pub fn validate_chrome_trace(doc: &str) -> Result<(), String> {
    let root = json::parse(doc)?;
    let events = root
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    let mut last_ts: std::collections::HashMap<i64, f64> = std::collections::HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i} ({name}): missing ph"))?;
        let ts = ev
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i} ({name}): missing ts"))?;
        let tid = ev
            .get("tid")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i} ({name}): missing tid"))? as i64;
        ev.get("pid")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i} ({name}): missing pid"))?;
        if ph == "X" {
            let dur = ev
                .get("dur")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("event {i} ({name}): X event missing dur"))?;
            if dur < 0.0 {
                return Err(format!("event {i} ({name}): negative dur"));
            }
            let prev = last_ts.entry(tid).or_insert(f64::MIN);
            if ts < *prev {
                return Err(format!(
                    "event {i} ({name}): ts {ts} not monotone on tid {tid}"
                ));
            }
            *prev = ts;
        }
    }
    Ok(())
}
