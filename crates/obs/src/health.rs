//! Anomaly-driven node health scoring: EWMA baselines + hysteresis.
//!
//! Hard node death is easy — the PR 6 router already skips downed nodes.
//! The failure mode that actually erodes user response times is the
//! *brown-out*: a node that still answers, just 20× slower (saturated
//! backend, failing disk, noisy neighbor). This module detects it the way
//! anomaly detectors do: a **fast** EWMA tracks what latency looks like
//! right now, a **slow** EWMA remembers what it normally looks like, and
//! the ratio between them (plus error and degraded-serve rates) collapses
//! into a 0–100 health score. The router demotes a node whose score falls
//! below `demote_below` and only restores it above `restore_above` — a
//! hysteresis band wide enough that a score oscillating around either
//! bound cannot flap routing.

/// Tuning for one node's scorer.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Fast EWMA smoothing (per observation).
    pub alpha_fast: f64,
    /// Fast EWMA smoothing while demoted, for observations *slower* than
    /// the current EWMA: probes are sparse (1 in N routes), so evidence
    /// that the node is still sick should register immediately.
    pub alpha_fast_demoted: f64,
    /// Fast EWMA smoothing while demoted, for observations *faster* than
    /// the current EWMA. Deliberately smaller (peak-hold decay): a
    /// browned-out node still answers cached queries in microseconds, and
    /// a short run of lucky fast probes must not restore it — only a
    /// sustained run of fast serves decays the EWMA below the floor.
    pub alpha_fast_demoted_down: f64,
    /// Slow baseline EWMA smoothing.
    pub alpha_slow: f64,
    /// Observations before the score is trusted (no demotions earlier).
    pub min_samples: u64,
    /// Absolute latency floor, µs: while the fast EWMA sits under this,
    /// the node is fast in absolute terms and ratio anomalies are ignored
    /// (a 50µs cache hit being 5× a 10µs one is not a brown-out).
    pub latency_floor_micros: f64,
    /// Fast/slow ratio up to which the latency subscore stays 1.0.
    pub ratio_grace: f64,
    /// Ratio at which the latency subscore reaches 0.
    pub ratio_zero: f64,
    /// Error-rate EWMA weight in the score (errors are worse than slow).
    pub alpha_err: f64,
    /// Demote when score < this.
    pub demote_below: f64,
    /// Restore only when score > this (hysteresis: > `demote_below`).
    pub restore_above: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            alpha_fast: 0.25,
            alpha_fast_demoted: 0.5,
            alpha_fast_demoted_down: 0.2,
            alpha_slow: 0.02,
            min_samples: 16,
            latency_floor_micros: 15_000.0,
            ratio_grace: 2.5,
            ratio_zero: 8.0,
            alpha_err: 0.15,
            demote_below: 40.0,
            restore_above: 70.0,
        }
    }
}

/// Routing-visible state derived from the score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    Healthy,
    /// Score under the demotion bound: the router avoids this node while
    /// alternatives exist, probing it occasionally for recovery.
    Demoted,
}

/// How a serve ended, as the scorer cares about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeKind {
    Ok,
    /// Answered, but degraded (stale data, replica fallback).
    Degraded,
    /// Errored or shed without an answer.
    Error,
}

/// Per-node scorer. Not thread-safe; wrap in a mutex.
pub struct HealthScorer {
    config: HealthConfig,
    samples: u64,
    ewma_fast: f64,
    ewma_slow: f64,
    err_rate: f64,
    degraded_rate: f64,
    state: HealthState,
    demotions: u64,
    restorations: u64,
}

impl HealthScorer {
    pub fn new(config: HealthConfig) -> Self {
        HealthScorer {
            config,
            samples: 0,
            ewma_fast: 0.0,
            ewma_slow: 0.0,
            err_rate: 0.0,
            degraded_rate: 0.0,
            state: HealthState::Healthy,
            demotions: 0,
            restorations: 0,
        }
    }

    /// Fold in one serve. Returns `Some(new_state)` on a demote/restore
    /// transition, `None` otherwise.
    pub fn observe(&mut self, latency_micros: u64, kind: ServeKind) -> Option<HealthState> {
        let lat = latency_micros as f64;
        self.samples += 1;
        if self.samples == 1 {
            self.ewma_fast = lat;
            self.ewma_slow = lat;
        } else {
            let alpha = if self.state == HealthState::Demoted {
                if lat > self.ewma_fast {
                    self.config.alpha_fast_demoted
                } else {
                    self.config.alpha_fast_demoted_down
                }
            } else {
                self.config.alpha_fast
            };
            self.ewma_fast += alpha * (lat - self.ewma_fast);
            // The slow baseline only learns from non-anomalous serves:
            // during a brown-out it must keep remembering "normal", not
            // chase the anomaly until the ratio looks fine again.
            let ratio = self.ewma_fast / self.ewma_slow.max(1.0);
            if ratio < self.config.ratio_grace || self.ewma_fast < self.config.latency_floor_micros
            {
                self.ewma_slow += self.config.alpha_slow * (lat - self.ewma_slow);
            }
        }
        let (err, degraded) = match kind {
            ServeKind::Ok => (0.0, 0.0),
            ServeKind::Degraded => (0.0, 1.0),
            ServeKind::Error => (1.0, 0.0),
        };
        self.err_rate += self.config.alpha_err * (err - self.err_rate);
        self.degraded_rate += self.config.alpha_err * (degraded - self.degraded_rate);

        if self.samples < self.config.min_samples {
            return None;
        }
        let score = self.score();
        match self.state {
            HealthState::Healthy if score < self.config.demote_below => {
                self.state = HealthState::Demoted;
                self.demotions += 1;
                Some(HealthState::Demoted)
            }
            HealthState::Demoted if score > self.config.restore_above => {
                self.state = HealthState::Healthy;
                self.restorations += 1;
                Some(HealthState::Healthy)
            }
            _ => None,
        }
    }

    /// 0–100: product of latency-anomaly, error-rate and degraded-rate
    /// subscores. 100 = indistinguishable from its own baseline.
    pub fn score(&self) -> f64 {
        if self.samples == 0 {
            return 100.0;
        }
        let lat_sub = if self.ewma_fast < self.config.latency_floor_micros {
            1.0
        } else {
            let ratio = self.ewma_fast / self.ewma_slow.max(1.0);
            if ratio <= self.config.ratio_grace {
                1.0
            } else if ratio >= self.config.ratio_zero {
                0.0
            } else {
                1.0 - (ratio - self.config.ratio_grace)
                    / (self.config.ratio_zero - self.config.ratio_grace)
            }
        };
        // Errors hit the score hard (2x weight), degraded serves gently.
        let err_sub = (1.0 - 2.0 * self.err_rate).max(0.0);
        let degraded_sub = (1.0 - 0.5 * self.degraded_rate).max(0.0);
        100.0 * lat_sub * err_sub * degraded_sub
    }

    pub fn state(&self) -> HealthState {
        self.state
    }

    pub fn samples(&self) -> u64 {
        self.samples
    }

    pub fn ewma_fast_micros(&self) -> f64 {
        self.ewma_fast
    }

    pub fn ewma_slow_micros(&self) -> f64 {
        self.ewma_slow
    }

    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    pub fn restorations(&self) -> u64 {
        self.restorations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scorer() -> HealthScorer {
        HealthScorer::new(HealthConfig::default())
    }

    #[test]
    fn healthy_traffic_scores_high() {
        let mut s = scorer();
        for _ in 0..200 {
            s.observe(5_000, ServeKind::Ok);
        }
        assert!(s.score() > 95.0, "score {}", s.score());
        assert_eq!(s.state(), HealthState::Healthy);
    }

    #[test]
    fn brownout_demotes_then_recovery_restores() {
        let mut s = scorer();
        for _ in 0..100 {
            s.observe(5_000, ServeKind::Ok);
        }
        // Brown-out: 40x slower, still answering.
        let mut demoted_after = None;
        for i in 0..100 {
            if s.observe(200_000, ServeKind::Ok) == Some(HealthState::Demoted) {
                demoted_after = Some(i);
                break;
            }
        }
        let demoted_after = demoted_after.expect("brown-out must demote");
        assert!(demoted_after < 30, "detected in {demoted_after} serves");
        assert_eq!(s.state(), HealthState::Demoted);

        // Recovery: latency returns to baseline; probes restore the node.
        let mut restored = false;
        for _ in 0..300 {
            if s.observe(5_000, ServeKind::Ok) == Some(HealthState::Healthy) {
                restored = true;
                break;
            }
        }
        assert!(restored, "recovery must restore (score {})", s.score());
        assert_eq!(s.demotions(), 1);
        assert_eq!(s.restorations(), 1);
    }

    #[test]
    fn fast_in_absolute_terms_is_never_anomalous() {
        let mut s = scorer();
        for _ in 0..100 {
            s.observe(10, ServeKind::Ok); // 10µs cache hits
        }
        for _ in 0..100 {
            // 100x ratio, but still far under the absolute floor.
            assert_eq!(s.observe(1_000, ServeKind::Ok), None);
        }
        assert_eq!(s.state(), HealthState::Healthy);
    }

    #[test]
    fn error_burst_demotes() {
        let mut s = scorer();
        for _ in 0..100 {
            s.observe(5_000, ServeKind::Ok);
        }
        let mut demoted = false;
        for _ in 0..40 {
            if s.observe(5_000, ServeKind::Error) == Some(HealthState::Demoted) {
                demoted = true;
                break;
            }
        }
        assert!(demoted, "sustained errors demote (score {})", s.score());
    }

    #[test]
    fn lucky_fast_probes_do_not_restore_mid_brownout() {
        let mut s = scorer();
        for _ in 0..100 {
            s.observe(5_000, ServeKind::Ok);
        }
        for _ in 0..20 {
            s.observe(200_000, ServeKind::Ok);
        }
        assert_eq!(s.state(), HealthState::Demoted);
        // While the node is still sick, most probes that hit its cache come
        // back in microseconds. Short lucky runs of them must not restore:
        // the peak-hold decay only forgets the anomaly over a sustained
        // all-fast stretch.
        for _ in 0..10 {
            for _ in 0..4 {
                s.observe(50, ServeKind::Ok);
            }
            s.observe(200_000, ServeKind::Ok);
        }
        assert_eq!(s.state(), HealthState::Demoted);
        assert_eq!(s.restorations(), 0);
    }

    #[test]
    fn hysteresis_band_prevents_flapping() {
        let mut s = scorer();
        for _ in 0..100 {
            s.observe(5_000, ServeKind::Ok);
        }
        // Drive the score into the band and oscillate around the demote
        // bound: transitions must not alternate per observation.
        let mut transitions = 0;
        for i in 0..400 {
            let lat = if i % 2 == 0 { 40_000 } else { 90_000 };
            if s.observe(lat, ServeKind::Ok).is_some() {
                transitions += 1;
            }
        }
        assert!(
            transitions <= 2,
            "oscillating latency caused {transitions} transitions"
        );
    }
}
