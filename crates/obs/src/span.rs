//! Span tracer: RAII stage guards recorded into a bounded per-thread ring
//! and — when a trace is active — into a cross-thread per-query trace.
//!
//! Every pipeline stage a query passes through opens a [`Span`] with a
//! static stage name (see [`crate::stage`]); dropping the guard records a
//! [`SpanEvent`] carrying the entry order, nesting depth, and duration.
//!
//! Two collection paths coexist:
//!
//! - The legacy per-thread ring: for work that executes wholly on one
//!   thread, the caller can [`mark`] the ring before executing and
//!   [`collect_since`] afterwards to obtain exactly that thread's timeline.
//!   The ring is bounded ([`RING_CAPACITY`] completed events per thread);
//!   on overflow the oldest events are evicted and counted, never blocking.
//! - The cross-thread trace (see [`crate::trace`]): when a trace is active
//!   ([`crate::trace::begin_trace`] on this thread, or a propagated
//!   [`crate::trace::TraceCtx`] installed on a worker), every event is
//!   *also* written into the trace's shared buffer at completion time, so
//!   spans recorded on short-lived worker threads survive the thread and
//!   assemble into one tree keyed by trace id.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crate::trace;

/// Completed events retained per thread before the oldest are evicted.
pub const RING_CAPACITY: usize = 4096;

/// A completed (or instantaneous) stage observation.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Static stage name (`cache_lookup`, `remote_exec`, ...).
    pub stage: &'static str,
    /// Optional static refinement (`"intelligent"` vs `"literal"`, ...).
    pub label: Option<&'static str>,
    /// Optional numeric payload (attempt number, fault ordinal, rows, ...).
    pub detail: Option<u64>,
    /// Structured decision attribution: *why* this stage went the way it
    /// did (see [`crate::reason`] for the taxonomy). `None` when the stage
    /// carries no decision.
    pub reason: Option<&'static str>,
    /// When the span was entered.
    pub start: Instant,
    /// Zero for instantaneous events.
    pub dur: Duration,
    /// Nesting depth at entry; 0 for a root span. Per-thread for ring
    /// events; recomputed from parent links when a trace is assembled.
    pub depth: u32,
    /// Thread-local entry order. Sorting by this field reconstructs a
    /// single thread's timeline (parents before children), whereas raw
    /// ring order is completion order (children before parents).
    pub enter_seq: u64,
    /// Owning trace, or 0 when no trace was active at entry.
    pub trace_id: u64,
    /// Trace-wide span id, allocated at entry from the trace's counter so
    /// that sorting by `span_id` reconstructs the cross-thread timeline
    /// (parents before children). 0 when not in a trace.
    pub span_id: u64,
    /// Enclosing span id within the trace (`None` for the trace root).
    pub parent: Option<u64>,
    /// Stable per-thread lane id (the `tid` in Chrome exports).
    pub lane: u64,
}

struct ThreadTracer {
    events: VecDeque<SpanEvent>,
    next_seq: u64,
    depth: u32,
    dropped: u64,
}

impl ThreadTracer {
    const fn new() -> Self {
        ThreadTracer {
            events: VecDeque::new(),
            next_seq: 0,
            depth: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: SpanEvent) {
        if self.events.len() >= RING_CAPACITY {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

thread_local! {
    static TRACER: RefCell<ThreadTracer> = const { RefCell::new(ThreadTracer::new()) };
}

/// RAII guard for a pipeline stage; records a [`SpanEvent`] on drop.
pub struct Span {
    stage: &'static str,
    label: Option<&'static str>,
    detail: Option<u64>,
    reason: Option<&'static str>,
    start: Instant,
    depth: u32,
    enter_seq: u64,
    slot: Option<trace::Slot>,
}

impl Span {
    /// Attach a static refinement label, visible in the recorded event.
    pub fn label(&mut self, label: &'static str) {
        self.label = Some(label);
    }

    /// Attach a numeric payload, visible in the recorded event.
    pub fn detail(&mut self, detail: u64) {
        self.detail = Some(detail);
    }

    /// Attach a decision reason code (see [`crate::reason`]), visible in
    /// the recorded event and in trace exports.
    pub fn reason(&mut self, reason: &'static str) {
        self.reason = Some(reason);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur = self.start.elapsed();
        let (trace_id, span_id, parent) = match &self.slot {
            Some(s) => (s.trace_id(), s.span_id(), s.parent()),
            None => (0, 0, None),
        };
        let ev = SpanEvent {
            stage: self.stage,
            label: self.label,
            detail: self.detail,
            reason: self.reason,
            start: self.start,
            dur,
            depth: self.depth,
            enter_seq: self.enter_seq,
            trace_id,
            span_id,
            parent,
            lane: trace::lane_id(),
        };
        TRACER.with(|t| {
            let mut t = t.borrow_mut();
            t.depth = t.depth.saturating_sub(1);
            t.push(ev.clone());
        });
        if let Some(slot) = self.slot.take() {
            trace::exit_span(slot, ev);
        }
    }
}

/// Enter a stage. The returned guard records the span when dropped.
pub fn span(stage: &'static str) -> Span {
    let slot = trace::enter_span();
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        let depth = t.depth;
        let enter_seq = t.next_seq;
        t.next_seq += 1;
        t.depth += 1;
        Span {
            stage,
            label: None,
            detail: None,
            reason: None,
            start: Instant::now(),
            depth,
            enter_seq,
            slot,
        }
    })
}

/// Record an instantaneous event (a retry, an injected fault, ...) at the
/// current nesting depth.
pub fn event(stage: &'static str, label: Option<&'static str>, detail: Option<u64>) {
    event_with(stage, label, detail, None);
}

/// [`event`] with a decision reason code attached (see [`crate::reason`]).
pub fn event_with(
    stage: &'static str,
    label: Option<&'static str>,
    detail: Option<u64>,
    reason: Option<&'static str>,
) {
    sink(stage, label, detail, reason, Duration::ZERO);
}

/// Record a completed observation with an explicit duration — for work
/// accumulated across many calls (e.g. an operator's busy time summed over
/// its `next()` calls) where a RAII guard would also count time spent
/// blocked in children.
pub fn record(
    stage: &'static str,
    label: Option<&'static str>,
    detail: Option<u64>,
    dur: Duration,
) {
    sink(stage, label, detail, None, dur);
}

fn sink(
    stage: &'static str,
    label: Option<&'static str>,
    detail: Option<u64>,
    reason: Option<&'static str>,
    dur: Duration,
) {
    let slot = trace::instant_slot();
    let (trace_id, span_id, parent) = match &slot {
        Some(s) => (s.trace_id(), s.span_id(), s.parent()),
        None => (0, 0, None),
    };
    let lane = trace::lane_id();
    let ev = TRACER.with(|t| {
        let mut t = t.borrow_mut();
        let ev = SpanEvent {
            stage,
            label,
            detail,
            reason,
            start: Instant::now(),
            dur,
            depth: t.depth,
            enter_seq: t.next_seq,
            trace_id,
            span_id,
            parent,
            lane,
        };
        t.next_seq += 1;
        t.push(ev.clone());
        ev
    });
    if let Some(slot) = slot {
        trace::sink_instant(slot, ev);
    }
}

/// Position in this thread's trace; pair with [`collect_since`].
#[derive(Clone, Copy, Debug)]
pub struct TraceMark(u64);

/// Remember the current position in this thread's trace.
pub fn mark() -> TraceMark {
    TRACER.with(|t| TraceMark(t.borrow().next_seq))
}

/// All events entered at or after `mark` on this thread, in entry order.
/// Events are copied, not drained, so overlapping collections (a query
/// profile assembled inside a batch) each see the full picture.
pub fn collect_since(mark: &TraceMark) -> Vec<SpanEvent> {
    TRACER.with(|t| {
        let t = t.borrow();
        let mut out: Vec<SpanEvent> = t
            .events
            .iter()
            .filter(|e| e.enter_seq >= mark.0)
            .cloned()
            .collect();
        out.sort_by_key(|e| e.enter_seq);
        out
    })
}

/// Events evicted from this thread's ring since thread start (diagnostic).
pub fn dropped_events() -> u64 {
    TRACER.with(|t| t.borrow().dropped)
}
