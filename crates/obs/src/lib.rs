//! Observability for the tabviz stack: where does user response time go?
//!
//! The paper's whole argument (Sect. 3) is a decomposition of dashboard
//! latency into pipeline stages — cache lookup, batch partitioning,
//! connection acquire, remote execution, local post-processing. This crate
//! makes that decomposition measurable per query:
//!
//! - [`span`] / [`Span`]: RAII stage guards recorded into a bounded
//!   per-thread ring buffer ([`span::RING_CAPACITY`]), assembled into
//!   per-query [`QueryProfile`]s with nesting, retry counts, fault
//!   attribution and a terminal [`ProfileOutcome`].
//! - [`Registry`]: lock-free named counters, gauges and log-scale latency
//!   histograms (p50/p95/p99), with [`Registry::snapshot`] (stable sorted
//!   map) and [`Registry::render_text`] (Prometheus-style exposition).
//! - [`Obs`]: the per-processor bundle of both, threaded through pools,
//!   caches, the simulated backend, the TDE and the data server.
//!
//! Offline-safe by construction: std atomics plus the vendored
//! `parking_lot` only — no external dependencies.

pub mod metrics;
pub mod profile;
pub mod span;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, Registry, HIST_BUCKETS,
};
pub use profile::{assemble, FaultTag, Obs, ProfileOutcome, ProfileStore, QueryProfile, StageSpan};
pub use span::{
    collect_since, dropped_events, event, mark, record, span, Span, SpanEvent, TraceMark,
};

/// The process-wide default [`Registry`]. Execution-layer counters with no
/// natural [`Obs`] owner (e.g. the TDE scan's blocks-skipped / rows-prefiltered
/// counts) register here, so experiments and tests can read them via
/// [`Registry::snapshot`] without threading a registry through every operator.
pub fn global() -> &'static Registry {
    static GLOBAL: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Static stage names used across the workspace. Using these constants
/// (rather than ad-hoc strings) keeps profiles joinable across crates.
pub mod stage {
    /// Cache probe (label: `"intelligent"` or `"literal"`).
    pub const CACHE_LOOKUP: &str = "cache_lookup";
    /// TQL compilation / query rewriting.
    pub const COMPILE: &str = "compile";
    /// Query-widening remote execution for reuse (Sect. 5.2).
    pub const WIDEN: &str = "widen";
    /// Batch opportunity-graph partition into zones.
    pub const BATCH_PARTITION: &str = "batch_partition";
    /// Query fusion pass over a batch.
    pub const FUSION: &str = "fusion";
    /// Waiting for / opening a pooled backend connection.
    pub const POOL_ACQUIRE: &str = "pool_acquire";
    /// Temporary-table setup on the remote session.
    pub const TEMP_TABLES: &str = "temp_tables";
    /// The remote round trip itself.
    pub const REMOTE_EXEC: &str = "remote_exec";
    /// Local post-processing of a cached/widened/remote result.
    pub const POST_PROCESS: &str = "post_process";
    /// TDE compile-optimize-plan-execute of a logical plan.
    pub const TDE_EXEC: &str = "tde_exec";
    /// Storing a result into the caches.
    pub const CACHE_STORE: &str = "cache_store";
    /// Instantaneous: a transient failure consumed one retry
    /// (detail = attempt number).
    pub const RETRY: &str = "retry";
    /// Instantaneous: an injected fault fired
    /// (label = site, detail = seed-roll ordinal).
    pub const FAULT_INJECTED: &str = "fault_injected";
    /// Instantaneous: a stale cache entry was served degraded
    /// (detail = age at serve, µs).
    pub const STALE_SERVE: &str = "stale_serve";
    /// Waiting in the admission controller's queue for a concurrency slot
    /// (label = priority class).
    pub const SCHED_QUEUE: &str = "sched_queue";
}
