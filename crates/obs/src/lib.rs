//! Observability for the tabviz stack: where does user response time go?
//!
//! The paper's whole argument (Sect. 3) is a decomposition of dashboard
//! latency into pipeline stages — cache lookup, batch partitioning,
//! connection acquire, remote execution, local post-processing. This crate
//! makes that decomposition measurable per query:
//!
//! - [`span`] / [`Span`]: RAII stage guards recorded into a bounded
//!   per-thread ring buffer ([`span::RING_CAPACITY`]), assembled into
//!   per-query [`QueryProfile`]s with nesting, retry counts, fault
//!   attribution and a terminal [`ProfileOutcome`].
//! - [`trace`]: cross-thread trace assembly — [`begin_trace`] opens a
//!   per-query trace, [`TraceCtx`] propagates it into morsel workers,
//!   batch zone threads, prefetch and the maintenance lane, and
//!   [`TraceHandle::finish`] yields one connected tree per query.
//! - [`reason`]: the decision-attribution taxonomy — structured reason
//!   codes spans carry to say *why* a cache missed, a query queued, a
//!   connection dialed.
//! - [`FlightRecorder`]: a bounded store of the last N completed traces
//!   plus auto-captured slow queries, exportable as Chrome `trace_event`
//!   JSON via [`to_chrome_trace`].
//! - [`Registry`]: lock-free named counters, gauges and log-scale latency
//!   histograms (p50/p95/p99), with [`Registry::snapshot`] (stable sorted
//!   map) and [`Registry::render_text`] (Prometheus-style exposition with
//!   HELP/TYPE lines).
//! - [`Obs`]: the per-processor bundle of all three, threaded through
//!   pools, caches, the simulated backend, the TDE and the data server.
//!
//! Offline-safe by construction: std atomics plus the vendored
//! `parking_lot` only — no external dependencies.

pub mod analyze;
pub mod chrome;
pub mod exemplar;
pub mod federation;
pub mod health;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod slo;
pub mod span;
pub mod trace;

pub use analyze::{
    critical_path, diagnose, ClassBaselines, CriticalPath, Diagnosis, Fingerprint, PathStep,
    Verdict,
};
pub use chrome::{to_chrome_trace, validate_chrome_trace};
pub use exemplar::{scrape_exemplars, Exemplar};
pub use federation::{Federation, MergedHistogram};
pub use health::{HealthConfig, HealthScorer, HealthState, ServeKind};
pub use json::JsonValue;
pub use metrics::{
    escape_label_value, Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, Registry,
    TextEmitter, HIST_BUCKETS,
};
pub use profile::{assemble, FaultTag, Obs, ProfileOutcome, ProfileStore, QueryProfile, StageSpan};
pub use recorder::{FlightRecorder, FlightRecorderConfig, RecordedTrace};
pub use slo::{Objective, ObjectiveKind, ServeEvent, SloConfig, SloStatus, SloTracker};
pub use span::{
    collect_since, dropped_events, event, event_with, mark, record, span, Span, SpanEvent,
    TraceMark,
};
pub use trace::{begin_trace, FinishedTrace, TraceCtx, TraceGuard, TraceHandle};

/// The process-wide default [`Registry`]. Execution-layer counters with no
/// natural [`Obs`] owner (e.g. the TDE scan's blocks-skipped / rows-prefiltered
/// counts) register here, so experiments and tests can read them via
/// [`Registry::snapshot`] without threading a registry through every operator.
pub fn global() -> &'static Registry {
    static GLOBAL: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Static stage names used across the workspace. Using these constants
/// (rather than ad-hoc strings) keeps profiles joinable across crates.
pub mod stage {
    /// Synthetic root span of a per-query trace (see [`crate::trace`]).
    pub const QUERY: &str = "query";
    /// Cache probe (label: `"intelligent"` or `"literal"`).
    pub const CACHE_LOOKUP: &str = "cache_lookup";
    /// TQL compilation / query rewriting.
    pub const COMPILE: &str = "compile";
    /// Query-widening remote execution for reuse (Sect. 5.2).
    pub const WIDEN: &str = "widen";
    /// Batch opportunity-graph partition into zones.
    pub const BATCH_PARTITION: &str = "batch_partition";
    /// Query fusion pass over a batch.
    pub const FUSION: &str = "fusion";
    /// Waiting for / opening a pooled backend connection.
    pub const POOL_ACQUIRE: &str = "pool_acquire";
    /// Temporary-table setup on the remote session.
    pub const TEMP_TABLES: &str = "temp_tables";
    /// The remote round trip itself.
    pub const REMOTE_EXEC: &str = "remote_exec";
    /// Local post-processing of a cached/widened/remote result.
    pub const POST_PROCESS: &str = "post_process";
    /// TDE compile-optimize-plan-execute of a logical plan.
    pub const TDE_EXEC: &str = "tde_exec";
    /// Storing a result into the caches.
    pub const CACHE_STORE: &str = "cache_store";
    /// Instantaneous: a transient failure consumed one retry
    /// (detail = attempt number).
    pub const RETRY: &str = "retry";
    /// Instantaneous: an injected fault fired
    /// (label = site, detail = seed-roll ordinal).
    pub const FAULT_INJECTED: &str = "fault_injected";
    /// Instantaneous: a stale cache entry was served degraded
    /// (detail = age at serve, µs).
    pub const STALE_SERVE: &str = "stale_serve";
    /// Waiting in the admission controller's queue for a concurrency slot
    /// (label = priority class).
    pub const SCHED_QUEUE: &str = "sched_queue";
    /// Instantaneous: per-query scan pruning counters (label =
    /// `"blocks_skipped"` / `"blocks_total"` / `"rows_prefiltered"`,
    /// detail = count).
    pub const SCAN_PRUNE: &str = "scan_prune";
    /// One maintenance-lane revalidation pass.
    pub const MAINTENANCE: &str = "maintenance";
    /// One speculative prefetch batch.
    pub const PREFETCH: &str = "prefetch";
    /// Cluster routing decision for one client query (label =
    /// `"primary"` / `"failover"`, detail = chosen node index).
    pub const CLUSTER_ROUTE: &str = "cluster_route";
    /// Replicated peer-cache tier probe (label = `"get"` / `"put"`,
    /// detail = replica fan-out consulted).
    pub const PEER_CACHE: &str = "peer_cache";
    /// Instantaneous: an SLO evaluation produced an alert transition
    /// (reason = `slo_burn_alert` / `slo_alert_cleared`, detail =
    /// objective ordinal).
    pub const SLO_CHECK: &str = "slo_check";
    /// Instantaneous: a node's health score crossed the demote/restore
    /// band (detail = score at transition).
    pub const NODE_HEALTH: &str = "node_health";
    /// Instantaneous: a keyed operator (hash agg / hash join) chose its
    /// kernel implementation at construction (reason =
    /// `kernel_fastpath` / `kernel_fallback_*`, label = operator stage).
    pub const KERNEL_SELECT: &str = "kernel_select";
    /// Shared L2 result-tier interaction on the node-local lookup path
    /// (label = `"get"` / `"put"` / `"promote"` / `"purge"` / `"warm"`,
    /// detail = payload bytes or purged-entry count).
    pub const CACHE_TIER: &str = "cache_tier";
}

/// Decision reason codes: *why* a stage went the way it did, attached to
/// spans via [`crate::Span::reason`] / [`crate::event_with`] and surfaced
/// in profiles, flight-recorder traces and Chrome exports. Grouped by
/// subsystem; see DESIGN.md §11 for the full taxonomy.
pub mod reason {
    // --- intelligent cache verdicts -------------------------------------
    /// Exact hit: an entry matched the spec verbatim.
    pub const CACHE_HIT_EXACT: &str = "cache_hit_exact";
    /// Hit on a same-grouping entry with a residual filter applied.
    pub const CACHE_HIT_RESIDUAL: &str = "cache_hit_residual";
    /// Hit by rolling a finer-grained entry up to the requested grouping.
    pub const CACHE_HIT_ROLLUP: &str = "cache_hit_rollup";
    /// A stale entry was served degraded (backend unavailable).
    pub const CACHE_HIT_STALE: &str = "cache_hit_stale";
    /// Miss: no cached entry exists for this data source at all.
    pub const CACHE_MISS_NO_CANDIDATE: &str = "cache_miss_no_candidate";
    /// Miss: closest candidate had a different TOP-N / ordering clause.
    pub const CACHE_MISS_TOPN: &str = "cache_miss_topn_mismatch";
    /// Miss: requested group-by is not a subset of any entry's grouping.
    pub const CACHE_MISS_GROUP_NOT_SUBSET: &str = "cache_miss_group_not_subset";
    /// Miss: the entry's filter does not imply the requested filter.
    pub const CACHE_MISS_FILTER_NOT_IMPLIED: &str = "cache_miss_filter_not_implied";
    /// Miss: the residual filter touches a column absent from the entry's
    /// grouping, so it cannot be evaluated over the cached rows.
    pub const CACHE_MISS_RESIDUAL_COLUMN: &str = "cache_miss_residual_column";
    /// Miss: a requested aggregate cannot be derived from the entry
    /// (COUNTD over a coarser grouping, missing aggregate, no AVG parts).
    pub const CACHE_MISS_AGG_NOT_DERIVABLE: &str = "cache_miss_agg_not_derivable";

    // --- literal cache verdicts -----------------------------------------
    pub const LITERAL_HIT: &str = "literal_hit";
    pub const LITERAL_MISS: &str = "literal_miss";
    pub const LITERAL_STALE: &str = "literal_stale";

    // --- scheduler verdicts ---------------------------------------------
    /// Admitted without queueing (slot free, queue empty).
    pub const SCHED_ADMITTED: &str = "sched_admitted_immediate";
    /// Admitted after waiting in the class queue.
    pub const SCHED_QUEUED: &str = "sched_queued";
    /// Admitted immediately by evicting lower-priority queued work.
    pub const SCHED_ADMITTED_EVICTING: &str = "sched_admitted_evicting";
    /// A reserved interactive slot was granted to batch work after the
    /// configured interactive-idle window elapsed (work conservation).
    pub const SCHED_RESERVED_GRANT: &str = "sched_reserved_grant_to_batch";
    /// Shed on arrival: total queue depth over the class watermark.
    pub const SCHED_SHED_WATERMARK: &str = "sched_shed_watermark";
    /// Shed while queued: evicted to admit higher-priority work.
    pub const SCHED_SHED_EVICTED: &str = "sched_shed_evicted";
    /// Shed while queued: the queue deadline expired before a grant.
    pub const SCHED_DEADLINE_EXPIRED: &str = "sched_deadline_expired";

    // --- pool verdicts ---------------------------------------------------
    /// Reused the connection that already holds this query's temp tables.
    pub const POOL_TEMP_AFFINITY: &str = "pool_temp_affinity";
    /// Reused an idle pooled connection.
    pub const POOL_REUSED: &str = "pool_reused";
    /// Dialed a fresh connection.
    pub const POOL_DIALED: &str = "pool_dialed";
    /// Fast-failed: the circuit breaker is open.
    pub const POOL_BREAKER_OPEN: &str = "pool_breaker_fast_fail";
    /// Dial failed after retries.
    pub const POOL_CONNECT_FAILED: &str = "pool_connect_failed";
    /// Acquire deadline expired waiting for a slot.
    pub const POOL_TIMEOUT: &str = "pool_acquire_timeout";

    // --- background lanes -------------------------------------------------
    /// Query issued by the maintenance lane to refresh a stale entry.
    pub const MAINT_REFRESH: &str = "maintenance_refresh";
    /// Query issued speculatively by the prefetcher.
    pub const PREFETCH_SPECULATIVE: &str = "prefetch_speculative";

    // --- cluster routing / peer cache tier -------------------------------
    /// Routed to the session's affinity node (a healthy replica owner).
    pub const ROUTE_PRIMARY: &str = "route_primary";
    /// Affinity node down: failed over to the next healthy replica.
    pub const ROUTE_FAILOVER: &str = "route_failover";
    /// Every replica owner down: walked the ring to any healthy node.
    pub const ROUTE_ALL_REPLICAS_DOWN: &str = "route_all_replicas_down";
    /// Peer cache tier answered from the key's primary shard.
    pub const PEER_HIT_PRIMARY: &str = "peer_hit_primary";
    /// Primary shard unreachable/empty; a replica shard answered.
    pub const PEER_HIT_REPLICA: &str = "peer_hit_replica";
    /// No peer shard held the key; the owning node must execute.
    pub const PEER_MISS: &str = "peer_miss";

    // --- scheduler per-source gate ---------------------------------------
    /// A grant waited because its backend was at its per-source limit.
    pub const SCHED_SOURCE_SATURATED: &str = "sched_source_saturated";

    // --- SLO plane / health routing ---------------------------------------
    /// A burn-rate alert fired: both windows burned over the fire bound.
    pub const SLO_BURN_ALERT: &str = "slo_burn_alert";
    /// A firing alert cleared: both windows back under the clear bound.
    pub const SLO_ALERT_CLEARED: &str = "slo_alert_cleared";
    /// Routing skipped a health-demoted owner (brown-out avoidance).
    pub const ROUTE_HEALTH_DEMOTED: &str = "route_health_demoted";
    /// Routing deliberately sent a probe through a demoted owner so its
    /// score keeps getting fresh observations (recovery detection).
    pub const ROUTE_HEALTH_PROBE: &str = "route_health_probe";

    // --- vectorized execution kernels -------------------------------------
    /// A keyed operator selected the typed `KeyBuf` fast path: every key
    /// column packs into one fixed-width word per row.
    pub const KERNEL_FASTPATH: &str = "kernel_fastpath";
    /// Fallback to the `Value`-row path: kernels disabled by options.
    pub const KERNEL_FALLBACK_DISABLED: &str = "kernel_fallback_disabled";
    /// Fallback to the `Value`-row path: the composite key is wider than
    /// the packed-key column budget.
    pub const KERNEL_FALLBACK_WIDE_KEY: &str = "kernel_fallback_wide_key";

    // --- multi-tier cache hierarchy ---------------------------------------
    /// Served from the node-local L1 (intelligent or literal) cache.
    pub const CACHE_L1_HIT: &str = "cache_l1_hit";
    /// L1 missed; the shared, ring-routed L2 tier held the result.
    pub const CACHE_L2_HIT: &str = "cache_l2_hit";
    /// An L2 hit was copied into this node's L1 for future local serves.
    pub const CACHE_L2_PROMOTE: &str = "cache_l2_promote";
    /// A stale-within-grace entry was served immediately while a
    /// Background-priority revalidation refreshes it (SWR).
    pub const CACHE_SWR_SERVE: &str = "cache_swr_serve";
    /// A tag-scoped invalidation purged dependent entries (detail =
    /// entries removed across tiers).
    pub const CACHE_TAG_PURGE: &str = "cache_tag_purge";
}
