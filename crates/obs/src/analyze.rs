//! Tail-latency root-cause analysis: turn a recorded trace into an answer
//! to "why was *this* query slow?".
//!
//! Three cooperating pieces:
//!
//! - [`critical_path`]: walk the cross-lane span tree of a finished trace
//!   (morsel workers, batch zones, sched queue, pool acquire, cache
//!   probes, backend round trip) and extract the self-time-attributed
//!   critical path — at each node, descend into the longest child; the
//!   time a node holds *beyond* its children is its self time.
//! - [`ClassBaselines`] / [`Fingerprint`]: streaming per-query-class
//!   baselines of stage *share* (fraction of wall time per pipeline
//!   stage), so an outlier diffs against its own class's normal shape
//!   rather than a global average.
//! - [`diagnose`]: classify a tail outlier with a structured [`Verdict`]
//!   (`queue_wait`, `backend_slow`, `cache_miss_storm`, ...) using the
//!   existing span reason codes as hard evidence and the fingerprint
//!   deviation as the tiebreaker.
//!
//! The analysis pass is entirely off the hot path: it reads completed
//! [`RecordedTrace`]s from the flight recorder. The only hot-path touch is
//! the per-query baseline update (a handful of duration sums and a mutex'd
//! map update), gated by [`set_enabled`] so the e25 drill can measure its
//! overhead.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::recorder::RecordedTrace;
use crate::span::SpanEvent;
use crate::{reason, stage};

/// Global analysis gate. When off, [`ClassBaselines::observe`] is a no-op —
/// the e25 drill flips this to measure the warm-path overhead of the
/// baseline-maintenance pass.
static ENABLED: AtomicBool = AtomicBool::new(true);

pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Structured slow-query verdicts, ordered roughly by how actionable they
/// are for an operator. Each maps to the subsystem that owns the fix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Time went to the admission controller's queue: concurrency limit,
    /// not execution, is the bottleneck.
    QueueWait,
    /// Time went to waiting for a pooled backend connection.
    PoolAcquire,
    /// The pool circuit breaker fast-failed the query.
    BreakerFastfail,
    /// The backend round trip itself dominated, and going remote is normal
    /// for this class: the backend (or network) is slow.
    BackendSlow,
    /// The query went remote *because* the cache missed, in a class that
    /// normally serves from cache — an invalidation/purge storm signature.
    CacheMissStorm,
    /// Served via the shared L2 tier (miss in L1, hit + promote in L2):
    /// slower than L1 but far cheaper than the backend.
    L2MissPromote,
    /// The local scan did far less block pruning than usual for a scan of
    /// this shape — zone maps stopped helping.
    PruneRegression,
    /// A keyed operator fell off the typed kernel fast path.
    KernelFallback,
    /// A stale-while-revalidate serve was slow: contention with the
    /// background revalidation lane.
    SwrRevalidateContention,
    /// No dominant signal; the trace is slow but evenly so.
    Unclassified,
}

impl Verdict {
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::QueueWait => "queue_wait",
            Verdict::PoolAcquire => "pool_acquire",
            Verdict::BreakerFastfail => "breaker_fastfail",
            Verdict::BackendSlow => "backend_slow",
            Verdict::CacheMissStorm => "cache_miss_storm",
            Verdict::L2MissPromote => "l2_miss_promote",
            Verdict::PruneRegression => "prune_regression",
            Verdict::KernelFallback => "kernel_fallback",
            Verdict::SwrRevalidateContention => "swr_revalidate_contention",
            Verdict::Unclassified => "unclassified",
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One step of a critical path.
#[derive(Clone, Debug)]
pub struct PathStep {
    pub span_id: u64,
    pub stage: &'static str,
    pub label: Option<&'static str>,
    pub reason: Option<&'static str>,
    /// Duration clamped so a child never outlasts its parent on the path
    /// (cross-thread clock skew cannot inflate the attribution).
    pub dur: Duration,
    /// Time this step holds beyond the sum of its children: the step's own
    /// contribution to end-to-end latency.
    pub self_time: Duration,
    pub lane: u64,
}

/// The self-time-attributed critical path of one trace, root to leaf.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    pub steps: Vec<PathStep>,
    /// Trace wall time the attribution is normalized against.
    pub total: Duration,
    /// Sum of self times along the path; always ≤ `total`.
    pub attributed: Duration,
}

impl CriticalPath {
    /// The step holding the most self time (excluding the synthetic root
    /// when any real stage carries time).
    pub fn dominant(&self) -> Option<&PathStep> {
        let non_root = self
            .steps
            .iter()
            .skip(1)
            .max_by_key(|s| (s.self_time, std::cmp::Reverse(s.span_id)));
        non_root.or_else(|| self.steps.first())
    }

    /// One-line rendering: `query 12ms > remote_exec 11ms (self 10.5ms)`.
    pub fn render(&self) -> String {
        let mut parts = Vec::with_capacity(self.steps.len());
        for s in &self.steps {
            let label = s.label.map(|l| format!(":{l}")).unwrap_or_default();
            parts.push(format!(
                "{}{label} {:.2}ms(self {:.2})",
                s.stage,
                s.dur.as_secs_f64() * 1e3,
                s.self_time.as_secs_f64() * 1e3
            ));
        }
        parts.join(" > ")
    }
}

/// Extract the critical path from an entry-ordered span tree (see
/// [`crate::trace::FinishedTrace`]). The walk starts at the root (the
/// synthetic `query` span — smallest span id with no parent), descends
/// into the longest child at every level (ties broken by smallest span id,
/// so the path is deterministic), and attributes to each step the time it
/// holds beyond its children. Durations are clamped top-down, so the
/// attributed total never exceeds the trace wall time even when parallel
/// lanes overlap or clocks skew.
pub fn critical_path(events: &[SpanEvent], total: Duration) -> CriticalPath {
    let mut by_id: HashMap<u64, &SpanEvent> = HashMap::with_capacity(events.len());
    let mut children: HashMap<u64, Vec<u64>> = HashMap::new();
    for e in events {
        by_id.entry(e.span_id).or_insert(e);
        if let Some(p) = e.parent {
            children.entry(p).or_default().push(e.span_id);
        }
    }
    let root = events
        .iter()
        .filter(|e| e.parent.is_none())
        .map(|e| e.span_id)
        .min();
    let Some(mut cur) = root else {
        return CriticalPath {
            total,
            ..CriticalPath::default()
        };
    };
    let mut steps = Vec::new();
    let mut attributed = Duration::ZERO;
    let mut visited = std::collections::HashSet::new();
    // Effective duration budget for the current node: the root's is the
    // trace wall time; each descent clamps to the parent's budget.
    let mut budget = total;
    loop {
        if !visited.insert(cur) {
            break; // malformed parent links (cycle): stop rather than spin
        }
        let ev = by_id[&cur];
        let eff = if steps.is_empty() {
            total
        } else {
            ev.dur.min(budget)
        };
        let kids = children.get(&cur);
        let kid_sum: Duration = kids
            .map(|k| k.iter().map(|id| by_id[id].dur.min(eff)).sum())
            .unwrap_or(Duration::ZERO);
        let self_time = eff.saturating_sub(kid_sum);
        steps.push(PathStep {
            span_id: ev.span_id,
            stage: ev.stage,
            label: ev.label,
            reason: ev.reason,
            dur: eff,
            self_time,
            lane: ev.lane,
        });
        attributed += self_time;
        let next = kids.and_then(|k| {
            k.iter()
                .copied()
                .filter(|id| *id != cur)
                .min_by_key(|id| (std::cmp::Reverse(by_id[id].dur), *id))
        });
        match next {
            Some(n) => {
                budget = by_id[&n].dur.min(eff);
                cur = n;
            }
            None => break,
        }
    }
    CriticalPath {
        steps,
        total,
        attributed,
    }
}

/// The pipeline stages whose wall-time share forms a class fingerprint.
/// Order is the index order of [`Fingerprint::shares`].
pub const FINGERPRINT_STAGES: [&str; 8] = [
    stage::SCHED_QUEUE,
    stage::POOL_ACQUIRE,
    stage::REMOTE_EXEC,
    stage::TDE_EXEC,
    stage::CACHE_LOOKUP,
    stage::PEER_CACHE,
    stage::POST_PROCESS,
    stage::CACHE_STORE,
];

/// Per-stage share of wall time for one trace's events: `Σ dur(stage) /
/// total`, clamped to `[0, 1]` per stage (overlapping lanes can sum past
/// the wall clock; share is a shape signal, not an exact decomposition).
pub fn stage_shares(events: &[SpanEvent], total: Duration) -> [f64; FINGERPRINT_STAGES.len()] {
    let mut out = [0.0; FINGERPRINT_STAGES.len()];
    let denom = total.as_secs_f64().max(1e-9);
    for (i, name) in FINGERPRINT_STAGES.iter().enumerate() {
        let sum: Duration = events
            .iter()
            .filter(|e| e.stage == *name)
            .map(|e| e.dur)
            .sum();
        out[i] = (sum.as_secs_f64() / denom).clamp(0.0, 1.0);
    }
    out
}

/// Streaming mean of one class's latency shape.
#[derive(Clone, Debug, Default)]
pub struct Fingerprint {
    /// Mean stage shares, indexed like [`FINGERPRINT_STAGES`].
    pub shares: [f64; FINGERPRINT_STAGES.len()],
    pub samples: u64,
    pub mean_total_micros: f64,
}

impl Fingerprint {
    fn absorb(&mut self, shares: &[f64; FINGERPRINT_STAGES.len()], total: Duration) {
        self.samples += 1;
        let n = self.samples as f64;
        for (mean, x) in self.shares.iter_mut().zip(shares.iter()) {
            *mean += (x - *mean) / n;
        }
        self.mean_total_micros += (total.as_micros() as f64 - self.mean_total_micros) / n;
    }

    /// Mean share of the named stage, 0.0 if untracked.
    pub fn share(&self, stage_name: &str) -> f64 {
        FINGERPRINT_STAGES
            .iter()
            .position(|s| *s == stage_name)
            .map(|i| self.shares[i])
            .unwrap_or(0.0)
    }
}

/// Streaming per-class latency fingerprints. A "class" is a query-shape
/// key (source + grouping + aggregate shape — the dashboard zone, in
/// paper terms), so an outlier diffs against queries that *should* look
/// like it.
#[derive(Default)]
pub struct ClassBaselines {
    classes: Mutex<HashMap<String, Fingerprint>>,
}

impl ClassBaselines {
    pub fn new() -> Self {
        ClassBaselines::default()
    }

    /// Fold one completed query into its class baseline. No-op while the
    /// global analysis gate ([`set_enabled`]) is off.
    pub fn observe(&self, class: &str, events: &[SpanEvent], total: Duration) {
        if !enabled() || total.is_zero() {
            return;
        }
        let shares = stage_shares(events, total);
        let mut classes = self.classes.lock();
        let fp = classes.entry(class.to_string()).or_default();
        fp.absorb(&shares, total);
    }

    pub fn get(&self, class: &str) -> Option<Fingerprint> {
        self.classes.lock().get(class).cloned()
    }

    pub fn len(&self) -> usize {
        self.classes.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.classes.lock().is_empty()
    }
}

/// A classified tail outlier: the verdict plus the evidence trail that
/// produced it.
#[derive(Clone, Debug)]
pub struct Diagnosis {
    pub verdict: Verdict,
    /// The stage the verdict pins the time on.
    pub culprit_stage: &'static str,
    /// That stage's share of this trace's wall time.
    pub share: f64,
    /// The class baseline's share for the same stage (0 when no baseline).
    pub baseline_share: f64,
    /// Reason codes that served as evidence.
    pub evidence: Vec<&'static str>,
    pub path: CriticalPath,
}

impl Diagnosis {
    /// One-line operator rendering for the slow-query log.
    pub fn render(&self) -> String {
        let ev = if self.evidence.is_empty() {
            String::new()
        } else {
            format!(" evidence={}", self.evidence.join(","))
        };
        format!(
            "verdict={} stage={} share={:.2} baseline={:.2}{ev} path: {}",
            self.verdict,
            self.culprit_stage,
            self.share,
            self.baseline_share,
            self.path.render()
        )
    }
}

/// Share of scanned blocks the zone maps pruned for this trace, from the
/// `scan_prune` counters the TDE emits — `None` when the trace did not
/// reach a local scan.
fn prune_skip_fraction(trace: &RecordedTrace) -> Option<(u64, u64)> {
    let mut skipped = 0u64;
    let mut total = 0u64;
    let mut saw = false;
    for e in &trace.events {
        if e.stage != stage::SCAN_PRUNE {
            continue;
        }
        match e.label {
            Some("blocks_skipped") => {
                skipped += e.detail.unwrap_or(0);
                saw = true;
            }
            Some("blocks_total") => {
                total += e.detail.unwrap_or(0);
                saw = true;
            }
            _ => {}
        }
    }
    saw.then_some((skipped, total))
}

/// Classify a slow trace. Hard evidence (breaker trips, pool timeouts)
/// wins outright; otherwise the stage with the largest share *deviation*
/// from the class baseline (or raw share when the class is unseen) names
/// the culprit, and reason codes refine the verdict within that stage.
pub fn diagnose(trace: &RecordedTrace, baseline: Option<&Fingerprint>) -> Diagnosis {
    let reasons = trace.reasons();
    let has = |r: &str| reasons.contains(&r);
    let path = critical_path(&trace.events, trace.total);
    let shares = stage_shares(&trace.events, trace.total);
    let baseline_shares: [f64; FINGERPRINT_STAGES.len()] =
        baseline.map(|f| f.shares).unwrap_or_default();
    let mk = |verdict: Verdict, culprit: &'static str, evidence: Vec<&'static str>| {
        let idx = FINGERPRINT_STAGES.iter().position(|s| *s == culprit);
        Diagnosis {
            verdict,
            culprit_stage: culprit,
            share: idx.map(|i| shares[i]).unwrap_or(0.0),
            baseline_share: idx.map(|i| baseline_shares[i]).unwrap_or(0.0),
            evidence,
            path: path.clone(),
        }
    };

    // Hard evidence: terminal pool verdicts short-circuit everything else.
    if has(reason::POOL_BREAKER_OPEN) {
        return mk(
            Verdict::BreakerFastfail,
            stage::POOL_ACQUIRE,
            vec![reason::POOL_BREAKER_OPEN],
        );
    }
    if has(reason::POOL_TIMEOUT) {
        return mk(
            Verdict::PoolAcquire,
            stage::POOL_ACQUIRE,
            vec![reason::POOL_TIMEOUT],
        );
    }

    // Rank tracked stages by deviation from the class baseline.
    let mut ranked: Vec<(usize, f64)> = shares
        .iter()
        .enumerate()
        .map(|(i, s)| (i, s - baseline_shares[i]))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let cache_miss = reasons
        .iter()
        .copied()
        .find(|r| r.starts_with("cache_miss_"));
    let l2 = has(reason::CACHE_L2_PROMOTE) || has(reason::CACHE_L2_HIT);
    let swr = has(reason::CACHE_SWR_SERVE);

    for (i, dev) in ranked {
        // A culprit stage must actually hold meaningful time.
        if shares[i] < 0.10 || (dev <= 0.0 && baseline.is_some() && shares[i] < 0.25) {
            continue;
        }
        match FINGERPRINT_STAGES[i] {
            s if s == stage::SCHED_QUEUE => {
                let mut ev = vec![];
                if has(reason::SCHED_QUEUED) {
                    ev.push(reason::SCHED_QUEUED);
                }
                return mk(Verdict::QueueWait, stage::SCHED_QUEUE, ev);
            }
            s if s == stage::POOL_ACQUIRE => {
                return mk(Verdict::PoolAcquire, stage::POOL_ACQUIRE, vec![]);
            }
            s if s == stage::REMOTE_EXEC => {
                // Going remote on a miss is only news when this class
                // normally serves from cache.
                let base_remote = baseline.map(|f| f.share(stage::REMOTE_EXEC)).unwrap_or(1.0);
                if let Some(miss) = cache_miss {
                    if base_remote < 0.15 {
                        return mk(Verdict::CacheMissStorm, stage::REMOTE_EXEC, vec![miss]);
                    }
                }
                return mk(
                    Verdict::BackendSlow,
                    stage::REMOTE_EXEC,
                    cache_miss.into_iter().collect(),
                );
            }
            s if s == stage::TDE_EXEC => {
                for r in [
                    reason::KERNEL_FALLBACK_DISABLED,
                    reason::KERNEL_FALLBACK_WIDE_KEY,
                ] {
                    if has(r) {
                        return mk(Verdict::KernelFallback, stage::TDE_EXEC, vec![r]);
                    }
                }
                if let Some((skipped, total)) = prune_skip_fraction(trace) {
                    if total >= 4 && (skipped as f64) < 0.25 * total as f64 {
                        return mk(Verdict::PruneRegression, stage::TDE_EXEC, vec![]);
                    }
                }
                // Local compute dominated with no structural cause on
                // file: keep scanning lower-ranked stages for a signal.
                continue;
            }
            s if s == stage::CACHE_LOOKUP || s == stage::PEER_CACHE => {
                if l2 {
                    return mk(
                        Verdict::L2MissPromote,
                        FINGERPRINT_STAGES[i],
                        vec![reason::CACHE_L2_HIT],
                    );
                }
                if swr {
                    return mk(
                        Verdict::SwrRevalidateContention,
                        FINGERPRINT_STAGES[i],
                        vec![reason::CACHE_SWR_SERVE],
                    );
                }
                continue;
            }
            _ => continue,
        }
    }

    // No stage stood out; fall back to reason-only signals.
    if swr {
        return mk(
            Verdict::SwrRevalidateContention,
            stage::CACHE_LOOKUP,
            vec![reason::CACHE_SWR_SERVE],
        );
    }
    if l2 {
        return mk(
            Verdict::L2MissPromote,
            stage::CACHE_LOOKUP,
            vec![reason::CACHE_L2_HIT],
        );
    }
    mk(
        Verdict::Unclassified,
        path.dominant().map(|s| s.stage).unwrap_or(stage::QUERY),
        vec![],
    )
}
