//! Interaction traffic models.
//!
//! Two workload regimes from the paper: ad-hoc exploration ("each user
//! interaction with the application generates an adhoc query workload",
//! Sect. 1) and shared published dashboards, whose extreme is Tableau Public:
//! "the user-generated traffic is saturated by initial load requests, as
//! many viewers just read content with the initial state of a dashboard and
//! make further interactions rarely" (Sect. 3.2).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tabviz_common::Value;
use tabviz_core::Dashboard;

/// One user action against a dashboard.
#[derive(Debug, Clone, PartialEq)]
pub enum Interaction {
    /// Open the dashboard in its initial state.
    Load,
    /// Select a value in a zone (driving its filter actions).
    Select { zone: String, value: Value },
    /// Clear a zone's selection.
    Clear { zone: String },
    /// Narrow a quick filter to a subset of its domain.
    QuickFilter { column: String, values: Vec<Value> },
}

/// A single analyst exploring: load, then a mix of selections on the
/// dashboard's interactive zones and quick-filter changes.
///
/// `candidates` supplies per-zone selectable values (normally the domains
/// from an initial render).
pub fn exploration_session(
    dashboard: &Dashboard,
    candidates: &[(String, Vec<Value>)],
    steps: usize,
    seed: u64,
) -> Vec<Interaction> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![Interaction::Load];
    let interactive: Vec<&String> = dashboard.actions.iter().map(|a| &a.source_zone).collect();
    for _ in 0..steps {
        let roll: f64 = rng.random();
        if roll < 0.6 && !interactive.is_empty() {
            let zone = interactive[rng.random_range(0..interactive.len())].clone();
            if let Some((_, values)) = candidates.iter().find(|(z, _)| *z == zone) {
                if !values.is_empty() {
                    let v = values[rng.random_range(0..values.len())].clone();
                    out.push(Interaction::Select { zone, value: v });
                    continue;
                }
            }
            out.push(Interaction::Clear { zone });
        } else if roll < 0.8 && !dashboard.quick_filter_columns.is_empty() {
            let column = dashboard.quick_filter_columns
                [rng.random_range(0..dashboard.quick_filter_columns.len())]
            .clone();
            if let Some((_, values)) = candidates.iter().find(|(z, _)| *z == column) {
                let keep = 1 + rng.random_range(0..values.len().max(2) - 1);
                let mut subset: Vec<Value> = values.clone();
                while subset.len() > keep {
                    let i = rng.random_range(0..subset.len());
                    subset.remove(i);
                }
                out.push(Interaction::QuickFilter {
                    column,
                    values: subset,
                });
                continue;
            }
            out.push(Interaction::Load);
        } else if !interactive.is_empty() {
            let zone = interactive[rng.random_range(0..interactive.len())].clone();
            out.push(Interaction::Clear { zone });
        } else {
            out.push(Interaction::Load);
        }
    }
    out
}

/// Tableau-Public-style traffic: `(user, interaction)` events where most
/// users only load and a small fraction interact further.
pub fn public_traffic(
    dashboard: &Dashboard,
    candidates: &[(String, Vec<Value>)],
    n_users: usize,
    interact_fraction: f64,
    seed: u64,
) -> Vec<(usize, Interaction)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for user in 0..n_users {
        out.push((user, Interaction::Load));
        if rng.random::<f64>() < interact_fraction {
            let extra = exploration_session(dashboard, candidates, 2, seed ^ user as u64);
            for i in extra.into_iter().skip(1) {
                out.push((user, i));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dashboards::fig2_dashboard;

    fn candidates() -> Vec<(String, Vec<Value>)> {
        vec![
            (
                "Market".into(),
                vec![Value::Str("LAX-SFO".into()), Value::Str("HNL-OGG".into())],
            ),
            (
                "Carrier".into(),
                vec![Value::Str("AA".into()), Value::Str("WN".into())],
            ),
        ]
    }

    #[test]
    fn exploration_is_deterministic_and_starts_with_load() {
        let dash = fig2_dashboard("warehouse", "flights", "carriers");
        let a = exploration_session(&dash, &candidates(), 10, 7);
        let b = exploration_session(&dash, &candidates(), 10, 7);
        assert_eq!(a, b);
        assert_eq!(a[0], Interaction::Load);
        assert_eq!(a.len(), 11);
        assert!(a.iter().any(|i| matches!(i, Interaction::Select { .. })));
    }

    #[test]
    fn public_traffic_is_load_dominated() {
        let dash = fig2_dashboard("warehouse", "flights", "carriers");
        let t = public_traffic(&dash, &candidates(), 200, 0.1, 3);
        let loads = t.iter().filter(|(_, i)| *i == Interaction::Load).count();
        let others = t.len() - loads;
        assert!(loads >= 200);
        assert!(others < loads / 2, "loads {loads}, others {others}");
    }
}
