//! Synthetic FAA Flights On-Time data.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use tabviz_common::{Chunk, DataType, Field, Result, Schema, Value};
use tabviz_tql::datefn;

/// The carriers in the synthetic fleet, with rough relative volumes
/// (zipf-ish: a few majors dominate, like the real data).
pub const CARRIERS: &[(&str, &str, u32)] = &[
    ("WN", "Southwest Airlines", 100),
    ("DL", "Delta Air Lines", 80),
    ("AA", "American Airlines", 75),
    ("UA", "United Airlines", 60),
    ("US", "US Airways", 45),
    ("EV", "ExpressJet", 40),
    ("OO", "SkyWest", 38),
    ("B6", "JetBlue Airways", 25),
    ("AS", "Alaska Airlines", 18),
    ("NK", "Spirit Airlines", 12),
    ("F9", "Frontier Airlines", 9),
    ("HA", "Hawaiian Airlines", 6),
];

/// Airports: (code, state), biggest hubs first.
pub const AIRPORTS: &[(&str, &str)] = &[
    ("ATL", "GA"),
    ("ORD", "IL"),
    ("DFW", "TX"),
    ("DEN", "CO"),
    ("LAX", "CA"),
    ("SFO", "CA"),
    ("PHX", "AZ"),
    ("IAH", "TX"),
    ("LAS", "NV"),
    ("SEA", "WA"),
    ("MSP", "MN"),
    ("DTW", "MI"),
    ("BOS", "MA"),
    ("EWR", "NJ"),
    ("CLT", "NC"),
    ("LGA", "NY"),
    ("JFK", "NY"),
    ("SLC", "UT"),
    ("BWI", "MD"),
    ("MDW", "IL"),
    ("MCO", "FL"),
    ("MIA", "FL"),
    ("SAN", "CA"),
    ("TPA", "FL"),
    ("PDX", "OR"),
    ("STL", "MO"),
    ("HNL", "HI"),
    ("OGG", "HI"),
    ("DCA", "VA"),
    ("PHL", "PA"),
];

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct FaaConfig {
    pub rows: usize,
    pub seed: u64,
    /// First day (days since epoch) — defaults to 2005-01-01, covering the
    /// paper's "past decade".
    pub start_day: i32,
    pub n_days: i32,
}

impl Default for FaaConfig {
    fn default() -> Self {
        FaaConfig {
            rows: 100_000,
            seed: 0x5EED,
            start_day: datefn::days_from_civil(2005, 1, 1),
            n_days: 3650,
        }
    }
}

impl FaaConfig {
    pub fn with_rows(rows: usize) -> Self {
        FaaConfig {
            rows,
            ..Default::default()
        }
    }
}

/// The fact-table schema.
pub fn flights_schema() -> Arc<Schema> {
    Arc::new(Schema::new_unchecked(vec![
        Field::new("date", DataType::Date).not_null(),
        Field::new("carrier", DataType::Str).not_null(),
        Field::new("origin", DataType::Str).not_null(),
        Field::new("dest", DataType::Str).not_null(),
        Field::new("origin_state", DataType::Str).not_null(),
        Field::new("dest_state", DataType::Str).not_null(),
        Field::new("market", DataType::Str).not_null(),
        Field::new("dep_hour", DataType::Int).not_null(),
        Field::new("weekday", DataType::Int).not_null(),
        Field::new("distance", DataType::Int).not_null(),
        Field::new("dep_delay", DataType::Int),
        Field::new("arr_delay", DataType::Int),
        Field::new("cancelled", DataType::Bool).not_null(),
    ]))
}

/// Generate the flights fact table. Deterministic in `seed`.
pub fn generate_flights(config: &FaaConfig) -> Result<Chunk> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Cumulative carrier weights for sampling.
    let total_w: u32 = CARRIERS.iter().map(|&(_, _, w)| w).sum();
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(config.rows);
    for _ in 0..config.rows {
        let day = config.start_day + rng.random_range(0..config.n_days.max(1));
        let weekday = datefn::weekday(day);
        let month = datefn::month(day);

        let mut pick = rng.random_range(0..total_w);
        let mut carrier = CARRIERS[0];
        for &c in CARRIERS {
            if pick < c.2 {
                carrier = c;
                break;
            }
            pick -= c.2;
        }

        // Hubs dominate: index sampled with quadratic bias toward 0.
        let oi = biased_index(&mut rng, AIRPORTS.len());
        let mut di = biased_index(&mut rng, AIRPORTS.len());
        if di == oi {
            di = (di + 1) % AIRPORTS.len();
        }
        let (origin, ostate) = AIRPORTS[oi];
        let (dest, dstate) = AIRPORTS[di];
        let market = if origin < dest {
            format!("{origin}-{dest}")
        } else {
            format!("{dest}-{origin}")
        };

        let dep_hour = sample_hour(&mut rng);
        // Delay model: base noise + evening cascades + winter/summer bumps
        // + Friday/Sunday peaks; heavy tail via occasional big delays.
        let mut delay = rng.random_range(-10..15) as f64;
        delay += (dep_hour as f64 - 8.0).max(0.0) * 1.2;
        if month == 12 || month == 1 || month == 6 || month == 7 {
            delay += 4.0;
        }
        if weekday == 5 || weekday == 0 {
            delay += 3.0;
        }
        if rng.random::<f64>() < 0.05 {
            delay += rng.random_range(30..240) as f64;
        }
        let dep_delay = delay.round() as i64;
        let arr_delay = dep_delay + rng.random_range(-12..10);

        let cancelled = rng.random::<f64>() < 0.018 + if month == 1 { 0.012 } else { 0.0 };
        let distance = 150 + ((oi as i64 * 37 + di as i64 * 53) % 2300);

        rows.push(vec![
            Value::Date(day),
            Value::Str(carrier.0.to_string()),
            Value::Str(origin.to_string()),
            Value::Str(dest.to_string()),
            Value::Str(ostate.to_string()),
            Value::Str(dstate.to_string()),
            Value::Str(market),
            Value::Int(dep_hour as i64),
            Value::Int(weekday as i64),
            Value::Int(distance),
            if cancelled {
                Value::Null
            } else {
                Value::Int(dep_delay)
            },
            if cancelled {
                Value::Null
            } else {
                Value::Int(arr_delay)
            },
            Value::Bool(cancelled),
        ]);
    }
    Chunk::from_rows(flights_schema(), &rows)
}

fn biased_index(rng: &mut StdRng, n: usize) -> usize {
    let u: f64 = rng.random();
    ((u * u) * n as f64) as usize % n
}

fn sample_hour(rng: &mut StdRng) -> u32 {
    // Bimodal: morning and late-afternoon banks.
    if rng.random::<f64>() < 0.5 {
        6 + rng.random_range(0..5)
    } else {
        15 + rng.random_range(0..6)
    }
}

/// The carriers dimension table: `code`, `name`.
pub fn carriers_dim() -> Result<Chunk> {
    let schema = Arc::new(Schema::new_unchecked(vec![
        Field::new("code", DataType::Str).not_null(),
        Field::new("name", DataType::Str).not_null(),
    ]));
    let rows: Vec<Vec<Value>> = CARRIERS
        .iter()
        .map(|&(code, name, _)| vec![Value::Str(code.into()), Value::Str(name.into())])
        .collect();
    Chunk::from_rows(schema, &rows)
}

/// The airports dimension table: `code`, `state`.
pub fn airports_dim() -> Result<Chunk> {
    let schema = Arc::new(Schema::new_unchecked(vec![
        Field::new("code", DataType::Str).not_null(),
        Field::new("state", DataType::Str).not_null(),
    ]));
    let rows: Vec<Vec<Value>> = AIRPORTS
        .iter()
        .map(|&(code, state)| vec![Value::Str(code.into()), Value::Str(state.into())])
        .collect();
    Chunk::from_rows(schema, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let c = FaaConfig {
            rows: 500,
            ..Default::default()
        };
        let a = generate_flights(&c).unwrap();
        let b = generate_flights(&c).unwrap();
        assert_eq!(a.to_rows(), b.to_rows());
        let c2 = FaaConfig { seed: 99, ..c };
        let d = generate_flights(&c2).unwrap();
        assert_ne!(a.to_rows(), d.to_rows());
    }

    #[test]
    fn shape_matches_schema() {
        let c = generate_flights(&FaaConfig {
            rows: 1000,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(c.len(), 1000);
        assert_eq!(c.num_columns(), 13);
        // Cancelled flights have NULL delays.
        for r in c.to_rows() {
            if r[12] == Value::Bool(true) {
                assert_eq!(r[10], Value::Null);
            } else {
                assert_ne!(r[10], Value::Null);
            }
        }
    }

    #[test]
    fn carrier_volumes_are_skewed() {
        let c = generate_flights(&FaaConfig {
            rows: 20_000,
            ..Default::default()
        })
        .unwrap();
        let carrier_idx = 1;
        let mut wn = 0;
        let mut ha = 0;
        for i in 0..c.len() {
            match c.column(carrier_idx).get(i) {
                Value::Str(s) if s == "WN" => wn += 1,
                Value::Str(s) if s == "HA" => ha += 1,
                _ => {}
            }
        }
        assert!(wn > ha * 5, "WN {wn} should dwarf HA {ha}");
    }

    #[test]
    fn cancellation_rate_plausible() {
        let c = generate_flights(&FaaConfig {
            rows: 20_000,
            ..Default::default()
        })
        .unwrap();
        let cancelled = c
            .to_rows()
            .iter()
            .filter(|r| r[12] == Value::Bool(true))
            .count();
        let rate = cancelled as f64 / 20_000.0;
        assert!(rate > 0.005 && rate < 0.06, "rate {rate}");
    }

    #[test]
    fn market_is_direction_independent() {
        let c = generate_flights(&FaaConfig {
            rows: 2_000,
            ..Default::default()
        })
        .unwrap();
        for r in c.to_rows() {
            let (Value::Str(o), Value::Str(d), Value::Str(m)) = (&r[2], &r[3], &r[6]) else {
                panic!("bad types");
            };
            let expect = if o < d {
                format!("{o}-{d}")
            } else {
                format!("{d}-{o}")
            };
            assert_eq!(*m, expect);
        }
    }

    #[test]
    fn dimensions_cover_fact_values() {
        let dims = carriers_dim().unwrap();
        assert_eq!(dims.len(), CARRIERS.len());
        let air = airports_dim().unwrap();
        assert_eq!(air.len(), AIRPORTS.len());
    }
}
