//! Workloads: synthetic FAA flights data and dashboard interaction traffic.
//!
//! The paper's running example is "the popular FAA Flights On-time dataset
//! ... all the flights in the US in the past decade" (Sect. 3, [43]). The
//! real extract is not redistributable, so [`faa`] generates a synthetic
//! equivalent with matching shape: a dozen carriers with zipf-like volume, a
//! few hundred airports with state rollups, seasonal/weekday delay effects,
//! heavy-tailed delays and ~2% cancellations — everything the Fig. 1 / Fig. 2
//! dashboards group and filter on.
//!
//! [`dashboards`] reconstructs those two dashboards; [`traffic`] generates
//! the interaction mixes the paper describes: ad-hoc exploration (Sect. 1),
//! shared-dashboard refreshes, and Tableau-Public-style traffic "saturated
//! by initial load requests" (Sect. 3.2).

pub mod dashboards;
pub mod faa;
pub mod storm;
pub mod traffic;

pub use dashboards::{fig1_dashboard, fig2_dashboard};
pub use faa::{carriers_dim, generate_flights, FaaConfig};
pub use storm::{
    expected_top1pct_share, generate_storm, schedule_digest, storm_stats, Arrival, StormConfig,
    StormStats, StormStep,
};
pub use traffic::{exploration_session, public_traffic, Interaction};
