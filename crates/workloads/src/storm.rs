//! Open-loop cluster traffic: a replayable "storm" of dashboard sessions.
//!
//! Models server-scale load the way the paper's Sect. 3.2 deployment sees
//! it: thousands of viewer sessions arriving over a horizon, dashboard
//! popularity Zipf-distributed (a few public dashboards soak most of the
//! traffic), arrival intensity following a diurnal curve. The generator is
//! *open-loop* — arrival times are fixed up front, independent of how fast
//! the system answers — and **pure**: every draw is a stateless
//! [`tabviz_common::hash`] roll keyed by `(seed, site, session, step)`, so
//! one seed always yields the byte-identical schedule regardless of
//! generation order, thread count, or what ran before. That property is
//! what makes cluster experiments replayable and their tests assertable.

use tabviz_common::hash::{mix3, roll, unit_f64};

/// Sites for the stateless rolls (disjoint from the backend fault sites by
/// construction — the generator owns its own seed).
const SITE_DASHBOARD: u64 = 0x57_01;
const SITE_START: u64 = 0x57_02;
const SITE_GAP: u64 = 0x57_03;
const SITE_KIND: u64 = 0x57_04;
const SITE_DETAIL: u64 = 0x57_05;

/// Storm shape. All fields feed the pure schedule function; equal configs
/// produce equal schedules.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Concurrent viewer sessions generated over the horizon.
    pub sessions: usize,
    /// Distinct published dashboards sessions can open.
    pub dashboards: usize,
    /// Zipf skew of dashboard popularity (1.0–1.5 is web-like; 0 uniform).
    pub zipf_s: f64,
    /// Virtual horizon the session start times spread over, in ms.
    pub horizon_ms: u64,
    /// Diurnal modulation depth in `[0, 1)`: 0 = flat arrivals, larger
    /// values concentrate session starts around the mid-horizon peak.
    pub diurnal_amplitude: f64,
    /// Interactions per session (the first is always the initial load).
    pub steps_per_session: usize,
    /// Mean think time between a session's interactions, in ms.
    pub mean_think_ms: f64,
    /// Master seed; the only source of randomness.
    pub seed: u64,
}

impl StormConfig {
    /// Virtual timestamp at `num/den` of the horizon — the idiom fault
    /// drivers use to place mid-storm events ("kill at 2/5, revive at
    /// 3/4") so the scenario rescales with the horizon instead of baking
    /// in absolute times.
    pub fn at_fraction(&self, num: u64, den: u64) -> u64 {
        assert!(den > 0, "fraction denominator must be positive");
        self.horizon_ms * num / den
    }
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            sessions: 1_000,
            dashboards: 100,
            zipf_s: 1.1,
            horizon_ms: 60_000,
            diurnal_amplitude: 0.6,
            steps_per_session: 4,
            mean_think_ms: 1_500.0,
            seed: 0,
        }
    }
}

/// What a scheduled interaction does, in dataset-agnostic terms; the
/// experiment driver maps these onto concrete client queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StormStep {
    /// Initial dashboard load (the dominant class on public servers).
    Load,
    /// Drill into one of the dashboard's dimensions (new group-by).
    Drill { dimension: u32 },
    /// Narrow a filter; `selector` picks the predicate value.
    Filter { selector: u32 },
    /// Re-sort / top-N a zone.
    TopN { n: u32 },
}

/// One scheduled interaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual arrival time from storm start, in ms.
    pub at_ms: u64,
    /// Session ordinal (stable across runs).
    pub session: u32,
    /// Dashboard the session opened (Zipf-popular).
    pub dashboard: u32,
    /// Step index within the session (0 = load).
    pub step: u32,
    pub kind: StormStep,
}

/// Normalized Zipf weights over `n` ranks: `w_i ∝ 1/(i+1)^s`.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    let raw: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

/// Inverse-CDF pick over `weights` given a uniform draw `u`.
fn zipf_pick(weights: &[f64], u: f64) -> usize {
    let mut acc = 0.0;
    for (i, w) in weights.iter().enumerate() {
        acc += w;
        if u < acc {
            return i;
        }
    }
    weights.len().saturating_sub(1)
}

/// Warp a uniform draw so start times follow a diurnal intensity curve
/// peaking mid-horizon: `t/H = u + (a/2π)·sin(2πu)` — monotone for
/// `a < 1`, identity at the endpoints, arrival density `∝ 1/(1 + a·cos 2πu)`
/// (highest where the cosine bottoms out, the mid-horizon "afternoon").
fn diurnal_warp(u: f64, amplitude: f64) -> f64 {
    use std::f64::consts::TAU;
    (u + amplitude / TAU * (TAU * u).sin()).clamp(0.0, 1.0)
}

/// The aggregate share of traffic the top `ceil(1%)` most popular
/// dashboards should receive under this config's Zipf skew — the analytic
/// value the replay tests compare the empirical schedule against.
pub fn expected_top1pct_share(cfg: &StormConfig) -> f64 {
    let weights = zipf_weights(cfg.dashboards, cfg.zipf_s);
    let k = cfg.dashboards.div_ceil(100);
    weights.iter().take(k).sum()
}

/// Generate the full storm schedule: every session's arrivals, merged and
/// sorted by `(at_ms, session, step)`. Pure function of the config.
pub fn generate_storm(cfg: &StormConfig) -> Vec<Arrival> {
    let weights = zipf_weights(cfg.dashboards.max(1), cfg.zipf_s);
    let mut out = Vec::with_capacity(cfg.sessions * cfg.steps_per_session.max(1));
    for s in 0..cfg.sessions as u64 {
        let dashboard = zipf_pick(&weights, roll(cfg.seed, SITE_DASHBOARD, s)) as u32;
        let start_u = diurnal_warp(roll(cfg.seed, SITE_START, s), cfg.diurnal_amplitude);
        let mut at = (start_u * cfg.horizon_ms as f64) as u64;
        for step in 0..cfg.steps_per_session.max(1) as u64 {
            let ordinal = (s << 20) | step;
            if step > 0 {
                // Exponential think time from a stateless draw.
                let u = roll(cfg.seed, SITE_GAP, ordinal);
                let gap = -(1.0 - u).max(f64::MIN_POSITIVE).ln() * cfg.mean_think_ms;
                at += gap as u64;
            }
            let kind = if step == 0 {
                StormStep::Load
            } else {
                let detail = mix3(cfg.seed, SITE_DETAIL, ordinal);
                match (unit_f64(mix3(cfg.seed, SITE_KIND, ordinal)) * 3.0) as u32 {
                    0 => StormStep::Drill {
                        dimension: (detail % 4) as u32,
                    },
                    1 => StormStep::Filter {
                        selector: (detail % 1024) as u32,
                    },
                    _ => StormStep::TopN {
                        n: 3 + (detail % 8) as u32,
                    },
                }
            };
            out.push(Arrival {
                at_ms: at,
                session: s as u32,
                dashboard,
                step: step as u32,
                kind,
            });
        }
    }
    out.sort_by_key(|a| (a.at_ms, a.session, a.step));
    out
}

/// Order-sensitive digest of a schedule — two byte-identical timelines
/// (and only those) share a digest.
pub fn schedule_digest(schedule: &[Arrival]) -> u64 {
    let mut h: u64 = 0x5707_0000;
    for a in schedule {
        let kind = match &a.kind {
            StormStep::Load => 0u64,
            StormStep::Drill { dimension } => 1 | ((*dimension as u64) << 8),
            StormStep::Filter { selector } => 2 | ((*selector as u64) << 8),
            StormStep::TopN { n } => 3 | ((*n as u64) << 8),
        };
        h = mix3(
            h,
            a.at_ms ^ (a.session as u64) << 32,
            (a.step as u64) << 48 | (a.dashboard as u64) << 16 | kind,
        );
    }
    h
}

/// Aggregate schedule statistics (for replay assertions and reports).
#[derive(Debug, Clone, PartialEq)]
pub struct StormStats {
    pub arrivals: usize,
    pub sessions: usize,
    /// Arrivals per dashboard, indexed by dashboard id.
    pub per_dashboard: Vec<u64>,
    /// Empirical share of arrivals hitting the top `ceil(1%)` dashboards.
    pub top1pct_share: f64,
    /// Arrivals in each tenth of the observed time range (diurnal shape).
    pub per_decile: [u64; 10],
}

pub fn storm_stats(cfg: &StormConfig, schedule: &[Arrival]) -> StormStats {
    let mut per_dashboard = vec![0u64; cfg.dashboards.max(1)];
    for a in schedule {
        per_dashboard[a.dashboard as usize] += 1;
    }
    let mut by_popularity = per_dashboard.clone();
    by_popularity.sort_unstable_by(|a, b| b.cmp(a));
    let k = cfg.dashboards.div_ceil(100);
    let top: u64 = by_popularity.iter().take(k).sum();
    let total = schedule.len().max(1) as u64;
    let span = schedule.last().map(|a| a.at_ms + 1).unwrap_or(1);
    let mut per_decile = [0u64; 10];
    for a in schedule {
        per_decile[((a.at_ms * 10) / span).min(9) as usize] += 1;
    }
    StormStats {
        arrivals: schedule.len(),
        sessions: cfg.sessions,
        per_dashboard,
        top1pct_share: top as f64 / total as f64,
        per_decile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_fraction_scales_with_horizon() {
        let cfg = StormConfig {
            horizon_ms: 4_000,
            ..Default::default()
        };
        assert_eq!(cfg.at_fraction(2, 5), 1_600);
        assert_eq!(cfg.at_fraction(3, 4), 3_000);
        assert_eq!(cfg.at_fraction(0, 7), 0);
        assert_eq!(cfg.at_fraction(1, 1), cfg.horizon_ms);
    }

    #[test]
    fn schedule_is_sorted_and_sized() {
        let cfg = StormConfig {
            sessions: 50,
            steps_per_session: 3,
            ..Default::default()
        };
        let s = generate_storm(&cfg);
        assert_eq!(s.len(), 150);
        assert!(s.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        assert!(s
            .iter()
            .filter(|a| a.step == 0)
            .all(|a| a.kind == StormStep::Load));
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = StormConfig {
            sessions: 200,
            ..Default::default()
        };
        let a = generate_storm(&cfg);
        let b = generate_storm(&cfg);
        assert_eq!(a, b);
        assert_eq!(schedule_digest(&a), schedule_digest(&b));
        let other = generate_storm(&StormConfig {
            seed: 1,
            ..cfg.clone()
        });
        assert_ne!(schedule_digest(&a), schedule_digest(&other));
    }

    #[test]
    fn zipf_concentrates_popularity() {
        let cfg = StormConfig {
            sessions: 4_000,
            dashboards: 200,
            zipf_s: 1.2,
            ..Default::default()
        };
        let s = generate_storm(&cfg);
        let stats = storm_stats(&cfg, &s);
        let expected = expected_top1pct_share(&cfg);
        assert!(
            (stats.top1pct_share - expected).abs() < 0.05,
            "top-1% share {} vs expected {expected}",
            stats.top1pct_share
        );
        assert!(stats.top1pct_share > 0.05, "skew should concentrate mass");
    }

    #[test]
    fn diurnal_peaks_mid_horizon() {
        let cfg = StormConfig {
            sessions: 5_000,
            steps_per_session: 1,
            diurnal_amplitude: 0.8,
            ..Default::default()
        };
        let s = generate_storm(&cfg);
        let stats = storm_stats(&cfg, &s);
        let edges = stats.per_decile[0] + stats.per_decile[9];
        let middle = stats.per_decile[4] + stats.per_decile[5];
        assert!(
            middle > 2 * edges,
            "diurnal shape missing: edges={edges} middle={middle}"
        );
    }
}
