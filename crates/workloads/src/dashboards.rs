//! The paper's two example dashboards, reconstructed.

use tabviz_core::{Dashboard, FilterAction, Zone};
use tabviz_tql::expr::col;
use tabviz_tql::{AggCall, AggFunc, JoinType, LogicalPlan, SortKey};

/// Fig. 1: "the two upper maps show the number of flight origins and
/// destinations by state and ... allow specifying origins and destinations
/// for the slave charts at the bottom. Each chart is annotated with average
/// delays and flights per day. The bottom charts cover airlines operating
/// the flights, destination airports, breakdown of cancellations and delays
/// by weekdays, and distribution of arrival delays broken down by hours of a
/// day. The right-hand side has filtering, total count of visible records
/// and static legends."
pub fn fig1_dashboard(source: impl Into<String>, flights_table: &str) -> Dashboard {
    let annotate = |z: Zone| -> Zone {
        z.agg(AggCall::new(AggFunc::Count, None, "flights"))
            .agg(AggCall::new(
                AggFunc::Avg,
                Some(col("arr_delay")),
                "avg_delay",
            ))
    };
    let zones = vec![
        annotate(Zone::new("OriginsByState").group("origin_state")),
        annotate(Zone::new("DestsByState").group("dest_state")),
        annotate(Zone::new("Airlines").group("carrier")),
        annotate(Zone::new("DestAirports").group("dest")),
        Zone::new("CancellationsByWeekday")
            .group("weekday")
            .agg(AggCall::new(AggFunc::Count, None, "flights"))
            .agg(AggCall::new(AggFunc::CountD, Some(col("date")), "days")),
        Zone::new("DelayByHour")
            .group("dep_hour")
            .agg(AggCall::new(
                AggFunc::Avg,
                Some(col("arr_delay")),
                "avg_delay",
            ))
            .agg(AggCall::new(AggFunc::Count, None, "flights")),
        Zone::new("TotalVisible").agg(AggCall::new(AggFunc::Count, None, "records")),
    ];
    Dashboard {
        name: "faa-on-time".into(),
        source: source.into(),
        relation: weekday_relation(flights_table),
        zones,
        actions: vec![
            FilterAction {
                source_zone: "OriginsByState".into(),
                target_zones: vec![
                    "Airlines".into(),
                    "DestAirports".into(),
                    "CancellationsByWeekday".into(),
                    "DelayByHour".into(),
                    "TotalVisible".into(),
                ],
            },
            FilterAction {
                source_zone: "DestsByState".into(),
                target_zones: vec![
                    "Airlines".into(),
                    "DestAirports".into(),
                    "CancellationsByWeekday".into(),
                    "DelayByHour".into(),
                    "TotalVisible".into(),
                ],
            },
        ],
        quick_filter_columns: vec!["carrier".into()],
    }
}

/// The base relation for Fig. 1 (the generator materializes `weekday`
/// directly, so the relation is a plain scan).
fn weekday_relation(flights_table: &str) -> LogicalPlan {
    LogicalPlan::scan(flights_table)
}

/// Fig. 2: "a dashboard with three zones, linked by two interactive filter
/// actions. Selecting items in either the Market or Carrier zones filters
/// the viz results." The Carrier zone is top-5 by flights.
pub fn fig2_dashboard(
    source: impl Into<String>,
    flights_table: &str,
    carriers_table: &str,
) -> Dashboard {
    Dashboard {
        name: "market-carrier-airline".into(),
        source: source.into(),
        relation: LogicalPlan::scan(flights_table).join(
            LogicalPlan::scan(carriers_table),
            vec![("carrier".into(), "code".into())],
            JoinType::Inner,
        ),
        zones: vec![
            Zone::new("Market")
                .group("market")
                .agg(AggCall::new(AggFunc::Count, None, "flights")),
            Zone::new("Carrier")
                .group("carrier")
                .agg(AggCall::new(AggFunc::Count, None, "flights"))
                .top(5, vec![SortKey::desc("flights")]),
            Zone::new("AirlineName").group("name").agg(AggCall::new(
                AggFunc::Count,
                None,
                "flights",
            )),
        ],
        actions: vec![
            FilterAction {
                source_zone: "Market".into(),
                target_zones: vec!["Carrier".into(), "AirlineName".into()],
            },
            FilterAction {
                source_zone: "Carrier".into(),
                target_zones: vec!["AirlineName".into()],
            },
        ],
        quick_filter_columns: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faa::{carriers_dim, generate_flights, FaaConfig};
    use std::sync::Arc;
    use tabviz_backend::{SimConfig, SimDb};
    use tabviz_common::Value;
    use tabviz_core::{BatchOptions, DashboardState, QueryProcessor};
    use tabviz_storage::{Database, Table};

    fn processor() -> QueryProcessor {
        let flights = generate_flights(&FaaConfig {
            rows: 5_000,
            ..Default::default()
        })
        .unwrap();
        let db = Arc::new(Database::new("faa"));
        db.put(Table::from_chunk("flights", &flights, &["carrier"]).unwrap())
            .unwrap();
        db.put(Table::from_chunk("carriers", &carriers_dim().unwrap(), &["code"]).unwrap())
            .unwrap();
        let sim = SimDb::new("warehouse", db, SimConfig::default());
        let qp = QueryProcessor::default();
        qp.registry.register(Arc::new(sim), 8);
        qp
    }

    #[test]
    fn fig1_renders() {
        let qp = processor();
        let dash = fig1_dashboard("warehouse", "flights");
        let mut state = DashboardState::default();
        let (results, report) = dash
            .render(&qp, &mut state, &BatchOptions::default(), true)
            .unwrap();
        assert_eq!(report.iterations, 1);
        assert!(results["OriginsByState"].len() > 5);
        assert_eq!(results["TotalVisible"].row(0)[0], Value::Int(5_000));
        assert_eq!(results["__domain_carrier"].len(), 12);
    }

    #[test]
    fn fig1_state_selection_filters_slaves() {
        let qp = processor();
        let dash = fig1_dashboard("warehouse", "flights");
        let mut state = DashboardState::default();
        dash.render(&qp, &mut state, &BatchOptions::default(), false)
            .unwrap();
        state.select("OriginsByState", Value::Str("CA".into()));
        let (results, _) = dash
            .render(&qp, &mut state, &BatchOptions::default(), false)
            .unwrap();
        let total = results["TotalVisible"].row(0)[0].as_int().unwrap();
        assert!(total > 0 && total < 5_000, "CA subset: {total}");
    }

    #[test]
    fn fig2_renders_with_join_and_topn() {
        let qp = processor();
        let dash = fig2_dashboard("warehouse", "flights", "carriers");
        let mut state = DashboardState::default();
        let (results, _) = dash
            .render(&qp, &mut state, &BatchOptions::default(), false)
            .unwrap();
        assert_eq!(results["Carrier"].len(), 5, "top-5 carriers");
        assert_eq!(results["AirlineName"].len(), 12);
        // Carrier zone is ordered descending.
        let f0 = results["Carrier"].row(0)[1].as_int().unwrap();
        let f4 = results["Carrier"].row(4)[1].as_int().unwrap();
        assert!(f0 >= f4);
    }
}
