//! The experiment harness: regenerates a results table for every performance
//! claim / figure in the paper (see DESIGN.md §4 and EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p tabviz-bench --bin experiments [e1..e25|all]`

#![allow(clippy::field_reassign_with_default)] // options structs read better mutated

use std::sync::Arc;
use std::time::Duration;
use tabviz::cache::{ExternalStore, ServerNodeCache};
use tabviz::prelude::*;
use tabviz::tde::cost::CostProfile;
use tabviz::tde::parallel::ParallelOptions;
use tabviz::textscan::csv::HeaderMode;
use tabviz::workloads::{fig1_dashboard, generate_flights, FaaConfig};
use tabviz_bench::{faa_db, faa_db_unsorted, ms, print_table, processor_over, time_it};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = which == "all";
    println!("tabviz experiment harness — {} cores available", cores());
    if all || which == "e1" {
        e1_batch_strategies();
    }
    if all || which == "e2" {
        e2_query_fusion();
    }
    if all || which == "e3" {
        e3_intelligent_cache_session();
    }
    if all || which == "e4" {
        e4_literal_cache();
    }
    if all || which == "e5" {
        e5_distributed_cache();
    }
    if all || which == "e6" {
        e6_persisted_cache();
    }
    if all || which == "e7" {
        e7_connection_concurrency();
    }
    if all || which == "e8" {
        e8_tde_parallel_scan();
    }
    if all || which == "e9" {
        e9_aggregation_strategies();
    }
    if all || which == "e10" {
        e10_rle_index_scan();
    }
    if all || which == "e11" {
        e11_shadow_extract();
    }
    if all || which == "e12" {
        e12_dataserver_temp_tables();
    }
    if all || which == "e13" {
        e13_join_culling();
    }
    if all || which == "e14" {
        e14_streaming_vs_hash();
    }
    if all || which == "e15" {
        e15_prefetching();
    }
    if all || which == "e16" {
        e16_fault_resilience();
    }
    if all || which == "e17" {
        e17_observability();
    }
    if all || which == "e18" {
        e18_zone_skipping();
    }
    if all || which == "e19" {
        e19_overload_scheduling();
    }
    if all || which == "e20" {
        e20_flight_recorder_overhead();
    }
    if all || which == "e21" {
        e21_cluster_storm();
    }
    if all || which == "e22" {
        e22_slo_brownout();
    }
    if all || which == "e23" {
        e23_vector_kernels();
    }
    if all || which == "e24" {
        e24_cache_hierarchy();
    }
    if all || which == "e25" {
        e25_attribution_drill();
    }
}

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn lan_config() -> SimConfig {
    SimConfig {
        latency: LatencyModel::lan(),
        ..Default::default()
    }
}

// ---------------------------------------------------------------- E1 ----

/// Sect. 3.3 / Fig. 3: batch strategies for a Fig. 1 dashboard load.
fn e1_batch_strategies() {
    let rows = 150_000;
    let db = faa_db(rows);
    let dash = fig1_dashboard("warehouse", "flights");
    let strategies: Vec<(&str, BatchOptions, bool)> = vec![
        (
            "serial, no caching",
            BatchOptions {
                fuse: false,
                concurrent: false,
                cache_aware: false,
                ..Default::default()
            },
            false,
        ),
        (
            "serial + caches",
            BatchOptions {
                fuse: false,
                concurrent: false,
                cache_aware: false,
                ..Default::default()
            },
            true,
        ),
        (
            "concurrent submission",
            BatchOptions {
                fuse: false,
                concurrent: true,
                cache_aware: false,
                ..Default::default()
            },
            true,
        ),
        (
            "concurrent + graph partition + fusion",
            BatchOptions::default(),
            true,
        ),
    ];
    let mut out = Vec::new();
    for (name, opts, caches_on) in strategies {
        let (mut qp, sim) = processor_over(Arc::clone(&db), lan_config(), 8);
        if !caches_on {
            qp.options.use_intelligent_cache = false;
            qp.options.use_literal_cache = false;
        }
        let mut state = DashboardState::default();
        let ((_, report), wall) =
            time_it(|| dash.render(&qp, &mut state, &opts, true).expect("render"));
        out.push(vec![
            name.to_string(),
            ms(wall),
            report.batches[0].remote.to_string(),
            report.batches[0].local.to_string(),
            report.batches[0].fused_away.to_string(),
            sim.stats().queries.to_string(),
        ]);
    }
    print_table(
        "E1 — dashboard load (Fig.1, 8 zones + domains) by batch strategy",
        &[
            "strategy",
            "wall ms",
            "remote",
            "local",
            "fused away",
            "backend queries",
        ],
        &out,
    );
    // Machine lines (CI tolerance bands parse these).
    println!("e1_backend_queries_naive {}", out[0][5]);
    println!("e1_backend_queries_full {}", out[3][5]);
    println!("e1_fused_away {}", out[3][4]);
}

// ---------------------------------------------------------------- E2 ----

/// Sect. 3.4: query fusion on zones sharing filters but differing measures.
fn e2_query_fusion() {
    let db = faa_db(150_000);
    // Six zones over the same filtered relation, different projections.
    let batch = |src: &str| -> Vec<(String, QuerySpec)> {
        let base = || {
            QuerySpec::new(src, LogicalPlan::scan("flights"))
                .filter(bin(BinOp::Eq, col("cancelled"), lit(false)))
                .group("carrier")
        };
        vec![
            (
                "n".into(),
                base().agg(AggCall::new(AggFunc::Count, None, "n")),
            ),
            (
                "dist".into(),
                base().agg(AggCall::new(AggFunc::Sum, Some(col("distance")), "dist")),
            ),
            (
                "avg".into(),
                base().agg(AggCall::new(AggFunc::Avg, Some(col("arr_delay")), "avg")),
            ),
            (
                "lo".into(),
                base().agg(AggCall::new(AggFunc::Min, Some(col("dep_delay")), "lo")),
            ),
            (
                "hi".into(),
                base().agg(AggCall::new(AggFunc::Max, Some(col("dep_delay")), "hi")),
            ),
            (
                "dep".into(),
                base().agg(AggCall::new(AggFunc::Avg, Some(col("dep_delay")), "dep")),
            ),
        ]
    };
    let mut out = Vec::new();
    for (name, fuse) in [("without fusion", false), ("with fusion", true)] {
        let (mut qp, sim) = processor_over(Arc::clone(&db), lan_config(), 8);
        // Disable subsumption so fusion's effect is isolated.
        qp.options.use_intelligent_cache = fuse;
        qp.options.use_literal_cache = false;
        let opts = BatchOptions {
            fuse,
            concurrent: false,
            cache_aware: false,
            ..Default::default()
        };
        let (res, wall) =
            time_it(|| execute_batch(&qp, &batch("warehouse"), &opts).expect("batch"));
        out.push(vec![
            name.to_string(),
            ms(wall),
            sim.stats().queries.to_string(),
            res.report.fused_away.to_string(),
        ]);
    }
    print_table(
        "E2 — query fusion: 6 zones, same relation+filters, different measures",
        &["mode", "wall ms", "backend queries", "fused away"],
        &out,
    );
    println!("e2_backend_queries_without {}", out[0][2]);
    println!("e2_backend_queries_with {}", out[1][2]);
    println!("e2_fused_away {}", out[1][3]);
}

// ---------------------------------------------------------------- E3 ----

/// Sect. 3.2: the intelligent cache across a filter-interaction session.
fn e3_intelligent_cache_session() {
    let db = faa_db(150_000);
    let dash = fig1_dashboard("warehouse", "flights");
    // (name, intelligent, literal, widen)
    let modes: Vec<(&str, bool, bool, bool)> = vec![
        ("no caches", false, false, false),
        ("literal only", false, true, false),
        ("intelligent + literal", true, true, false),
        ("intelligent + widening", true, true, true),
    ];
    let carriers = ["WN", "DL", "AA", "UA", "US", "EV", "OO", "B6"];
    let mut out = Vec::new();
    for (name, intelligent, literal, widen) in modes {
        let (mut qp, sim) = processor_over(Arc::clone(&db), lan_config(), 8);
        qp.options.use_intelligent_cache = intelligent;
        qp.options.use_literal_cache = literal;
        qp.options.widen_for_reuse = widen;
        let mut state = DashboardState::default();
        let (_, load) = time_it(|| {
            dash.render(&qp, &mut state, &BatchOptions::default(), true)
                .expect("load")
        });
        // Interaction: shrink the carrier quick filter step by step — the
        // Fig. 1 "deselect values" scenario.
        let mut interact_total = Duration::ZERO;
        for k in (2..8).rev() {
            let subset: Vec<Value> = carriers[..k].iter().map(|&c| Value::from(c)).collect();
            state.set_quick_filter("carrier", subset);
            let (_, t) = time_it(|| {
                dash.render(&qp, &mut state, &BatchOptions::default(), false)
                    .expect("interact")
            });
            interact_total += t;
        }
        out.push(vec![
            name.to_string(),
            ms(load),
            ms(interact_total / 6),
            sim.stats().queries.to_string(),
        ]);
    }
    print_table(
        "E3 — filter-interaction session (initial load + 6 quick-filter changes)",
        &[
            "cache mode",
            "load ms",
            "avg interaction ms",
            "backend queries",
        ],
        &out,
    );
    println!("e3_backend_queries_no_cache {}", out[0][3]);
    println!("e3_backend_queries_full_cache {}", out[3][3]);
}

// ---------------------------------------------------------------- E4 ----

/// Sect. 3.2: the literal cache catches post-compilation text collisions.
fn e4_literal_cache() {
    let db = faa_db(100_000);
    let (qp, sim) = processor_over(db, lan_config(), 4);
    // Two structurally different filters that simplify to the same text.
    let plain = bin(BinOp::Eq, col("carrier"), lit("AA"));
    let convoluted = bin(BinOp::Or, plain.clone(), lit(false));
    let spec_of = |f: Expr| {
        QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
            .filter(f)
            .group("origin_state")
            .agg(AggCall::new(AggFunc::Count, None, "n"))
    };
    let (_, t1) = time_it(|| qp.execute(&spec_of(convoluted.clone())).expect("q1"));
    let ((_, outcome2), t2) = time_it(|| qp.execute(&spec_of(plain.clone())).expect("q2"));
    let rows = vec![
        vec![
            "convoluted predicate (first)".into(),
            ms(t1),
            "Remote".into(),
        ],
        vec![
            "simplified twin (second)".into(),
            ms(t2),
            format!("{outcome2:?}"),
        ],
    ];
    print_table(
        "E4 — literal cache: structurally different, textually identical after simplification",
        &["query", "wall ms", "outcome"],
        &rows,
    );
    println!(
        "backend queries: {} (intelligent misses: {}, literal hits: {})",
        sim.stats().queries,
        qp.caches.intelligent.stats().misses,
        qp.caches.literal.stats().hits
    );
    assert_eq!(outcome2, ExecOutcome::LiteralHit);
    println!("e4_literal_hits {}", qp.caches.literal.stats().hits);
    println!("e4_backend_queries {}", sim.stats().queries);
}

// ---------------------------------------------------------------- E5 ----

/// Sect. 3.2: the distributed cache layer under multi-user server traffic.
fn e5_distributed_cache() {
    let db = faa_db(150_000);
    let external = Arc::new(ExternalStore::new(Duration::from_micros(500)));
    let nodes: Vec<ServerNodeCache> = (0..2)
        .map(|i| ServerNodeCache::new(format!("node-{i}"), Arc::clone(&external)))
        .collect();
    // Each node computes misses through its own (cache-disabled) processor.
    let processors: Vec<QueryProcessor> = (0..2)
        .map(|_| {
            let (mut qp, _) = processor_over(Arc::clone(&db), lan_config(), 8);
            qp.options.use_intelligent_cache = false;
            qp.options.use_literal_cache = false;
            qp
        })
        .collect();
    let dash = fig1_dashboard("warehouse", "flights");
    let batch = dash.batch(&DashboardState::default(), true);

    let mut rows = Vec::new();
    let serve = |user: usize, label: &str, rows: &mut Vec<Vec<String>>| {
        let node = &nodes[user % 2];
        let qp = &processors[user % 2];
        let (_, wall) = time_it(|| {
            for (_, spec) in &batch {
                let text = spec.canonical_text();
                if node.lookup(spec, &text).0.is_some() {
                    continue;
                }
                let (chunk, _) = qp.execute(spec).expect("compute");
                node.store(spec.clone(), &text, &chunk, Duration::from_millis(20));
            }
        });
        rows.push(vec![
            label.to_string(),
            format!("node-{}", user % 2),
            ms(wall),
        ]);
    };
    serve(0, "user 1 (cold cluster)", &mut rows);
    serve(1, "user 2 (other node, warm external)", &mut rows);
    serve(2, "user 3 (node-0 again, warm local)", &mut rows);
    serve(3, "user 4 (node-1 again, warm local)", &mut rows);
    print_table(
        "E5 — shared dashboard across users and cluster nodes",
        &["request", "served by", "wall ms"],
        &rows,
    );
    println!(
        "external store: {} puts, {} gets ({} hits); node-0 local hits {}, node-1 local hits {}",
        external.stats().puts,
        external.stats().gets,
        external.stats().get_hits,
        nodes[0].stats().local_hits,
        nodes[1].stats().local_hits,
    );

    // Tableau-Public mix: 100 viewers, 90% only load.
    let candidates = vec![(
        "OriginsByState".to_string(),
        vec![Value::from("CA"), Value::from("TX"), Value::from("NY")],
    )];
    let traffic = tabviz::workloads::public_traffic(&dash, &candidates, 100, 0.1, 11);
    let loads = traffic
        .iter()
        .filter(|(_, i)| matches!(i, tabviz::workloads::Interaction::Load))
        .count();
    println!(
        "public traffic mix: {} events, {} initial loads ({}%) — the workload the warm cache absorbs",
        traffic.len(),
        loads,
        loads * 100 / traffic.len()
    );
    println!("e5_external_get_hits {}", external.stats().get_hits);
    println!(
        "e5_local_hits {}",
        nodes[0].stats().local_hits + nodes[1].stats().local_hits
    );
}

// ---------------------------------------------------------------- E6 ----

/// Sect. 3.2: Desktop persisted caches across sessions.
fn e6_persisted_cache() {
    let db = faa_db(150_000);
    let dash = fig1_dashboard("warehouse", "flights");
    let path = std::env::temp_dir().join("tabviz_e6_cache.tvqc");

    // Session 1: cold load, then persist.
    let (qp1, _) = processor_over(Arc::clone(&db), lan_config(), 8);
    let mut state = DashboardState::default();
    let (_, cold) = time_it(|| {
        dash.render(&qp1, &mut state, &BatchOptions::default(), true)
            .expect("load")
    });
    tabviz::cache::persist::save_to_file(&qp1.caches, &path).expect("save");

    // Session 2 ("restart"): fresh processor, warm from disk.
    let (qp2, sim2) = processor_over(Arc::clone(&db), lan_config(), 8);
    let loaded = tabviz::cache::persist::load_from_file(&qp2.caches, &path).expect("load");
    let mut state2 = DashboardState::default();
    let (_, warm) = time_it(|| {
        dash.render(&qp2, &mut state2, &BatchOptions::default(), true)
            .expect("render")
    });

    // Session 3: restart without the persisted file (the baseline).
    let (qp3, sim3) = processor_over(Arc::clone(&db), lan_config(), 8);
    let mut state3 = DashboardState::default();
    let (_, cold2) = time_it(|| {
        dash.render(&qp3, &mut state3, &BatchOptions::default(), true)
            .expect("render")
    });

    print_table(
        "E6 — persisted caches across Desktop sessions",
        &["session", "first render ms", "backend queries"],
        &[
            vec!["session 1 (cold)".into(), ms(cold), "-".into()],
            vec![
                format!("session 2 (restart, {loaded} entries loaded)"),
                ms(warm),
                sim2.stats().queries.to_string(),
            ],
            vec![
                "session 3 (restart, no cache file)".into(),
                ms(cold2),
                sim3.stats().queries.to_string(),
            ],
        ],
    );
    std::fs::remove_file(path).ok();
    println!("e6_entries_loaded {loaded}");
    println!("e6_warm_backend_queries {}", sim2.stats().queries);
    println!("e6_cold_backend_queries {}", sim3.stats().queries);
}

// ---------------------------------------------------------------- E7 ----

/// Sect. 3.5: connection-count sweep across backend architectures.
fn e7_connection_concurrency() {
    let rows = 40_000;
    let archs: Vec<(&str, SimConfig)> = vec![
        (
            "thread-per-query, 8 cores",
            SimConfig {
                latency: busy_latency(),
                architecture: ServerArchitecture::ThreadPerQuery,
                cores: 8,
                ..Default::default()
            },
        ),
        (
            "parallel plans (dop 4), 8 cores",
            SimConfig {
                latency: busy_latency(),
                architecture: ServerArchitecture::ParallelPlans { dop: 4 },
                cores: 8,
                ..Default::default()
            },
        ),
        (
            "throttled (2 concurrent)",
            SimConfig {
                latency: busy_latency(),
                architecture: ServerArchitecture::ThreadPerQuery,
                cores: 8,
                capabilities: Capabilities {
                    max_concurrent_queries: 2,
                    ..Default::default()
                },
                ..Default::default()
            },
        ),
        (
            "thread-per-query + shared scans",
            SimConfig {
                latency: busy_latency(),
                architecture: ServerArchitecture::ThreadPerQuery,
                cores: 8,
                shared_scans: true,
                ..Default::default()
            },
        ),
    ];
    fn busy_latency() -> LatencyModel {
        LatencyModel {
            connect: Duration::from_millis(20),
            dispatch: Duration::from_millis(3),
            scan_per_kilorow: Duration::from_micros(600), // ≈24ms server work/query
            transfer_per_kilorow: Duration::from_micros(200),
        }
    }
    // Eight independent queries (different filters — nothing derivable).
    let batch: Vec<(String, QuerySpec)> = (0..8)
        .map(|i| {
            (
                format!("q{i}"),
                QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
                    .filter(bin(BinOp::Ge, col("dep_hour"), lit(i as i64)))
                    .group("carrier")
                    .agg(AggCall::new(AggFunc::Count, None, "n")),
            )
        })
        .collect();
    let db = faa_db(rows);
    let mut out = Vec::new();
    let mut tpq_walls: Vec<f64> = Vec::new();
    for (arch_name, config) in archs {
        let mut cells = vec![arch_name.to_string()];
        for pool in [1usize, 2, 4, 8] {
            let (mut qp, _) = processor_over(Arc::clone(&db), config.clone(), pool);
            qp.options.use_intelligent_cache = false;
            qp.options.use_literal_cache = false;
            let opts = BatchOptions {
                fuse: false,
                concurrent: true,
                cache_aware: false,
                ..Default::default()
            };
            let (_, wall) = time_it(|| execute_batch(&qp, &batch, &opts).expect("batch"));
            if arch_name.starts_with("thread-per-query, 8 cores") {
                tpq_walls.push(wall.as_secs_f64());
            }
            cells.push(ms(wall));
        }
        out.push(cells);
    }
    print_table(
        "E7 — batch of 8 queries: wall ms by connection-pool size and backend architecture",
        &["architecture", "1 conn", "2 conns", "4 conns", "8 conns"],
        &out,
    );
    // Pool scaling on the thread-per-query backend: 8 connections must beat
    // 1 connection on a batch of 8 independent queries.
    println!(
        "e7_pool_scaling {:.2}",
        tpq_walls[0] / tpq_walls[3].max(1e-9)
    );
}

// ---------------------------------------------------------------- E8 ----

/// Sect. 4.2 / Figs. 3–4: TDE parallel scan/filter/aggregate speedup vs DOP.
fn e8_tde_parallel_scan() {
    let rows = 1_500_000;
    let tde = Tde::new(faa_db(rows));
    let q = "(aggregate ((origin_state))
                        ((count as n) (avg arr_delay as d) (max dep_delay as hi))
               (select (= cancelled false) (scan flights)))";
    let mut out = Vec::new();
    let (_, t1) = time_it(|| tde.query_with(q, &ExecOptions::serial()).expect("serial"));
    out.push(vec!["1 (serial plan)".into(), ms(t1), "1.00".into()]);
    for dop in [2usize, 4, 8] {
        let mut opts = ExecOptions::default();
        opts.parallel = ParallelOptions {
            profile: CostProfile {
                min_work_per_thread: 10_000,
                max_dop: dop,
            },
            ..Default::default()
        };
        let (_, t) = time_it(|| tde.query_with(q, &opts).expect("parallel"));
        out.push(vec![
            dop.to_string(),
            ms(t),
            format!("{:.2}", t1.as_secs_f64() / t.as_secs_f64()),
        ]);
    }
    print_table(
        &format!(
            "E8 — TDE parallel plans: {rows} rows, filter+aggregate, by DOP ({} cores present)",
            cores()
        ),
        &["DOP", "wall ms", "speedup vs serial"],
        &out,
    );
    if cores() == 1 {
        println!(
            "note: single-core host — parallel plans can only tie or lose here; see EXPERIMENTS.md"
        );
    }
    // Structural gate: the dop-4 plan actually parallelizes (timing bands
    // would be flaky on small shared runners).
    let plan = tabviz::tql::parse_plan(q).expect("parse");
    let mut opts4 = ExecOptions::default();
    opts4.parallel = ParallelOptions {
        profile: CostProfile {
            min_work_per_thread: 10_000,
            max_dop: 4,
        },
        ..Default::default()
    };
    let explain = tde.plan_physical(&plan, &opts4).expect("plan").explain();
    println!(
        "e8_parallel_plan_used {}",
        u32::from(explain.contains("Exchange"))
    );
    println!("e8_speedup_dop4 {}", out[2][2]);
}

// ---------------------------------------------------------------- E9 ----

/// Sect. 4.2.3 / Fig. 5 and Lemmas 1–3: aggregation strategies.
fn e9_aggregation_strategies() {
    let rows = 1_500_000;
    let sorted = Tde::new(faa_db(rows));
    let q = "(aggregate ((carrier)) ((count as n) (sum distance as dist) (avg arr_delay as d)) (scan flights))";
    let forced = CostProfile {
        min_work_per_thread: 10_000,
        max_dop: 4,
    };

    let mut rows_out = Vec::new();
    let run = |name: &str, opts: &ExecOptions, rows_out: &mut Vec<Vec<String>>| {
        let plan = tabviz::tql::parse_plan(q).expect("parse");
        let phys = sorted.plan_physical(&plan, opts).expect("plan");
        let explain = phys.explain();
        let marker = if explain.contains("Partial") {
            "local/global"
        } else if explain.contains("Exchange order-preserving") {
            "ordered exchange + streaming"
        } else if explain.contains("Exchange") && explain.contains("StreamAgg") {
            "range-partitioned (no global)"
        } else if explain.contains("Exchange") {
            "exchange + serial agg"
        } else if explain.contains("StreamAgg") {
            "serial streaming"
        } else {
            "serial hash"
        };
        let (_, t) = time_it(|| sorted.query_with(q, opts).expect("run"));
        rows_out.push(vec![name.to_string(), marker.to_string(), ms(t)]);
    };

    run(
        "serial streaming (sorted input)",
        &ExecOptions::serial(),
        &mut rows_out,
    );
    let mut hash_only = ExecOptions::serial();
    hash_only.physical.enable_streaming_agg = false;
    run("serial hash", &hash_only, &mut rows_out);
    let mut lg = ExecOptions::default();
    lg.parallel = ParallelOptions {
        profile: forced,
        enable_range_partition: false,
        ..Default::default()
    };
    run("parallel local/global", &lg, &mut rows_out);
    let mut rp = ExecOptions::default();
    rp.parallel = ParallelOptions {
        profile: forced,
        range_partition_min_distinct_per_dop: 1,
        ..Default::default()
    };
    run("parallel range-partitioned", &rp, &mut rows_out);
    let mut serial_agg = ExecOptions::default();
    serial_agg.parallel = ParallelOptions {
        profile: forced,
        enable_range_partition: false,
        enable_local_global: false,
        ..Default::default()
    };
    run("parallel, global agg only", &serial_agg, &mut rows_out);
    let mut ordered = ExecOptions::default();
    ordered.parallel = ParallelOptions {
        profile: forced,
        enable_range_partition: false,
        prefer_ordered_exchange_streaming: true,
        ..Default::default()
    };
    run(
        "ordered exchange + streaming (4.2.4 variant)",
        &ordered,
        &mut rows_out,
    );

    print_table(
        &format!("E9 — aggregation strategies, {rows} rows sorted by carrier"),
        &["strategy", "chosen plan", "wall ms"],
        &rows_out,
    );

    // The low-cardinality caveat: partitioning on `cancelled` (2 values)
    // must fall back to local/global even when range partitioning is on.
    let q2 = "(aggregate ((cancelled)) ((count as n)) (scan flights))";
    let db2 = {
        let flights = generate_flights(&FaaConfig::with_rows(200_000)).expect("gen");
        let db = Arc::new(Database::new("faa2"));
        db.put(Table::from_chunk("flights", &flights, &["cancelled"]).expect("t"))
            .expect("put");
        db
    };
    let tde2 = Tde::new(db2);
    let mut rp2 = ExecOptions::default();
    rp2.parallel = ParallelOptions {
        profile: forced,
        ..Default::default()
    };
    let plan2 = tabviz::tql::parse_plan(q2).expect("parse");
    let explain = tde2.plan_physical(&plan2, &rp2).expect("plan").explain();
    let guard_choice = if explain.contains("RunAgg") {
        "run-granularity aggregation"
    } else if explain.contains("Partial") {
        "local/global"
    } else {
        "range partitioning"
    };
    println!(
        "low-cardinality guard: grouping by `cancelled` (2 values) chose {guard_choice} (anything but range partitioning)"
    );
    println!(
        "e9_range_partitioned_plan {}",
        u32::from(rows_out[3][1].contains("range-partitioned"))
    );
    println!(
        "e9_low_cardinality_no_range_partition {}",
        u32::from(!(explain.contains("Exchange") && explain.contains("StreamAgg")))
    );
}

// --------------------------------------------------------------- E10 ----

/// Sect. 4.3: RLE IndexTable range skipping across selectivities.
fn e10_rle_index_scan() {
    let rows = 1_500_000;
    let tde = Tde::new(faa_db(rows));
    let all = [
        "HA", "F9", "NK", "AS", "B6", "OO", "EV", "US", "UA", "AA", "DL", "WN",
    ];
    let mut out = Vec::new();
    for k in [1usize, 2, 4, 8, 12] {
        let list = all[..k]
            .iter()
            .map(|c| format!("\"{c}\""))
            .collect::<Vec<_>>()
            .join(" ");
        let q = format!(
            "(aggregate ((origin_state)) ((count as n))
               (select (in carrier {list}) (scan flights)))"
        );
        let (_, t_rle) = time_it(|| tde.query_with(&q, &ExecOptions::serial()).expect("rle"));
        let mut no_rle = ExecOptions::serial();
        no_rle.physical.enable_rle_index = false;
        let (_, t_full) = time_it(|| tde.query_with(&q, &no_rle).expect("full"));
        let plan = tabviz::tql::parse_plan(&q).expect("parse");
        let used_rle = tde
            .plan_physical(&plan, &ExecOptions::serial())
            .expect("plan")
            .explain()
            .contains("via-rle-index");
        out.push(vec![
            format!("{k}/12 carriers"),
            ms(t_full),
            ms(t_rle),
            format!("{:.1}", t_full.as_secs_f64() / t_rle.as_secs_f64()),
            used_rle.to_string(),
        ]);
    }
    print_table(
        &format!("E10 — selective filters on the RLE carrier column ({rows} rows)"),
        &[
            "selectivity",
            "full scan ms",
            "rle path ms",
            "speedup",
            "index used",
        ],
        &out,
    );
    println!(
        "e10_index_used_selective {}",
        u32::from(out[0][4] == "true")
    );
    println!("e10_speedup_selective {}", out[0][3]);
}

// --------------------------------------------------------------- E11 ----

/// Sect. 4.4: shadow extracts vs parse-per-query, break-even sweep.
fn e11_shadow_extract() {
    let flights = generate_flights(&FaaConfig::with_rows(40_000)).expect("gen");
    let mut csv = String::from(
        "date,carrier,origin,dest,origin_state,dest_state,market,dep_hour,weekday,distance,dep_delay,arr_delay,cancelled\n",
    );
    for i in 0..flights.len() {
        let cells: Vec<String> = flights
            .row(i)
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Date(d) => {
                    let (y, m, dd) = tabviz::tql::datefn::civil_from_days(*d);
                    format!("{y:04}-{m:02}-{dd:02}")
                }
                other => other.to_string(),
            })
            .collect();
        csv.push_str(&cells.join(","));
        csv.push('\n');
    }
    let opts = CsvOptions {
        header: HeaderMode::Yes,
        ..Default::default()
    };
    let q = "(aggregate ((carrier)) ((count as n) (avg arr_delay as d)) (scan flights_csv))";

    let mut out = Vec::new();
    for n_queries in [1usize, 2, 4, 8, 16] {
        // Jet-style: parse per query.
        let db1 = Arc::new(Database::new("d1"));
        let se1 = ShadowExtracts::new(Arc::clone(&db1));
        let (_, t_parse) = time_it(|| {
            for _ in 0..n_queries {
                let chunk = se1.parse_per_query(&csv, &opts).expect("parse");
                db1.put_temp(Table::from_chunk("flights_csv", &chunk, &[]).expect("t"))
                    .expect("put");
                Tde::new(Arc::clone(&db1)).query(q).expect("q");
                db1.clear_temp();
            }
        });
        // Shadow extract: parse once.
        let db2 = Arc::new(Database::new("d2"));
        let se2 = ShadowExtracts::new(Arc::clone(&db2));
        let (_, t_extract) = time_it(|| {
            se2.connect_text("flights_csv", &csv, &opts)
                .expect("extract");
            let tde = Tde::new(Arc::clone(&db2));
            for _ in 0..n_queries {
                tde.query(q).expect("q");
            }
        });
        out.push(vec![
            n_queries.to_string(),
            ms(t_parse),
            ms(t_extract),
            format!("{:.1}", t_parse.as_secs_f64() / t_extract.as_secs_f64()),
        ]);
    }
    print_table(
        "E11 — text source: parse-per-query (Jet-era) vs shadow extract, 40k-row CSV",
        &[
            "queries",
            "parse-per-query ms",
            "shadow extract ms",
            "speedup",
        ],
        &out,
    );
    println!("e11_speedup_16q {}", out.last().expect("rows")[3]);
}

// --------------------------------------------------------------- E12 ----

/// Sect. 5.3–5.4: Data Server temp tables for large filters.
fn e12_dataserver_temp_tables() {
    let db = faa_db(150_000);
    let markets: Vec<String> = {
        let t = db.resolve("flights").expect("t");
        match t.column_domain("market").expect("domain") {
            Some(d) => d
                .into_iter()
                .filter_map(|v| match v {
                    Value::Str(s) => Some(s),
                    _ => None,
                })
                .collect(),
            None => vec![],
        }
    };
    let mut out = Vec::new();
    for &size in &[10usize, 50, 200, 400] {
        let size = size.min(markets.len());
        let values: Vec<Value> = markets[..size]
            .iter()
            .map(|m| Value::from(m.as_str()))
            .collect();

        // (a) Inline IN-list resent with every query.
        let sim_cfg = SimConfig {
            latency: LatencyModel::wan(),
            ..Default::default()
        };
        let (qp, sim) = processor_over(Arc::clone(&db), sim_cfg.clone(), 4);
        let server = Arc::new(DataServer::new(qp));
        server.publish(PublishedSource::new(
            "m",
            "warehouse",
            LogicalPlan::scan("flights"),
        ));
        let session = server.connect("m", "u").expect("connect");
        let inline_q = ClientQuery {
            filters: vec![Expr::In {
                expr: Box::new(col("market")),
                list: values.clone(),
                negated: false,
            }],
            group_by: vec!["carrier".into()],
            aggs: vec![AggCall::new(AggFunc::Count, None, "n")],
            ..Default::default()
        };
        // Disable server-side externalization by using a tiny threshold off:
        // force inline by turning off backing temp tables.
        let (_, t_inline) = time_it(|| {
            for _ in 0..3 {
                server.processor.caches.clear();
                session.query(&inline_q).expect("inline");
            }
        });
        // Client→Data-Server wire bytes (the Sect. 5.3 "reduced network
        // traffic" metric).
        let inline_bytes = server.stats().client_bytes_in;
        let _ = &sim;

        // (b) Set defined once, referenced thereafter (+ temp pushdown).
        let (qp2, sim2) = processor_over(Arc::clone(&db), sim_cfg, 4);
        let server2 = Arc::new(DataServer::new(qp2));
        server2.publish(PublishedSource::new(
            "m",
            "warehouse",
            LogicalPlan::scan("flights"),
        ));
        let mut session2 = server2.connect("m", "u").expect("connect");
        let (_, t_set) = time_it(|| {
            let set = session2.define_set("market", values.clone()).expect("set");
            let q = ClientQuery {
                group_by: vec!["carrier".into()],
                aggs: vec![AggCall::new(AggFunc::Count, None, "n")],
                set_refs: vec![set],
                ..Default::default()
            };
            for _ in 0..3 {
                server2.processor.caches.clear();
                session2.query(&q).expect("set query");
            }
        });
        let set_bytes = server2.stats().client_bytes_in;
        out.push(vec![
            size.to_string(),
            ms(t_inline),
            ms(t_set),
            inline_bytes.to_string(),
            set_bytes.to_string(),
            sim2.stats().temp_tables_created.to_string(),
        ]);
    }
    print_table(
        "E12 — large filters through Data Server: inline IN-list vs shared set + temp-table pushdown (3 queries each, WAN)",
        &["filter size", "inline ms", "set ms", "inline bytes", "set bytes", "temp tables"],
        &out,
    );
    let last = out.last().expect("rows");
    let inline_b: f64 = last[3].parse().unwrap_or(0.0);
    let set_b: f64 = last[4].parse().unwrap_or(0.0);
    println!("e12_temp_tables {}", last[5]);
    println!("e12_bytes_ratio {:.1}", inline_b / set_b.max(1.0));
}

// --------------------------------------------------------------- E13 ----

/// Sect. 4.1.2: join culling for domain queries.
fn e13_join_culling() {
    let tde = Tde::new(faa_db(1_000_000));
    let q = "(aggregate ((carrier)) ()
               (join inner ((carrier code)) (scan flights) (scan carriers)))";
    let (_, t_culled) = time_it(|| tde.query_with(q, &ExecOptions::serial()).expect("culled"));
    let mut no_cull = ExecOptions::serial();
    no_cull.optimizer.enable_join_culling = false;
    let (_, t_join) = time_it(|| tde.query_with(q, &no_cull).expect("join"));
    print_table(
        "E13 — carrier domain query over a star join (1M-row fact)",
        &["mode", "wall ms"],
        &[
            vec!["join culled (default)".into(), ms(t_culled)],
            vec!["join executed".into(), ms(t_join)],
        ],
    );
    println!(
        "e13_culling_speedup {:.2}",
        t_join.as_secs_f64() / t_culled.as_secs_f64().max(1e-9)
    );
}

// --------------------------------------------------------------- E14 ----

/// Sect. 4.2.4: streaming vs hash aggregate on grouped input.
fn e14_streaming_vs_hash() {
    let rows = 1_500_000;
    let sorted = Tde::new(faa_db(rows));
    let unsorted = Tde::new(faa_db_unsorted(rows));
    let q = "(aggregate ((carrier)) ((count as n) (sum distance as dist)) (scan flights))";
    let (_, t_stream) = time_it(|| sorted.query_with(q, &ExecOptions::serial()).expect("s"));
    let mut hash_only = ExecOptions::serial();
    hash_only.physical.enable_streaming_agg = false;
    let (_, t_hash_sorted) = time_it(|| sorted.query_with(q, &hash_only).expect("h"));
    let (_, t_hash_unsorted) =
        time_it(|| unsorted.query_with(q, &ExecOptions::serial()).expect("u"));
    print_table(
        &format!("E14 — streaming vs hash aggregation ({rows} rows)"),
        &["configuration", "wall ms"],
        &[
            vec!["sorted input, streaming agg".into(), ms(t_stream)],
            vec!["sorted input, hash agg (forced)".into(), ms(t_hash_sorted)],
            vec![
                "unsorted input, hash agg (only option)".into(),
                ms(t_hash_unsorted),
            ],
        ],
    );
    println!(
        "e14_stream_speedup_sorted {:.2}",
        t_hash_sorted.as_secs_f64() / t_stream.as_secs_f64().max(1e-9)
    );
}

// --------------------------------------------------------------- E15 ----

/// Sect. 7 (future work): speculative prefetching of predicted interactions.
fn e15_prefetching() {
    use tabviz::core::prefetch::prefetch;
    let db = faa_db(150_000);
    let dash = fig1_dashboard("warehouse", "flights");
    let mut out = Vec::new();
    for (name, do_prefetch) in [("no prefetch", false), ("prefetch top-3 per zone", true)] {
        let (qp, sim) = processor_over(Arc::clone(&db), lan_config(), 8);
        let mut state = DashboardState::default();
        let (results, _) = dash
            .render(&qp, &mut state, &BatchOptions::default(), true)
            .expect("load");
        let mut prefetch_ms = Duration::ZERO;
        if do_prefetch {
            // Idle time after the load: warm the predicted neighborhood.
            let (_, t) = time_it(|| prefetch(&qp, &dash, &state, &results, 3, 6).expect("warm"));
            prefetch_ms = t;
        }
        let before = sim.stats().queries;
        // The user clicks the top origin state.
        let first_state = results["OriginsByState"].row(0)[0].clone();
        state.select("OriginsByState", first_state);
        let (_, t_interact) = time_it(|| {
            dash.render(&qp, &mut state, &BatchOptions::default(), false)
                .expect("interact")
        });
        out.push(vec![
            name.to_string(),
            ms(prefetch_ms),
            ms(t_interact),
            (sim.stats().queries - before).to_string(),
        ]);
    }
    print_table(
        "E15 — speculative prefetching of predicted interactions (Sect. 7 future work)",
        &[
            "mode",
            "idle prefetch ms",
            "interaction ms",
            "backend queries during interaction",
        ],
        &out,
    );
    println!("e15_interaction_queries_no_prefetch {}", out[0][3]);
    println!("e15_interaction_queries_prefetch {}", out[1][3]);
}

// ---------------------------------------------------------------- E16 ----

/// Fault sweep: the E7 batch under increasing backend fault rates, with the
/// resilience layer (bounded retries + degraded stale serving) on vs off.
/// Deterministic: fault decisions hash a fixed seed per operation ordinal.
fn e16_fault_resilience() {
    let db = faa_db(40_000);
    let batch: Vec<(String, QuerySpec)> = (0..8)
        .map(|i| {
            (
                format!("q{i}"),
                QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
                    .filter(bin(BinOp::Ge, col("dep_hour"), lit(i as i64)))
                    .group("carrier")
                    .agg(AggCall::new(AggFunc::Count, None, "n")),
            )
        })
        .collect();
    let mut out = Vec::new();
    for drop_rate in [0.0f64, 0.2, 0.5, 0.9] {
        for resilient in [true, false] {
            let (mut qp, sim) = processor_over(Arc::clone(&db), lan_config(), 4);
            if !resilient {
                qp.options.transient_retries = 0;
                qp.options.serve_stale_on_failure = false;
            }
            // A healthy pass fills the caches; the refresh then demotes them
            // to stale, so the faulty pass must go remote (or degrade).
            execute_batch(&qp, &batch, &BatchOptions::default()).expect("warm");
            qp.mark_source_stale("warehouse");
            let mut plan = FaultPlan::seeded(42);
            plan.connection_drop = drop_rate;
            plan.transient_query_failure = drop_rate / 2.0;
            sim.set_fault_plan(Some(plan));
            let (res, wall) =
                time_it(|| execute_batch(&qp, &batch, &BatchOptions::default()).expect("batch"));
            out.push(vec![
                format!(
                    "{:.0}% drops{}",
                    drop_rate * 100.0,
                    if resilient { "" } else { ", no resilience" }
                ),
                ms(wall),
                res.results.len().to_string(),
                res.stale.len().to_string(),
                res.failed.len().to_string(),
                qp.stats().transient_retries.to_string(),
            ]);
        }
    }
    print_table(
        "E16 — batch of 8 queries under injected faults: retries + stale serving vs fail-fast",
        &[
            "fault rate",
            "wall ms",
            "rendered",
            "stale",
            "failed",
            "retries",
        ],
        &out,
    );
}

// ---------------------------------------------------------------- E17 ----

/// Sect. 3: where does user response time go? A Fig. 1 dashboard is run
/// cold (everything remote) and warm (everything cached); per-query
/// response-time profiles are aggregated into a stage-level latency
/// breakdown, and the metrics registry is dumped for the CI smoke check.
fn e17_observability() {
    use tabviz::obs::MetricValue;

    let db = faa_db(60_000);
    let (qp, _sim) = processor_over(db, lan_config(), 4);
    let dash = fig1_dashboard("warehouse", "flights");
    let batch = dash.batch(&DashboardState::default(), true);

    let (_cold, cold_wall) =
        time_it(|| execute_batch(&qp, &batch, &BatchOptions::default()).expect("cold"));
    let cold_stats = qp.stats();
    let (_warm, warm_wall) =
        time_it(|| execute_batch(&qp, &batch, &BatchOptions::default()).expect("warm"));
    let warm_stats = qp.stats();

    // Aggregate the per-query profiles into a per-stage latency table.
    let profiles = qp.obs.profiles.all();
    let mut by_stage: std::collections::BTreeMap<&'static str, Vec<Duration>> =
        std::collections::BTreeMap::new();
    for p in &profiles {
        for s in &p.stages {
            by_stage.entry(s.stage).or_default().push(s.dur);
        }
    }
    let pct = |durs: &[Duration], q: f64| -> Duration {
        let rank = ((q * durs.len() as f64).ceil() as usize).clamp(1, durs.len());
        durs[rank - 1]
    };
    let stage_stats: Vec<(&'static str, usize, Duration, Duration, Duration)> = by_stage
        .into_iter()
        .map(|(stage, mut durs)| {
            durs.sort();
            let total: Duration = durs.iter().sum();
            let (p50, p95) = (pct(&durs, 0.5), pct(&durs, 0.95));
            (stage, durs.len(), total, p50, p95)
        })
        .collect();
    let mut rows: Vec<(Duration, Vec<String>)> = stage_stats
        .iter()
        .map(|&(stage, count, total, p50, p95)| {
            (
                total,
                vec![
                    stage.to_string(),
                    count.to_string(),
                    ms(total),
                    ms(p50),
                    ms(p95),
                ],
            )
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.0));
    print_table(
        &format!(
            "E17 — stage-level latency breakdown over {} profiled queries (cold {} ms, warm {} ms)",
            profiles.len(),
            ms(cold_wall),
            ms(warm_wall),
        ),
        &["stage", "count", "total ms", "p50 ms", "p95 ms"],
        &rows.into_iter().map(|(_, r)| r).collect::<Vec<_>>(),
    );

    // One full per-query timeline, as the profile renderer prints it.
    if let Some(remote) = profiles
        .iter()
        .find(|p| p.outcome == ProfileOutcome::Remote)
    {
        println!("\nsample cold profile:\n{}", remote.render());
    }
    if let Some(hit) = profiles
        .iter()
        .rev()
        .find(|p| p.outcome == ProfileOutcome::Hit)
    {
        println!("sample warm profile:\n{}", hit.render());
    }

    // Machine-checkable summary lines (the CI smoke test greps these).
    let warm_queries =
        (warm_stats.intelligent_hits + warm_stats.literal_hits + warm_stats.remote_queries)
            - (cold_stats.intelligent_hits + cold_stats.literal_hits + cold_stats.remote_queries);
    let warm_hits = (warm_stats.intelligent_hits + warm_stats.literal_hits)
        - (cold_stats.intelligent_hits + cold_stats.literal_hits);
    println!(
        "e17_warm_hit_rate {:.3}",
        warm_hits as f64 / warm_queries.max(1) as f64
    );
    // Stage-latency table in machine form, one line per stage, so CI can
    // assert the breakdown's shape and hold the hot stages to a band.
    for &(stage, count, total, p50, p95) in &stage_stats {
        println!(
            "e17_stage {stage} count={count} total_ms={:.3} p50_ms={:.3} p95_ms={:.3}",
            total.as_secs_f64() * 1e3,
            p50.as_secs_f64() * 1e3,
            p95.as_secs_f64() * 1e3,
        );
    }
    for (name, value) in qp.obs.registry.snapshot() {
        match value {
            MetricValue::Counter(v) => println!("e17_metric {name} {v}"),
            MetricValue::Gauge(v) => println!("e17_metric {name} {v}"),
            MetricValue::Histogram(h) => println!(
                "e17_metric {name} count={} p50us={} p95us={} p99us={}",
                h.count,
                h.p50_micros.unwrap_or(0),
                h.p95_micros.unwrap_or(0),
                h.p99_micros.unwrap_or(0)
            ),
        }
    }
}

// ---------------------------------------------------------------- E18 ----

/// Compression-aware scan path: a selectivity × encoding sweep comparing the
/// decode-everything baseline (no pushdown, no RLE index) against the
/// zone-skipping pushdown scan (RLE index off, isolating zone maps +
/// predicate-on-codes + run kernels) and the full default planner. The
/// carrier filters exercise the dict-rle column (sorted, long runs — zone
/// maps refute most blocks), the dep_hour filters the plain column (no
/// skipping, but rows are still removed before materialization). A second
/// table compares run-granularity aggregation against the streaming and
/// hash aggregates it replaces.
fn e18_zone_skipping() {
    use tabviz::obs::MetricValue;

    let rows = 1_500_000;
    let tde = Tde::new(faa_db(rows));
    let blocks_total = rows.div_ceil(tabviz::storage::BLOCK_ROWS) as u64;

    let counter = |name: &str| -> u64 {
        match tabviz::obs::global().snapshot().get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    };

    let mut baseline = ExecOptions::serial();
    baseline.physical.enable_scan_pushdown = false;
    baseline.physical.enable_rle_index = false;
    let mut zones = ExecOptions::serial();
    zones.physical.enable_rle_index = false;
    let default = ExecOptions::serial();

    // (label, filter, encoding of the filtered column)
    let filters: Vec<(&str, &str, &str)> = vec![
        ("carrier = ZZ", "(= carrier \"ZZ\")", "dict-rle"),
        ("carrier = HA", "(= carrier \"HA\")", "dict-rle"),
        ("carrier = WN", "(= carrier \"WN\")", "dict-rle"),
        (
            "carrier in 4 majors",
            "(in carrier \"WN\" \"DL\" \"AA\" \"UA\")",
            "dict-rle",
        ),
        ("dep_hour >= 18", "(>= dep_hour 18)", "plain"),
        ("dep_hour >= 0", "(>= dep_hour 0)", "plain"),
    ];

    let mut out = Vec::new();
    let mut selective: Option<(u64, f64, f64)> = None; // (skipped, fraction, speedup)
    for (label, filter, codec) in &filters {
        let q = format!("(aggregate () ((count as n)) (select {filter} (scan flights)))");
        let (out_base, t_base) = time_it(|| tde.query_with(&q, &baseline).expect("baseline"));
        let before_skip = counter("tv_tde_blocks_skipped_total");
        let before_pre = counter("tv_tde_rows_prefiltered_total");
        let (out_zone, t_zone) = time_it(|| tde.query_with(&q, &zones).expect("zones"));
        let skipped = counter("tv_tde_blocks_skipped_total") - before_skip;
        let prefiltered = counter("tv_tde_rows_prefiltered_total") - before_pre;
        let (_, t_default) = time_it(|| tde.query_with(&q, &default).expect("default"));
        assert_eq!(
            out_base.row(0)[0],
            out_zone.row(0)[0],
            "arms disagree on {label}"
        );
        let matched = out_zone.row(0)[0].as_int().unwrap_or(0);
        let skip_frac = skipped as f64 / blocks_total as f64;
        let speedup = t_base.as_secs_f64() / t_zone.as_secs_f64().max(1e-9);
        // The most selective non-empty sorted-column point drives the CI
        // regression assertions.
        if *codec == "dict-rle" && matched > 0 && selective.is_none() {
            selective = Some((skipped, skip_frac, speedup));
        }
        out.push(vec![
            label.to_string(),
            codec.to_string(),
            matched.to_string(),
            ms(t_base),
            ms(t_zone),
            ms(t_default),
            format!("{skipped}/{blocks_total}"),
            format!("{:.0}%", skip_frac * 100.0),
            prefiltered.to_string(),
        ]);
    }
    print_table(
        &format!(
            "E18 — zone-map block skipping & predicate pushdown ({rows} rows, sorted by carrier)"
        ),
        &[
            "filter",
            "codec",
            "rows matched",
            "baseline ms",
            "zone+pushdown ms",
            "default ms",
            "blocks skipped",
            "skip %",
            "rows prefiltered",
        ],
        &out,
    );

    // Run-granularity aggregation over the RLE group column: one state
    // update per run instead of per row.
    let q_agg = "(aggregate ((carrier)) ((count as n)) (scan flights))";
    let (_, t_run) = time_it(|| tde.query_with(q_agg, &default).expect("runagg"));
    let mut no_run = ExecOptions::serial();
    no_run.physical.enable_run_agg = false;
    let (_, t_stream) = time_it(|| tde.query_with(q_agg, &no_run).expect("streamagg"));
    let mut hash_only = no_run;
    hash_only.physical.enable_streaming_agg = false;
    let (_, t_hash) = time_it(|| tde.query_with(q_agg, &hash_only).expect("hashagg"));
    print_table(
        "E18 — COUNT(*) by carrier: run-granularity vs row-at-a-time aggregation",
        &["configuration", "wall ms"],
        &[
            vec!["RunAgg (per RLE run)".into(), ms(t_run)],
            vec!["StreamAgg (per row)".into(), ms(t_stream)],
            vec!["HashAgg (per row)".into(), ms(t_hash)],
        ],
    );

    // Machine-checkable summary lines (the CI smoke test parses these).
    let (skipped, frac, speedup) = selective.expect("a selective dict-rle point must exist");
    println!("e18_blocks_skipped {skipped}");
    println!("e18_skip_fraction {frac:.3}");
    println!("e18_speedup {speedup:.2}");
    println!(
        "e18_runagg_speedup {:.2}",
        t_stream.as_secs_f64() / t_run.as_secs_f64().max(1e-9)
    );
}

// ---------------------------------------------------------------- E19 ----

/// Workload management under overload: a pool of 4 connections serves one
/// interactive analyst while 16 flooder threads (half Batch, half
/// Background) saturate the backend at 4× pool capacity. With the
/// admission scheduler, interactive queries jump the queue and the worst
/// classes are load-shed; with unbounded FIFO everything races the pool
/// and interactive latency collapses to batch latency.
fn e19_overload_scheduling() {
    use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

    const POOL: usize = 4;
    const FLOODERS: usize = 16; // 4× pool capacity
    const PROBES: usize = 40;

    // A small table behind a chatty link: response time is dominated by
    // simulated network/dispatch latency, not local CPU, so the experiment
    // measures queueing policy rather than core contention.
    let db = faa_db(3_000);
    let link = SimConfig {
        latency: LatencyModel {
            connect: Duration::from_millis(20),
            dispatch: Duration::from_millis(20),
            scan_per_kilorow: Duration::from_micros(150),
            transfer_per_kilorow: Duration::from_micros(400),
        },
        ..Default::default()
    };
    // Distinct filter literals so every query — probe or flood — misses the
    // caches and needs backend work (and therefore an admission ticket).
    let flood_seq = AtomicI64::new(1_000_000);
    let probe_spec = |cell: i64, i: i64| {
        QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
            .filter(bin(
                BinOp::Le,
                col("distance"),
                lit(100_000 + cell * 1000 + i),
            ))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"))
    };
    let flood_spec = |n: i64| {
        QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
            .filter(bin(BinOp::Ge, col("distance"), lit(n)))
            .group("dep_hour")
            .agg(AggCall::new(AggFunc::Count, None, "n"))
    };

    let p95 = |durs: &mut Vec<Duration>| -> Duration {
        durs.sort();
        let rank = ((0.95 * durs.len() as f64).ceil() as usize).clamp(1, durs.len());
        durs[rank - 1]
    };

    // One measurement cell: optionally schedule, optionally flood, probe.
    let run_cell = |cell: i64, scheduled: bool, flooded: bool| {
        let (mut qp, _sim) = processor_over(Arc::clone(&db), link.clone(), POOL);
        if scheduled {
            // Pool-derived concurrency with tighter shed watermarks, so a
            // 4×-capacity flood visibly sheds Background and Batch work,
            // plus one slot held back for interactive arrivals.
            let mut cfg = SchedConfig::for_pool_capacity(POOL);
            cfg.shed_depth = [16 * POOL, POOL, POOL / 2];
            cfg.reserve_interactive = 1;
            qp.set_scheduler(Arc::new(Scheduler::new(cfg)));
        }
        // Open every pooled connection up front so no measured probe pays
        // the one-time connect cost (it would otherwise land in the p95 of
        // whichever cell happened to dial more connections).
        std::thread::scope(|s| {
            for w in 0..POOL {
                let qp = &qp;
                s.spawn(move || {
                    let req = AdmitRequest::interactive("warmup");
                    qp.execute_as(&probe_spec(cell, 10_000 + w as i64), &req)
                        .expect("warmup probe");
                });
            }
        });
        let stop = AtomicBool::new(false);
        let mut lat = Vec::with_capacity(PROBES);
        std::thread::scope(|s| {
            if flooded {
                for f in 0..FLOODERS {
                    let qp = &qp;
                    let stop = &stop;
                    let flood_seq = &flood_seq;
                    let req = if f % 2 == 0 {
                        AdmitRequest::batch(format!("etl-{f}"))
                    } else {
                        AdmitRequest::background(format!("prefetch-{f}"))
                    };
                    s.spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            let n = flood_seq.fetch_add(1, Ordering::Relaxed);
                            if qp.execute_as(&flood_spec(n), &req).is_err() {
                                // Load-shed: back off instead of hammering
                                // the admission gate in a hot loop.
                                std::thread::sleep(Duration::from_millis(1));
                            }
                        }
                    });
                }
                // Let the flood reach a steady state before probing.
                std::thread::sleep(Duration::from_millis(50));
            }
            let analyst = AdmitRequest::interactive("analyst");
            for i in 0..PROBES {
                let (r, wall) = time_it(|| qp.execute_as(&probe_spec(cell, i as i64), &analyst));
                r.expect("interactive probe");
                lat.push(wall);
                std::thread::sleep(Duration::from_millis(2));
            }
            stop.store(true, Ordering::Relaxed);
        });
        let sheds = qp
            .scheduler()
            .map(|sch| sch.stats())
            .map(|st| {
                [
                    st.shed[Priority::Background.idx()]
                        + st.deadline_shed[Priority::Background.idx()],
                    st.shed[Priority::Batch.idx()] + st.deadline_shed[Priority::Batch.idx()],
                    st.shed[Priority::Interactive.idx()]
                        + st.deadline_shed[Priority::Interactive.idx()],
                ]
            })
            .unwrap_or([0, 0, 0]);
        (p95(&mut lat), sheds)
    };

    let (unloaded_p95, _) = run_cell(0, true, false);
    let (sched_p95, sched_sheds) = run_cell(1, true, true);
    let (fifo_p95, _) = run_cell(2, false, true);

    let ratio = sched_p95.as_secs_f64() / unloaded_p95.as_secs_f64().max(1e-9);
    let fifo_ratio = fifo_p95.as_secs_f64() / unloaded_p95.as_secs_f64().max(1e-9);
    print_table(
        &format!(
            "E19 — interactive p95 over {PROBES} probes, pool of {POOL}, {FLOODERS} flooder threads"
        ),
        &["mode", "p95 ms", "vs unloaded", "sheds bg/batch/int"],
        &[
            vec![
                "unloaded + scheduler".into(),
                ms(unloaded_p95),
                "1.00x".into(),
                "-".into(),
            ],
            vec![
                "4x overload + scheduler".into(),
                ms(sched_p95),
                format!("{ratio:.2}x"),
                format!("{}/{}/{}", sched_sheds[0], sched_sheds[1], sched_sheds[2]),
            ],
            vec![
                "4x overload, unbounded FIFO".into(),
                ms(fifo_p95),
                format!("{fifo_ratio:.2}x"),
                "-".into(),
            ],
        ],
    );

    // Machine-checkable summary lines (the CI smoke test parses these).
    println!("e19_unloaded_p95_ms {}", ms(unloaded_p95));
    println!("e19_sched_p95_ms {}", ms(sched_p95));
    println!("e19_fifo_p95_ms {}", ms(fifo_p95));
    println!("e19_p95_ratio {ratio:.2}");
    println!("e19_fifo_ratio {fifo_ratio:.2}");
    println!("e19_sheds_background {}", sched_sheds[0]);
    println!("e19_sheds_batch {}", sched_sheds[1]);
    println!("e19_sheds_interactive {}", sched_sheds[2]);
}

// ---------------------------------------------------------------- E20 ----

/// Flight-recorder overhead: the e17 dashboard workload with trace capture
/// on (every query assembled into the recorder) versus globally off (spans
/// fall back to the per-thread ring only). The paper's observability bar:
/// always-on diagnostics must not move user response times, so the warm
/// per-render p50 with the recorder on is held within a few percent of the
/// off arm. Also smoke-checks that the slowest captured trace exports as a
/// valid Chrome trace_event document.
fn e20_flight_recorder_overhead() {
    const RENDERS: usize = 40;

    // One arm of the experiment: render the Fig. 1 dashboard cold, then
    // `RENDERS` warm repeats (all cache hits — the latency floor where
    // recorder overhead is proportionally largest), timing each repeat.
    let run_arm = |capture: bool| -> (Duration, QueryProcessor) {
        tabviz::obs::trace::set_capture(capture);
        let db = faa_db(60_000);
        let (qp, _sim) = processor_over(db, lan_config(), 4);
        let dash = fig1_dashboard("warehouse", "flights");
        let batch = dash.batch(&DashboardState::default(), true);
        execute_batch(&qp, &batch, &BatchOptions::default()).expect("cold render");
        let mut walls: Vec<Duration> = (0..RENDERS)
            .map(|_| {
                time_it(|| execute_batch(&qp, &batch, &BatchOptions::default()).expect("warm")).1
            })
            .collect();
        walls.sort();
        (walls[walls.len() / 2], qp)
    };

    let (p50_off, qp_off) = run_arm(false);
    let (p50_on, qp_on) = run_arm(true);
    tabviz::obs::trace::set_capture(true); // leave the global default intact

    let ratio = p50_on.as_secs_f64() / p50_off.as_secs_f64().max(1e-9);
    print_table(
        &format!("E20 — flight recorder overhead, warm p50 over {RENDERS} dashboard renders"),
        &["arm", "warm p50 ms", "traces", "recorder KiB", "evictions"],
        &[
            vec![
                "capture off".into(),
                ms(p50_off),
                qp_off.obs.recorder.len().to_string(),
                (qp_off.obs.recorder.bytes() / 1024).to_string(),
                qp_off.obs.recorder.evictions().to_string(),
            ],
            vec![
                "capture on".into(),
                ms(p50_on),
                qp_on.obs.recorder.len().to_string(),
                (qp_on.obs.recorder.bytes() / 1024).to_string(),
                qp_on.obs.recorder.evictions().to_string(),
            ],
        ],
    );

    // The recorder actually captured the on-arm; the off-arm stayed empty.
    assert!(!qp_on.obs.recorder.is_empty(), "on arm must record traces");
    assert_eq!(qp_off.obs.recorder.len(), 0, "off arm must record nothing");

    // Export the slowest captured query and validate it against the Chrome
    // trace_event schema (the same check CI runs on the printed document).
    let slowest = &qp_on.obs.recorder.slowest(1)[0];
    let doc = tabviz::obs::to_chrome_trace(slowest);
    let valid = tabviz::obs::validate_chrome_trace(&doc).is_ok();
    println!(
        "\nslowest captured query: {} ({} events, {} lanes)",
        ms(slowest.total),
        slowest.events.len(),
        slowest.lanes().len()
    );
    println!("\ndiagnostics excerpt:");
    for line in qp_on.obs.recorder.slowest(3).iter().map(|t| {
        format!(
            "  {} {} [{}]",
            ms(t.total),
            t.outcome,
            t.reasons().join(",")
        )
    }) {
        println!("{line}");
    }

    // Machine-checkable summary lines (the CI smoke test parses these).
    println!("e20_p50_on_ms {}", ms(p50_on));
    println!("e20_p50_off_ms {}", ms(p50_off));
    println!("e20_p50_overhead_ratio {ratio:.3}");
    println!("e20_recorder_traces {}", qp_on.obs.recorder.len());
    println!("e20_recorder_bytes {}", qp_on.obs.recorder.bytes());
    println!("e20_recorder_evictions {}", qp_on.obs.recorder.evictions());
    println!("e20_chrome_trace_valid {}", u32::from(valid));
}

// ---------------------------------------------------------------- E21 ----

/// Sharded multi-node Data Server under a seeded Zipf storm. A 4-node
/// cluster (consistent-hash routing, replicated peer cache, session
/// affinity) serves an open-loop traffic schedule twice: once healthy, once
/// with the busiest node killed mid-storm and revived later. Reports
/// per-class latency percentiles, shed rate, per-node balance and failover
/// recovery, and emits `BENCH_cluster.json` so the perf trajectory is
/// tracked across PRs. The acceptance bar: the kill run completes every
/// arrival and keeps interactive p95 within 3× of the healthy run.
fn e21_cluster_storm() {
    use std::sync::mpsc;
    use std::time::Instant;
    use tabviz::cluster::{Cluster, ClusterConfig, ClusterSession, RouteKind};
    use tabviz::workloads::{generate_storm, schedule_digest, storm_stats, StormConfig, StormStep};

    const NODES: usize = 4;
    const DASHBOARDS: usize = 40;
    const USERS: u32 = 4;
    const WORKERS: usize = 8;
    const SPEED: u64 = 4; // virtual ms per real ms
    const SEED: u64 = 42;

    let db = faa_db(8_000);
    let storm = StormConfig {
        sessions: 240,
        dashboards: DASHBOARDS,
        zipf_s: 1.1,
        horizon_ms: 4_000,
        diurnal_amplitude: 0.5,
        steps_per_session: 3,
        mean_think_ms: 250.0,
        seed: SEED,
    };
    let schedule = generate_storm(&storm);
    let digest = schedule_digest(&schedule);
    let stats = storm_stats(&storm, &schedule);
    let kill_at_ms = storm.at_fraction(2, 5);
    let revive_at_ms = storm.at_fraction(3, 4);

    let build_cluster = || -> Arc<Cluster> {
        let db = Arc::clone(&db);
        Cluster::build(
            ClusterConfig {
                nodes: NODES,
                replication: 2,
                vnodes: 64,
                seed: SEED,
                peer_op_latency: Duration::from_micros(200),
            },
            move |name| {
                let sim = SimDb::new("warehouse", Arc::clone(&db), lan_config());
                let qp = QueryProcessor::default();
                qp.registry.register(Arc::new(sim), 4);
                let server = Arc::new(DataServer::named(qp, name));
                for d in 0..DASHBOARDS {
                    server.publish(PublishedSource::new(
                        format!("dash-{d}"),
                        "warehouse",
                        LogicalPlan::scan("flights"),
                    ));
                }
                Ok(server)
            },
        )
        .expect("cluster build")
    };

    let count = || AggCall::new(AggFunc::Count, None, "n");
    let query_for = |kind: &StormStep| -> (ClientQuery, &'static str) {
        let dims = ["carrier", "dep_hour", "origin_state", "weekday"];
        match kind {
            StormStep::Load => (
                ClientQuery {
                    group_by: vec!["carrier".into()],
                    aggs: vec![count()],
                    ..Default::default()
                },
                "load",
            ),
            StormStep::Drill { dimension } => (
                ClientQuery {
                    group_by: vec![dims[*dimension as usize % dims.len()].into()],
                    aggs: vec![count()],
                    ..Default::default()
                },
                "drill",
            ),
            StormStep::Filter { selector } => (
                ClientQuery {
                    filters: vec![bin(
                        BinOp::Le,
                        col("distance"),
                        lit(200 + (*selector as i64 % 2200)),
                    )],
                    group_by: vec!["carrier".into()],
                    aggs: vec![count()],
                    ..Default::default()
                },
                "filter",
            ),
            StormStep::TopN { n } => (
                ClientQuery {
                    group_by: vec!["market".into()],
                    aggs: vec![count()],
                    order: vec![SortKey {
                        column: "n".into(),
                        asc: false,
                    }],
                    topn: Some(*n as usize),
                    ..Default::default()
                },
                "topn",
            ),
        }
    };

    struct Done {
        finished: Instant,
        class: &'static str,
        node: String,
        failover: bool,
        ok: bool,
        wall: Duration,
    }

    // Replay the schedule open-loop against one cluster; optionally kill
    // the victim node mid-storm and revive it later.
    let run_storm = |cluster: &Arc<Cluster>,
                     victim: Option<&str>|
     -> (Vec<Done>, Option<Instant>, Option<Instant>) {
        let sessions: parking_lot::Mutex<std::collections::HashMap<u32, Arc<ClusterSession>>> =
            parking_lot::Mutex::new(std::collections::HashMap::new());
        let done: parking_lot::Mutex<Vec<Done>> = parking_lot::Mutex::new(Vec::new());
        let (tx, rx) = mpsc::channel::<usize>();
        let rx = parking_lot::Mutex::new(rx);
        let mut killed_at: Option<Instant> = None;
        let mut revived_at: Option<Instant> = None;
        std::thread::scope(|s| {
            for _ in 0..WORKERS {
                let rx = &rx;
                let sessions = &sessions;
                let done = &done;
                let schedule = &schedule;
                s.spawn(move || loop {
                    let idx = { rx.lock().recv() };
                    let Ok(idx) = idx else { break };
                    let a = &schedule[idx];
                    let session = {
                        let mut map = sessions.lock();
                        if let Some(sess) = map.get(&a.session) {
                            Arc::clone(sess)
                        } else {
                            let user = format!("viewer-{}", a.session % USERS);
                            let sess = Arc::new(
                                cluster
                                    .open_session(&format!("dash-{}", a.dashboard), user)
                                    .expect("open session"),
                            );
                            map.insert(a.session, Arc::clone(&sess));
                            sess
                        }
                    };
                    let (query, class) = query_for(&a.kind);
                    let t0 = Instant::now();
                    let result = session.query(&query);
                    let wall = t0.elapsed();
                    let (node, failover, ok) = match &result {
                        Ok(r) => (r.node.clone(), r.route != RouteKind::Primary, true),
                        Err(_) => (String::new(), false, false),
                    };
                    done.lock().push(Done {
                        finished: Instant::now(),
                        class,
                        node,
                        failover,
                        ok,
                        wall,
                    });
                });
            }
            // Open-loop dispatcher: fire each arrival at its virtual time.
            let t_start = Instant::now();
            for (idx, a) in schedule.iter().enumerate() {
                let target = t_start + Duration::from_millis(a.at_ms / SPEED);
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                if let Some(victim) = victim {
                    if killed_at.is_none() && a.at_ms >= kill_at_ms {
                        cluster.kill(victim);
                        killed_at = Some(Instant::now());
                    }
                    if killed_at.is_some() && revived_at.is_none() && a.at_ms >= revive_at_ms {
                        cluster.revive(victim);
                        revived_at = Some(Instant::now());
                    }
                }
                tx.send(idx).expect("dispatch");
            }
            drop(tx);
        });
        (done.into_inner(), killed_at, revived_at)
    };

    let pct = |durs: &mut Vec<Duration>, q: f64| -> Duration {
        if durs.is_empty() {
            return Duration::ZERO;
        }
        durs.sort();
        let rank = ((q * durs.len() as f64).ceil() as usize).clamp(1, durs.len());
        durs[rank - 1]
    };

    // Healthy run.
    let healthy = build_cluster();
    let (healthy_done, _, _) = run_storm(&healthy, None);
    let mut healthy_lat: Vec<Duration> = healthy_done
        .iter()
        .filter(|d| d.ok)
        .map(|d| d.wall)
        .collect();
    let healthy_p95 = pct(&mut healthy_lat, 0.95);

    // Kill run: take down the node carrying the most traffic in the
    // healthy run, mid-storm, and bring it back before the tail.
    let mut by_node: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
    for d in &healthy_done {
        *by_node.entry(d.node.as_str()).or_insert(0) += 1;
    }
    let victim = by_node
        .iter()
        .max_by_key(|(name, n)| (**n, std::cmp::Reverse(**name)))
        .map(|(name, _)| name.to_string())
        .expect("healthy run routed traffic");
    let kill_cluster = build_cluster();
    let (kill_done, killed_at, revived_at) = run_storm(&kill_cluster, Some(&victim));

    // Per-class percentiles from the kill run (the tracked numbers — they
    // include the outage window).
    let classes = ["load", "drill", "filter", "topn"];
    let mut class_rows: Vec<Vec<String>> = Vec::new();
    let mut class_json = String::new();
    for class in classes {
        let mut lat: Vec<Duration> = kill_done
            .iter()
            .filter(|d| d.ok && d.class == class)
            .map(|d| d.wall)
            .collect();
        let n = lat.len();
        let (p50, p95, p99) = (pct(&mut lat, 0.5), pct(&mut lat, 0.95), pct(&mut lat, 0.99));
        class_rows.push(vec![class.into(), n.to_string(), ms(p50), ms(p95), ms(p99)]);
        class_json.push_str(&format!(
            "    \"{class}\": {{\"count\": {n}, \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}}},\n",
            ms(p50),
            ms(p95),
            ms(p99)
        ));
    }

    let completed = kill_done.iter().filter(|d| d.ok).count();
    let errors = kill_done.len() - completed;
    let shed_rate = errors as f64 / kill_done.len().max(1) as f64;
    let mut kill_lat: Vec<Duration> = kill_done.iter().filter(|d| d.ok).map(|d| d.wall).collect();
    let kill_p95 = pct(&mut kill_lat, 0.95);
    let p95_ratio = kill_p95.as_secs_f64() / healthy_p95.as_secs_f64().max(1e-9);
    let failovers = kill_done.iter().filter(|d| d.failover).count();

    // Failover reaction: first successful non-primary serve after the kill.
    let failover_first_ms = killed_at
        .and_then(|k| {
            kill_done
                .iter()
                .filter(|d| d.ok && d.failover && d.finished > k)
                .map(|d| d.finished - k)
                .min()
        })
        .map(|d| d.as_secs_f64() * 1e3);
    // Recovery: the revived victim serving queries again.
    let recovery_ms = revived_at
        .and_then(|r| {
            kill_done
                .iter()
                .filter(|d| d.ok && d.node == victim && d.finished > r)
                .map(|d| d.finished - r)
                .min()
        })
        .map(|d| d.as_secs_f64() * 1e3);

    // Per-node balance over the healthy run (routed serves per node).
    let mut balance: Vec<(String, u64)> = healthy
        .nodes()
        .iter()
        .map(|n| (n.name.clone(), *by_node.get(n.name.as_str()).unwrap_or(&0)))
        .collect();
    balance.sort();
    let max_routed = balance.iter().map(|(_, n)| *n).max().unwrap_or(0);
    let mean_routed =
        balance.iter().map(|(_, n)| *n).sum::<u64>() as f64 / balance.len().max(1) as f64;
    let balance_ratio = max_routed as f64 / mean_routed.max(1e-9);

    let peer = kill_cluster.peer_stats();
    let peer_hit_rate =
        (peer.primary_hits + peer.replica_hits) as f64 / (peer.gets as f64).max(1.0);

    print_table(
        &format!(
            "E21 — {NODES}-node cluster, {} arrivals ({} sessions, top-1% share {:.2}), kill {victim} at {kill_at_ms}ms",
            schedule.len(),
            storm.sessions,
            stats.top1pct_share,
        ),
        &["class", "n", "p50 ms", "p95 ms", "p99 ms"],
        &class_rows,
    );
    print_table(
        "E21 — healthy-run balance (routed serves per node)",
        &["node", "routed"],
        &balance
            .iter()
            .map(|(n, c)| vec![n.clone(), c.to_string()])
            .collect::<Vec<_>>(),
    );

    let json = format!(
        "{{\n  \"experiment\": \"e21_cluster_storm\",\n  \"nodes\": {NODES},\n  \"replication\": 2,\n  \"seed\": {SEED},\n  \"schedule_digest\": \"{digest:016x}\",\n  \"arrivals\": {},\n  \"sessions\": {},\n  \"completed\": {completed},\n  \"errors\": {errors},\n  \"shed_rate\": {shed_rate:.4},\n  \"classes\": {{\n{}    \"all\": {{\"count\": {completed}, \"p95_ms\": {}}}\n  }},\n  \"healthy_p95_ms\": {},\n  \"kill_p95_ms\": {},\n  \"p95_ratio\": {p95_ratio:.2},\n  \"victim\": \"{victim}\",\n  \"kill_at_ms\": {kill_at_ms},\n  \"revive_at_ms\": {revive_at_ms},\n  \"failovers\": {failovers},\n  \"failover_first_ms\": {},\n  \"recovery_ms\": {},\n  \"balance_ratio\": {balance_ratio:.2},\n  \"per_node_routed\": {{{}}},\n  \"peer\": {{\"gets\": {}, \"primary_hits\": {}, \"replica_hits\": {}, \"misses\": {}, \"hit_rate\": {peer_hit_rate:.3}}}\n}}\n",
        schedule.len(),
        storm.sessions,
        class_json,
        ms(kill_p95),
        ms(healthy_p95),
        ms(kill_p95),
        failover_first_ms.map_or("null".into(), |v| format!("{v:.2}")),
        recovery_ms.map_or("null".into(), |v| format!("{v:.2}")),
        balance
            .iter()
            .map(|(n, c)| format!("\"{n}\": {c}"))
            .collect::<Vec<_>>()
            .join(", "),
        peer.gets,
        peer.primary_hits,
        peer.replica_hits,
        peer.misses,
    );
    std::fs::write("BENCH_cluster.json", &json).expect("write BENCH_cluster.json");

    // Machine-checkable summary lines (the CI smoke test parses these).
    println!("e21_arrivals {}", schedule.len());
    println!("e21_completed {completed}");
    println!("e21_errors {errors}");
    println!("e21_shed_rate {shed_rate:.4}");
    println!("e21_healthy_p95_ms {}", ms(healthy_p95));
    println!("e21_kill_p95_ms {}", ms(kill_p95));
    println!("e21_p95_ratio {p95_ratio:.2}");
    println!("e21_failovers {failovers}");
    println!(
        "e21_failover_first_ms {}",
        failover_first_ms.map_or("-1".into(), |v| format!("{v:.2}"))
    );
    println!(
        "e21_recovery_ms {}",
        recovery_ms.map_or("-1".into(), |v| format!("{v:.2}"))
    );
    println!("e21_balance_ratio {balance_ratio:.2}");
    println!("e21_peer_hit_rate {peer_hit_rate:.3}");
    println!("e21_schedule_digest {digest:016x}");
    println!("e21_json_emitted 1");
}

// ---------------------------------------------------------------- E22 ----

/// Brown-out SLO drill: the e21 storm again, but instead of killing the
/// busiest node we make its backend 150ms-slow mid-storm (it keeps
/// answering — the failure mode hard kills don't cover). The run asserts
/// the full SLO plane end to end: the EWMA health scorer demotes the sick
/// node from latency alone, health-aware routing steers sessions around it
/// (keeping cluster p95 near the healthy baseline), the burn-rate tracker
/// fires exactly the latency objective, and once the fault clears sparse
/// probes restore the node. Emits `e22_*` machine lines for CI bands.
fn e22_slo_brownout() {
    use std::sync::mpsc;
    use std::time::Instant;
    use tabviz::cluster::{Cluster, ClusterConfig, ClusterSession, RouteKind};
    use tabviz::obs::{Objective, SloConfig};
    use tabviz::workloads::{generate_storm, schedule_digest, StormConfig, StormStep};

    const NODES: usize = 4;
    const DASHBOARDS: usize = 40;
    const USERS: u32 = 4;
    const WORKERS: usize = 16;
    const SPEED: u64 = 4; // virtual ms per real ms
    const SEED: u64 = 42;
    const BROWNOUT_DELAY: Duration = Duration::from_millis(150);

    let db = faa_db(8_000);
    let storm = StormConfig {
        sessions: 240,
        dashboards: DASHBOARDS,
        zipf_s: 1.1,
        horizon_ms: 4_000,
        diurnal_amplitude: 0.5,
        steps_per_session: 3,
        mean_think_ms: 250.0,
        seed: SEED,
    };
    let schedule = generate_storm(&storm);
    let digest = schedule_digest(&schedule);
    let fault_at_ms = storm.at_fraction(3, 10);
    let clear_at_ms = storm.at_fraction(11, 20);

    // The factory stashes each node's SimDb so the dispatcher can flip the
    // victim's fault plan at runtime.
    type DbMap = parking_lot::Mutex<std::collections::HashMap<String, Arc<SimDb>>>;
    let build_cluster = |dbs: &Arc<DbMap>| -> Arc<Cluster> {
        let db = Arc::clone(&db);
        let dbs = Arc::clone(dbs);
        Cluster::build(
            ClusterConfig {
                nodes: NODES,
                replication: 2,
                vnodes: 64,
                seed: SEED,
                peer_op_latency: Duration::from_micros(200),
            },
            move |name| {
                let sim = Arc::new(SimDb::new("warehouse", Arc::clone(&db), lan_config()));
                dbs.lock().insert(name.to_string(), Arc::clone(&sim));
                let qp = QueryProcessor::default();
                qp.registry.register(Arc::clone(&sim) as Arc<_>, 4);
                let server = Arc::new(DataServer::named(qp, name));
                for d in 0..DASHBOARDS {
                    server.publish(PublishedSource::new(
                        format!("dash-{d}"),
                        "warehouse",
                        LogicalPlan::scan("flights"),
                    ));
                }
                Ok(server)
            },
        )
        .expect("cluster build")
    };

    let count = || AggCall::new(AggFunc::Count, None, "n");
    let query_for = |kind: &StormStep| -> (ClientQuery, &'static str) {
        let dims = ["carrier", "dep_hour", "origin_state", "weekday"];
        match kind {
            StormStep::Load => (
                ClientQuery {
                    group_by: vec!["carrier".into()],
                    aggs: vec![count()],
                    ..Default::default()
                },
                "load",
            ),
            StormStep::Drill { dimension } => (
                ClientQuery {
                    group_by: vec![dims[*dimension as usize % dims.len()].into()],
                    aggs: vec![count()],
                    ..Default::default()
                },
                "drill",
            ),
            StormStep::Filter { selector } => (
                ClientQuery {
                    filters: vec![bin(
                        BinOp::Le,
                        col("distance"),
                        lit(200 + (*selector as i64 % 2200)),
                    )],
                    group_by: vec!["carrier".into()],
                    aggs: vec![count()],
                    ..Default::default()
                },
                "filter",
            ),
            StormStep::TopN { n } => (
                ClientQuery {
                    group_by: vec!["market".into()],
                    aggs: vec![count()],
                    order: vec![SortKey {
                        column: "n".into(),
                        asc: false,
                    }],
                    topn: Some(*n as usize),
                    ..Default::default()
                },
                "topn",
            ),
        }
    };

    struct Done {
        node: String,
        failover: bool,
        ok: bool,
        wall: Duration,
    }

    struct BrownoutMarks {
        faulted_at: Option<Instant>,
        cleared_at: Option<Instant>,
        demoted_at: Option<Instant>,
        restored_at: Option<Instant>,
        flaps: u32,
    }

    // Replay the schedule open-loop; optionally brown out the victim's
    // backend mid-storm, watching its routing state from the dispatcher.
    let run_storm = |cluster: &Arc<Cluster>,
                     dbs: &Arc<DbMap>,
                     victim: Option<&str>|
     -> (Vec<Done>, BrownoutMarks) {
        let sessions: parking_lot::Mutex<std::collections::HashMap<u32, Arc<ClusterSession>>> =
            parking_lot::Mutex::new(std::collections::HashMap::new());
        let done: parking_lot::Mutex<Vec<Done>> = parking_lot::Mutex::new(Vec::new());
        let (tx, rx) = mpsc::channel::<usize>();
        let rx = parking_lot::Mutex::new(rx);
        let mut marks = BrownoutMarks {
            faulted_at: None,
            cleared_at: None,
            demoted_at: None,
            restored_at: None,
            flaps: 0,
        };
        std::thread::scope(|s| {
            for _ in 0..WORKERS {
                let rx = &rx;
                let sessions = &sessions;
                let done = &done;
                let schedule = &schedule;
                s.spawn(move || loop {
                    let idx = { rx.lock().recv() };
                    let Ok(idx) = idx else { break };
                    let a = &schedule[idx];
                    let session = {
                        let mut map = sessions.lock();
                        if let Some(sess) = map.get(&a.session) {
                            Arc::clone(sess)
                        } else {
                            let user = format!("viewer-{}", a.session % USERS);
                            let sess = Arc::new(
                                cluster
                                    .open_session(&format!("dash-{}", a.dashboard), user)
                                    .expect("open session"),
                            );
                            map.insert(a.session, Arc::clone(&sess));
                            sess
                        }
                    };
                    let (query, _class) = query_for(&a.kind);
                    let t0 = Instant::now();
                    let result = session.query(&query);
                    let wall = t0.elapsed();
                    let (node, failover, ok) = match &result {
                        Ok(r) => (r.node.clone(), r.route != RouteKind::Primary, true),
                        Err(_) => (String::new(), false, false),
                    };
                    done.lock().push(Done {
                        node,
                        failover,
                        ok,
                        wall,
                    });
                });
            }
            // Open-loop dispatcher: fire arrivals at their virtual times,
            // flipping the victim's fault plan and watching its health
            // state as a sideline.
            let t_start = Instant::now();
            let mut was_demoted = false;
            for (idx, a) in schedule.iter().enumerate() {
                let target = t_start + Duration::from_millis(a.at_ms / SPEED);
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                if let Some(victim) = victim {
                    if marks.faulted_at.is_none() && a.at_ms >= fault_at_ms {
                        dbs.lock()[victim].set_fault_plan(Some(FaultPlan {
                            slow_query: 1.0,
                            slow_query_delay: BROWNOUT_DELAY,
                            ..Default::default()
                        }));
                        marks.faulted_at = Some(Instant::now());
                    }
                    if marks.faulted_at.is_some()
                        && marks.cleared_at.is_none()
                        && a.at_ms >= clear_at_ms
                    {
                        dbs.lock()[victim].set_fault_plan(None);
                        marks.cleared_at = Some(Instant::now());
                    }
                    let demoted = cluster
                        .node(victim)
                        .map(|n| n.is_demoted())
                        .unwrap_or(false);
                    if demoted != was_demoted {
                        marks.flaps += 1;
                        was_demoted = demoted;
                        if demoted && marks.demoted_at.is_none() {
                            marks.demoted_at = Some(Instant::now());
                        }
                        if !demoted && marks.cleared_at.is_some() && marks.restored_at.is_none() {
                            marks.restored_at = Some(Instant::now());
                        }
                    }
                }
                tx.send(idx).expect("dispatch");
            }
            drop(tx);
        });
        (done.into_inner(), marks)
    };

    let pct = |durs: &mut Vec<Duration>, q: f64| -> Duration {
        if durs.is_empty() {
            return Duration::ZERO;
        }
        durs.sort();
        let rank = ((q * durs.len() as f64).ceil() as usize).clamp(1, durs.len());
        durs[rank - 1]
    };

    // Calibration run: healthy baseline p95 and the victim (busiest node).
    let healthy_dbs: Arc<DbMap> = Arc::new(parking_lot::Mutex::new(Default::default()));
    let healthy = build_cluster(&healthy_dbs);
    let (healthy_done, _) = run_storm(&healthy, &healthy_dbs, None);
    let mut healthy_lat: Vec<Duration> = healthy_done
        .iter()
        .filter(|d| d.ok)
        .map(|d| d.wall)
        .collect();
    let healthy_p95 = pct(&mut healthy_lat, 0.95);
    let mut by_node: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
    for d in &healthy_done {
        *by_node.entry(d.node.as_str()).or_insert(0) += 1;
    }
    let victim = by_node
        .iter()
        .max_by_key(|(name, n)| (**n, std::cmp::Reverse(**name)))
        .map(|(name, _)| name.to_string())
        .expect("healthy run routed traffic");

    // Brown-out run: fresh cluster with SLO objectives scaled to this
    // machine's healthy baseline. The latency bound sits at 1.5× healthy
    // p95 so the natural tail burns ~1× budget (under the fire threshold)
    // and the 150ms brown-out burns far past it.
    let bound_micros = ((healthy_p95.as_micros() as u64 * 3) / 2).clamp(8_000, 60_000);
    let dbs: Arc<DbMap> = Arc::new(parking_lot::Mutex::new(Default::default()));
    let cluster = build_cluster(&dbs);
    cluster.configure_slo(
        SloConfig {
            bucket_ms: 50,
            fast_window_ms: 200,
            slow_window_ms: 300,
            // The natural tail above the 1.5x-p95 bound burns ~0.5x budget;
            // the brown-out burns 1.5-3x. Firing at 1.25 keeps a wide margin
            // on both sides even when a loaded host inflates the calibration.
            fire_burn: 1.25,
            clear_burn: 0.9,
            min_events: 8,
        },
        vec![
            Objective::latency_p95("interactive_p95", bound_micros),
            Objective::availability("availability", 0.999),
            Objective::degraded_fraction("degraded", 0.05),
        ],
    );
    let (done, marks) = run_storm(&cluster, &dbs, Some(&victim));

    let completed = done.iter().filter(|d| d.ok).count();
    let errors = done.len() - completed;
    let mut lat: Vec<Duration> = done.iter().filter(|d| d.ok).map(|d| d.wall).collect();
    let brownout_p95 = pct(&mut lat, 0.95);
    let p95_ratio = brownout_p95.as_secs_f64() / healthy_p95.as_secs_f64().max(1e-9);
    let reroutes = done
        .iter()
        .filter(|d| d.ok && d.failover && d.node != victim)
        .count();

    let demote_ms = match (marks.faulted_at, marks.demoted_at) {
        (Some(f), Some(d)) => Some((d - f).as_secs_f64() * 1e3),
        _ => None,
    };
    let restore_ms = match (marks.cleared_at, marks.restored_at) {
        (Some(c), Some(r)) => Some((r - c).as_secs_f64() * 1e3),
        _ => None,
    };

    // SLO verdicts: lifetime fire counts per objective after the storm.
    let fired: std::collections::HashMap<&str, u64> = cluster
        .slo_status()
        .into_iter()
        .map(|s| (s.name, s.times_fired))
        .collect();
    let latency_alerts = *fired.get("interactive_p95").unwrap_or(&0);
    let availability_alerts = *fired.get("availability").unwrap_or(&0);
    let degraded_alerts = *fired.get("degraded").unwrap_or(&0);

    // Exercise the federation + diagnostics surface the operator would use.
    let metrics = cluster.metrics_text();
    let node_series = metrics.lines().filter(|l| l.contains("node=\"")).count();
    let diag = cluster.diagnostics_report(3);

    let health_rows: Vec<Vec<String>> = cluster
        .health_scores()
        .into_iter()
        .map(|(name, score, state)| {
            vec![
                name.clone(),
                format!("{score:.1}"),
                format!("{state:?}"),
                if name == victim {
                    "victim".into()
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    print_table(
        &format!(
            "E22 — brown-out {victim} at {fault_at_ms}ms ({}ms backend delay), clear at {clear_at_ms}ms",
            BROWNOUT_DELAY.as_millis()
        ),
        &["node", "health", "state", ""],
        &health_rows,
    );
    print_table(
        "E22 — SLO objectives after the storm",
        &["objective", "fired", "firing"],
        &cluster
            .slo_status()
            .into_iter()
            .map(|s| {
                vec![
                    s.name.to_string(),
                    s.times_fired.to_string(),
                    s.firing.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("\n{diag}");

    // Machine-readable report for the trend sentinel (same contract as
    // BENCH_cluster.json: identity keys exact, *_ms banded, errors bounded).
    let json = format!(
        "{{\n  \"experiment\": \"e22_slo_brownout\",\n  \"nodes\": {NODES},\n  \"seed\": {SEED},\n  \"schedule_digest\": \"{digest:016x}\",\n  \"arrivals\": {},\n  \"completed\": {completed},\n  \"errors\": {errors},\n  \"victim\": \"{victim}\",\n  \"healthy_p95_ms\": {},\n  \"brownout_p95_ms\": {},\n  \"p95_ratio\": {p95_ratio:.2},\n  \"slo_bound_ms\": {:.2},\n  \"demoted\": {},\n  \"demote_ms\": {},\n  \"restored\": {},\n  \"restore_ms\": {},\n  \"flaps\": {},\n  \"reroutes\": {reroutes},\n  \"latency_alerts\": {latency_alerts},\n  \"availability_alerts\": {availability_alerts},\n  \"degraded_alerts\": {degraded_alerts},\n  \"metrics_node_series\": {node_series},\n  \"diag_bytes\": {}\n}}\n",
        schedule.len(),
        ms(healthy_p95),
        ms(brownout_p95),
        bound_micros as f64 / 1e3,
        u32::from(marks.demoted_at.is_some()),
        demote_ms.map_or("null".into(), |v| format!("{v:.2}")),
        u32::from(marks.restored_at.is_some()),
        restore_ms.map_or("null".into(), |v| format!("{v:.2}")),
        marks.flaps,
        diag.len(),
    );
    std::fs::write("BENCH_slo.json", &json).expect("write BENCH_slo.json");

    println!("e22_arrivals {}", schedule.len());
    println!("e22_completed {completed}");
    println!("e22_errors {errors}");
    println!("e22_victim {victim}");
    println!("e22_healthy_p95_ms {}", ms(healthy_p95));
    println!("e22_brownout_p95_ms {}", ms(brownout_p95));
    println!("e22_p95_ratio {p95_ratio:.2}");
    println!("e22_slo_bound_ms {:.2}", bound_micros as f64 / 1e3);
    println!("e22_demoted {}", u32::from(marks.demoted_at.is_some()));
    println!(
        "e22_demote_ms {}",
        demote_ms.map_or("-1".into(), |v| format!("{v:.2}"))
    );
    println!("e22_restored {}", u32::from(marks.restored_at.is_some()));
    println!(
        "e22_restore_ms {}",
        restore_ms.map_or("-1".into(), |v| format!("{v:.2}"))
    );
    println!("e22_flaps {}", marks.flaps);
    println!("e22_reroutes {reroutes}");
    println!("e22_latency_alerts {latency_alerts}");
    println!("e22_availability_alerts {availability_alerts}");
    println!("e22_degraded_alerts {degraded_alerts}");
    println!("e22_metrics_node_series {node_series}");
    println!("e22_diag_bytes {}", diag.len());
    println!("e22_schedule_digest {digest:016x}");
}

// ---------------------------------------------------------------- E23 ----

/// Type-specialized vectorized kernels (DESIGN.md §14): packed-key group
/// tables and join indexes with typed accumulator loops, vs the retained
/// `Value`-row fallback, on the two keyed hot paths — hash aggregation and
/// hash join build+probe. Also checks kernel-selection attribution: on
/// these schemas every keyed operator must pick the fast path when kernels
/// are enabled and the fallback when disabled.
fn e23_vector_kernels() {
    use tabviz::obs::MetricValue;

    let rows = 1_000_000;
    // Unsorted so the planner cannot sidestep HashAgg via Stream/RunAgg.
    let tde = Tde::new(faa_db_unsorted(rows));

    let counter = |name: &str| -> u64 {
        match tabviz::obs::global().snapshot().get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    };

    let mut fallback = ExecOptions::serial();
    fallback.physical.enable_vector_kernels = false;
    let fast = ExecOptions::serial();

    // Best-of-5 wall clock: the arms allocate hash tables in the tens of MB,
    // so a single run is allocator-noise sensitive.
    let best = |q: &str, opts: &ExecOptions| -> (Chunk, Duration) {
        let (mut out, mut t) = time_it(|| tde.query_with(q, opts).expect("query"));
        for _ in 0..4 {
            let (o, d) = time_it(|| tde.query_with(q, opts).expect("query"));
            if d < t {
                t = d;
                out = o;
            }
        }
        (out, t)
    };

    let sorted_rows = |c: &Chunk| -> Vec<Vec<Value>> {
        let mut rows = c.to_rows();
        rows.sort();
        rows
    };

    // Hash aggregation: two-column string+int key, the full typed-state
    // spread (COUNT / SUM / MIN / MAX / AVG).
    let q_agg = "(aggregate ((carrier) (weekday))
                   ((count as n) (sum distance as dist)
                    (min arr_delay as lo) (max arr_delay as hi)
                    (avg dep_delay as d))
                   (scan flights))";
    let (out_slow, t_agg_fallback) = best(q_agg, &fallback);
    let (out_fast, t_agg_fast) = best(q_agg, &fast);
    assert_eq!(
        sorted_rows(&out_slow),
        sorted_rows(&out_fast),
        "agg arms disagree"
    );
    let agg_speedup = t_agg_fallback.as_secs_f64() / t_agg_fast.as_secs_f64().max(1e-9);

    // Hash join build+probe: fact-dim join keyed on a string column,
    // grouped on the dimension side so culling cannot remove it. The dim is
    // filtered (the dashboard-filter case) so the probe — not the joined
    // output's materialization, identical in both arms — dominates.
    let q_join = "(aggregate ((name)) ((count as n) (sum distance as dist))
                    (join inner ((carrier code))
                      (scan flights)
                      (select (in code \"HA\") (scan carriers))))";
    let (join_slow, t_join_fallback) = best(q_join, &fallback);
    let (join_fast, t_join_fast) = best(q_join, &fast);
    assert_eq!(
        sorted_rows(&join_slow),
        sorted_rows(&join_fast),
        "join arms disagree"
    );
    let join_speedup = t_join_fallback.as_secs_f64() / t_join_fast.as_secs_f64().max(1e-9);

    // Kernel-selection attribution: count one fast-path run of each query
    // and one forced-fallback run of each.
    let before_fast = counter("tv_tde_kernel_fastpath_total");
    let before_fall = counter("tv_tde_kernel_fallback_total");
    tde.query_with(q_agg, &fast).expect("agg fast");
    tde.query_with(q_join, &fast).expect("join fast");
    let mid_fast = counter("tv_tde_kernel_fastpath_total");
    let mid_fall = counter("tv_tde_kernel_fallback_total");
    tde.query_with(q_agg, &fallback).expect("agg fallback");
    tde.query_with(q_join, &fallback).expect("join fallback");
    let after_fast = counter("tv_tde_kernel_fastpath_total");
    let after_fall = counter("tv_tde_kernel_fallback_total");

    let fastpath_selected = mid_fast - before_fast;
    let fastpath_leaked = mid_fall - before_fall;
    let fallback_selected = after_fall - mid_fall;
    let fallback_leaked = after_fast - mid_fast;
    let fastpath_rate =
        fastpath_selected as f64 / (fastpath_selected + fastpath_leaked).max(1) as f64;

    print_table(
        &format!("E23 — vectorized kernels vs Value-row fallback ({rows} rows, unsorted)"),
        &["hot path", "fallback ms", "kernels ms", "speedup"],
        &[
            vec![
                "hash agg (2-col key, 5 aggs)".into(),
                ms(t_agg_fallback),
                ms(t_agg_fast),
                format!("{agg_speedup:.2}x"),
            ],
            vec![
                "hash join build+probe".into(),
                ms(t_join_fallback),
                ms(t_join_fast),
                format!("{join_speedup:.2}x"),
            ],
        ],
    );

    // Machine-checkable summary lines (the CI smoke test parses these).
    println!("e23_agg_fallback_ms {}", ms(t_agg_fallback));
    println!("e23_agg_kernels_ms {}", ms(t_agg_fast));
    println!("e23_agg_speedup {agg_speedup:.2}");
    println!("e23_join_fallback_ms {}", ms(t_join_fallback));
    println!("e23_join_kernels_ms {}", ms(t_join_fast));
    println!("e23_join_speedup {join_speedup:.2}");
    println!("e23_fastpath_selected {fastpath_selected}");
    println!("e23_fallback_selected {fallback_selected}");
    println!("e23_fallback_leaked {fallback_leaked}");
    println!("e23_fastpath_rate {fastpath_rate:.2}");
}

// ---------------------------------------------------------------- E24 ----

/// Cache-hierarchy drill: the cross-dashboard storm again, this time read
/// through the full L1 → L2 tier. Twelve dashboards share six tables, so
/// distinct dashboards produce identical canonical queries — the shared
/// ring-routed L2 turns one node's backend round trip into every other
/// node's promote-on-hit. The run then refreshes ONE table (targeted tag
/// purge — the fraction of the cached population it touches is the
/// headline), demonstrates SWR grace serving with a Background
/// revalidation sweep, and joins a node to measure cache warming. Emits
/// `BENCH_cache.json` for the trend sentinel.
fn e24_cache_hierarchy() {
    use std::collections::HashMap;
    use std::time::Instant;
    use tabviz::cache::intelligent::CacheConfig;
    use tabviz::cluster::{Cluster, ClusterConfig, ClusterSession};
    use tabviz::workloads::{generate_storm, schedule_digest, StormConfig, StormStep};

    const NODES: usize = 4;
    const TABLES: usize = 6;
    const DASHBOARDS: usize = 12;
    const USERS: u32 = 4;
    const SEED: u64 = 42;

    // One physical dataset cloned into six logical tables: a refresh of one
    // table can only ever touch ~1/6 of the cached population, which is what
    // makes the targeted-purge fraction meaningful.
    let flights = generate_flights(&FaaConfig::with_rows(6_000)).expect("generate");
    let db = Arc::new(Database::new("faa"));
    for t in 0..TABLES {
        db.put(
            Table::from_chunk(format!("flights_{t}"), &flights, &["carrier", "date"])
                .expect("table"),
        )
        .expect("put table");
    }

    let cluster = {
        let db = Arc::clone(&db);
        Cluster::build(
            ClusterConfig {
                nodes: NODES,
                replication: 2,
                vnodes: 64,
                seed: SEED,
                peer_op_latency: Duration::from_micros(200),
            },
            move |name| {
                let sim = SimDb::new("warehouse", Arc::clone(&db), lan_config());
                let caches = QueryCaches::new(
                    CacheConfig {
                        swr_grace: Duration::from_secs(120),
                        ..Default::default()
                    },
                    1 << 22,
                );
                let qp = QueryProcessor::new(caches);
                qp.registry.register(Arc::new(sim), 4);
                let server = Arc::new(DataServer::named(qp, name));
                for d in 0..DASHBOARDS {
                    server.publish(PublishedSource::new(
                        format!("dash-{d}"),
                        "warehouse",
                        LogicalPlan::scan(format!("flights_{}", d % TABLES)),
                    ));
                }
                Ok(server)
            },
        )
        .expect("cluster build")
    };

    let storm = StormConfig {
        sessions: 160,
        dashboards: DASHBOARDS,
        zipf_s: 1.1,
        horizon_ms: 4_000,
        diurnal_amplitude: 0.5,
        steps_per_session: 4,
        mean_think_ms: 250.0,
        seed: SEED,
    };
    let schedule = generate_storm(&storm);
    let digest = schedule_digest(&schedule);

    let count = || AggCall::new(AggFunc::Count, None, "n");
    let query_for = |kind: &StormStep| -> ClientQuery {
        let dims = ["carrier", "dep_hour", "origin_state", "weekday"];
        match kind {
            StormStep::Load => ClientQuery {
                group_by: vec!["carrier".into()],
                aggs: vec![count()],
                ..Default::default()
            },
            StormStep::Drill { dimension } => ClientQuery {
                group_by: vec![dims[*dimension as usize % dims.len()].into()],
                aggs: vec![count()],
                ..Default::default()
            },
            StormStep::Filter { selector } => ClientQuery {
                filters: vec![bin(
                    BinOp::Le,
                    col("distance"),
                    lit(200 + (*selector as i64 % 2200)),
                )],
                group_by: vec!["carrier".into()],
                aggs: vec![count()],
                ..Default::default()
            },
            StormStep::TopN { n } => ClientQuery {
                group_by: vec!["market".into()],
                aggs: vec![count()],
                order: vec![SortKey {
                    column: "n".into(),
                    asc: false,
                }],
                topn: Some(*n as usize),
                ..Default::default()
            },
        }
    };

    // Closed-loop replay (latency buckets per serve path, not tail-under-
    // load — e21/e22 own that): every query lands in exactly one bucket.
    let mut sessions: HashMap<u32, (u32, ClusterSession)> = HashMap::new();
    let (mut l1, mut l2, mut peer, mut backend) = (
        Vec::<Duration>::new(),
        Vec::<Duration>::new(),
        Vec::<Duration>::new(),
        Vec::<Duration>::new(),
    );
    let mut errors = 0usize;
    for a in &schedule {
        let (_, sess) = sessions.entry(a.session).or_insert_with(|| {
            let user = format!("viewer-{}", a.session % USERS);
            (
                a.dashboard,
                cluster
                    .open_session(&format!("dash-{}", a.dashboard), user)
                    .expect("open session"),
            )
        });
        let query = query_for(&a.kind);
        let t0 = Instant::now();
        match sess.query(&query) {
            Ok(r) => {
                let wall = t0.elapsed();
                match r.outcome {
                    ExecOutcome::IntelligentHit => l1.push(wall),
                    ExecOutcome::L2Hit => l2.push(wall),
                    ExecOutcome::LiteralHit if r.peer_hit.is_some() => peer.push(wall),
                    ExecOutcome::LiteralHit => l1.push(wall),
                    ExecOutcome::Remote => backend.push(wall),
                    _ => {}
                }
            }
            Err(_) => errors += 1,
        }
    }
    let completed = schedule.len() - errors;

    let median = |durs: &mut Vec<Duration>| -> Duration {
        if durs.is_empty() {
            return Duration::ZERO;
        }
        durs.sort();
        durs[(durs.len() - 1) / 2]
    };
    let (l1_n, l2_n, peer_n, backend_n) = (l1.len(), l2.len(), peer.len(), backend.len());
    let l1_median = median(&mut l1);
    let l2_median = median(&mut l2);
    let peer_median = median(&mut peer);
    let backend_median = median(&mut backend);
    let l2_over_backend = l2_median.as_secs_f64() / backend_median.as_secs_f64().max(1e-9);

    // Tier-seam counters summed across the members.
    let tier_sum = |cluster: &Arc<Cluster>| {
        let mut sum = tabviz::cache::TierStats::default();
        for node in cluster.nodes() {
            let t = node.server.processor.caches.tier_stats();
            sum.l2_hits += t.l2_hits;
            sum.l2_misses += t.l2_misses;
            sum.promotes += t.promotes;
            sum.l2_stores += t.l2_stores;
            sum.tag_purged += t.tag_purged;
            sum.warmed += t.warmed;
        }
        sum
    };
    let tier = tier_sum(&cluster);
    let l2_hit_rate = tier.l2_hits as f64 / ((tier.l2_hits + tier.l2_misses) as f64).max(1.0);

    // Targeted invalidation: refresh ONE of the six tables and compare what
    // the tag purge removed against the whole cached population (node L1s
    // plus every replicated shard entry).
    let census = |cluster: &Arc<Cluster>| -> usize {
        cluster
            .nodes()
            .iter()
            .map(|n| {
                n.server.processor.caches.intelligent.len()
                    + n.server.processor.caches.literal.len()
                    + n.shard().len()
            })
            .sum()
    };
    let entries_before = census(&cluster);
    // flights_3 sits mid-Zipf: refreshing it measures tag precision on a
    // typically-popular table rather than the head dashboard's hot spot.
    let purged = cluster.refresh_table("warehouse", "flights_3");
    let purge_fraction = purged as f64 / entries_before.max(1) as f64;

    // SWR: demote flights_1's dependents to stale (still inside the grace
    // window), then replay each affected dashboard's load query through its
    // original session. The peer/L2 copies are gone (purged by tag), so the
    // route lands on the session's affinity node — whose stale L1 entry
    // answers immediately, flagged as an SWR serve.
    let swr_before: u64 = cluster
        .nodes()
        .iter()
        .map(|n| n.server.processor.caches.intelligent.stats().swr_serves)
        .sum();
    let stale_marked: usize = cluster
        .nodes()
        .iter()
        .map(|n| {
            n.server
                .processor
                .mark_table_stale("warehouse", "flights_1")
        })
        .sum();
    let mut swr_queries = 0usize;
    for (dash, sess) in sessions.values() {
        if *dash as usize % TABLES != 1 {
            continue;
        }
        sess.query(&query_for(&StormStep::Load)).expect("swr serve");
        swr_queries += 1;
    }
    let swr_serves: u64 = cluster
        .nodes()
        .iter()
        .map(|n| n.server.processor.caches.intelligent.stats().swr_serves)
        .sum::<u64>()
        - swr_before;
    // The Background sweep refreshes what SWR kept serving; Background
    // requests see through the grace window, so the refresh is real.
    let mut revalidated = 0usize;
    for node in cluster.nodes() {
        let report = revalidate_pass(
            &node.server.processor,
            &RevalidateOptions {
                staleness_budget: Duration::ZERO,
                ..Default::default()
            },
        );
        revalidated += report.refreshed;
    }
    let stale_left: usize = cluster
        .nodes()
        .iter()
        .map(|n| n.server.processor.caches.stale_entries().len())
        .sum();

    // Node join: the newcomer's L1 is warmed from the members' hot sets.
    let report = cluster.add_node("node-warm").expect("add node");
    let joiner = cluster.node("node-warm").expect("joiner");
    let warmed = joiner.server.processor.caches.tier_stats().warmed;

    // The federated exposition carries the tier counters.
    let metrics_text = cluster.metrics_text();
    let tier_metric_names = [
        "tv_cache_tier_l2_hits_total",
        "tv_cache_tier_promotes_total",
        "tv_cache_tier_stores_total",
        "tv_cache_tier_tag_purged_total",
        "tv_cache_tier_warmed_total",
    ];
    let tier_metrics_present = tier_metric_names
        .iter()
        .filter(|m| metrics_text.contains(*m))
        .count();

    print_table(
        &format!(
            "E24 — {NODES}-node tiered cache, {} arrivals over {DASHBOARDS} dashboards / {TABLES} tables",
            schedule.len(),
        ),
        &["serve path", "n", "median ms"],
        &[
            vec!["L1 hit (intelligent/literal)".into(), l1_n.to_string(), ms(l1_median)],
            vec!["peer exact hit".into(), peer_n.to_string(), ms(peer_median)],
            vec!["L1 miss → L2 hit".into(), l2_n.to_string(), ms(l2_median)],
            vec!["backend round trip".into(), backend_n.to_string(), ms(backend_median)],
        ],
    );
    print_table(
        "E24 — invalidation, SWR, warm start",
        &["event", "value"],
        &[
            vec![
                "cached entries before refresh".into(),
                entries_before.to_string(),
            ],
            vec!["purged by flights_3 refresh".into(), purged.to_string()],
            vec![
                "targeted-purge fraction".into(),
                format!("{purge_fraction:.3}"),
            ],
            vec!["stale-marked (flights_1)".into(), stale_marked.to_string()],
            vec!["SWR grace serves".into(), swr_serves.to_string()],
            vec!["revalidated in background".into(), revalidated.to_string()],
            vec!["entries warmed into joiner".into(), warmed.to_string()],
        ],
    );

    let json = format!(
        "{{\n  \"experiment\": \"e24_cache_hierarchy\",\n  \"nodes\": {NODES},\n  \"tables\": {TABLES},\n  \"dashboards\": {DASHBOARDS},\n  \"seed\": {SEED},\n  \"schedule_digest\": \"{digest:016x}\",\n  \"arrivals\": {},\n  \"completed\": {completed},\n  \"errors\": {errors},\n  \"serve_paths\": {{\n    \"l1\": {{\"count\": {l1_n}, \"median_ms\": {}}},\n    \"peer\": {{\"count\": {peer_n}, \"median_ms\": {}}},\n    \"l2\": {{\"count\": {l2_n}, \"median_ms\": {}}},\n    \"backend\": {{\"count\": {backend_n}, \"median_ms\": {}}}\n  }},\n  \"l2_over_backend\": {l2_over_backend:.3},\n  \"tier\": {{\"l2_hits\": {}, \"l2_misses\": {}, \"promotes\": {}, \"l2_stores\": {}, \"l2_hit_rate\": {l2_hit_rate:.3}}},\n  \"entries_before_refresh\": {entries_before},\n  \"purged\": {purged},\n  \"purge_fraction\": {purge_fraction:.4},\n  \"stale_marked\": {stale_marked},\n  \"swr_queries\": {swr_queries},\n  \"swr_serves\": {swr_serves},\n  \"revalidated\": {revalidated},\n  \"stale_after_revalidation\": {stale_left},\n  \"join_keys_moved\": {},\n  \"warmed\": {warmed},\n  \"tier_metrics_present\": {tier_metrics_present}\n}}\n",
        schedule.len(),
        ms(l1_median),
        ms(peer_median),
        ms(l2_median),
        ms(backend_median),
        tier.l2_hits,
        tier.l2_misses,
        tier.promotes,
        tier.l2_stores,
        report.keys_moved,
    );
    std::fs::write("BENCH_cache.json", &json).expect("write BENCH_cache.json");

    // Machine-checkable summary lines (the CI smoke test parses these).
    println!("e24_arrivals {}", schedule.len());
    println!("e24_completed {completed}");
    println!("e24_errors {errors}");
    println!("e24_l1_median_ms {}", ms(l1_median));
    println!("e24_l2_median_ms {}", ms(l2_median));
    println!("e24_peer_median_ms {}", ms(peer_median));
    println!("e24_backend_median_ms {}", ms(backend_median));
    println!("e24_l2_over_backend {l2_over_backend:.3}");
    println!("e24_l2_hits {}", tier.l2_hits);
    println!("e24_l2_hit_rate {l2_hit_rate:.3}");
    println!("e24_promotes {}", tier.promotes);
    println!("e24_purged {purged}");
    println!("e24_purge_fraction {purge_fraction:.4}");
    println!("e24_stale_marked {stale_marked}");
    println!("e24_swr_serves {swr_serves}");
    println!("e24_revalidated {revalidated}");
    println!("e24_stale_after_revalidation {stale_left}");
    println!("e24_warmed {warmed}");
    println!("e24_tier_metrics_present {tier_metrics_present}");
    println!("e24_schedule_digest {digest:016x}");
    println!("e24_json_emitted 1");
}

// ---------------------------------------------------------------- E25 ----

/// Tail-latency attribution drill: three scripted slowness injections —
/// an admission-queue flood, a backend stall, and a cache purge storm —
/// each with a known root cause, scored on whether `obs::analyze`'s
/// slow-query verdicts name that cause on the slowest traces. Also
/// measures the analyze-pass overhead (fingerprint folding on the warm
/// render path, on vs off) and proves every exemplar trace id exposed by
/// a small cluster's metrics resolves to a recorded trace.
fn e25_attribution_drill() {
    use tabviz::cluster::{Cluster, ClusterConfig};
    use tabviz::obs::{analyze, diagnose, scrape_exemplars, Verdict};

    const SEED: u64 = 42;
    const TOP_K: usize = 5;

    let db = faa_db(3_000);
    let unique_spec = |n: i64| {
        QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
            .filter(bin(BinOp::Ge, col("distance"), lit(n)))
            .group("dep_hour")
            .agg(AggCall::new(AggFunc::Count, None, "n"))
    };

    // Diagnose the slowest traces the way `DataServer::slow_query_verdicts`
    // does — against the class baseline learned on the same processor —
    // and count how many name the injected cause.
    let score = |qp: &QueryProcessor, expect: Verdict| -> (usize, usize) {
        let traces = qp.obs.recorder.slowest(TOP_K);
        let hits = traces
            .iter()
            .filter(|t| {
                let baseline = qp.obs.baselines.get(&t.class);
                diagnose(t, baseline.as_ref()).verdict == expect
            })
            .count();
        (hits, traces.len())
    };

    // Scenario 1 — admission-queue flood: a pool of 2 with pool-derived
    // scheduler concurrency, hit by 12 concurrent cache-missing queries.
    // Everything past the first wave spends its time queued, so the tail
    // verdict must be queue_wait, not backend_slow.
    let slow_link = |dispatch_ms: u64| SimConfig {
        latency: LatencyModel {
            connect: Duration::from_millis(2),
            dispatch: Duration::from_millis(dispatch_ms),
            scan_per_kilorow: Duration::from_micros(150),
            transfer_per_kilorow: Duration::from_micros(400),
        },
        ..Default::default()
    };
    let (mut qp, _sim) = processor_over(Arc::clone(&db), slow_link(10), 2);
    qp.set_scheduler(Arc::new(Scheduler::new(SchedConfig::for_pool_capacity(2))));
    std::thread::scope(|s| {
        for i in 0..12i64 {
            let qp = &qp;
            s.spawn(move || {
                let req = AdmitRequest::interactive(format!("flood-{i}"));
                qp.execute_as(&unique_spec(1_000 + i), &req).expect("flood");
            });
        }
    });
    let (queue_hits, queue_n) = score(&qp, Verdict::QueueWait);

    // Scenario 2 — backend stall: an uncontended pool of 4 behind a link
    // whose dispatch latency dominates. Misses are routine for this class
    // (its baseline is built from these same remote round trips), so the
    // verdict must be backend_slow, not a cache complaint.
    let (qp, _sim) = processor_over(Arc::clone(&db), slow_link(25), 4);
    for i in 0..6i64 {
        qp.execute(&unique_spec(2_000 + i)).expect("stall probe");
    }
    let (backend_hits, backend_n) = score(&qp, Verdict::BackendSlow);

    // Scenario 3 — cache purge storm: one query class warmed until its
    // baseline says "this serves from cache", then the cache is purged
    // before each repeat. The repeats go remote *because* the cache was
    // emptied — cache_miss_storm, not backend_slow. The baseline is
    // frozen (analyze gate off) during the storm, as a healthy-traffic
    // fingerprint would be.
    let (qp, _sim) = processor_over(Arc::clone(&db), slow_link(10), 4);
    let hot = unique_spec(3_000);
    for _ in 0..40 {
        qp.execute(&hot).expect("warm");
    }
    qp.obs.recorder.clear();
    analyze::set_enabled(false);
    for _ in 0..TOP_K {
        qp.refresh_table("warehouse", "flights");
        qp.execute(&hot).expect("storm repeat");
    }
    analyze::set_enabled(true);
    let (purge_hits, purge_n) = score(&qp, Verdict::CacheMissStorm);

    let rate = |hits: usize, n: usize| hits as f64 / n.max(1) as f64;
    let queue_rate = rate(queue_hits, queue_n);
    let backend_rate = rate(backend_hits, backend_n);
    let purge_rate = rate(purge_hits, purge_n);
    let verdict_rate = rate(
        queue_hits + backend_hits + purge_hits,
        queue_n + backend_n + purge_n,
    );

    // Analyze-pass overhead: the e20 warm-render floor with the baseline
    // fold on vs off. The fold is a lock + eight running means per query;
    // the bar is that it stays invisible next to even a cache-hit render.
    const RENDERS: usize = 30;
    let run_arm = |analyze_on: bool| -> Duration {
        analyze::set_enabled(analyze_on);
        let db = faa_db(20_000);
        let (qp, _sim) = processor_over(db, lan_config(), 4);
        let dash = fig1_dashboard("warehouse", "flights");
        let batch = dash.batch(&DashboardState::default(), true);
        execute_batch(&qp, &batch, &BatchOptions::default()).expect("cold render");
        let mut walls: Vec<Duration> = (0..RENDERS)
            .map(|_| {
                time_it(|| execute_batch(&qp, &batch, &BatchOptions::default()).expect("warm")).1
            })
            .collect();
        walls.sort();
        walls[walls.len() / 2]
    };
    let p50_off = run_arm(false);
    let p50_on = run_arm(true);
    analyze::set_enabled(true); // leave the global default intact
    let overhead_ratio = p50_on.as_secs_f64() / p50_off.as_secs_f64().max(1e-9);

    // Exemplar resolvability: a 2-node cluster serves a short mixed
    // workload; every trace id its merged exposition cites must resolve
    // to a trace in the cluster or node flight recorders.
    let cluster = {
        let db = Arc::clone(&db);
        Cluster::build(
            ClusterConfig {
                nodes: 2,
                replication: 2,
                vnodes: 32,
                seed: SEED,
                peer_op_latency: Duration::ZERO,
            },
            move |name| {
                let sim = SimDb::new("warehouse", Arc::clone(&db), lan_config());
                let qp = QueryProcessor::default();
                qp.registry.register(Arc::new(sim), 4);
                let server = Arc::new(DataServer::named(qp, name));
                server.publish(PublishedSource::new(
                    "dash-0",
                    "warehouse",
                    LogicalPlan::scan("flights"),
                ));
                Ok(server)
            },
        )
        .expect("cluster build")
    };
    let session = cluster.open_session("dash-0", "viewer").expect("session");
    for i in 0..8i64 {
        session
            .query(&ClientQuery {
                filters: vec![bin(BinOp::Le, col("distance"), lit(500 + i % 3))],
                group_by: vec!["carrier".into()],
                aggs: vec![AggCall::new(AggFunc::Count, None, "n")],
                ..Default::default()
            })
            .expect("cluster query");
    }
    let text = cluster.metrics_text();
    let scraped = scrape_exemplars(&text);
    let resolved = scraped
        .iter()
        .filter(|(_, id)| {
            cluster.recorder.get(*id).is_some()
                || cluster
                    .nodes()
                    .iter()
                    .any(|n| n.server.flight_recorder().get(*id).is_some())
        })
        .count();
    let unresolved = scraped.len() - resolved;
    // Histogram families that saw traffic vs families citing an exemplar.
    let families_with_traffic: std::collections::BTreeSet<String> = text
        .lines()
        .filter_map(|l| {
            let (name, v) = l.split_once(' ')?;
            let base = name.split('{').next()?.strip_suffix("_count")?;
            (base.ends_with("_seconds") && v.trim().parse::<f64>().ok()? > 0.0)
                .then(|| base.to_string())
        })
        .collect();
    let families_with_exemplar: std::collections::BTreeSet<String> = scraped
        .iter()
        .filter_map(|(series, _)| {
            Some(
                series
                    .split('{')
                    .next()?
                    .trim_end_matches("_bucket")
                    .to_string(),
            )
        })
        .collect();
    let covered = families_with_traffic
        .iter()
        .filter(|f| families_with_exemplar.contains(*f))
        .count();

    print_table(
        &format!("E25 — verdict precision on the slowest {TOP_K} traces per injected cause"),
        &["scenario", "expected verdict", "hits", "precision"],
        &[
            vec![
                "admission-queue flood".into(),
                "queue_wait".into(),
                format!("{queue_hits}/{queue_n}"),
                format!("{queue_rate:.2}"),
            ],
            vec![
                "backend stall".into(),
                "backend_slow".into(),
                format!("{backend_hits}/{backend_n}"),
                format!("{backend_rate:.2}"),
            ],
            vec![
                "cache purge storm".into(),
                "cache_miss_storm".into(),
                format!("{purge_hits}/{purge_n}"),
                format!("{purge_rate:.2}"),
            ],
        ],
    );
    print_table(
        "E25 — analyze-pass overhead and exemplar resolvability",
        &["measure", "value"],
        &[
            vec!["warm p50, analyze off".into(), ms(p50_off)],
            vec!["warm p50, analyze on".into(), ms(p50_on)],
            vec!["overhead ratio".into(), format!("{overhead_ratio:.3}")],
            vec!["exemplars cited".into(), scraped.len().to_string()],
            vec!["exemplars resolved".into(), resolved.to_string()],
            vec![
                "latency families covered".into(),
                format!("{covered}/{}", families_with_traffic.len()),
            ],
        ],
    );

    let json = format!(
        "{{\n  \"experiment\": \"e25_attribution_drill\",\n  \"seed\": {SEED},\n  \"top_k\": {TOP_K},\n  \"queue_hit_rate\": {queue_rate:.3},\n  \"backend_hit_rate\": {backend_rate:.3},\n  \"purge_hit_rate\": {purge_rate:.3},\n  \"verdict_hit_rate\": {verdict_rate:.3},\n  \"analyze_on_p50_ms\": {},\n  \"analyze_off_p50_ms\": {},\n  \"overhead_ratio\": {overhead_ratio:.3},\n  \"exemplars\": {{\n    \"cited\": {},\n    \"resolved\": {resolved},\n    \"errors\": {unresolved},\n    \"families_with_traffic\": {},\n    \"families_covered\": {covered}\n  }}\n}}\n",
        ms(p50_on),
        ms(p50_off),
        scraped.len(),
        families_with_traffic.len(),
    );
    std::fs::write("BENCH_analyze.json", &json).expect("write BENCH_analyze.json");

    // Machine-checkable summary lines (the CI smoke test parses these).
    println!("e25_queue_hit_rate {queue_rate:.3}");
    println!("e25_backend_hit_rate {backend_rate:.3}");
    println!("e25_purge_hit_rate {purge_rate:.3}");
    println!("e25_verdict_hit_rate {verdict_rate:.3}");
    println!("e25_p50_on_ms {}", ms(p50_on));
    println!("e25_p50_off_ms {}", ms(p50_off));
    println!("e25_overhead_ratio {overhead_ratio:.3}");
    println!("e25_exemplars_cited {}", scraped.len());
    println!("e25_exemplars_resolved {resolved}");
    println!("e25_exemplars_unresolved {unresolved}");
    println!("e25_families_with_traffic {}", families_with_traffic.len());
    println!("e25_families_covered {covered}");
    println!("e25_json_emitted 1");
}
