//! `trend_check` — the CI-facing bench regression sentinel.
//!
//! Usage: `trend_check [CURRENT] [BASELINE]`
//! (defaults: `BENCH_cluster.json` vs `BASELINE_cluster.json`).
//!
//! Prints a delta table for every tracked key and exits:
//! - `0` — no regressions (Ok/Info rows only)
//! - `1` — at least one key broke its tolerance band
//! - `2` — a report was missing or unparseable
//!
//! Intentional perf/workload changes update the committed baseline:
//! run the experiment, inspect the diff, `cp BENCH_cluster.json
//! BASELINE_cluster.json`, and commit it alongside the change.

use tabviz_bench::print_table;
use tabviz_bench::trend::{compare_reports, regressions, TrendConfig, Verdict};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let current_path = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("BENCH_cluster.json");
    let baseline_path = args
        .get(2)
        .map(String::as_str)
        .unwrap_or("BASELINE_cluster.json");

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("trend_check: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let current = read(current_path);
    let baseline = read(baseline_path);

    let deltas = match compare_reports(&baseline, &current, &TrendConfig::default()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("trend_check: parse error: {e}");
            std::process::exit(2);
        }
    };

    let rows: Vec<Vec<String>> = deltas
        .iter()
        .map(|d| {
            vec![
                d.key.clone(),
                d.baseline.clone(),
                d.current.clone(),
                match d.verdict {
                    Verdict::Ok => "ok".into(),
                    Verdict::Info => "info".into(),
                    Verdict::Regression => "REGRESSION".into(),
                },
                d.rule.clone(),
            ]
        })
        .collect();
    print_table(
        &format!("trend_check — {current_path} vs {baseline_path}"),
        &["key", "baseline", "current", "verdict", "rule"],
        &rows,
    );

    let regs = regressions(&deltas);
    let checked = deltas.iter().filter(|d| d.verdict != Verdict::Info).count();
    println!("\ntrend_check_keys {}", deltas.len());
    println!("trend_check_bounded {checked}");
    println!("trend_check_regressions {}", regs.len());
    if regs.is_empty() {
        println!("trend_check_verdict pass");
    } else {
        println!("trend_check_verdict FAIL");
        for r in &regs {
            eprintln!(
                "REGRESSION {}: baseline={} current={} ({})",
                r.key, r.baseline, r.current, r.rule
            );
        }
        std::process::exit(1);
    }
}
