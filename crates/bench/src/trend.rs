//! The bench regression sentinel: diff a fresh `BENCH_*.json` against the
//! committed `BASELINE_*.json` under per-key tolerance bands.
//!
//! Every experiment that emits a machine-readable JSON report gets its
//! perf trajectory guarded across PRs by comparing each flattened key to
//! the committed baseline. Keys fall into classes:
//!
//! - **identity** (`experiment`, `schedule_digest`, `victim`, …): must be
//!   byte-equal — a digest drift means the workload itself changed, which
//!   is a baseline update, not noise.
//! - **structural** (`nodes`, `arrivals`, `completed`, `*.count`, …):
//!   exact integer equality — the schedule is deterministic, so any
//!   difference is a behavior change.
//! - **bounded** (`errors`, `shed_rate`, `p95_ratio`, `balance_ratio`,
//!   `*hit_rate`): one-sided bands with absolute slack.
//! - **timing** (`*_ms`): wall-clock, CI-runner noisy — generous ratio
//!   band (default 2.5×) plus absolute slack so micro-latencies don't
//!   trip on scheduler jitter.
//! - everything else: informational, never a regression.
//!
//! The comparison is pure (`compare`) so tests drive it directly; the
//! `trend_check` bin wraps it with file IO and a delta table.

use tabviz::obs::json::{self, JsonValue};

/// One-sided tolerance shape for `timing` keys.
#[derive(Debug, Clone)]
pub struct TrendConfig {
    /// `current <= baseline * timing_ratio + timing_slack_ms` passes.
    pub timing_ratio: f64,
    pub timing_slack_ms: f64,
}

impl Default for TrendConfig {
    fn default() -> Self {
        TrendConfig {
            timing_ratio: 2.5,
            timing_slack_ms: 5.0,
        }
    }
}

/// Verdict for one compared key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Ok,
    /// Tracked but unbounded (fan-out counters, informational keys).
    Info,
    Regression,
}

/// One row of the delta report.
#[derive(Debug, Clone)]
pub struct Delta {
    pub key: String,
    pub baseline: String,
    pub current: String,
    pub verdict: Verdict,
    /// Human-readable rule that produced the verdict.
    pub rule: String,
}

/// Flatten a JSON tree into dotted-path leaves. Arrays index numerically
/// (`a.0.b`); objects use key names. Null leaves are kept (experiments
/// emit `null` for "did not happen this run").
pub fn flatten(value: &JsonValue) -> Vec<(String, JsonValue)> {
    fn walk(prefix: &str, v: &JsonValue, out: &mut Vec<(String, JsonValue)>) {
        match v {
            JsonValue::Obj(map) => {
                for (k, child) in map {
                    let path = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    walk(&path, child, out);
                }
            }
            JsonValue::Arr(items) => {
                for (i, child) in items.iter().enumerate() {
                    walk(&format!("{prefix}.{i}"), child, out);
                }
            }
            leaf => out.push((prefix.to_string(), leaf.clone())),
        }
    }
    let mut out = Vec::new();
    walk("", value, &mut out);
    out
}

fn render(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".into(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        JsonValue::Str(s) => s.clone(),
        other => format!("{other:?}"),
    }
}

fn last_segment(key: &str) -> &str {
    key.rsplit('.').next().unwrap_or(key)
}

/// Key classes, most specific first.
fn classify(key: &str) -> KeyClass {
    let leaf = last_segment(key);
    match leaf {
        "experiment" | "schedule_digest" | "victim" => KeyClass::Identity,
        "nodes" | "replication" | "seed" | "arrivals" | "sessions" | "completed" | "count" => {
            KeyClass::Structural
        }
        "errors" => KeyClass::ErrorCount,
        // Probe-schedule-dependent: how fast a demoted node is restored
        // hinges on which 1-in-8 probe routes land after the fault clears
        // (observed 50-350ms across healthy runs). e22's awk bands guard
        // the detection side (demote_ms); restore latency is tracked only.
        "restore_ms" => KeyClass::Info,
        "shed_rate" => KeyClass::ShedRate,
        "p95_ratio" => KeyClass::P95Ratio,
        "balance_ratio" => KeyClass::BalanceRatio,
        // Tier-effectiveness counters (e24): the workload is deterministic,
        // but the exact counts shift with routing/eviction details — guard
        // against collapse with a halving floor, not exact equality.
        "promotes" | "l2_hits" | "swr_serves" | "warmed" => KeyClass::CountFloor,
        _ if leaf.ends_with("hit_rate") => KeyClass::HitRate,
        // Precision fractions (e.g. `purge_fraction`): "how much of the
        // cached population did a targeted event touch" — must stay low.
        _ if leaf.ends_with("_fraction") => KeyClass::FractionCeiling,
        _ if leaf.ends_with("_ms") => KeyClass::Timing,
        _ => KeyClass::Info,
    }
}

enum KeyClass {
    Identity,
    Structural,
    ErrorCount,
    ShedRate,
    P95Ratio,
    BalanceRatio,
    CountFloor,
    FractionCeiling,
    HitRate,
    Timing,
    Info,
}

fn num(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Num(n) => Some(*n),
        _ => None,
    }
}

/// Compare `current` against `baseline`, producing one [`Delta`] per key
/// in either report. Keys present in the baseline but missing from the
/// current run are regressions (a metric silently vanished); new keys in
/// the current run are informational.
pub fn compare(baseline: &JsonValue, current: &JsonValue, config: &TrendConfig) -> Vec<Delta> {
    let base: Vec<(String, JsonValue)> = flatten(baseline);
    let cur: std::collections::BTreeMap<String, JsonValue> = flatten(current).into_iter().collect();
    let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
    let mut out = Vec::new();
    for (key, bval) in &base {
        seen.insert(key.as_str());
        let Some(cval) = cur.get(key) else {
            out.push(Delta {
                key: key.clone(),
                baseline: render(bval),
                current: "<missing>".into(),
                verdict: Verdict::Regression,
                rule: "key vanished from current report".into(),
            });
            continue;
        };
        out.push(compare_one(key, bval, cval, config));
    }
    for (key, cval) in &cur {
        if !seen.contains(key.as_str()) {
            out.push(Delta {
                key: key.clone(),
                baseline: "<new>".into(),
                current: render(cval),
                verdict: Verdict::Info,
                rule: "new key (absent from baseline)".into(),
            });
        }
    }
    out
}

fn compare_one(key: &str, bval: &JsonValue, cval: &JsonValue, config: &TrendConfig) -> Delta {
    let mk = |verdict: Verdict, rule: String| Delta {
        key: key.to_string(),
        baseline: render(bval),
        current: render(cval),
        verdict,
        rule,
    };
    // A `null` on either side means "did not happen this run" (e.g. no
    // recovery observed) — that is a behavior note, not a timing number.
    if matches!(bval, JsonValue::Null) || matches!(cval, JsonValue::Null) {
        return mk(Verdict::Info, "null on one side".into());
    }
    match classify(key) {
        KeyClass::Identity | KeyClass::Structural => {
            let equal = match (bval, cval) {
                (JsonValue::Num(a), JsonValue::Num(b)) => a == b,
                (JsonValue::Str(a), JsonValue::Str(b)) => a == b,
                (JsonValue::Bool(a), JsonValue::Bool(b)) => a == b,
                _ => false,
            };
            if equal {
                mk(Verdict::Ok, "exact match".into())
            } else {
                mk(Verdict::Regression, "must match baseline exactly".into())
            }
        }
        KeyClass::ErrorCount => match (num(bval), num(cval)) {
            (Some(b), Some(c)) if c <= b => mk(Verdict::Ok, format!("errors <= {b}")),
            (Some(b), Some(_)) => mk(Verdict::Regression, format!("errors must stay <= {b}")),
            _ => mk(Verdict::Regression, "non-numeric errors".into()),
        },
        KeyClass::ShedRate => bounded_above(mk, bval, cval, num(bval).unwrap_or(0.0) + 0.02),
        KeyClass::P95Ratio => {
            let b = num(bval).unwrap_or(1.0);
            bounded_above(mk, bval, cval, (b * 1.5).max(b + 1.0))
        }
        KeyClass::BalanceRatio => bounded_above(mk, bval, cval, num(bval).unwrap_or(1.0) + 0.75),
        KeyClass::CountFloor => {
            let floor = (num(bval).unwrap_or(0.0) * 0.5).floor();
            match (num(bval), num(cval)) {
                (Some(_), Some(c)) if c >= floor => mk(Verdict::Ok, format!("count >= {floor}")),
                (Some(_), Some(_)) => {
                    mk(Verdict::Regression, format!("count must stay >= {floor}"))
                }
                _ => mk(Verdict::Regression, "non-numeric count".into()),
            }
        }
        KeyClass::FractionCeiling => bounded_above(mk, bval, cval, num(bval).unwrap_or(0.0) + 0.05),
        KeyClass::HitRate => {
            let floor = num(bval).unwrap_or(0.0) - 0.15;
            match (num(bval), num(cval)) {
                (Some(_), Some(c)) if c >= floor => mk(Verdict::Ok, format!("rate >= {floor:.3}")),
                (Some(_), Some(_)) => {
                    mk(Verdict::Regression, format!("rate must stay >= {floor:.3}"))
                }
                _ => mk(Verdict::Regression, "non-numeric rate".into()),
            }
        }
        KeyClass::Timing => {
            let (Some(b), Some(c)) = (num(bval), num(cval)) else {
                return mk(Verdict::Regression, "non-numeric timing".into());
            };
            let bound = b * config.timing_ratio + config.timing_slack_ms;
            if c <= bound {
                mk(Verdict::Ok, format!("<= {bound:.2}ms band"))
            } else {
                mk(
                    Verdict::Regression,
                    format!(
                        "{c:.2}ms over band ({:.1}x baseline + {:.0}ms = {bound:.2}ms)",
                        config.timing_ratio, config.timing_slack_ms
                    ),
                )
            }
        }
        KeyClass::Info => mk(Verdict::Info, "tracked, unbounded".into()),
    }
}

fn bounded_above(
    mk: impl FnOnce(Verdict, String) -> Delta,
    _bval: &JsonValue,
    cval: &JsonValue,
    bound: f64,
) -> Delta {
    match num(cval) {
        Some(c) if c <= bound => mk(Verdict::Ok, format!("<= {bound:.3}")),
        Some(_) => mk(Verdict::Regression, format!("must stay <= {bound:.3}")),
        None => mk(Verdict::Regression, "non-numeric value".into()),
    }
}

/// Parse both reports and compare. `Err` on malformed JSON.
pub fn compare_reports(
    baseline_text: &str,
    current_text: &str,
    config: &TrendConfig,
) -> Result<Vec<Delta>, String> {
    let baseline = json::parse(baseline_text).map_err(|e| format!("baseline: {e}"))?;
    let current = json::parse(current_text).map_err(|e| format!("current: {e}"))?;
    Ok(compare(&baseline, &current, config))
}

pub fn regressions(deltas: &[Delta]) -> Vec<&Delta> {
    deltas
        .iter()
        .filter(|d| d.verdict == Verdict::Regression)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
        "experiment": "e21_cluster_storm",
        "schedule_digest": "abc123",
        "arrivals": 720,
        "completed": 720,
        "errors": 0,
        "shed_rate": 0.0,
        "p95_ratio": 1.4,
        "balance_ratio": 1.6,
        "kill_p95_ms": 40.0,
        "failovers": 25,
        "peer": {"gets": 100, "hit_rate": 0.5}
    }"#;

    fn check(current: &str) -> Vec<Delta> {
        compare_reports(BASE, current, &TrendConfig::default()).expect("parse")
    }

    #[test]
    fn identical_reports_pass() {
        let deltas = check(BASE);
        assert!(regressions(&deltas).is_empty(), "{deltas:?}");
    }

    #[test]
    fn digest_drift_is_regression() {
        let cur = BASE.replace("abc123", "def456");
        let regs = check(&cur)
            .into_iter()
            .filter(|d| d.verdict == Verdict::Regression)
            .map(|d| d.key)
            .collect::<Vec<_>>();
        assert_eq!(regs, vec!["schedule_digest".to_string()]);
    }

    #[test]
    fn timing_within_band_passes_but_blowup_fails() {
        let ok = BASE.replace("\"kill_p95_ms\": 40.0", "\"kill_p95_ms\": 90.0");
        assert!(regressions(&check(&ok)).is_empty(), "2.25x is inside band");
        let bad = BASE.replace("\"kill_p95_ms\": 40.0", "\"kill_p95_ms\": 140.0");
        let regs = check(&bad);
        assert_eq!(regressions(&regs).len(), 1, "{regs:?}");
        assert_eq!(regressions(&regs)[0].key, "kill_p95_ms");
    }

    #[test]
    fn new_errors_are_regressions() {
        let cur = BASE.replace("\"errors\": 0", "\"errors\": 3");
        assert_eq!(regressions(&check(&cur)).len(), 1);
    }

    #[test]
    fn missing_key_is_regression_and_new_key_is_info() {
        let cur = BASE.replace("\"failovers\": 25,", "\"novel_metric\": 7,");
        let deltas = check(&cur);
        let missing = deltas.iter().find(|d| d.key == "failovers").unwrap();
        assert_eq!(missing.verdict, Verdict::Regression);
        let fresh = deltas.iter().find(|d| d.key == "novel_metric").unwrap();
        assert_eq!(fresh.verdict, Verdict::Info);
    }

    #[test]
    fn unbounded_counters_never_regress() {
        // Failover count halves: informational, not a failure.
        let cur = BASE.replace("\"failovers\": 25", "\"failovers\": 11");
        let deltas = check(&cur);
        let d = deltas.iter().find(|d| d.key == "failovers").unwrap();
        assert_eq!(d.verdict, Verdict::Info);
        assert!(regressions(&deltas).is_empty());
    }

    #[test]
    fn hit_rate_floor_enforced() {
        let ok = BASE.replace("\"hit_rate\": 0.5", "\"hit_rate\": 0.42");
        assert!(regressions(&check(&ok)).is_empty());
        let bad = BASE.replace("\"hit_rate\": 0.5", "\"hit_rate\": 0.2");
        assert_eq!(regressions(&check(&bad)).len(), 1);
    }

    const CACHE_BASE: &str = r#"{
        "experiment": "e24_cache_hierarchy",
        "schedule_digest": "abc123",
        "tier": {"l2_hits": 50, "promotes": 50, "l2_hit_rate": 0.178},
        "purge_fraction": 0.09,
        "swr_serves": 37,
        "warmed": 16
    }"#;

    fn check_cache(current: &str) -> Vec<Delta> {
        compare_reports(CACHE_BASE, current, &TrendConfig::default()).expect("parse")
    }

    #[test]
    fn tier_count_halving_floor_enforced() {
        // Mild drift passes; collapsing below half the baseline trips.
        let ok = CACHE_BASE.replace("\"promotes\": 50", "\"promotes\": 30");
        assert!(regressions(&check_cache(&ok)).is_empty());
        let bad = CACHE_BASE.replace("\"promotes\": 50", "\"promotes\": 10");
        let regs = check_cache(&bad);
        assert_eq!(regressions(&regs).len(), 1, "{regs:?}");
        assert_eq!(regressions(&regs)[0].key, "tier.promotes");
    }

    #[test]
    fn purge_fraction_ceiling_enforced() {
        // Targeted invalidation must stay targeted: a small drift is noise,
        // a jump toward wholesale purging is a regression.
        let ok = CACHE_BASE.replace("\"purge_fraction\": 0.09", "\"purge_fraction\": 0.12");
        assert!(regressions(&check_cache(&ok)).is_empty());
        let bad = CACHE_BASE.replace("\"purge_fraction\": 0.09", "\"purge_fraction\": 0.35");
        let regs = check_cache(&bad);
        assert_eq!(regressions(&regs).len(), 1, "{regs:?}");
        assert_eq!(regressions(&regs)[0].key, "purge_fraction");
    }
}
