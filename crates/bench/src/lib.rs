//! Shared harness utilities for the experiment binary and criterion benches.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tabviz::prelude::*;
use tabviz::workloads::{carriers_dim, generate_flights, FaaConfig};

/// Build the FAA database (flights sorted by carrier+date, plus the carriers
/// dimension).
pub fn faa_db(rows: usize) -> Arc<Database> {
    let flights = generate_flights(&FaaConfig::with_rows(rows)).expect("generate");
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &["carrier", "date"]).expect("flights"))
        .expect("put flights");
    db.put(Table::from_chunk("carriers", &carriers_dim().expect("dim"), &["code"]).expect("dim"))
        .expect("put carriers");
    db
}

/// An unsorted variant (for aggregation-strategy comparisons).
pub fn faa_db_unsorted(rows: usize) -> Arc<Database> {
    let flights = generate_flights(&FaaConfig::with_rows(rows)).expect("generate");
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &[]).expect("flights"))
        .expect("put flights");
    db.put(Table::from_chunk("carriers", &carriers_dim().expect("dim"), &["code"]).expect("dim"))
        .expect("put carriers");
    db
}

/// A query processor over one simulated warehouse.
pub fn processor_over(
    db: Arc<Database>,
    config: SimConfig,
    pool: usize,
) -> (QueryProcessor, SimDb) {
    let sim = SimDb::new("warehouse", db, config);
    let qp = QueryProcessor::default();
    qp.registry.register(Arc::new(sim.clone()), pool);
    (qp, sim)
}

/// Wall-clock a closure.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

pub mod trend;

/// Print an aligned text table (the harness's "paper table" output).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", fmt_row(&sep));
    for r in rows {
        println!("{}", fmt_row(r));
    }
}
