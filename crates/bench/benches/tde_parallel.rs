//! Criterion bench for E8: TDE serial vs parallel plans (Sect. 4.2).

#![allow(clippy::field_reassign_with_default)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tabviz::prelude::*;
use tabviz::tde::cost::CostProfile;
use tabviz::tde::parallel::ParallelOptions;
use tabviz_bench::faa_db;

fn bench(c: &mut Criterion) {
    let tde = Tde::new(faa_db(400_000));
    let q = "(aggregate ((origin_state)) ((count as n) (avg arr_delay as d))
               (select (= cancelled false) (scan flights)))";
    let mut group = c.benchmark_group("tde_parallel");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| tde.query_with(q, &ExecOptions::serial()).unwrap())
    });
    for dop in [2usize, 4] {
        let mut opts = ExecOptions::default();
        opts.parallel = ParallelOptions {
            profile: CostProfile {
                min_work_per_thread: 10_000,
                max_dop: dop,
            },
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("parallel", dop), &opts, |b, opts| {
            b.iter(|| tde.query_with(q, opts).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
