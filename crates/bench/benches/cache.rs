//! Criterion bench for E3: intelligent-cache lookup and post-processing
//! costs (Sect. 3.2) — the "additional post-processing usually does not
//! require much time" claim.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;
use tabviz::cache::{intelligent::CacheConfig, IntelligentCache, QuerySpec};
use tabviz::prelude::*;
use tabviz_bench::faa_db;

fn bench(c: &mut Criterion) {
    let db = faa_db(200_000);
    let tde = Tde::new(Arc::clone(&db));
    let fine = QuerySpec::new("faa", LogicalPlan::scan("flights"))
        .group("carrier")
        .group("origin_state")
        .agg(AggCall::new(AggFunc::Count, None, "n"))
        .agg(AggCall::new(AggFunc::Sum, Some(col("distance")), "dist"))
        .agg(AggCall::new(AggFunc::Count, Some(col("distance")), "dc"));
    let chunk = tde
        .execute_plan(&fine.to_plan().unwrap(), &ExecOptions::serial())
        .unwrap();
    let cache = IntelligentCache::new(CacheConfig {
        min_cost: Duration::ZERO,
        ..Default::default()
    });
    cache.put(fine.clone(), chunk, Duration::from_millis(50));

    let mut group = c.benchmark_group("cache");
    group.bench_function("exact_hit", |b| b.iter(|| cache.get(&fine).unwrap()));

    let filtered = fine
        .clone()
        .filter(bin(BinOp::Eq, col("origin_state"), lit("CA")));
    group.bench_function("filter_postprocess", |b| {
        b.iter(|| cache.get(&filtered).unwrap())
    });

    let rollup = QuerySpec::new("faa", LogicalPlan::scan("flights"))
        .group("carrier")
        .agg(AggCall::new(AggFunc::Count, None, "n"))
        .agg(AggCall::new(
            AggFunc::Avg,
            Some(col("distance")),
            "avg_dist",
        ));
    group.bench_function("rollup_postprocess", |b| {
        b.iter(|| cache.get(&rollup).unwrap())
    });

    // The cost of answering from the backend instead (what the cache saves).
    group.sample_size(10);
    group.bench_function("direct_execution_baseline", |b| {
        b.iter(|| {
            tde.execute_plan(&rollup.to_plan().unwrap(), &ExecOptions::serial())
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
