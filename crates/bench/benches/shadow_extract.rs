//! Criterion bench for E11: shadow extracts vs parse-per-query (Sect. 4.4).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use tabviz::prelude::*;
use tabviz::textscan::csv::HeaderMode;
use tabviz::workloads::{generate_flights, FaaConfig};

fn csv(rows: usize) -> String {
    let flights = generate_flights(&FaaConfig::with_rows(rows)).unwrap();
    let mut out = String::from(
        "date,carrier,origin,dest,origin_state,dest_state,market,dep_hour,weekday,distance,dep_delay,arr_delay,cancelled\n",
    );
    for i in 0..flights.len() {
        let cells: Vec<String> = flights
            .row(i)
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                other => other.to_string(),
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn bench(c: &mut Criterion) {
    let text = csv(10_000);
    let opts = CsvOptions {
        header: HeaderMode::Yes,
        ..Default::default()
    };
    let q = "(aggregate ((carrier)) ((count as n)) (scan flights_csv))";
    let mut group = c.benchmark_group("shadow_extract");
    group.sample_size(10);

    group.bench_function("parse_per_query", |b| {
        b.iter(|| {
            let db = Arc::new(Database::new("d"));
            let se = ShadowExtracts::new(Arc::clone(&db));
            let chunk = se.parse_per_query(&text, &opts).unwrap();
            db.put_temp(Table::from_chunk("flights_csv", &chunk, &[]).unwrap())
                .unwrap();
            Tde::new(db).query(q).unwrap()
        })
    });

    // Query over an existing extract (the steady state after one-time cost).
    let db = Arc::new(Database::new("d"));
    let se = ShadowExtracts::new(Arc::clone(&db));
    se.connect_text("flights_csv", &text, &opts).unwrap();
    let tde = Tde::new(db);
    group.bench_function("query_over_extract", |b| b.iter(|| tde.query(q).unwrap()));

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
