//! Criterion bench for E18: zone-map block skipping, predicate-on-codes and
//! RLE run kernels in the compression-aware scan path.

#![allow(clippy::field_reassign_with_default)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tabviz::prelude::*;
use tabviz_bench::faa_db;

fn bench(c: &mut Criterion) {
    let tde = Tde::new(faa_db(400_000));
    let mut group = c.benchmark_group("zone_skip");
    group.sample_size(10);

    // Filters on the sorted dict-rle column at three selectivities: zone
    // maps refute almost all, most, and some blocks respectively.
    for (label, filter) in [
        ("none", "(= carrier \"ZZ\")"),
        ("rare", "(= carrier \"HA\")"),
        ("common", "(= carrier \"WN\")"),
    ] {
        let q = format!("(aggregate () ((count as n)) (select {filter} (scan flights)))");
        let mut pushdown = ExecOptions::serial();
        pushdown.physical.enable_rle_index = false;
        group.bench_with_input(BenchmarkId::new("zone_pushdown", label), &q, |b, q| {
            b.iter(|| tde.query_with(q, &pushdown).unwrap())
        });
        let mut full = ExecOptions::serial();
        full.physical.enable_rle_index = false;
        full.physical.enable_scan_pushdown = false;
        group.bench_with_input(BenchmarkId::new("decode_everything", label), &q, |b, q| {
            b.iter(|| tde.query_with(q, &full).unwrap())
        });
    }

    // Run-granularity aggregation over the RLE group column vs the per-row
    // streaming aggregate it replaces.
    let q_agg = "(aggregate ((carrier)) ((count as n)) (scan flights))".to_string();
    group.bench_with_input(BenchmarkId::new("agg", "run_kernel"), &q_agg, |b, q| {
        b.iter(|| tde.query_with(q, &ExecOptions::serial()).unwrap())
    });
    let mut per_row = ExecOptions::serial();
    per_row.physical.enable_run_agg = false;
    group.bench_with_input(BenchmarkId::new("agg", "per_row"), &q_agg, |b, q| {
        b.iter(|| tde.query_with(q, &per_row).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
