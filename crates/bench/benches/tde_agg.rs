//! Criterion bench for E9/E14: aggregation strategies (Sect. 4.2.3–4.2.4).

#![allow(clippy::field_reassign_with_default)]

use criterion::{criterion_group, criterion_main, Criterion};
use tabviz::prelude::*;
use tabviz::tde::cost::CostProfile;
use tabviz::tde::parallel::ParallelOptions;
use tabviz_bench::faa_db;

fn bench(c: &mut Criterion) {
    let tde = Tde::new(faa_db(400_000));
    let q = "(aggregate ((carrier)) ((count as n) (sum distance as dist) (avg arr_delay as d)) (scan flights))";
    let forced = CostProfile {
        min_work_per_thread: 10_000,
        max_dop: 4,
    };
    let mut group = c.benchmark_group("tde_agg");
    group.sample_size(10);

    group.bench_function("serial_streaming", |b| {
        b.iter(|| tde.query_with(q, &ExecOptions::serial()).unwrap())
    });
    let mut hash_only = ExecOptions::serial();
    hash_only.physical.enable_streaming_agg = false;
    group.bench_function("serial_hash", |b| {
        b.iter(|| tde.query_with(q, &hash_only).unwrap())
    });
    // Same HashAgg plan with the vectorized kernels disabled: isolates the
    // packed-key + typed-state win from the plan-shape comparisons above.
    let mut hash_no_kernels = ExecOptions::serial();
    hash_no_kernels.physical.enable_streaming_agg = false;
    hash_no_kernels.physical.enable_vector_kernels = false;
    group.bench_function("serial_hash_no_kernels", |b| {
        b.iter(|| tde.query_with(q, &hash_no_kernels).unwrap())
    });
    let mut lg = ExecOptions::default();
    lg.parallel = ParallelOptions {
        profile: forced,
        enable_range_partition: false,
        ..Default::default()
    };
    group.bench_function("local_global", |b| {
        b.iter(|| tde.query_with(q, &lg).unwrap())
    });
    let mut rp = ExecOptions::default();
    rp.parallel = ParallelOptions {
        profile: forced,
        range_partition_min_distinct_per_dop: 1,
        ..Default::default()
    };
    group.bench_function("range_partitioned", |b| {
        b.iter(|| tde.query_with(q, &rp).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
