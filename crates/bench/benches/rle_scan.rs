//! Criterion bench for E10: RLE IndexTable range skipping (Sect. 4.3).

#![allow(clippy::field_reassign_with_default)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tabviz::prelude::*;
use tabviz_bench::faa_db;

fn bench(c: &mut Criterion) {
    let tde = Tde::new(faa_db(400_000));
    let mut group = c.benchmark_group("rle_scan");
    group.sample_size(10);
    for (label, carriers) in [
        ("1_carrier", "\"HA\""),
        ("4_carriers", "\"HA\" \"F9\" \"NK\" \"AS\""),
    ] {
        let q = format!(
            "(aggregate ((origin_state)) ((count as n))
               (select (in carrier {carriers}) (scan flights)))"
        );
        group.bench_with_input(BenchmarkId::new("rle_skip", label), &q, |b, q| {
            b.iter(|| tde.query_with(q, &ExecOptions::serial()).unwrap())
        });
        let mut no_rle = ExecOptions::serial();
        no_rle.physical.enable_rle_index = false;
        group.bench_with_input(BenchmarkId::new("full_scan", label), &q, |b, q| {
            b.iter(|| tde.query_with(q, &no_rle).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
