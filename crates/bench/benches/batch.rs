//! Criterion bench for E1: batch strategies on a dashboard load (Sect. 3.3).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use tabviz::prelude::*;
use tabviz::workloads::fig1_dashboard;
use tabviz_bench::{faa_db, processor_over};

fn bench(c: &mut Criterion) {
    let db = faa_db(100_000);
    let dash = fig1_dashboard("warehouse", "flights");
    let mut group = c.benchmark_group("batch");
    group.sample_size(10);
    let configs = [
        (
            "serial_naive",
            BatchOptions {
                fuse: false,
                concurrent: false,
                cache_aware: false,
                ..Default::default()
            },
        ),
        (
            "concurrent",
            BatchOptions {
                fuse: false,
                concurrent: true,
                cache_aware: false,
                ..Default::default()
            },
        ),
        ("full_pipeline", BatchOptions::default()),
    ];
    for (name, opts) in configs {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let (mut qp, _) = processor_over(
                        Arc::clone(&db),
                        SimConfig {
                            latency: LatencyModel::lan(),
                            ..Default::default()
                        },
                        8,
                    );
                    if name == "serial_naive" {
                        qp.options.use_intelligent_cache = false;
                        qp.options.use_literal_cache = false;
                    }
                    qp
                },
                |qp| {
                    let mut state = DashboardState::default();
                    dash.render(&qp, &mut state, &opts, true).unwrap()
                },
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
