//! Criterion bench for E2: query fusion (Sect. 3.4).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use tabviz::prelude::*;
use tabviz_bench::{faa_db, processor_over};

fn zones(src: &str) -> Vec<(String, QuerySpec)> {
    let base = || {
        QuerySpec::new(src, LogicalPlan::scan("flights"))
            .filter(bin(BinOp::Eq, col("cancelled"), lit(false)))
            .group("carrier")
    };
    vec![
        (
            "n".into(),
            base().agg(AggCall::new(AggFunc::Count, None, "n")),
        ),
        (
            "dist".into(),
            base().agg(AggCall::new(AggFunc::Sum, Some(col("distance")), "dist")),
        ),
        (
            "avg".into(),
            base().agg(AggCall::new(AggFunc::Avg, Some(col("arr_delay")), "avg")),
        ),
        (
            "lo".into(),
            base().agg(AggCall::new(AggFunc::Min, Some(col("dep_delay")), "lo")),
        ),
        (
            "hi".into(),
            base().agg(AggCall::new(AggFunc::Max, Some(col("dep_delay")), "hi")),
        ),
    ]
}

fn bench(c: &mut Criterion) {
    let db = faa_db(100_000);
    let batch = zones("warehouse");
    let mut group = c.benchmark_group("fusion");
    group.sample_size(10);
    for (name, fuse) in [("unfused", false), ("fused", true)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let (mut qp, _) = processor_over(
                        Arc::clone(&db),
                        SimConfig {
                            latency: LatencyModel::lan(),
                            ..Default::default()
                        },
                        8,
                    );
                    qp.options.use_intelligent_cache = fuse;
                    qp.options.use_literal_cache = false;
                    qp
                },
                |qp| {
                    let opts = BatchOptions {
                        fuse,
                        concurrent: false,
                        cache_aware: false,
                        ..Default::default()
                    };
                    execute_batch(&qp, &batch, &opts).unwrap()
                },
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
