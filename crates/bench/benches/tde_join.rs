//! Criterion bench for E23: hash-join build+probe with and without the
//! type-specialized vectorized kernels (packed keys + batch hashing).

#![allow(clippy::field_reassign_with_default)]

use criterion::{criterion_group, criterion_main, Criterion};
use tabviz::prelude::*;
use tabviz_bench::faa_db;

fn bench(c: &mut Criterion) {
    let tde = Tde::new(faa_db(400_000));
    // Fact-dim join keyed on a string column; the dim side is filtered so
    // the probe dominates over joined-output materialization.
    let q = "(aggregate ((name)) ((count as n) (sum distance as dist))
               (join inner ((carrier code))
                 (scan flights)
                 (select (in code \"HA\" \"AS\") (scan carriers))))";
    let mut group = c.benchmark_group("tde_join");
    group.sample_size(10);

    group.bench_function("packed_kernels", |b| {
        b.iter(|| tde.query_with(q, &ExecOptions::serial()).unwrap())
    });
    let mut no_kernels = ExecOptions::serial();
    no_kernels.physical.enable_vector_kernels = false;
    group.bench_function("value_row_fallback", |b| {
        b.iter(|| tde.query_with(q, &no_kernels).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
