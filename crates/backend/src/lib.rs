//! Data-source abstraction and simulated remote databases.
//!
//! "Tableau communicates with remote data sources by means of connections"
//! (Sect. 3.1); capabilities, stability and efficiency "of the many supported
//! back-ends often vary dramatically" (Sect. 3.5). The paper's measurements
//! run against 40+ proprietary databases; this crate substitutes a
//! configurable simulation (see DESIGN.md): each simulated server has a
//! latency model (connect / dispatch / per-row costs), an architecture
//! (thread-per-query vs parallel plans over a fixed core budget), optional
//! query throttling and connection limits, per-session temporary tables, and
//! faithful result semantics (queries actually execute, against an embedded
//! TDE).
//!
//! * [`capability`] — what a backend can do (drives query compilation);
//! * [`source`] — the `DataSource` / `Connection` traits and `RemoteQuery`;
//! * [`sim`] — the simulated remote database;
//! * [`local`] — the TDE-as-a-backend adapter (the Extract path);
//! * [`pool`] — connection pooling with age-wise eviction (Sect. 3.5);
//! * [`sql`] — dialect-aware text generation (Sect. 3.1's "textual queries
//!   in appropriate dialects").

pub mod capability;
pub mod local;
pub mod pool;
pub mod sim;
pub mod source;
pub mod sql;

pub use capability::{Capabilities, Dialect, ServerArchitecture};
pub use local::TdeDataSource;
pub use pool::{BreakerState, ConnectionPool, PoolStats, RetryPolicy};
pub use sim::{
    fault_roll, FaultPlan, LatencyModel, SimConfig, SimDb, SimStats, SITE_CACHE_GET, SITE_CACHE_PUT,
};
pub use source::{Connection, DataSource, RemoteQuery};
