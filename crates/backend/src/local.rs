//! The TDE as a data source.
//!
//! "In both cases Tableau treats the TDE like any other supported database"
//! (Sect. 4.1.4) — the Extract path goes through the same `DataSource`
//! boundary as remote servers, with no network costs and full parallel-plan
//! execution.

use crate::capability::{Capabilities, Dialect};
use crate::source::{Connection, DataSource, RemoteQuery};
use std::sync::Arc;
use tabviz_common::{Chunk, Result};
use tabviz_storage::{Database, Table};
use tabviz_tde::{ExecOptions, Tde, TdeCatalog};
use tabviz_tql::{Catalog, TableMeta};

/// A local TDE exposed through the backend interface.
pub struct TdeDataSource {
    name: String,
    db: Arc<Database>,
    capabilities: Capabilities,
    options: ExecOptions,
}

impl TdeDataSource {
    pub fn new(name: impl Into<String>, db: Arc<Database>) -> Self {
        TdeDataSource {
            name: name.into(),
            db,
            capabilities: Capabilities {
                dialect: Dialect::Tql,
                ..Default::default()
            },
            options: ExecOptions::default(),
        }
    }

    /// Override execution options (e.g. force serial for baselines).
    pub fn with_options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }
}

impl DataSource for TdeDataSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> &Capabilities {
        &self.capabilities
    }

    fn connect(&self) -> Result<Box<dyn Connection>> {
        let session_db = Arc::new(self.db.session_view(format!("{}-session", self.name)));
        Ok(Box::new(TdeConnection {
            tde: Tde::new(Arc::clone(&session_db)),
            session_db,
            options: self.options.clone(),
        }))
    }

    fn table_meta(&self, table: &str) -> Result<TableMeta> {
        TdeCatalog::new(Arc::clone(&self.db)).table_meta(table)
    }
}

struct TdeConnection {
    session_db: Arc<Database>,
    tde: Tde,
    options: ExecOptions,
}

impl Connection for TdeConnection {
    fn execute(&mut self, query: &RemoteQuery) -> Result<Chunk> {
        self.tde.execute_plan(&query.plan, &self.options)
    }

    fn create_temp_table(&mut self, name: &str, data: &Chunk) -> Result<()> {
        self.session_db
            .put_temp(Table::from_chunk(name, data, &[])?)?;
        Ok(())
    }

    fn drop_temp_table(&mut self, name: &str) -> Result<()> {
        self.session_db
            .drop_table(tabviz_storage::database::TEMP_SCHEMA, name)
    }

    fn has_temp_table(&self, name: &str) -> bool {
        self.session_db
            .get_table(tabviz_storage::database::TEMP_SCHEMA, name)
            .is_ok()
    }

    fn temp_tables(&self) -> Vec<String> {
        self.session_db
            .table_names(tabviz_storage::database::TEMP_SCHEMA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_common::{DataType, Field, Schema, Value};
    use tabviz_tql::parse_plan;

    #[test]
    fn tde_behind_the_source_interface() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]).unwrap());
        let rows: Vec<Vec<Value>> = (0..10).map(|i| vec![Value::Int(i)]).collect();
        let db = Arc::new(Database::new("extract"));
        db.put(Table::from_chunk("t", &Chunk::from_rows(schema, &rows).unwrap(), &[]).unwrap())
            .unwrap();
        let src = TdeDataSource::new("extract", db);
        assert_eq!(src.capabilities().dialect, Dialect::Tql);
        assert_eq!(src.table_meta("t").unwrap().row_count, 10);
        let mut conn = src.connect().unwrap();
        let q = "(aggregate () ((sum x as s)) (scan t))";
        let out = conn
            .execute(&RemoteQuery::new(q.into(), parse_plan(q).unwrap()))
            .unwrap();
        assert_eq!(out.row(0)[0], Value::Int(45));
    }
}
