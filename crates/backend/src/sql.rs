//! Dialect-aware query text generation.
//!
//! Sect. 3.1: "A simplified query is subsequently translated into a textual
//! representation that matches the dialect of the underlying data source.
//! While most supported data sources speak a variant of SQL ..., each has
//! their own exceptions to the standard." The generated text is what crosses
//! the simulated network (so large IN-lists really cost bytes) and what keys
//! the literal query cache.

use crate::capability::Dialect;
use tabviz_common::Value;
use tabviz_tql::expr::Expr;
use tabviz_tql::{JoinType, LogicalPlan, UnaryOp};

/// Render a logical plan in the given dialect.
pub fn to_sql(plan: &LogicalPlan, dialect: Dialect) -> String {
    match dialect {
        Dialect::Tql => plan.canonical_text(),
        _ => render(plan, dialect, 0),
    }
}

fn quote_ident(name: &str, dialect: Dialect) -> String {
    match dialect {
        Dialect::LegacySql => format!("[{name}]"),
        _ => format!("\"{name}\""),
    }
}

fn render(plan: &LogicalPlan, d: Dialect, depth: usize) -> String {
    let alias = format!("q{depth}");
    match plan {
        LogicalPlan::TableScan { table, projection } => {
            let cols = match projection {
                None => "*".to_string(),
                Some(p) => p
                    .iter()
                    .map(|c| quote_ident(c, d))
                    .collect::<Vec<_>>()
                    .join(", "),
            };
            format!("SELECT {cols} FROM {}", quote_ident(table, d))
        }
        LogicalPlan::Select { input, predicate } => {
            format!(
                "SELECT * FROM ({}) {alias} WHERE {}",
                render(input, d, depth + 1),
                render_expr(predicate, d)
            )
        }
        LogicalPlan::Project { input, exprs } => {
            let items: Vec<String> = exprs
                .iter()
                .map(|(e, n)| format!("{} AS {}", render_expr(e, d), quote_ident(n, d)))
                .collect();
            format!(
                "SELECT {} FROM ({}) {alias}",
                items.join(", "),
                render(input, d, depth + 1)
            )
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
        } => {
            let kw = match join_type {
                JoinType::Inner => "INNER JOIN",
                JoinType::Left => "LEFT OUTER JOIN",
            };
            let conds: Vec<String> = on
                .iter()
                .map(|(l, r)| {
                    format!(
                        "{alias}l.{} = {alias}r.{}",
                        quote_ident(l, d),
                        quote_ident(r, d)
                    )
                })
                .collect();
            format!(
                "SELECT * FROM ({}) {alias}l {kw} ({}) {alias}r ON {}",
                render(left, d, depth + 1),
                render(right, d, depth + 1),
                if conds.is_empty() {
                    "1 = 1".to_string()
                } else {
                    conds.join(" AND ")
                }
            )
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let mut items: Vec<String> = group_by
                .iter()
                .map(|(e, n)| format!("{} AS {}", render_expr(e, d), quote_ident(n, d)))
                .collect();
            for a in aggs {
                let arg = match &a.arg {
                    None => "*".to_string(),
                    Some(e) => render_expr(e, d),
                };
                let func = match a.func {
                    tabviz_tql::AggFunc::CountD => format!("COUNT(DISTINCT {arg})"),
                    f => format!("{}({arg})", f.name()),
                };
                items.push(format!("{func} AS {}", quote_ident(&a.alias, d)));
            }
            let group_clause = if group_by.is_empty() {
                String::new()
            } else {
                let keys: Vec<String> = group_by.iter().map(|(e, _)| render_expr(e, d)).collect();
                format!(" GROUP BY {}", keys.join(", "))
            };
            format!(
                "SELECT {} FROM ({}) {alias}{group_clause}",
                items.join(", "),
                render(input, d, depth + 1)
            )
        }
        LogicalPlan::Order { input, keys } => {
            let ks: Vec<String> = keys
                .iter()
                .map(|k| format!("{} {}", quote_ident(&k.column, d), dir(k.asc)))
                .collect();
            format!(
                "SELECT * FROM ({}) {alias} ORDER BY {}",
                render(input, d, depth + 1),
                ks.join(", ")
            )
        }
        LogicalPlan::TopN { input, keys, n } => {
            let ks: Vec<String> = keys
                .iter()
                .map(|k| format!("{} {}", quote_ident(&k.column, d), dir(k.asc)))
                .collect();
            match d {
                // SQL-Server style: SELECT TOP n.
                Dialect::LegacySql => format!(
                    "SELECT TOP {n} * FROM ({}) {alias} ORDER BY {}",
                    render(input, d, depth + 1),
                    ks.join(", ")
                ),
                _ => format!(
                    "SELECT * FROM ({}) {alias} ORDER BY {} LIMIT {n}",
                    render(input, d, depth + 1),
                    ks.join(", ")
                ),
            }
        }
        LogicalPlan::Distinct { input } => {
            format!(
                "SELECT DISTINCT * FROM ({}) {alias}",
                render(input, d, depth + 1)
            )
        }
    }
}

fn dir(asc: bool) -> &'static str {
    if asc {
        "ASC"
    } else {
        "DESC"
    }
}

fn render_expr(e: &Expr, d: Dialect) -> String {
    match e {
        Expr::Column(c) => quote_ident(c, d),
        Expr::Literal(v) => v.to_literal(),
        Expr::Unary { op, expr } => match op {
            UnaryOp::Not => format!("NOT ({})", render_expr(expr, d)),
            UnaryOp::Neg => format!("-({})", render_expr(expr, d)),
            UnaryOp::IsNull => format!("({} IS NULL)", render_expr(expr, d)),
            UnaryOp::IsNotNull => format!("({} IS NOT NULL)", render_expr(expr, d)),
        },
        Expr::Binary { op, left, right } => {
            let sym = match op {
                tabviz_tql::BinOp::Add => "+",
                tabviz_tql::BinOp::Sub => "-",
                tabviz_tql::BinOp::Mul => "*",
                tabviz_tql::BinOp::Div => "/",
                tabviz_tql::BinOp::Eq => "=",
                tabviz_tql::BinOp::Ne => "<>",
                tabviz_tql::BinOp::Lt => "<",
                tabviz_tql::BinOp::Le => "<=",
                tabviz_tql::BinOp::Gt => ">",
                tabviz_tql::BinOp::Ge => ">=",
                tabviz_tql::BinOp::And => "AND",
                tabviz_tql::BinOp::Or => "OR",
            };
            format!("({} {sym} {})", render_expr(left, d), render_expr(right, d))
        }
        Expr::In {
            expr,
            list,
            negated,
        } => {
            let items: Vec<String> = list.iter().map(Value::to_literal).collect();
            format!(
                "({} {}IN ({}))",
                render_expr(expr, d),
                if *negated { "NOT " } else { "" },
                items.join(", ")
            )
        }
        Expr::Between { expr, low, high } => format!(
            "({} BETWEEN {} AND {})",
            render_expr(expr, d),
            low.to_literal(),
            high.to_literal()
        ),
        Expr::Func { func, args } => {
            let items: Vec<String> = args.iter().map(|a| render_expr(a, d)).collect();
            format!("{}({})", func.name(), items.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_tql::expr::{bin, col, lit};
    use tabviz_tql::{parse_plan, AggCall, AggFunc, BinOp, SortKey};

    fn sample() -> LogicalPlan {
        LogicalPlan::scan("flights")
            .select(bin(BinOp::Gt, col("delay"), lit(10i64)))
            .aggregate(
                vec![(col("carrier"), "carrier".into())],
                vec![AggCall::new(AggFunc::Count, None, "n")],
            )
            .topn(5, vec![SortKey::desc("n")])
    }

    #[test]
    fn ansi_sql_uses_limit() {
        let sql = to_sql(&sample(), Dialect::AnsiSql);
        assert!(sql.contains("LIMIT 5"), "{sql}");
        assert!(sql.contains("GROUP BY \"carrier\""), "{sql}");
        assert!(sql.contains("WHERE (\"delay\" > 10)"), "{sql}");
    }

    #[test]
    fn legacy_sql_uses_top_and_brackets() {
        let sql = to_sql(&sample(), Dialect::LegacySql);
        assert!(sql.contains("SELECT TOP 5"), "{sql}");
        assert!(sql.contains("[carrier]"), "{sql}");
        assert!(!sql.contains("LIMIT"), "{sql}");
    }

    #[test]
    fn tql_dialect_is_canonical_text() {
        let sql = to_sql(&sample(), Dialect::Tql);
        assert!(sql.contains("TopN 5 by n DESC"));
    }

    #[test]
    fn in_lists_render_fully() {
        let plan = parse_plan("(select (in carrier \"AA\" \"DL\" \"WN\") (scan t))").unwrap();
        let sql = to_sql(&plan, Dialect::AnsiSql);
        assert!(sql.contains("IN ('AA', 'DL', 'WN')"), "{sql}");
        // Bytes grow with the list — the cost temp tables avoid.
        assert!(sql.len() > 30);
    }

    #[test]
    fn countd_and_join_render() {
        let plan = parse_plan(
            "(aggregate ((name)) ((countd carrier as nc))
               (join left ((carrier code)) (scan f) (scan d)))",
        )
        .unwrap();
        let sql = to_sql(&plan, Dialect::AnsiSql);
        assert!(sql.contains("COUNT(DISTINCT \"carrier\")"), "{sql}");
        assert!(sql.contains("LEFT OUTER JOIN"), "{sql}");
    }

    #[test]
    fn identical_plans_render_identically() {
        // The literal-cache property: same plan → same text.
        assert_eq!(
            to_sql(&sample(), Dialect::AnsiSql),
            to_sql(&sample(), Dialect::AnsiSql)
        );
    }
}
