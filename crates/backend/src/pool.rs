//! Connection pooling.
//!
//! Sect. 3.5: "Tableau manages a certain number of active connections to
//! each data source to implement concurrent execution of remote queries. The
//! process of opening a connection ... [is] costly, therefore, connections
//! are pooled and kept around even if idle. In addition, connection pooling
//! plays an important role in preserving and reusing temporary structures
//! stored in remote sessions. ... An age-wise eviction policy is used in
//! case of local memory pressure or to release remote resources unused for
//! longer periods of time."

use crate::source::{Connection, DataSource};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use tabviz_common::{Result, TvError};
use tabviz_obs::{stage, Counter, Gauge, Histogram, Registry};

/// Pre-resolved metric handles (`tv_backend_pool_*`), bound once via
/// [`ConnectionPool::bind_obs`]; the hot path pays one `OnceLock` load plus
/// relaxed atomic increments.
struct PoolMetrics {
    opened: Counter,
    reused: Counter,
    waited: Counter,
    evicted: Counter,
    poisoned: Counter,
    connect_retries: Counter,
    acquire_timeouts: Counter,
    acquire_wait: Histogram,
    breaker_state: Gauge,
    breaker_trips: Counter,
    breaker_fast_fails: Counter,
}

impl PoolMetrics {
    fn bind(registry: &Registry) -> Self {
        PoolMetrics {
            opened: registry.counter("tv_backend_pool_opened_total"),
            reused: registry.counter("tv_backend_pool_reused_total"),
            waited: registry.counter("tv_backend_pool_waited_total"),
            evicted: registry.counter("tv_backend_pool_evicted_total"),
            poisoned: registry.counter("tv_backend_pool_poisoned_total"),
            connect_retries: registry.counter("tv_backend_pool_connect_retries_total"),
            acquire_timeouts: registry.counter("tv_backend_pool_acquire_timeouts_total"),
            acquire_wait: registry.histogram("tv_backend_pool_acquire_wait_seconds"),
            breaker_state: registry.gauge("tv_pool_breaker_state"),
            breaker_trips: registry.counter("tv_pool_breaker_trips_total"),
            breaker_fast_fails: registry.counter("tv_pool_breaker_fast_fails_total"),
        }
    }
}

/// Circuit-breaker position for a pool's backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; connect attempts go to the backend.
    #[default]
    Closed,
    /// Cooldown elapsed; exactly one probe acquire is dialing the backend
    /// while everyone else still fails fast.
    HalfOpen,
    /// Too many consecutive connect failures; acquires that would dial the
    /// backend fail fast until the cooldown elapses.
    Open,
}

impl BreakerState {
    /// Value exported through the `tv_pool_breaker_state` gauge
    /// (0 = closed, 1 = half-open, 2 = open).
    pub fn as_gauge(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

/// Pool counters.
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    /// Connections physically opened (connect cost paid).
    pub opened: usize,
    /// Acquisitions served from an idle pooled connection.
    pub reused: usize,
    /// Acquisitions that had to wait for a connection to come back.
    pub waited: usize,
    /// Connections discarded by age-wise eviction.
    pub evicted: usize,
    /// Unhealthy connections discarded instead of being recycled.
    pub poisoned: usize,
    /// Transient connect failures that were retried.
    pub connect_retries: usize,
    /// Acquisitions that gave up because the acquire deadline elapsed.
    pub acquire_timeouts: usize,
    /// Times the circuit breaker transitioned to open (including re-opens
    /// after a failed half-open probe).
    pub breaker_trips: usize,
    /// Acquisitions rejected without dialing because the breaker was open.
    pub breaker_fast_fails: usize,
    /// Current breaker position.
    pub breaker_state: BreakerState,
}

/// Retry/backoff/deadline policy for the pool.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Extra connect attempts after a transient failure (0 = fail fast).
    pub connect_retries: usize,
    /// First backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// How long an acquisition may block waiting for a free connection
    /// before returning [`TvError::Timeout`]. `None` waits forever (the
    /// pre-resilience behavior).
    pub acquire_timeout: Option<Duration>,
    /// Consecutive connect failures that trip the circuit breaker open
    /// (0 disables the breaker).
    pub breaker_threshold: usize,
    /// How long an open breaker fails acquires fast before allowing a
    /// half-open probe.
    pub breaker_cooldown: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            connect_retries: 3,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(250),
            acquire_timeout: Some(Duration::from_secs(30)),
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// Exponential backoff with deterministic jitter for the `attempt`-th
    /// retry (0-based). Jitter (0–50% of the step) decorrelates contending
    /// acquirers; deriving it from a counter keeps runs reproducible.
    fn backoff(&self, attempt: usize, salt: u64) -> Duration {
        let step = self
            .backoff_base
            .saturating_mul(1u32 << attempt.min(16) as u32)
            .min(self.backoff_cap);
        // SplitMix64 finalizer over the salt.
        let mut z = salt.wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        let frac = ((z >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        step + Duration::from_secs_f64(step.as_secs_f64() * 0.5 * frac)
    }
}

struct Idle {
    conn: Box<dyn Connection>,
    last_used: Instant,
}

struct PoolInner {
    idle: Vec<Idle>,
    /// Connections currently handed out.
    in_use: usize,
    stats: PoolStats,
    /// Connect failures since the last successful connect.
    consecutive_connect_failures: usize,
    /// When the breaker last tripped open; `None` while closed.
    breaker_opened_at: Option<Instant>,
    /// A half-open probe acquire is currently dialing.
    breaker_probing: bool,
}

/// A pool of connections to one data source.
pub struct ConnectionPool {
    source: Arc<dyn DataSource>,
    max_size: usize,
    policy: RetryPolicy,
    /// Monotonic salt for deterministic backoff jitter.
    backoff_salt: AtomicU64,
    inner: Mutex<PoolInner>,
    cv: Condvar,
    metrics: OnceLock<PoolMetrics>,
}

/// RAII guard: returns the connection to the pool on drop — unless the
/// session is unhealthy (or explicitly poisoned), in which case it is
/// discarded so no later acquirer receives a dead connection.
pub struct PooledConnection<'a> {
    pool: &'a ConnectionPool,
    conn: Option<Box<dyn Connection>>,
    poisoned: bool,
}

impl PooledConnection<'_> {
    /// Force-discard this connection on drop even if it reports healthy
    /// (e.g. the caller observed a protocol error the backend missed).
    pub fn poison(&mut self) {
        self.poisoned = true;
    }
}

impl std::ops::Deref for PooledConnection<'_> {
    type Target = Box<dyn Connection>;
    fn deref(&self) -> &Self::Target {
        self.conn.as_ref().expect("connection present until drop")
    }
}

impl std::ops::DerefMut for PooledConnection<'_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.conn.as_mut().expect("connection present until drop")
    }
}

impl Drop for PooledConnection<'_> {
    fn drop(&mut self) {
        if let Some(conn) = self.conn.take() {
            let mut inner = self.pool.inner.lock();
            inner.in_use -= 1;
            if self.poisoned || !conn.healthy() {
                // Dropping the boxed connection closes the session; the
                // freed capacity lets a waiter open a fresh one.
                inner.stats.poisoned += 1;
                if let Some(m) = self.pool.obs() {
                    m.poisoned.inc();
                }
            } else {
                inner.idle.push(Idle {
                    conn,
                    last_used: Instant::now(),
                });
            }
            self.pool.cv.notify_one();
        }
    }
}

impl ConnectionPool {
    /// Create a pool with at most `max_size` connections. A backend's own
    /// connection limit further caps the effective size.
    pub fn new(source: Arc<dyn DataSource>, max_size: usize) -> Self {
        let caps_max = source.capabilities().max_connections;
        let max_size = if caps_max > 0 {
            max_size.min(caps_max)
        } else {
            max_size
        }
        .max(1);
        ConnectionPool {
            source,
            max_size,
            policy: RetryPolicy::default(),
            backoff_salt: AtomicU64::new(0),
            inner: Mutex::new(PoolInner {
                idle: Vec::new(),
                in_use: 0,
                stats: PoolStats::default(),
                consecutive_connect_failures: 0,
                breaker_opened_at: None,
                breaker_probing: false,
            }),
            cv: Condvar::new(),
            metrics: OnceLock::new(),
        }
    }

    /// Resolve this pool's `tv_backend_pool_*` metrics against a registry.
    /// Idempotent; the first binding wins.
    pub fn bind_obs(&self, registry: &Registry) {
        let _ = self.metrics.set(PoolMetrics::bind(registry));
    }

    fn obs(&self) -> Option<&PoolMetrics> {
        self.metrics.get()
    }

    /// Replace the retry/deadline policy (builder style).
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    pub fn set_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Backoff duration for an external retry loop's `attempt`-th retry,
    /// advancing the shared jitter salt (query-level retries and connect
    /// retries stay decorrelated but deterministic).
    pub fn next_backoff(&self, attempt: usize) -> Duration {
        let salt = self.backoff_salt.fetch_add(1, Ordering::Relaxed);
        self.policy.backoff(attempt, salt)
    }

    pub fn max_size(&self) -> usize {
        self.max_size
    }

    pub fn source(&self) -> &Arc<dyn DataSource> {
        &self.source
    }

    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats.clone()
    }

    /// Acquire a connection, preferring one that already holds the given
    /// temp table ("queries ... are multiplexed across connections
    /// regardless of their remote state", but routing to a session that has
    /// the structure avoids re-creating it). Blocks at most the policy's
    /// `acquire_timeout`.
    pub fn acquire_preferring(&self, temp_table: Option<&str>) -> Result<PooledConnection<'_>> {
        self.acquire_within(temp_table, self.policy.acquire_timeout)
    }

    /// Acquire with an explicit deadline override (`None` = wait forever).
    pub fn acquire_within(
        &self,
        temp_table: Option<&str>,
        timeout: Option<Duration>,
    ) -> Result<PooledConnection<'_>> {
        let wait_start = Instant::now();
        let mut span = tabviz_obs::span(stage::POOL_ACQUIRE);
        let deadline = timeout.map(|t| wait_start + t);
        let mut inner = self.inner.lock();
        loop {
            // 0. Sessions that died while idle are discarded, never reused.
            let before = inner.idle.len();
            inner.idle.retain(|i| i.conn.healthy());
            let culled = before - inner.idle.len();
            inner.stats.poisoned += culled;
            if let Some(m) = self.obs() {
                m.poisoned.add(culled as u64);
            }

            // 1. An idle connection holding the wanted temp structure.
            if let Some(name) = temp_table {
                if let Some(pos) = inner.idle.iter().position(|i| i.conn.has_temp_table(name)) {
                    let idle = inner.idle.remove(pos);
                    inner.in_use += 1;
                    inner.stats.reused += 1;
                    span.label("temp_affinity");
                    span.reason(tabviz_obs::reason::POOL_TEMP_AFFINITY);
                    self.observe_acquire(|m| &m.reused, wait_start);
                    return Ok(PooledConnection {
                        pool: self,
                        conn: Some(idle.conn),
                        poisoned: false,
                    });
                }
            }
            // 2. Any idle connection (most recently used first, to keep the
            //    working set warm and let old ones age out).
            if let Some(idle) = inner.idle.pop() {
                inner.in_use += 1;
                inner.stats.reused += 1;
                span.label("reused");
                span.reason(tabviz_obs::reason::POOL_REUSED);
                self.observe_acquire(|m| &m.reused, wait_start);
                return Ok(PooledConnection {
                    pool: self,
                    conn: Some(idle.conn),
                    poisoned: false,
                });
            }
            // 3. Open a new one if under the cap, retrying transient connect
            //    failures with exponential backoff + deterministic jitter.
            //    The circuit breaker gates this step only: idle connections
            //    (steps 1–2) keep flowing while the backend's dial path is
            //    known bad.
            if inner.in_use < self.max_size {
                if let Err(e) = self.breaker_admit(&mut inner) {
                    span.label("breaker_open");
                    span.reason(tabviz_obs::reason::POOL_BREAKER_OPEN);
                    return Err(e);
                }
                inner.in_use += 1;
                inner.stats.opened += 1;
                drop(inner);
                let mut attempt = 0usize;
                loop {
                    match self.source.connect() {
                        Ok(conn) => {
                            self.breaker_on_connect_success();
                            span.label("opened");
                            span.reason(tabviz_obs::reason::POOL_DIALED);
                            self.observe_acquire(|m| &m.opened, wait_start);
                            return Ok(PooledConnection {
                                pool: self,
                                conn: Some(conn),
                                poisoned: false,
                            });
                        }
                        Err(e) => {
                            let tripped = self.breaker_on_connect_failure();
                            if e.is_transient()
                                && !tripped
                                && attempt < self.policy.connect_retries
                                && deadline.is_none_or(|d| Instant::now() < d)
                            {
                                let salt = self.backoff_salt.fetch_add(1, Ordering::Relaxed);
                                self.inner.lock().stats.connect_retries += 1;
                                if let Some(m) = self.obs() {
                                    m.connect_retries.inc();
                                }
                                tabviz_obs::event(
                                    stage::RETRY,
                                    Some("connect"),
                                    Some(attempt as u64),
                                );
                                std::thread::sleep(self.policy.backoff(attempt, salt));
                                attempt += 1;
                            } else {
                                let mut inner = self.inner.lock();
                                inner.in_use -= 1;
                                inner.stats.opened -= 1;
                                self.cv.notify_one();
                                span.label("connect_failed");
                                span.reason(tabviz_obs::reason::POOL_CONNECT_FAILED);
                                return Err(e);
                            }
                        }
                    }
                }
            }
            // 4. Wait for a connection to come back, up to the deadline.
            inner.stats.waited += 1;
            if let Some(m) = self.obs() {
                m.waited.inc();
            }
            match deadline {
                None => self.cv.wait(&mut inner),
                Some(d) => {
                    if Instant::now() >= d {
                        inner.stats.acquire_timeouts += 1;
                        span.label("timeout");
                        span.reason(tabviz_obs::reason::POOL_TIMEOUT);
                        if let Some(m) = self.obs() {
                            m.acquire_timeouts.inc();
                            m.acquire_wait.observe(wait_start.elapsed());
                        }
                        return Err(TvError::Timeout(format!(
                            "acquiring a '{}' connection exceeded {:?} (pool size {})",
                            self.source.name(),
                            timeout.unwrap_or_default(),
                            self.max_size
                        )));
                    }
                    self.cv.wait_until(&mut inner, d);
                }
            }
        }
    }

    /// Gate for step 3 (dialing the backend). While the breaker is open the
    /// acquire fails fast with a transient error — callers fall back to
    /// degraded serving instead of paying the connect timeout. After the
    /// cooldown exactly one caller is let through as the half-open probe;
    /// its outcome decides whether the breaker closes or re-opens.
    fn breaker_admit(&self, inner: &mut PoolInner) -> Result<()> {
        if self.policy.breaker_threshold == 0 {
            return Ok(());
        }
        let Some(opened_at) = inner.breaker_opened_at else {
            return Ok(());
        };
        if opened_at.elapsed() < self.policy.breaker_cooldown || inner.breaker_probing {
            inner.stats.breaker_fast_fails += 1;
            if let Some(m) = self.obs() {
                m.breaker_fast_fails.inc();
            }
            return Err(TvError::Transient(format!(
                "circuit breaker open for '{}' after {} consecutive connect failures",
                self.source.name(),
                inner.consecutive_connect_failures
            )));
        }
        inner.breaker_probing = true;
        self.set_breaker_state(inner, BreakerState::HalfOpen);
        Ok(())
    }

    /// A physical connect succeeded: close the breaker and reset the
    /// consecutive-failure count.
    fn breaker_on_connect_success(&self) {
        if self.policy.breaker_threshold == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.consecutive_connect_failures = 0;
        inner.breaker_probing = false;
        if inner.breaker_opened_at.take().is_some() {
            self.set_breaker_state(&mut inner, BreakerState::Closed);
        }
    }

    /// A physical connect failed. Trips the breaker at the threshold (or
    /// immediately re-opens it when a half-open probe fails) and returns
    /// whether it is now open, in which case the caller stops retrying.
    fn breaker_on_connect_failure(&self) -> bool {
        if self.policy.breaker_threshold == 0 {
            return false;
        }
        let mut inner = self.inner.lock();
        inner.consecutive_connect_failures += 1;
        let failed_probe = std::mem::take(&mut inner.breaker_probing);
        if failed_probe || inner.consecutive_connect_failures >= self.policy.breaker_threshold {
            inner.breaker_opened_at = Some(Instant::now());
            inner.stats.breaker_trips += 1;
            if let Some(m) = self.obs() {
                m.breaker_trips.inc();
            }
            self.set_breaker_state(&mut inner, BreakerState::Open);
            true
        } else {
            false
        }
    }

    fn set_breaker_state(&self, inner: &mut PoolInner, state: BreakerState) {
        inner.stats.breaker_state = state;
        if let Some(m) = self.obs() {
            m.breaker_state.set(state.as_gauge());
        }
    }

    /// Current circuit-breaker position.
    pub fn breaker_state(&self) -> BreakerState {
        self.inner.lock().stats.breaker_state
    }

    /// Record a successful acquisition: bump the path's counter and observe
    /// how long the caller waited.
    fn observe_acquire(&self, which: impl Fn(&PoolMetrics) -> &Counter, wait_start: Instant) {
        if let Some(m) = self.obs() {
            which(m).inc();
            m.acquire_wait.observe(wait_start.elapsed());
        }
    }

    /// Acquire any connection.
    pub fn acquire(&self) -> Result<PooledConnection<'_>> {
        self.acquire_preferring(None)
    }

    /// Drop idle connections unused for longer than `max_age` (the age-wise
    /// eviction policy). Returns how many were closed.
    pub fn evict_idle(&self, max_age: Duration) -> usize {
        let mut inner = self.inner.lock();
        let now = Instant::now();
        let before = inner.idle.len();
        inner
            .idle
            .retain(|i| now.duration_since(i.last_used) <= max_age);
        let evicted = before - inner.idle.len();
        inner.stats.evicted += evicted;
        if let Some(m) = self.obs() {
            m.evicted.add(evicted as u64);
        }
        evicted
    }

    /// Close every idle connection (connection refresh / data source close —
    /// which also purges the remote temp state those sessions held).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let n = inner.idle.len();
        inner.idle.clear();
        inner.stats.evicted += n;
        if let Some(m) = self.obs() {
            m.evicted.add(n as u64);
        }
    }

    pub fn idle_count(&self) -> usize {
        self.inner.lock().idle.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{FaultPlan, SimConfig, SimDb};
    use std::sync::Arc;
    use tabviz_common::{Chunk, DataType, Field, Schema, Value};
    use tabviz_storage::{Database, Table};

    fn source() -> Arc<dyn DataSource> {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]).unwrap());
        let rows: Vec<Vec<Value>> = (0..10).map(|i| vec![Value::Int(i)]).collect();
        let db = Arc::new(Database::new("d"));
        db.put(Table::from_chunk("t", &Chunk::from_rows(schema, &rows).unwrap(), &[]).unwrap())
            .unwrap();
        Arc::new(SimDb::new("s", db, SimConfig::default()))
    }

    #[test]
    fn reuses_connections() {
        let pool = ConnectionPool::new(source(), 4);
        {
            let _c = pool.acquire().unwrap();
        }
        {
            let _c = pool.acquire().unwrap();
        }
        let st = pool.stats();
        assert_eq!(st.opened, 1);
        assert_eq!(st.reused, 1);
        assert_eq!(pool.idle_count(), 1);
    }

    #[test]
    fn blocks_at_capacity_until_release() {
        let pool = Arc::new(ConnectionPool::new(source(), 1));
        let c1 = pool.acquire().unwrap();
        let p2 = Arc::clone(&pool);
        let waiter = std::thread::spawn(move || {
            let _c = p2.acquire().unwrap();
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished(), "should be blocked at capacity");
        drop(c1);
        waiter.join().unwrap();
        assert!(pool.stats().waited >= 1);
    }

    #[test]
    fn respects_backend_connection_limit() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]).unwrap());
        let db = Arc::new(Database::new("d"));
        db.put(
            Table::from_chunk(
                "t",
                &Chunk::from_rows(schema, &[vec![Value::Int(1)]]).unwrap(),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        let mut cfg = SimConfig::default();
        cfg.capabilities.max_connections = 2;
        let src: Arc<dyn DataSource> = Arc::new(SimDb::new("s", db, cfg));
        let pool = ConnectionPool::new(src, 16);
        assert_eq!(pool.max_size(), 2);
    }

    #[test]
    fn temp_table_affinity() {
        let pool = ConnectionPool::new(source(), 4);
        let schema = Arc::new(Schema::new(vec![Field::new("v", DataType::Int)]).unwrap());
        let data = Chunk::from_rows(schema, &[vec![Value::Int(1)]]).unwrap();
        {
            let mut c = pool.acquire().unwrap();
            c.create_temp_table("big_filter", &data).unwrap();
        }
        {
            // Open a second connection (no temp) and return it last, so it
            // sits on top of the idle stack.
            let c_a = pool.acquire_preferring(Some("big_filter")).unwrap();
            assert!(c_a.has_temp_table("big_filter"));
            let c_b = pool.acquire().unwrap();
            assert!(!c_b.has_temp_table("big_filter"));
            drop(c_a);
            drop(c_b);
        }
        // Preferring the temp table picks the right session even though it
        // is not on top.
        let c = pool.acquire_preferring(Some("big_filter")).unwrap();
        assert!(c.has_temp_table("big_filter"));
    }

    #[test]
    fn stress_many_threads_share_a_small_pool() {
        use tabviz_tql::parse_plan;
        let pool = Arc::new(ConnectionPool::new(source(), 3));
        let q = "(aggregate () ((count as n)) (scan t))";
        let plan = parse_plan(q).unwrap();
        std::thread::scope(|s| {
            for _ in 0..16 {
                let pool = Arc::clone(&pool);
                let plan = plan.clone();
                s.spawn(move || {
                    for _ in 0..5 {
                        let mut c = pool.acquire().unwrap();
                        let out = c
                            .execute(&crate::source::RemoteQuery::new(q.into(), plan.clone()))
                            .unwrap();
                        assert_eq!(out.row(0)[0], tabviz_common::Value::Int(10));
                    }
                });
            }
        });
        let st = pool.stats();
        assert!(st.opened <= 3, "never more than the cap: {}", st.opened);
        assert_eq!(st.opened + st.reused, 16 * 5);
        // (whether acquisitions had to wait is timing-dependent on a fast
        // backend; the cap and the accounting are the invariants)
    }

    fn faulty_sim(plan: FaultPlan) -> Arc<SimDb> {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]).unwrap());
        let rows: Vec<Vec<Value>> = (0..10).map(|i| vec![Value::Int(i)]).collect();
        let db = Arc::new(Database::new("d"));
        db.put(Table::from_chunk("t", &Chunk::from_rows(schema, &rows).unwrap(), &[]).unwrap())
            .unwrap();
        let cfg = SimConfig {
            faults: Some(plan),
            ..Default::default()
        };
        Arc::new(SimDb::new("s", db, cfg))
    }

    fn faulty_source(plan: FaultPlan) -> Arc<dyn DataSource> {
        faulty_sim(plan)
    }

    fn fast_retry_policy(retries: usize) -> RetryPolicy {
        RetryPolicy {
            connect_retries: retries,
            backoff_base: Duration::from_micros(200),
            backoff_cap: Duration::from_millis(2),
            acquire_timeout: Some(Duration::from_secs(5)),
            // These tests pin down retry-exhaustion semantics; the breaker
            // has its own tests below.
            breaker_threshold: 0,
            breaker_cooldown: Duration::from_millis(500),
        }
    }

    fn breaker_policy(threshold: usize, cooldown: Duration) -> RetryPolicy {
        RetryPolicy {
            connect_retries: 0, // one dial per acquire: failure counts are exact
            backoff_base: Duration::from_micros(200),
            backoff_cap: Duration::from_millis(2),
            acquire_timeout: Some(Duration::from_secs(5)),
            breaker_threshold: threshold,
            breaker_cooldown: cooldown,
        }
    }

    #[test]
    fn dropped_connection_is_discarded_not_reused() {
        use tabviz_tql::parse_plan;
        let mut plan = FaultPlan::seeded(7);
        plan.connection_drop = 1.0; // every query drops the session
        let pool = ConnectionPool::new(faulty_source(plan), 4);
        {
            let mut c = pool.acquire().unwrap();
            let q = "(aggregate () ((count as n)) (scan t))";
            let rq = crate::source::RemoteQuery::new(q.into(), parse_plan(q).unwrap());
            let err = c.execute(&rq).unwrap_err();
            assert!(err.is_transient());
            assert!(!c.healthy());
        }
        // The poisoned session must not land back in the idle set.
        assert_eq!(pool.idle_count(), 0);
        assert_eq!(pool.stats().poisoned, 1);
        let _c2 = pool.acquire().unwrap();
        assert_eq!(pool.stats().opened, 2);
    }

    #[test]
    fn explicit_poison_discards_a_healthy_connection() {
        let pool = ConnectionPool::new(source(), 4);
        {
            let mut c = pool.acquire().unwrap();
            c.poison();
        }
        assert_eq!(pool.idle_count(), 0);
        assert_eq!(pool.stats().poisoned, 1);
    }

    #[test]
    fn connect_retries_exhaust_with_typed_error() {
        let mut plan = FaultPlan::seeded(3);
        plan.connect_failure = 1.0; // connects never succeed
        let pool = ConnectionPool::new(faulty_source(plan), 4).with_policy(fast_retry_policy(2));
        let err = pool.acquire().err().expect("acquire should fail");
        assert!(err.is_transient(), "unexpected error: {err}");
        let st = pool.stats();
        assert_eq!(st.connect_retries, 2);
        // The failed slot was released: a later acquire still gets to try.
        assert_eq!(st.opened, 0);
    }

    #[test]
    fn connect_retries_recover_from_transient_failures() {
        let mut plan = FaultPlan::seeded(11);
        plan.connect_failure = 0.7; // deterministic per-ordinal outcomes
        let pool = ConnectionPool::new(faulty_source(plan), 4).with_policy(fast_retry_policy(20));
        let _c = pool.acquire().unwrap();
        let st = pool.stats();
        assert!(st.connect_retries >= 1, "expected at least one retry");
        assert_eq!(st.opened, 1);
    }

    #[test]
    fn acquire_times_out_when_pool_is_exhausted() {
        let pool = ConnectionPool::new(source(), 1);
        let _held = pool.acquire().unwrap();
        let err = pool
            .acquire_within(None, Some(Duration::from_millis(30)))
            .err()
            .expect("acquire should time out");
        assert!(matches!(err, TvError::Timeout(_)), "got: {err}");
        assert_eq!(pool.stats().acquire_timeouts, 1);
    }

    #[test]
    fn age_wise_eviction() {
        let pool = ConnectionPool::new(source(), 4);
        {
            let _c = pool.acquire().unwrap();
        }
        assert_eq!(pool.idle_count(), 1);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(pool.evict_idle(Duration::from_millis(5)), 1);
        assert_eq!(pool.idle_count(), 0);
        assert_eq!(pool.stats().evicted, 1);
        // clear() also counts as eviction
        {
            let _c = pool.acquire().unwrap();
        }
        pool.clear();
        assert_eq!(pool.idle_count(), 0);
    }

    fn down_plan() -> FaultPlan {
        let mut plan = FaultPlan::seeded(5);
        plan.connect_failure = 1.0;
        plan
    }

    #[test]
    fn breaker_trips_after_consecutive_connect_failures() {
        let pool = ConnectionPool::new(faulty_source(down_plan()), 4)
            .with_policy(breaker_policy(3, Duration::from_secs(60)));
        for _ in 0..3 {
            assert!(pool.acquire().is_err());
        }
        let st = pool.stats();
        assert_eq!(st.breaker_trips, 1);
        assert_eq!(st.breaker_state, BreakerState::Open);
        assert_eq!(st.breaker_fast_fails, 0, "all three dialed the backend");
        // While open, acquires fail fast without dialing.
        let err = pool.acquire().err().expect("fast fail");
        assert!(err.is_transient(), "got: {err}");
        assert!(err.to_string().contains("circuit breaker open"), "{err}");
        let st = pool.stats();
        assert_eq!(st.breaker_fast_fails, 1);
        assert_eq!(st.breaker_trips, 1, "fast fails do not re-trip");
    }

    #[test]
    fn breaker_below_threshold_stays_closed() {
        let pool = ConnectionPool::new(faulty_source(down_plan()), 4)
            .with_policy(breaker_policy(3, Duration::from_secs(60)));
        assert!(pool.acquire().is_err());
        assert!(pool.acquire().is_err());
        let st = pool.stats();
        assert_eq!(st.breaker_trips, 0);
        assert_eq!(st.breaker_state, BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_success_closes_breaker() {
        let sim = faulty_sim(down_plan());
        let src: Arc<dyn DataSource> = Arc::clone(&sim) as _;
        let pool =
            ConnectionPool::new(src, 4).with_policy(breaker_policy(2, Duration::from_millis(10)));
        assert!(pool.acquire().is_err());
        assert!(pool.acquire().is_err());
        assert_eq!(pool.breaker_state(), BreakerState::Open);
        // Backend recovers; after the cooldown the next acquire is the probe.
        sim.set_fault_plan(None);
        std::thread::sleep(Duration::from_millis(15));
        let c = pool.acquire().expect("half-open probe should succeed");
        drop(c);
        let st = pool.stats();
        assert_eq!(st.breaker_state, BreakerState::Closed);
        assert_eq!(st.breaker_trips, 1);
        assert_eq!(st.opened, 1);
        // Closed again: later failures start counting from zero.
        sim.set_fault_plan(Some(down_plan()));
        let _held = pool.acquire().expect("idle connection still served");
    }

    #[test]
    fn half_open_probe_failure_reopens_breaker() {
        let pool = ConnectionPool::new(faulty_source(down_plan()), 4)
            .with_policy(breaker_policy(2, Duration::from_millis(10)));
        assert!(pool.acquire().is_err());
        assert!(pool.acquire().is_err());
        assert_eq!(pool.breaker_state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(15));
        // The probe dials, fails, and re-opens for a fresh cooldown.
        assert!(pool.acquire().is_err());
        let st = pool.stats();
        assert_eq!(st.breaker_state, BreakerState::Open);
        assert_eq!(st.breaker_trips, 2, "re-open counts as a trip");
        // Immediately after the failed probe we are inside the new cooldown.
        assert!(pool.acquire().is_err());
        assert_eq!(pool.stats().breaker_fast_fails, 1);
    }

    #[test]
    fn open_breaker_still_serves_idle_connections() {
        let sim = faulty_sim(FaultPlan::none());
        let src: Arc<dyn DataSource> = Arc::clone(&sim) as _;
        let pool =
            ConnectionPool::new(src, 4).with_policy(breaker_policy(1, Duration::from_secs(60)));
        let healthy = pool.acquire().unwrap();
        // Backend dial path goes down; the next dial trips the breaker.
        sim.set_fault_plan(Some(down_plan()));
        assert!(pool.acquire().is_err());
        assert_eq!(pool.breaker_state(), BreakerState::Open);
        // A returned healthy connection is still reusable while open.
        drop(healthy);
        let c = pool.acquire().expect("idle reuse bypasses the breaker");
        drop(c);
        assert_eq!(pool.stats().reused, 1);
    }

    #[test]
    fn breaker_exports_gauge_and_counters() {
        let registry = Registry::new();
        let pool = ConnectionPool::new(faulty_source(down_plan()), 4)
            .with_policy(breaker_policy(2, Duration::from_secs(60)));
        pool.bind_obs(&registry);
        assert!(pool.acquire().is_err());
        assert!(pool.acquire().is_err());
        assert!(pool.acquire().is_err()); // fast fail
        assert_eq!(registry.gauge("tv_pool_breaker_state").get(), 2);
        assert_eq!(registry.counter("tv_pool_breaker_trips_total").get(), 1);
        assert_eq!(
            registry.counter("tv_pool_breaker_fast_fails_total").get(),
            1
        );
    }
}
