//! Connection pooling.
//!
//! Sect. 3.5: "Tableau manages a certain number of active connections to
//! each data source to implement concurrent execution of remote queries. The
//! process of opening a connection ... [is] costly, therefore, connections
//! are pooled and kept around even if idle. In addition, connection pooling
//! plays an important role in preserving and reusing temporary structures
//! stored in remote sessions. ... An age-wise eviction policy is used in
//! case of local memory pressure or to release remote resources unused for
//! longer periods of time."

use crate::source::{Connection, DataSource};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tabviz_common::Result;

/// Pool counters.
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    /// Connections physically opened (connect cost paid).
    pub opened: usize,
    /// Acquisitions served from an idle pooled connection.
    pub reused: usize,
    /// Acquisitions that had to wait for a connection to come back.
    pub waited: usize,
    /// Connections discarded by age-wise eviction.
    pub evicted: usize,
}

struct Idle {
    conn: Box<dyn Connection>,
    last_used: Instant,
}

struct PoolInner {
    idle: Vec<Idle>,
    /// Connections currently handed out.
    in_use: usize,
    stats: PoolStats,
}

/// A pool of connections to one data source.
pub struct ConnectionPool {
    source: Arc<dyn DataSource>,
    max_size: usize,
    inner: Mutex<PoolInner>,
    cv: Condvar,
}

/// RAII guard: returns the connection to the pool on drop.
pub struct PooledConnection<'a> {
    pool: &'a ConnectionPool,
    conn: Option<Box<dyn Connection>>,
}

impl std::ops::Deref for PooledConnection<'_> {
    type Target = Box<dyn Connection>;
    fn deref(&self) -> &Self::Target {
        self.conn.as_ref().expect("connection present until drop")
    }
}

impl std::ops::DerefMut for PooledConnection<'_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.conn.as_mut().expect("connection present until drop")
    }
}

impl Drop for PooledConnection<'_> {
    fn drop(&mut self) {
        if let Some(conn) = self.conn.take() {
            let mut inner = self.pool.inner.lock();
            inner.in_use -= 1;
            inner.idle.push(Idle {
                conn,
                last_used: Instant::now(),
            });
            self.pool.cv.notify_one();
        }
    }
}

impl ConnectionPool {
    /// Create a pool with at most `max_size` connections. A backend's own
    /// connection limit further caps the effective size.
    pub fn new(source: Arc<dyn DataSource>, max_size: usize) -> Self {
        let caps_max = source.capabilities().max_connections;
        let max_size = if caps_max > 0 {
            max_size.min(caps_max)
        } else {
            max_size
        }
        .max(1);
        ConnectionPool {
            source,
            max_size,
            inner: Mutex::new(PoolInner {
                idle: Vec::new(),
                in_use: 0,
                stats: PoolStats::default(),
            }),
            cv: Condvar::new(),
        }
    }

    pub fn max_size(&self) -> usize {
        self.max_size
    }

    pub fn source(&self) -> &Arc<dyn DataSource> {
        &self.source
    }

    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats.clone()
    }

    /// Acquire a connection, preferring one that already holds the given
    /// temp table ("queries ... are multiplexed across connections
    /// regardless of their remote state", but routing to a session that has
    /// the structure avoids re-creating it).
    pub fn acquire_preferring(&self, temp_table: Option<&str>) -> Result<PooledConnection<'_>> {
        let mut inner = self.inner.lock();
        loop {
            // 1. An idle connection holding the wanted temp structure.
            if let Some(name) = temp_table {
                if let Some(pos) = inner.idle.iter().position(|i| i.conn.has_temp_table(name)) {
                    let idle = inner.idle.remove(pos);
                    inner.in_use += 1;
                    inner.stats.reused += 1;
                    return Ok(PooledConnection { pool: self, conn: Some(idle.conn) });
                }
            }
            // 2. Any idle connection (most recently used first, to keep the
            //    working set warm and let old ones age out).
            if let Some(idle) = inner.idle.pop() {
                inner.in_use += 1;
                inner.stats.reused += 1;
                return Ok(PooledConnection { pool: self, conn: Some(idle.conn) });
            }
            // 3. Open a new one if under the cap.
            if inner.in_use < self.max_size {
                inner.in_use += 1;
                inner.stats.opened += 1;
                drop(inner);
                match self.source.connect() {
                    Ok(conn) => {
                        return Ok(PooledConnection { pool: self, conn: Some(conn) });
                    }
                    Err(e) => {
                        let mut inner = self.inner.lock();
                        inner.in_use -= 1;
                        inner.stats.opened -= 1;
                        self.cv.notify_one();
                        return Err(e);
                    }
                }
            }
            // 4. Wait for a connection to come back.
            inner.stats.waited += 1;
            self.cv.wait(&mut inner);
        }
    }

    /// Acquire any connection.
    pub fn acquire(&self) -> Result<PooledConnection<'_>> {
        self.acquire_preferring(None)
    }

    /// Drop idle connections unused for longer than `max_age` (the age-wise
    /// eviction policy). Returns how many were closed.
    pub fn evict_idle(&self, max_age: Duration) -> usize {
        let mut inner = self.inner.lock();
        let now = Instant::now();
        let before = inner.idle.len();
        inner
            .idle
            .retain(|i| now.duration_since(i.last_used) <= max_age);
        let evicted = before - inner.idle.len();
        inner.stats.evicted += evicted;
        evicted
    }

    /// Close every idle connection (connection refresh / data source close —
    /// which also purges the remote temp state those sessions held).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let n = inner.idle.len();
        inner.idle.clear();
        inner.stats.evicted += n;
    }

    pub fn idle_count(&self) -> usize {
        self.inner.lock().idle.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, SimDb};
    use std::sync::Arc;
    use tabviz_common::{Chunk, DataType, Field, Schema, Value};
    use tabviz_storage::{Database, Table};

    fn source() -> Arc<dyn DataSource> {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]).unwrap());
        let rows: Vec<Vec<Value>> = (0..10).map(|i| vec![Value::Int(i)]).collect();
        let db = Arc::new(Database::new("d"));
        db.put(Table::from_chunk("t", &Chunk::from_rows(schema, &rows).unwrap(), &[]).unwrap())
            .unwrap();
        Arc::new(SimDb::new("s", db, SimConfig::default()))
    }

    #[test]
    fn reuses_connections() {
        let pool = ConnectionPool::new(source(), 4);
        {
            let _c = pool.acquire().unwrap();
        }
        {
            let _c = pool.acquire().unwrap();
        }
        let st = pool.stats();
        assert_eq!(st.opened, 1);
        assert_eq!(st.reused, 1);
        assert_eq!(pool.idle_count(), 1);
    }

    #[test]
    fn blocks_at_capacity_until_release() {
        let pool = Arc::new(ConnectionPool::new(source(), 1));
        let c1 = pool.acquire().unwrap();
        let p2 = Arc::clone(&pool);
        let waiter = std::thread::spawn(move || {
            let _c = p2.acquire().unwrap();
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished(), "should be blocked at capacity");
        drop(c1);
        waiter.join().unwrap();
        assert!(pool.stats().waited >= 1);
    }

    #[test]
    fn respects_backend_connection_limit() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]).unwrap());
        let db = Arc::new(Database::new("d"));
        db.put(
            Table::from_chunk("t", &Chunk::from_rows(schema, &[vec![Value::Int(1)]]).unwrap(), &[])
                .unwrap(),
        )
        .unwrap();
        let mut cfg = SimConfig::default();
        cfg.capabilities.max_connections = 2;
        let src: Arc<dyn DataSource> = Arc::new(SimDb::new("s", db, cfg));
        let pool = ConnectionPool::new(src, 16);
        assert_eq!(pool.max_size(), 2);
    }

    #[test]
    fn temp_table_affinity() {
        let pool = ConnectionPool::new(source(), 4);
        let schema = Arc::new(Schema::new(vec![Field::new("v", DataType::Int)]).unwrap());
        let data = Chunk::from_rows(schema, &[vec![Value::Int(1)]]).unwrap();
        {
            let mut c = pool.acquire().unwrap();
            c.create_temp_table("big_filter", &data).unwrap();
        }
        {
            // Open a second connection (no temp) and return it last, so it
            // sits on top of the idle stack.
            let c_a = pool.acquire_preferring(Some("big_filter")).unwrap();
            assert!(c_a.has_temp_table("big_filter"));
            let c_b = pool.acquire().unwrap();
            assert!(!c_b.has_temp_table("big_filter"));
            drop(c_a);
            drop(c_b);
        }
        // Preferring the temp table picks the right session even though it
        // is not on top.
        let c = pool.acquire_preferring(Some("big_filter")).unwrap();
        assert!(c.has_temp_table("big_filter"));
    }

    #[test]
    fn stress_many_threads_share_a_small_pool() {
        use tabviz_tql::parse_plan;
        let pool = Arc::new(ConnectionPool::new(source(), 3));
        let q = "(aggregate () ((count as n)) (scan t))";
        let plan = parse_plan(q).unwrap();
        std::thread::scope(|s| {
            for _ in 0..16 {
                let pool = Arc::clone(&pool);
                let plan = plan.clone();
                s.spawn(move || {
                    for _ in 0..5 {
                        let mut c = pool.acquire().unwrap();
                        let out = c
                            .execute(&crate::source::RemoteQuery::new(q.into(), plan.clone()))
                            .unwrap();
                        assert_eq!(out.row(0)[0], tabviz_common::Value::Int(10));
                    }
                });
            }
        });
        let st = pool.stats();
        assert!(st.opened <= 3, "never more than the cap: {}", st.opened);
        assert_eq!(st.opened + st.reused, 16 * 5);
        // (whether acquisitions had to wait is timing-dependent on a fast
        // backend; the cap and the accounting are the invariants)
    }

    #[test]
    fn age_wise_eviction() {
        let pool = ConnectionPool::new(source(), 4);
        {
            let _c = pool.acquire().unwrap();
        }
        assert_eq!(pool.idle_count(), 1);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(pool.evict_idle(Duration::from_millis(5)), 1);
        assert_eq!(pool.idle_count(), 0);
        assert_eq!(pool.stats().evicted, 1);
        // clear() also counts as eviction
        {
            let _c = pool.acquire().unwrap();
        }
        pool.clear();
        assert_eq!(pool.idle_count(), 0);
    }
}
