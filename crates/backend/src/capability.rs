//! Backend capability descriptions.
//!
//! "The query compiler incorporates information about ... overall
//! capabilities of the data source, such as support for subqueries,
//! temporary table creation and indexing" (Sect. 3.1). The query processor
//! consults these flags when compiling, when deciding whether to externalize
//! large IN-lists into temp tables, and when sizing connection pools.

/// SQL dialect family for text generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dialect {
    /// `LIMIT n`, standard quoting.
    #[default]
    AnsiSql,
    /// `SELECT TOP n`, bracket quoting — the SQL-Server-flavored variant.
    LegacySql,
    /// The TDE's own logical-tree text.
    Tql,
}

/// How the server spends CPU on a single query (Sect. 3.5: "the way a
/// database allocates CPU in the single query execution substantially
/// affects performance").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerArchitecture {
    /// One thread per query: serial batches leave the server mostly idle.
    ThreadPerQuery,
    /// Parallel plans: a lone query uses up to `dop` cores; concurrent
    /// queries contend for the same core budget.
    ParallelPlans { dop: usize },
}

/// What a backend supports and how it must be addressed.
#[derive(Debug, Clone)]
pub struct Capabilities {
    pub dialect: Dialect,
    /// Whether `CREATE TEMPORARY TABLE` works (drives filter
    /// externalization, Sect. 3.1 / 5.3).
    pub supports_temp_tables: bool,
    pub supports_subqueries: bool,
    /// Whether TopN can be pushed (otherwise post-processed locally).
    pub supports_topn: bool,
    /// Hard cap on simultaneously open connections (0 = unlimited), the
    /// Sect. 3.5 "limitations on the overall number of connections".
    pub max_connections: usize,
    /// Server-side throttle on concurrently *executing* queries
    /// (0 = unlimited).
    pub max_concurrent_queries: usize,
}

impl Default for Capabilities {
    fn default() -> Self {
        Capabilities {
            dialect: Dialect::AnsiSql,
            supports_temp_tables: true,
            supports_subqueries: true,
            supports_topn: true,
            max_connections: 0,
            max_concurrent_queries: 0,
        }
    }
}

impl Capabilities {
    /// A deliberately limited backend (for fallback-path tests): no temp
    /// tables, no TopN pushdown, few connections.
    pub fn limited() -> Self {
        Capabilities {
            dialect: Dialect::LegacySql,
            supports_temp_tables: false,
            supports_subqueries: false,
            supports_topn: false,
            max_connections: 2,
            max_concurrent_queries: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_permissive() {
        let c = Capabilities::default();
        assert!(c.supports_temp_tables);
        assert_eq!(c.max_connections, 0);
        assert_eq!(c.dialect, Dialect::AnsiSql);
    }

    #[test]
    fn limited_profile() {
        let c = Capabilities::limited();
        assert!(!c.supports_temp_tables);
        assert_eq!(c.max_connections, 2);
        assert_eq!(c.max_concurrent_queries, 1);
    }
}
