//! Simulated remote databases.
//!
//! The paper evaluates against dozens of proprietary backends; this module
//! substitutes a configurable server simulation whose *timing semantics*
//! carry the phenomena Sect. 3.5 describes: connection-open cost (why pools
//! exist), per-query dispatch overhead (why fusion reduces latency),
//! thread-per-query vs parallel-plan CPU allocation (why multiple
//! connections help, and by how much), query throttling, connection limits,
//! and session-scoped temporary tables. Queries *really* execute — results
//! come from an embedded serial TDE over shared base tables — so every
//! higher layer is tested for correctness, not just latency.

use crate::capability::{Capabilities, ServerArchitecture};
use crate::source::{Connection, DataSource, RemoteQuery};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tabviz_common::{Chunk, Result, TvError};
use tabviz_storage::{Database, Table};
use tabviz_tde::{ExecOptions, Tde};
use tabviz_tql::{Catalog, TableMeta};

/// Time costs of talking to this server.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Opening a connection (+ metadata retrieval): "the process of opening
    /// a connection, retrieving configuration information and metadata are
    /// costly" (Sect. 3.5).
    pub connect: Duration,
    /// Fixed per-query overhead (parse/plan/dispatch).
    pub dispatch: Duration,
    /// Server CPU time per 1000 rows scanned (divided by allocated cores).
    pub scan_per_kilorow: Duration,
    /// Network transfer per 1000 result rows.
    pub transfer_per_kilorow: Duration,
}

impl LatencyModel {
    /// No artificial delays (unit tests).
    pub fn instant() -> Self {
        LatencyModel {
            connect: Duration::ZERO,
            dispatch: Duration::ZERO,
            scan_per_kilorow: Duration::ZERO,
            transfer_per_kilorow: Duration::ZERO,
        }
    }

    /// A nearby warehouse on the LAN.
    pub fn lan() -> Self {
        LatencyModel {
            connect: Duration::from_millis(20),
            dispatch: Duration::from_millis(2),
            scan_per_kilorow: Duration::from_micros(150),
            transfer_per_kilorow: Duration::from_micros(400),
        }
    }

    /// A cloud database across a WAN.
    pub fn wan() -> Self {
        LatencyModel {
            connect: Duration::from_millis(120),
            dispatch: Duration::from_millis(15),
            scan_per_kilorow: Duration::from_micros(150),
            transfer_per_kilorow: Duration::from_millis(2),
        }
    }
}

/// Cumulative counters, for experiment reporting.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    pub connects: usize,
    pub queries: usize,
    pub rows_returned: u64,
    pub bytes_uploaded: u64,
    pub bytes_downloaded: u64,
    pub temp_tables_created: usize,
    /// Queries that piggybacked on an in-flight scan of the same table.
    pub shared_scans: usize,
    /// Total server-core busy time (for utilization accounting).
    pub busy: Duration,
    /// Injected faults, by kind (all zero without a [`FaultPlan`]).
    pub connect_faults: usize,
    pub transient_faults: usize,
    pub dropped_connections: usize,
    pub slow_queries: usize,
    pub temp_table_faults: usize,
    /// Queries that exceeded their [`RemoteQuery::timeout`] deadline.
    pub timeouts: usize,
}

/// A deterministic fault-injection schedule for a simulated backend.
///
/// Each probability is evaluated against a pure hash of
/// `(seed, fault site, operation ordinal)`, **not** a shared mutable RNG:
/// the n-th connect attempt (or n-th query on the server) behaves
/// identically on every run regardless of thread interleaving, which is
/// what makes the fault-tolerance suite repeatable. Ordinals are
/// per-server, assigned by atomic counters.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    pub seed: u64,
    /// Probability a connect attempt fails with a transient error (after
    /// paying the connect latency, like a real refused/reset handshake).
    pub connect_failure: f64,
    /// Probability a query fails with a transient error after dispatch.
    pub transient_query_failure: f64,
    /// Probability a query is slowed by `slow_query_delay` (models a
    /// stuck/overloaded server; with a [`RemoteQuery::timeout`] this becomes
    /// a bounded timeout instead of a hang).
    pub slow_query: f64,
    pub slow_query_delay: Duration,
    /// Probability the connection drops mid-query: the query fails
    /// transiently and the session is permanently poisoned
    /// ([`Connection::healthy`] turns false).
    pub connection_drop: f64,
    /// Probability a temp-table creation fails transiently (on top of the
    /// unconditional [`SimDb::set_fail_temp_tables`] switch).
    pub temp_table_failure: f64,
    /// Probability a distributed-cache operation lands on an unreachable
    /// node: gets come back empty, puts are silently dropped (exactly the
    /// contract of a best-effort external KV layer).
    pub cache_node_outage: f64,
    /// Probability a distributed-cache operation hits a slow node and pays
    /// `cache_slow_delay` on top of the normal round trip.
    pub cache_slow_node: f64,
    pub cache_slow_delay: Duration,
}

impl FaultPlan {
    /// No faults; the identity plan.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            connect_failure: 0.0,
            transient_query_failure: 0.0,
            slow_query: 0.0,
            slow_query_delay: Duration::ZERO,
            connection_drop: 0.0,
            temp_table_failure: 0.0,
            cache_node_outage: 0.0,
            cache_slow_node: 0.0,
            cache_slow_delay: Duration::ZERO,
        }
    }

    /// All-zero plan carrying a seed, for builder-style setup.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Deterministic [0, 1) roll for this plan at decision `site`, operation
    /// `ordinal` — the primitive every fault consumer shares.
    pub fn roll(&self, site: u64, ordinal: u64) -> f64 {
        fault_roll(self.seed, site, ordinal)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Fault decision sites (salts for the deterministic roll). Public so other
/// layers (e.g. the distributed cache) draw from the same schedule without
/// colliding with the backend's sites.
pub const SITE_CONNECT: u64 = 1;
pub const SITE_QUERY_TRANSIENT: u64 = 2;
pub const SITE_QUERY_SLOW: u64 = 3;
pub const SITE_QUERY_DROP: u64 = 4;
pub const SITE_TEMP_TABLE: u64 = 5;
pub const SITE_CACHE_GET: u64 = 6;
pub const SITE_CACHE_PUT: u64 = 7;

/// Uniform [0, 1) roll from `(seed, site, ordinal)` via SplitMix64 mixing
/// (the shared [`tabviz_common::hash`] primitives — the cluster ring and
/// traffic generator draw from the same well).
pub fn fault_roll(seed: u64, site: u64, n: u64) -> f64 {
    tabviz_common::hash::roll(seed, site, n)
}

/// A counting semaphore (parking_lot has none; this is the classic
/// mutex+condvar formulation).
struct Semaphore {
    count: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore {
            count: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self, n: usize) {
        let mut c = self.count.lock();
        while *c < n {
            self.cv.wait(&mut c);
        }
        *c -= n;
    }

    fn release(&self, n: usize) {
        let mut c = self.count.lock();
        *c += n;
        self.cv.notify_all();
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub capabilities: Capabilities,
    pub latency: LatencyModel,
    pub architecture: ServerArchitecture,
    /// Total server cores contended by concurrent queries.
    pub cores: usize,
    /// The Sect. 3.5 "shared scans" feature ("present in several systems,
    /// including SQL Server. It allows the storage layer to pipe pages of a
    /// single table scan to multiple concurrently handled execution plans"):
    /// a query arriving while another is scanning the same table piggybacks
    /// on the in-flight scan and pays only a fraction of the scan cost.
    pub shared_scans: bool,
    /// Deterministic fault injection (none by default).
    pub faults: Option<FaultPlan>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            capabilities: Capabilities::default(),
            latency: LatencyModel::instant(),
            architecture: ServerArchitecture::ThreadPerQuery,
            cores: 8,
            shared_scans: false,
            faults: None,
        }
    }
}

/// Fraction of the scan cost a piggybacking query still pays (plan setup,
/// partially-missed pages).
const SHARED_SCAN_COST_FRACTION: f64 = 0.25;

struct SimInner {
    name: String,
    config: SimConfig,
    db: Arc<Database>,
    cores: Semaphore,
    throttle: Option<Semaphore>,
    open_connections: AtomicUsize,
    /// table → number of scans currently in flight (shared-scan detection).
    scans_inflight: Mutex<std::collections::HashMap<String, usize>>,
    stats: Mutex<SimStats>,
    /// Failure injection: next CREATE TEMP TABLE fails (exercises the Data
    /// Server's rewrite-without-temp-table fallback, Sect. 5.3).
    fail_temp_tables: AtomicBool,
    /// Installed fault plan (from config, or replaced via
    /// [`SimDb::set_fault_plan`]).
    faults: Mutex<Option<FaultPlan>>,
    /// Per-site operation ordinals driving the deterministic fault rolls.
    connect_ops: AtomicU64,
    query_ops: AtomicU64,
    temp_ops: AtomicU64,
}

/// Human-readable fault-site name (event labels, error attribution).
fn site_name(site: u64) -> &'static str {
    match site {
        SITE_CONNECT => "connect_failure",
        SITE_QUERY_TRANSIENT => "transient_query_failure",
        SITE_QUERY_SLOW => "slow_query",
        SITE_QUERY_DROP => "connection_drop",
        SITE_TEMP_TABLE => "temp_table_failure",
        _ => "unknown",
    }
}

impl SimInner {
    /// Deterministic decision for the `n`-th operation at a fault site.
    fn fault_fires(&self, site: u64, n: u64, pick: impl Fn(&FaultPlan) -> f64) -> bool {
        self.fault_fires_tagged(site, n, pick).is_some()
    }

    /// Like [`Self::fault_fires`], but when the fault fires it also records
    /// a trace event naming the site and seed-roll ordinal — so a query
    /// profile (or a failing test's error text) can name the exact fault —
    /// and returns the plan seed for error attribution.
    fn fault_fires_tagged(
        &self,
        site: u64,
        n: u64,
        pick: impl Fn(&FaultPlan) -> f64,
    ) -> Option<u64> {
        let faults = self.faults.lock();
        let plan = faults.as_ref()?;
        let p = pick(plan);
        if p > 0.0 && fault_roll(plan.seed, site, n) < p {
            tabviz_obs::event(
                tabviz_obs::stage::FAULT_INJECTED,
                Some(site_name(site)),
                Some(n),
            );
            Some(plan.seed)
        } else {
            None
        }
    }

    fn slow_query_delay(&self) -> Duration {
        self.faults
            .lock()
            .as_ref()
            .map(|p| p.slow_query_delay)
            .unwrap_or(Duration::ZERO)
    }
}

/// A simulated remote database server. Cheap to clone (shared internals).
#[derive(Clone)]
pub struct SimDb {
    inner: Arc<SimInner>,
}

impl SimDb {
    pub fn new(name: impl Into<String>, db: Arc<Database>, config: SimConfig) -> Self {
        let throttle = (config.capabilities.max_concurrent_queries > 0)
            .then(|| Semaphore::new(config.capabilities.max_concurrent_queries));
        SimDb {
            inner: Arc::new(SimInner {
                name: name.into(),
                cores: Semaphore::new(config.cores),
                throttle,
                open_connections: AtomicUsize::new(0),
                scans_inflight: Mutex::new(std::collections::HashMap::new()),
                stats: Mutex::new(SimStats::default()),
                fail_temp_tables: AtomicBool::new(false),
                faults: Mutex::new(config.faults.clone()),
                connect_ops: AtomicU64::new(0),
                query_ops: AtomicU64::new(0),
                temp_ops: AtomicU64::new(0),
                config,
                db,
            }),
        }
    }

    pub fn stats(&self) -> SimStats {
        self.inner.stats.lock().clone()
    }

    pub fn reset_stats(&self) {
        *self.inner.stats.lock() = SimStats::default();
    }

    /// Make subsequent `create_temp_table` calls fail (until unset).
    pub fn set_fail_temp_tables(&self, fail: bool) {
        self.inner.fail_temp_tables.store(fail, Ordering::SeqCst);
    }

    /// Install (or clear) a fault plan at runtime. Operation ordinals are
    /// not reset, so a replaced plan continues the deterministic schedule
    /// from the current position.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *self.inner.faults.lock() = plan;
    }

    pub fn open_connection_count(&self) -> usize {
        self.inner.open_connections.load(Ordering::SeqCst)
    }

    /// The shared base database (for test setup).
    pub fn base_database(&self) -> &Arc<Database> {
        &self.inner.db
    }
}

impl DataSource for SimDb {
    fn name(&self) -> &str {
        &self.inner.name
    }

    fn capabilities(&self) -> &Capabilities {
        &self.inner.config.capabilities
    }

    fn connect(&self) -> Result<Box<dyn Connection>> {
        let max = self.inner.config.capabilities.max_connections;
        if max > 0 {
            // Reserve a slot atomically.
            let prev = self.inner.open_connections.fetch_add(1, Ordering::SeqCst);
            if prev >= max {
                self.inner.open_connections.fetch_sub(1, Ordering::SeqCst);
                return Err(TvError::Backend(format!(
                    "{}: connection limit ({max}) reached",
                    self.inner.name
                )));
            }
        } else {
            self.inner.open_connections.fetch_add(1, Ordering::SeqCst);
        }
        sleep(self.inner.config.latency.connect);
        // Connect-time fault: the handshake latency is paid (as with a real
        // refused/reset connection) but no session comes back.
        let n = self.inner.connect_ops.fetch_add(1, Ordering::SeqCst);
        if let Some(seed) = self
            .inner
            .fault_fires_tagged(SITE_CONNECT, n, |p| p.connect_failure)
        {
            self.inner.open_connections.fetch_sub(1, Ordering::SeqCst);
            self.inner.stats.lock().connect_faults += 1;
            return Err(TvError::Transient(format!(
                "{}: connect attempt refused (fault connect_failure#{n} seed {seed})",
                self.inner.name
            )));
        }
        {
            let mut st = self.inner.stats.lock();
            st.connects += 1;
        }
        let session_db = Arc::new(
            self.inner
                .db
                .session_view(format!("{}-session", self.inner.name)),
        );
        // A generic SQL server evaluates exactly the query it is sent: no
        // Tableau-style join culling / referential-integrity assumptions
        // (those belong to the client-side query processor).
        let mut exec = ExecOptions::serial();
        exec.optimizer.enable_join_culling = false;
        exec.optimizer.assume_referential_integrity = false;
        Ok(Box::new(SimConnection {
            server: Arc::clone(&self.inner),
            tde: Tde::new(Arc::clone(&session_db)),
            session_db,
            exec,
            dropped: false,
        }))
    }

    fn table_meta(&self, table: &str) -> Result<TableMeta> {
        tabviz_tde::TdeCatalog::new(Arc::clone(&self.inner.db)).table_meta(table)
    }
}

fn sleep(d: Duration) {
    if !d.is_zero() {
        std::thread::sleep(d);
    }
}

/// Sleep for `d`, but never past `deadline`. `Err(())` means the full
/// duration did not fit: the simulated work would still be running when the
/// statement timeout fires, so the caller must report a timeout. This is
/// what keeps an injected slow-query "hang" bounded instead of wedging the
/// whole batch.
fn sleep_within(d: Duration, deadline: Option<Instant>) -> std::result::Result<(), ()> {
    match deadline {
        None => {
            sleep(d);
            Ok(())
        }
        Some(dl) => {
            let remaining = dl.saturating_duration_since(Instant::now());
            if d <= remaining {
                sleep(d);
                Ok(())
            } else {
                sleep(remaining);
                Err(())
            }
        }
    }
}

struct SimConnection {
    server: Arc<SimInner>,
    session_db: Arc<Database>,
    tde: Tde,
    exec: ExecOptions,
    /// Set when a connection-drop fault fires; the session is then dead.
    dropped: bool,
}

impl SimConnection {
    /// Rows the server will touch to answer this plan: base + temp tables.
    fn scan_rows(&self, plan: &tabviz_tql::LogicalPlan) -> usize {
        plan.tables()
            .iter()
            .filter_map(|t| self.session_db.resolve(t).ok())
            .map(|t| t.row_count())
            .sum()
    }
}

impl SimConnection {
    fn timeout_err(&self, query: &RemoteQuery) -> TvError {
        self.server.stats.lock().timeouts += 1;
        TvError::Timeout(format!(
            "{}: query exceeded its {:?} deadline",
            self.server.name,
            query.timeout.unwrap_or_default()
        ))
    }
}

impl Connection for SimConnection {
    fn execute(&mut self, query: &RemoteQuery) -> Result<Chunk> {
        if self.dropped {
            return Err(TvError::Transient(format!(
                "{}: connection is dropped",
                self.server.name
            )));
        }
        let cfg = &self.server.config;
        let deadline = query.timeout.map(|t| Instant::now() + t);
        {
            let mut st = self.server.stats.lock();
            st.queries += 1;
            st.bytes_uploaded += query.upload_bytes() as u64;
        }
        let n = self.server.query_ops.fetch_add(1, Ordering::SeqCst);
        if sleep_within(cfg.latency.dispatch, deadline).is_err() {
            return Err(self.timeout_err(query));
        }
        // Mid-query connection drop: the query fails transiently AND the
        // session is poisoned — later use of this connection also fails, and
        // the pool must not recycle it.
        if let Some(seed) = self
            .server
            .fault_fires_tagged(SITE_QUERY_DROP, n, |p| p.connection_drop)
        {
            self.dropped = true;
            self.server.stats.lock().dropped_connections += 1;
            return Err(TvError::Transient(format!(
                "{}: connection dropped mid-query (fault connection_drop#{n} seed {seed})",
                self.server.name
            )));
        }
        if let Some(seed) = self
            .server
            .fault_fires_tagged(SITE_QUERY_TRANSIENT, n, |p| p.transient_query_failure)
        {
            self.server.stats.lock().transient_faults += 1;
            return Err(TvError::Transient(format!(
                "{}: transient server error (fault transient_query_failure#{n} seed {seed})",
                self.server.name
            )));
        }

        let want_cores = match cfg.architecture {
            ServerArchitecture::ThreadPerQuery => 1,
            ServerArchitecture::ParallelPlans { dop } => dop.clamp(1, cfg.cores),
        };
        if let Some(t) = &self.server.throttle {
            t.acquire(1);
        }
        self.server.cores.acquire(want_cores);

        let scan_rows = self.scan_rows(&query.plan);
        let mut busy = Duration::from_nanos(
            (cfg.latency.scan_per_kilorow.as_nanos() as u64).saturating_mul(scan_rows as u64)
                / 1000
                / want_cores as u64,
        );
        // Injected slow query: the server stalls for an extra delay (GC
        // pause, lock wait, overloaded I/O). Without a query timeout this
        // is simply slow; with one it surfaces as a bounded Timeout.
        if self
            .server
            .fault_fires(SITE_QUERY_SLOW, n, |p| p.slow_query)
        {
            busy += self.server.slow_query_delay();
            self.server.stats.lock().slow_queries += 1;
        }
        // Shared scans: piggyback on a scan of the same table already in
        // flight and pay a fraction of the scan cost.
        let tables = query.plan.tables();
        let mut piggybacked = false;
        if cfg.shared_scans {
            let mut inflight = self.server.scans_inflight.lock();
            piggybacked = tables
                .iter()
                .any(|t| inflight.get(t).copied().unwrap_or(0) > 0);
            for t in &tables {
                *inflight.entry(t.clone()).or_insert(0) += 1;
            }
            if piggybacked {
                busy = Duration::from_secs_f64(busy.as_secs_f64() * SHARED_SCAN_COST_FRACTION);
                self.server.stats.lock().shared_scans += 1;
            }
        }
        let timed_out = sleep_within(busy, deadline).is_err();
        let result = if timed_out {
            Err(self.timeout_err(query))
        } else {
            self.tde
                .execute_plan(&query.plan, &self.exec)
                .map_err(|e| TvError::Backend(format!("{}: {e}", self.server.name)))
        };

        self.server.cores.release(want_cores);
        if cfg.shared_scans {
            let mut inflight = self.server.scans_inflight.lock();
            for t in &tables {
                if let Some(n) = inflight.get_mut(t) {
                    *n = n.saturating_sub(1);
                }
            }
        }
        let _ = piggybacked;
        if let Some(t) = &self.server.throttle {
            t.release(1);
        }
        let chunk = result?;

        let transfer = Duration::from_nanos(
            (cfg.latency.transfer_per_kilorow.as_nanos() as u64).saturating_mul(chunk.len() as u64)
                / 1000,
        );
        if sleep_within(transfer, deadline).is_err() {
            return Err(self.timeout_err(query));
        }
        {
            let mut st = self.server.stats.lock();
            st.rows_returned += chunk.len() as u64;
            st.bytes_downloaded += chunk.approx_bytes() as u64;
            st.busy += busy.max(Duration::from_nanos(1)) * want_cores as u32;
        }
        Ok(chunk)
    }

    fn create_temp_table(&mut self, name: &str, data: &Chunk) -> Result<()> {
        if self.dropped {
            return Err(TvError::Transient(format!(
                "{}: connection is dropped",
                self.server.name
            )));
        }
        if !self.server.config.capabilities.supports_temp_tables {
            return Err(TvError::Unsupported(format!(
                "{} does not support temporary tables",
                self.server.name
            )));
        }
        if self.server.fail_temp_tables.load(Ordering::SeqCst) {
            return Err(TvError::Backend(format!(
                "{}: temp table creation failed",
                self.server.name
            )));
        }
        let n = self.server.temp_ops.fetch_add(1, Ordering::SeqCst);
        if let Some(seed) = self
            .server
            .fault_fires_tagged(SITE_TEMP_TABLE, n, |p| p.temp_table_failure)
        {
            self.server.stats.lock().temp_table_faults += 1;
            return Err(TvError::Transient(format!(
                "{}: temp table creation failed transiently (fault temp_table_failure#{n} seed {seed})",
                self.server.name
            )));
        }
        sleep(self.server.config.latency.dispatch);
        // Uploading the rows costs transfer time in the other direction.
        let upload = Duration::from_nanos(
            (self.server.config.latency.transfer_per_kilorow.as_nanos() as u64)
                .saturating_mul(data.len() as u64)
                / 1000,
        );
        sleep(upload);
        self.session_db
            .put_temp(Table::from_chunk(name, data, &[])?)?;
        let mut st = self.server.stats.lock();
        st.temp_tables_created += 1;
        st.bytes_uploaded += data.approx_bytes() as u64;
        Ok(())
    }

    fn drop_temp_table(&mut self, name: &str) -> Result<()> {
        self.session_db
            .drop_table(tabviz_storage::database::TEMP_SCHEMA, name)
    }

    fn has_temp_table(&self, name: &str) -> bool {
        self.session_db
            .get_table(tabviz_storage::database::TEMP_SCHEMA, name)
            .is_ok()
    }

    fn temp_tables(&self) -> Vec<String> {
        self.session_db
            .table_names(tabviz_storage::database::TEMP_SCHEMA)
    }

    fn healthy(&self) -> bool {
        !self.dropped
    }
}

impl Drop for SimConnection {
    fn drop(&mut self) {
        self.server.open_connections.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_common::{DataType, Field, Schema, Value};
    use tabviz_tql::parse_plan;

    fn base_db(rows: usize) -> Arc<Database> {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("delay", DataType::Int),
            ])
            .unwrap(),
        );
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| {
                vec![
                    Value::Str(["AA", "DL", "WN"][i % 3].into()),
                    Value::Int(i as i64),
                ]
            })
            .collect();
        let db = Arc::new(Database::new("remote"));
        db.put(
            Table::from_chunk("flights", &Chunk::from_rows(schema, &data).unwrap(), &[]).unwrap(),
        )
        .unwrap();
        db
    }

    fn query(text: &str) -> RemoteQuery {
        RemoteQuery::new(text.to_string(), parse_plan(text).unwrap())
    }

    #[test]
    fn executes_real_results() {
        let sim = SimDb::new("sql1", base_db(300), SimConfig::default());
        let mut conn = sim.connect().unwrap();
        let out = conn
            .execute(&query(
                "(aggregate ((carrier)) ((count as n)) (scan flights))",
            ))
            .unwrap();
        assert_eq!(out.len(), 3);
        let st = sim.stats();
        assert_eq!(st.queries, 1);
        assert_eq!(st.connects, 1);
        assert_eq!(st.rows_returned, 3);
        assert!(st.bytes_uploaded > 0);
    }

    #[test]
    fn session_temp_tables_are_isolated() {
        let sim = SimDb::new("sql1", base_db(10), SimConfig::default());
        let mut c1 = sim.connect().unwrap();
        let mut c2 = sim.connect().unwrap();
        let schema = Arc::new(Schema::new(vec![Field::new("v", DataType::Str)]).unwrap());
        let data = Chunk::from_rows(schema, &[vec!["AA".into()]]).unwrap();
        c1.create_temp_table("filter1", &data).unwrap();
        assert!(c1.has_temp_table("filter1"));
        assert!(!c2.has_temp_table("filter1"));
        // c1 can join against its temp.
        let q = query("(aggregate () ((count as n)) (join inner ((carrier v)) (scan flights) (scan filter1)))");
        let out = c1.execute(&q).unwrap();
        assert_eq!(out.row(0)[0], Value::Int(4)); // AA appears at i%3==0 → 4 of 10
        assert!(c2.execute(&q).is_err()); // c2's session has no such table
        c1.drop_temp_table("filter1").unwrap();
        assert!(!c1.has_temp_table("filter1"));
    }

    #[test]
    fn connection_limit_enforced() {
        let mut cfg = SimConfig::default();
        cfg.capabilities.max_connections = 2;
        let sim = SimDb::new("limited", base_db(5), cfg);
        let c1 = sim.connect().unwrap();
        let _c2 = sim.connect().unwrap();
        assert!(sim.connect().is_err());
        drop(c1);
        assert!(sim.connect().is_ok());
    }

    #[test]
    fn temp_table_failure_injection() {
        let sim = SimDb::new("flaky", base_db(5), SimConfig::default());
        let mut conn = sim.connect().unwrap();
        let schema = Arc::new(Schema::new(vec![Field::new("v", DataType::Int)]).unwrap());
        let data = Chunk::from_rows(schema, &[vec![Value::Int(1)]]).unwrap();
        sim.set_fail_temp_tables(true);
        assert!(conn.create_temp_table("t", &data).is_err());
        sim.set_fail_temp_tables(false);
        assert!(conn.create_temp_table("t", &data).is_ok());
    }

    #[test]
    fn unsupported_temp_tables() {
        let mut caps = Capabilities::limited();
        caps.max_connections = 0;
        let cfg = SimConfig {
            capabilities: caps,
            ..Default::default()
        };
        let sim = SimDb::new("old", base_db(5), cfg);
        let mut conn = sim.connect().unwrap();
        let schema = Arc::new(Schema::new(vec![Field::new("v", DataType::Int)]).unwrap());
        let data = Chunk::from_rows(schema, &[vec![Value::Int(1)]]).unwrap();
        assert!(matches!(
            conn.create_temp_table("t", &data),
            Err(TvError::Unsupported(_))
        ));
    }

    #[test]
    fn concurrency_beats_serial_on_thread_per_query() {
        // 4 queries, each ~25ms of server CPU, thread-per-query, 8 cores:
        // serial ≈ 100ms, concurrent ≈ 25ms.
        let mut cfg = SimConfig::default();
        cfg.latency.scan_per_kilorow = Duration::from_millis(5);
        cfg.architecture = ServerArchitecture::ThreadPerQuery;
        let sim = SimDb::new("warehouse", base_db(5_000), cfg);
        let q = "(aggregate ((carrier)) ((count as n)) (scan flights))";

        let t0 = std::time::Instant::now();
        let mut conn = sim.connect().unwrap();
        for _ in 0..4 {
            conn.execute(&query(q)).unwrap();
        }
        let serial = t0.elapsed();

        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sim = sim.clone();
                s.spawn(move || {
                    let mut c = sim.connect().unwrap();
                    c.execute(&query(q)).unwrap();
                });
            }
        });
        let parallel = t0.elapsed();
        assert!(
            parallel < serial,
            "parallel {parallel:?} should beat serial {serial:?}"
        );
    }

    #[test]
    fn shared_scans_make_concurrent_same_table_queries_cheaper() {
        let mk = |shared: bool| {
            let mut cfg = SimConfig::default();
            cfg.latency.scan_per_kilorow = Duration::from_millis(8); // 40ms/query
            cfg.shared_scans = shared;
            SimDb::new("srv", base_db(5_000), cfg)
        };
        let run_pair = |sim: &SimDb| {
            let q = "(aggregate ((carrier)) ((count as n)) (scan flights))";
            let t0 = std::time::Instant::now();
            std::thread::scope(|s| {
                for _ in 0..3 {
                    let sim = sim.clone();
                    s.spawn(move || {
                        let mut c = sim.connect().unwrap();
                        c.execute(&query(q)).unwrap();
                    });
                }
            });
            t0.elapsed()
        };
        let sim_off = mk(false);
        let t_off = run_pair(&sim_off);
        let sim_on = mk(true);
        let t_on = run_pair(&sim_on);
        assert!(sim_on.stats().shared_scans >= 1, "later arrivals piggyback");
        assert_eq!(sim_off.stats().shared_scans, 0);
        assert!(
            t_on < t_off,
            "shared scans {t_on:?} should beat independent scans {t_off:?}"
        );
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let plan = FaultPlan {
            transient_query_failure: 0.4,
            connection_drop: 0.1,
            ..FaultPlan::seeded(7)
        };
        let outcomes = |seed: u64| {
            let mut plan = plan.clone();
            plan.seed = seed;
            let cfg = SimConfig {
                faults: Some(plan),
                ..Default::default()
            };
            let sim = SimDb::new("flaky", base_db(50), cfg);
            let q = query("(aggregate ((carrier)) ((count as n)) (scan flights))");
            (0..32)
                .map(|_| {
                    // Fresh connection per query so a drop doesn't cascade.
                    let mut c = sim.connect().unwrap();
                    match c.execute(&q) {
                        Ok(_) => 'o',
                        Err(TvError::Transient(_)) => 't',
                        Err(_) => 'x',
                    }
                })
                .collect::<String>()
        };
        let a = outcomes(7);
        assert_eq!(a, outcomes(7), "same seed, same schedule");
        assert_ne!(a, outcomes(8), "different seed, different schedule");
        assert!(a.contains('t'), "faults actually fire: {a}");
        assert!(a.contains('o'), "not everything fails: {a}");
    }

    #[test]
    fn connect_failures_fire_and_release_the_slot() {
        let mut cfg = SimConfig::default();
        cfg.capabilities.max_connections = 2;
        cfg.faults = Some(FaultPlan {
            connect_failure: 0.5,
            ..FaultPlan::seeded(3)
        });
        let sim = SimDb::new("flaky", base_db(5), cfg);
        let mut failures = 0;
        for _ in 0..20 {
            match sim.connect() {
                Ok(c) => drop(c),
                Err(TvError::Transient(_)) => failures += 1,
                Err(e) => panic!("unexpected error class: {e}"),
            }
        }
        assert!(failures > 0);
        assert_eq!(sim.stats().connect_faults, failures);
        // Failed attempts must not leak connection-limit slots.
        sim.set_fault_plan(None);
        let _a = sim.connect().unwrap();
        let _b = sim.connect().unwrap();
    }

    #[test]
    fn dropped_connection_is_poisoned() {
        let cfg = SimConfig {
            faults: Some(FaultPlan {
                connection_drop: 1.0,
                ..FaultPlan::seeded(1)
            }),
            ..Default::default()
        };
        let sim = SimDb::new("flaky", base_db(10), cfg);
        let mut conn = sim.connect().unwrap();
        assert!(conn.healthy());
        let q = query("(aggregate () ((count as n)) (scan flights))");
        assert!(matches!(conn.execute(&q), Err(TvError::Transient(_))));
        assert!(!conn.healthy(), "drop poisons the session");
        // Every later use fails too — without consuming more fault ordinals.
        assert!(matches!(conn.execute(&q), Err(TvError::Transient(_))));
        assert_eq!(sim.stats().dropped_connections, 1);
    }

    #[test]
    fn slow_query_bounded_by_timeout() {
        let cfg = SimConfig {
            faults: Some(FaultPlan {
                slow_query: 1.0,
                slow_query_delay: Duration::from_secs(30),
                ..FaultPlan::seeded(2)
            }),
            ..Default::default()
        };
        let sim = SimDb::new("stuck", base_db(10), cfg);
        let mut conn = sim.connect().unwrap();
        let q = query("(aggregate () ((count as n)) (scan flights))")
            .with_timeout(Duration::from_millis(30));
        let t0 = std::time::Instant::now();
        let err = conn.execute(&q).unwrap_err();
        assert!(matches!(err, TvError::Timeout(_)), "{err}");
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "a 30s stall must be cut off by the 30ms deadline"
        );
        assert_eq!(sim.stats().timeouts, 1);
        assert!(conn.healthy(), "a timeout does not poison the session");
    }

    #[test]
    fn throttle_limits_concurrency() {
        let mut cfg = SimConfig::default();
        cfg.latency.scan_per_kilorow = Duration::from_millis(4);
        cfg.capabilities.max_concurrent_queries = 1;
        let sim = SimDb::new("throttled", base_db(5_000), cfg);
        let q = "(aggregate ((carrier)) ((count as n)) (scan flights))";
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let sim = sim.clone();
                s.spawn(move || {
                    let mut c = sim.connect().unwrap();
                    c.execute(&query(q)).unwrap();
                });
            }
        });
        let elapsed = t0.elapsed();
        // Three ~20ms queries forced serial by the throttle: ≥ 50ms.
        assert!(elapsed >= Duration::from_millis(50), "{elapsed:?}");
    }
}
