//! The `DataSource` / `Connection` traits.
//!
//! A connection "most often maps to a database server connection maintained
//! over a network stack" (Sect. 3.1); its session owns temporary structures
//! ("temporary tables created for large filters ... are likely to be useful
//! while formulating queries within the same query batch", Sect. 3.5).

use crate::capability::Capabilities;
use std::time::Duration;
use tabviz_common::{Chunk, Result};
use tabviz_tql::{LogicalPlan, TableMeta};

/// A query as shipped to a backend: the dialect text (what travels over the
/// simulated network and keys the literal cache) plus the logical plan the
/// simulated server executes.
#[derive(Debug, Clone)]
pub struct RemoteQuery {
    pub text: String,
    pub plan: LogicalPlan,
    /// Per-query deadline. A backend that cannot answer within it returns
    /// [`tabviz_common::TvError::Timeout`] instead of letting the caller
    /// hang — the driver-level statement timeout every real backend offers.
    pub timeout: Option<Duration>,
}

impl RemoteQuery {
    pub fn new(text: String, plan: LogicalPlan) -> Self {
        RemoteQuery {
            text,
            plan,
            timeout: None,
        }
    }

    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Bytes this query costs to transmit (query-text upload).
    pub fn upload_bytes(&self) -> usize {
        self.text.len()
    }
}

/// An open session against a backend. Not `Sync`: one query at a time per
/// connection, as with real drivers — concurrency comes from *multiple*
/// connections (Sect. 3.5).
pub trait Connection: Send {
    /// Execute a query in this session.
    fn execute(&mut self, query: &RemoteQuery) -> Result<Chunk>;

    /// Create (or replace) a session-scoped temporary table.
    fn create_temp_table(&mut self, name: &str, data: &Chunk) -> Result<()>;

    fn drop_temp_table(&mut self, name: &str) -> Result<()>;

    /// Whether the session currently holds the given temp table — used by
    /// the pool to route queries to connections that already have the
    /// structure ("popular temporary structures will be duplicated in
    /// several connections", Sect. 3.5).
    fn has_temp_table(&self, name: &str) -> bool;

    /// Names of all session temp tables.
    fn temp_tables(&self) -> Vec<String>;

    /// Whether the session is still usable. A connection that was dropped
    /// mid-query reports `false`; the pool discards such sessions instead of
    /// returning them to the idle set ("poisoned" connections must never be
    /// handed to a later acquirer).
    fn healthy(&self) -> bool {
        true
    }
}

/// A backend: factory of connections plus metadata.
pub trait DataSource: Send + Sync {
    fn name(&self) -> &str;

    fn capabilities(&self) -> &Capabilities;

    /// Open a new session. Pays the connect cost.
    fn connect(&self) -> Result<Box<dyn Connection>>;

    /// Table metadata, for query compilation.
    fn table_meta(&self, table: &str) -> Result<TableMeta>;
}
