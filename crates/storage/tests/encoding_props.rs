//! Property tests: every codec must round-trip any column exactly, and
//! range decoding must agree with slicing the full decode.

use proptest::prelude::*;
use tabviz_common::{ColumnVec, DataType, Field, Value};
use tabviz_storage::column::{Codec, StoredColumn};

fn arb_value(dtype: DataType) -> BoxedStrategy<Value> {
    match dtype {
        DataType::Int => prop_oneof![
            3 => (-100i64..100).prop_map(Value::Int),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Real => prop_oneof![
            3 => (-100.0f64..100.0).prop_map(Value::Real),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Bool => prop_oneof![
            2 => any::<bool>().prop_map(Value::Bool),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Date => prop_oneof![
            3 => (-5000i32..5000).prop_map(Value::Date),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Str => prop_oneof![
            3 => proptest::sample::select(vec!["AA", "DL", "WN", "UA", "", "日本", "O'Hare"])
                .prop_map(|s| Value::Str(s.to_string())),
            1 => Just(Value::Null),
        ]
        .boxed(),
    }
}

fn arb_dtype() -> impl Strategy<Value = DataType> {
    proptest::sample::select(vec![
        DataType::Int,
        DataType::Real,
        DataType::Bool,
        DataType::Date,
        DataType::Str,
    ])
}

fn arb_column() -> impl Strategy<Value = (DataType, Vec<Value>)> {
    arb_dtype().prop_flat_map(|dt| {
        proptest::collection::vec(arb_value(dt), 0..200).prop_map(move |vs| (dt, vs))
    })
}

/// Columns with long runs, to exercise RLE properly.
fn arb_runny_column() -> impl Strategy<Value = (DataType, Vec<Value>)> {
    proptest::collection::vec((0i64..5, 1usize..30), 1..20).prop_map(|runs| {
        let mut vs = Vec::new();
        for (v, n) in runs {
            for _ in 0..n {
                vs.push(if v == 4 { Value::Null } else { Value::Int(v) });
            }
        }
        (DataType::Int, vs)
    })
}

fn column_vec(dtype: DataType, values: &[Value]) -> ColumnVec {
    ColumnVec::from_iter_typed(dtype, values.iter()).unwrap()
}

proptest! {
    #[test]
    fn every_codec_roundtrips((dtype, values) in arb_column()) {
        let col = column_vec(dtype, &values);
        for codec in [Codec::Auto, Codec::Plain, Codec::Rle, Codec::Delta] {
            let mut field = Field::new("c", dtype);
            field.nullable = true;
            let sc = StoredColumn::encode_with(field, &col, codec).unwrap();
            let decoded = sc.decode().unwrap();
            prop_assert_eq!(decoded.len(), values.len());
            for (i, v) in values.iter().enumerate() {
                prop_assert_eq!(&decoded.get(i), v, "codec {:?} row {}", codec, i);
                prop_assert_eq!(&sc.value_at(i), v, "value_at codec {:?} row {}", codec, i);
            }
        }
    }

    #[test]
    fn range_decode_equals_full_slice(
        (dtype, values) in arb_column(),
        frac in 0.0f64..1.0,
        lenfrac in 0.0f64..1.0,
    ) {
        if values.is_empty() {
            return Ok(());
        }
        let col = column_vec(dtype, &values);
        let start = ((values.len() - 1) as f64 * frac) as usize;
        let len = (((values.len() - start) as f64) * lenfrac) as usize;
        for codec in [Codec::Plain, Codec::Rle, Codec::Delta] {
            let sc = StoredColumn::encode_with(Field::new("c", dtype), &col, codec).unwrap();
            let part = sc.decode_range(start, len).unwrap();
            prop_assert_eq!(part.len(), len);
            for i in 0..len {
                prop_assert_eq!(part.get(i), values[start + i].clone());
            }
        }
    }

    #[test]
    fn rle_runs_reconstruct_the_column((_, values) in arb_runny_column()) {
        let col = column_vec(DataType::Int, &values);
        let sc = StoredColumn::encode_with(Field::new("c", DataType::Int), &col, Codec::Rle).unwrap();
        let runs = sc.rle_runs().expect("rle codec must expose runs");
        // Runs must tile [0, len) exactly and agree with the data.
        let mut cursor = 0usize;
        for r in &runs {
            prop_assert_eq!(r.start, cursor);
            for v in &values[r.start..r.start + r.count] {
                prop_assert_eq!(v, &r.value);
            }
            cursor += r.count;
        }
        prop_assert_eq!(cursor, values.len());
        // Adjacent runs hold different values (maximal runs).
        for w in runs.windows(2) {
            prop_assert_ne!(&w[0].value, &w[1].value);
        }
    }

    #[test]
    fn pack_roundtrip_preserves_tables((dtype, values) in arb_column()) {
        use tabviz_common::{Chunk, Schema};
        use std::sync::Arc;
        let schema = Arc::new(Schema::new(vec![Field::new("c", dtype)]).unwrap());
        let rows: Vec<Vec<Value>> = values.iter().map(|v| vec![v.clone()]).collect();
        let chunk = Chunk::from_rows(schema, &rows).unwrap();
        let db = tabviz_storage::Database::new("p");
        db.put(tabviz_storage::Table::from_chunk("t", &chunk, &[]).unwrap()).unwrap();
        let img = tabviz_storage::pack::pack(&db);
        let db2 = tabviz_storage::pack::unpack(&img).unwrap();
        let back = db2.resolve("t").unwrap().scan(None).unwrap();
        prop_assert_eq!(back.to_rows(), chunk.to_rows());
    }

    #[test]
    fn stats_bound_the_data((dtype, values) in arb_column()) {
        let col = column_vec(dtype, &values);
        let sc = StoredColumn::encode(Field::new("c", dtype), &col).unwrap();
        let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
        prop_assert_eq!(sc.stats.null_count, values.len() - non_null.len());
        if let (Some(min), Some(max)) = (&sc.stats.min, &sc.stats.max) {
            for v in &non_null {
                prop_assert!(*v >= min && *v <= max);
            }
        } else {
            prop_assert!(non_null.is_empty());
        }
    }
}
