//! Storage layer of the Tableau Data Engine reproduction.
//!
//! Sect. 4.1.1 of the paper: a three-layer namespace (schema / table /
//! column), dictionary compression for strings ("heap compression") and
//! fixed-length values ("array compression"), lightweight *encodings*
//! (run-length, delta) for fixed-width data, column-level collated strings,
//! and the ability to "compact a database into a single file".
//!
//! * [`column`] — encoded columns ([`column::StoredColumn`]) with
//!   dictionary compression and RLE/delta encodings, range decoding (the
//!   basis of Sect. 4.3 range skipping), and RLE run enumeration (the
//!   IndexTable source).
//! * [`table`] — read-only tables with a declared major sort order and
//!   fraction-wise parallel scans (the `FractionTable` substrate).
//! * [`database`] — the schema/table/column namespace plus temp tables.
//! * [`pack`] — single-file serialization of a whole database.
//! * [`stats`] — per-column statistics used by the optimizer.

pub mod column;
pub mod database;
pub mod pack;
pub mod stats;
pub mod table;

pub use column::{ColumnData, PhysVec, RleRun, StoredColumn};
pub use database::Database;
pub use stats::{BlockStats, ColumnStats, BLOCK_ROWS};
pub use table::Table;
