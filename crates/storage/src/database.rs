//! The schema / table / column namespace.
//!
//! Sect. 4.1.1: "the TDE has a three-layer namespace for logical objects in a
//! database: schema, table and column ... The metadata is stored in the
//! reserved SYS schema." Temp tables (shadow extracts, Data Server filter
//! tables) live in the reserved `TEMP` schema and are excluded from packing.

use crate::table::Table;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;
use tabviz_common::{Result, TvError};

/// Reserved schema names.
pub const SYS_SCHEMA: &str = "SYS";
pub const TEMP_SCHEMA: &str = "TEMP";
/// Default user schema.
pub const DEFAULT_SCHEMA: &str = "Extract";

/// A named collection of schemas, each holding tables.
///
/// Thread-safe: the TDE server deployment shares one `Database` across
/// worker threads (shared-everything, Sect. 4.1.4).
#[derive(Debug)]
pub struct Database {
    name: String,
    schemas: RwLock<BTreeMap<String, BTreeMap<String, Arc<Table>>>>,
}

impl Database {
    pub fn new(name: impl Into<String>) -> Self {
        let mut schemas = BTreeMap::new();
        schemas.insert(DEFAULT_SCHEMA.to_string(), BTreeMap::new());
        schemas.insert(SYS_SCHEMA.to_string(), BTreeMap::new());
        schemas.insert(TEMP_SCHEMA.to_string(), BTreeMap::new());
        Database {
            name: name.into(),
            schemas: RwLock::new(schemas),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn create_schema(&self, schema: &str) -> Result<()> {
        let mut s = self.schemas.write();
        if s.contains_key(schema) {
            return Err(TvError::Schema(format!("schema '{schema}' already exists")));
        }
        s.insert(schema.to_string(), BTreeMap::new());
        Ok(())
    }

    pub fn schema_names(&self) -> Vec<String> {
        self.schemas.read().keys().cloned().collect()
    }

    /// Register a table in a schema; replaces any existing table of the same
    /// name (extract refresh semantics — Sect. 2: "extracts can be refreshed
    /// when appropriate").
    pub fn put_table(&self, schema: &str, table: Table) -> Result<Arc<Table>> {
        self.put_table_arc(schema, Arc::new(table))
    }

    /// Register an already-shared table without copying its columns — used
    /// to build cheap per-session views of a database (simulated backend
    /// sessions share base tables but own their temp tables).
    pub fn put_table_arc(&self, schema: &str, table: Arc<Table>) -> Result<Arc<Table>> {
        let mut s = self.schemas.write();
        let tables = s
            .get_mut(schema)
            .ok_or_else(|| TvError::Schema(format!("unknown schema '{schema}'")))?;
        tables.insert(table.name().to_string(), Arc::clone(&table));
        Ok(table)
    }

    /// A new database sharing this one's user tables by reference; reserved
    /// schemas (SYS, TEMP) start empty. Session-scoped temp tables go into
    /// the clone without becoming visible to other sessions.
    pub fn session_view(&self, name: impl Into<String>) -> Database {
        let view = Database::new(name);
        for (schema, table) in self.user_tables() {
            if !view.schema_names().contains(&schema) {
                let _ = view.create_schema(&schema);
            }
            let _ = view.put_table_arc(&schema, table);
        }
        view
    }

    /// Register in the default user schema.
    pub fn put(&self, table: Table) -> Result<Arc<Table>> {
        self.put_table(DEFAULT_SCHEMA, table)
    }

    /// Register a temp table (shadow extracts, filter tables).
    pub fn put_temp(&self, table: Table) -> Result<Arc<Table>> {
        self.put_table(TEMP_SCHEMA, table)
    }

    pub fn get_table(&self, schema: &str, name: &str) -> Result<Arc<Table>> {
        self.schemas
            .read()
            .get(schema)
            .and_then(|t| t.get(name))
            .cloned()
            .ok_or_else(|| TvError::Schema(format!("unknown table '{schema}.{name}'")))
    }

    /// Resolve an unqualified name: user schema first, then TEMP.
    pub fn resolve(&self, name: &str) -> Result<Arc<Table>> {
        if let Some((schema, table)) = name.split_once('.') {
            return self.get_table(schema, table);
        }
        self.get_table(DEFAULT_SCHEMA, name)
            .or_else(|_| self.get_table(TEMP_SCHEMA, name))
    }

    pub fn drop_table(&self, schema: &str, name: &str) -> Result<()> {
        let mut s = self.schemas.write();
        let tables = s
            .get_mut(schema)
            .ok_or_else(|| TvError::Schema(format!("unknown schema '{schema}'")))?;
        tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| TvError::Schema(format!("unknown table '{schema}.{name}'")))
    }

    /// Drop every temp table (connection close / session expiry, Sect. 5.4).
    pub fn clear_temp(&self) {
        if let Some(t) = self.schemas.write().get_mut(TEMP_SCHEMA) {
            t.clear();
        }
    }

    pub fn table_names(&self, schema: &str) -> Vec<String> {
        self.schemas
            .read()
            .get(schema)
            .map(|t| t.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// All `(schema, table)` pairs excluding reserved schemas — the content
    /// that gets packed into a single file.
    pub fn user_tables(&self) -> Vec<(String, Arc<Table>)> {
        self.schemas
            .read()
            .iter()
            .filter(|(name, _)| name.as_str() != SYS_SCHEMA && name.as_str() != TEMP_SCHEMA)
            .flat_map(|(schema, tables)| {
                tables
                    .values()
                    .map(|t| (schema.clone(), Arc::clone(t)))
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use tabviz_common::{Chunk, DataType, Field, Schema, Value};

    fn tiny_table(name: &str) -> Table {
        let schema = StdArc::new(Schema::new(vec![Field::new("x", DataType::Int)]).unwrap());
        let chunk = Chunk::from_rows(schema, &[vec![Value::Int(1)]]).unwrap();
        Table::from_chunk(name, &chunk, &[]).unwrap()
    }

    #[test]
    fn put_get_drop() {
        let db = Database::new("db");
        db.put(tiny_table("t")).unwrap();
        assert_eq!(db.get_table(DEFAULT_SCHEMA, "t").unwrap().row_count(), 1);
        assert!(db.resolve("t").is_ok());
        db.drop_table(DEFAULT_SCHEMA, "t").unwrap();
        assert!(db.resolve("t").is_err());
    }

    #[test]
    fn temp_resolution_and_clear() {
        let db = Database::new("db");
        db.put_temp(tiny_table("shadow")).unwrap();
        assert!(db.resolve("shadow").is_ok());
        assert!(db.resolve("TEMP.shadow").is_ok());
        db.clear_temp();
        assert!(db.resolve("shadow").is_err());
    }

    #[test]
    fn replace_on_refresh() {
        let db = Database::new("db");
        db.put(tiny_table("t")).unwrap();
        db.put(tiny_table("t")).unwrap(); // refresh replaces silently
        assert_eq!(db.table_names(DEFAULT_SCHEMA), vec!["t".to_string()]);
    }

    #[test]
    fn qualified_resolution() {
        let db = Database::new("db");
        db.create_schema("other").unwrap();
        db.put_table("other", tiny_table("t")).unwrap();
        assert!(db.resolve("t").is_err());
        assert!(db.resolve("other.t").is_ok());
        assert!(db.create_schema("other").is_err());
    }

    #[test]
    fn user_tables_excludes_reserved() {
        let db = Database::new("db");
        db.put(tiny_table("a")).unwrap();
        db.put_temp(tiny_table("b")).unwrap();
        let user = db.user_tables();
        assert_eq!(user.len(), 1);
        assert_eq!(user[0].1.name(), "a");
    }
}
