//! Per-column statistics.
//!
//! The paper's query compiler "incorporates information about cardinalities
//! [and] domains" (Sect. 3.1) and the TDE's parallel planner consults
//! "metadata, such as data volume stored in a table" (Sect. 4.2.2). These
//! statistics are computed once at load time, when the data is already being
//! scanned for encoding.

use tabviz_common::Value;

/// Rows per zone-map block. A divisor of the executor's chunk size so a
/// scan window always covers whole blocks (the last block of a column may
/// be short).
pub const BLOCK_ROWS: usize = 4096;

/// Zone-map entry: min/max/null-count over one fixed-size block of rows.
/// A scan can skip the whole block when the pushed-down predicate cannot
/// match anywhere in `[min, max]` (and nulls don't pass either).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockStats {
    /// Smallest non-null value in the block, if any.
    pub min: Option<Value>,
    /// Largest non-null value in the block.
    pub max: Option<Value>,
    /// Number of null rows in the block.
    pub null_count: u32,
    /// Rows covered by the block (`BLOCK_ROWS` except possibly the last).
    pub rows: u32,
}

impl BlockStats {
    fn compute(values: &[Value]) -> Self {
        let mut min: Option<&Value> = None;
        let mut max: Option<&Value> = None;
        let mut null_count = 0u32;
        for v in values {
            if v.is_null() {
                null_count += 1;
                continue;
            }
            if min.is_none_or(|m| v < m) {
                min = Some(v);
            }
            if max.is_none_or(|m| v > m) {
                max = Some(v);
            }
        }
        BlockStats {
            min: min.cloned(),
            max: max.cloned(),
            null_count,
            rows: values.len() as u32,
        }
    }

    /// `true` when every row in the block is null.
    pub fn all_null(&self) -> bool {
        self.null_count == self.rows
    }
}

/// Compute the zone map for a column: one [`BlockStats`] per `BLOCK_ROWS`
/// rows. Runs over the same materialized values the encoder already walks.
pub fn compute_zone_map(values: &[Value]) -> Vec<BlockStats> {
    values.chunks(BLOCK_ROWS).map(BlockStats::compute).collect()
}

/// Summary statistics for one stored column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Smallest non-null value, if any non-null value exists.
    pub min: Option<Value>,
    /// Largest non-null value.
    pub max: Option<Value>,
    /// Exact number of distinct non-null values.
    pub distinct: usize,
    /// Number of null rows.
    pub null_count: usize,
    /// Total rows.
    pub row_count: usize,
    /// Whether the column is non-decreasing top-to-bottom (nulls first).
    pub sorted: bool,
}

impl ColumnStats {
    /// Compute stats from materialized values. `O(n log n)` due to the exact
    /// distinct count; run once per column at table-build time.
    pub fn compute(values: &[Value]) -> Self {
        let row_count = values.len();
        let null_count = values.iter().filter(|v| v.is_null()).count();
        let mut sorted = true;
        for w in values.windows(2) {
            if w[0] > w[1] {
                sorted = false;
                break;
            }
        }
        let mut non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
        non_null.sort();
        let min = non_null.first().map(|v| (*v).clone());
        let max = non_null.last().map(|v| (*v).clone());
        non_null.dedup();
        ColumnStats {
            min,
            max,
            distinct: non_null.len(),
            null_count,
            row_count,
            sorted,
        }
    }

    /// Fraction of rows expected to match an equality predicate against one
    /// value, assuming a uniform distribution over the distinct values.
    pub fn eq_selectivity(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            1.0 / self.distinct as f64
        }
    }

    /// `true` when every non-null value is distinct — a uniqueness property
    /// the optimizer uses for join culling (Sect. 4.1.2).
    pub fn is_unique(&self) -> bool {
        self.distinct + self.null_count == self.row_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let vals = vec![Value::Int(3), Value::Null, Value::Int(1), Value::Int(3)];
        let s = ColumnStats::compute(&vals);
        assert_eq!(s.min, Some(Value::Int(1)));
        assert_eq!(s.max, Some(Value::Int(3)));
        assert_eq!(s.distinct, 2);
        assert_eq!(s.null_count, 1);
        assert!(!s.sorted);
        assert!(!s.is_unique());
    }

    #[test]
    fn sorted_detection_counts_nulls_first() {
        let vals = vec![Value::Null, Value::Int(1), Value::Int(1), Value::Int(2)];
        assert!(ColumnStats::compute(&vals).sorted);
        let vals2 = vec![Value::Int(1), Value::Null];
        assert!(!ColumnStats::compute(&vals2).sorted);
    }

    #[test]
    fn unique_detection() {
        let s = ColumnStats::compute(&[Value::Int(1), Value::Int(2), Value::Null]);
        assert!(s.is_unique());
        assert!((s.eq_selectivity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zone_map_blocks() {
        let vals: Vec<Value> = (0..(BLOCK_ROWS + 10))
            .map(|i| {
                if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Int(i as i64)
                }
            })
            .collect();
        let zones = compute_zone_map(&vals);
        assert_eq!(zones.len(), 2);
        assert_eq!(zones[0].rows as usize, BLOCK_ROWS);
        assert_eq!(zones[0].min, Some(Value::Int(1)));
        // 4095 = 7 * 585 is null, so the block max is the row before it.
        assert_eq!(zones[0].max, Some(Value::Int(BLOCK_ROWS as i64 - 2)));
        assert_eq!(zones[1].rows, 10);
        // 4096 % 7 != 0, so the second block's first row is non-null.
        assert_eq!(zones[1].min, Some(Value::Int(BLOCK_ROWS as i64)));
        assert!(zones[0].null_count > 0);
        assert!(!zones[0].all_null());
    }

    #[test]
    fn zone_map_all_null_block() {
        let vals = vec![Value::Null; 8];
        let zones = compute_zone_map(&vals);
        assert_eq!(zones.len(), 1);
        assert!(zones[0].all_null());
        assert_eq!(zones[0].min, None);
    }

    #[test]
    fn zone_map_empty() {
        assert!(compute_zone_map(&[]).is_empty());
    }

    #[test]
    fn empty_column() {
        let s = ColumnStats::compute(&[]);
        assert_eq!(s.min, None);
        assert_eq!(s.distinct, 0);
        assert!(s.sorted);
        assert_eq!(s.eq_selectivity(), 0.0);
    }
}
