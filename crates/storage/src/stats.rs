//! Per-column statistics.
//!
//! The paper's query compiler "incorporates information about cardinalities
//! [and] domains" (Sect. 3.1) and the TDE's parallel planner consults
//! "metadata, such as data volume stored in a table" (Sect. 4.2.2). These
//! statistics are computed once at load time, when the data is already being
//! scanned for encoding.

use tabviz_common::Value;

/// Summary statistics for one stored column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Smallest non-null value, if any non-null value exists.
    pub min: Option<Value>,
    /// Largest non-null value.
    pub max: Option<Value>,
    /// Exact number of distinct non-null values.
    pub distinct: usize,
    /// Number of null rows.
    pub null_count: usize,
    /// Total rows.
    pub row_count: usize,
    /// Whether the column is non-decreasing top-to-bottom (nulls first).
    pub sorted: bool,
}

impl ColumnStats {
    /// Compute stats from materialized values. `O(n log n)` due to the exact
    /// distinct count; run once per column at table-build time.
    pub fn compute(values: &[Value]) -> Self {
        let row_count = values.len();
        let null_count = values.iter().filter(|v| v.is_null()).count();
        let mut sorted = true;
        for w in values.windows(2) {
            if w[0] > w[1] {
                sorted = false;
                break;
            }
        }
        let mut non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
        non_null.sort();
        let min = non_null.first().map(|v| (*v).clone());
        let max = non_null.last().map(|v| (*v).clone());
        non_null.dedup();
        ColumnStats {
            min,
            max,
            distinct: non_null.len(),
            null_count,
            row_count,
            sorted,
        }
    }

    /// Fraction of rows expected to match an equality predicate against one
    /// value, assuming a uniform distribution over the distinct values.
    pub fn eq_selectivity(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            1.0 / self.distinct as f64
        }
    }

    /// `true` when every non-null value is distinct — a uniqueness property
    /// the optimizer uses for join culling (Sect. 4.1.2).
    pub fn is_unique(&self) -> bool {
        self.distinct + self.null_count == self.row_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let vals = vec![Value::Int(3), Value::Null, Value::Int(1), Value::Int(3)];
        let s = ColumnStats::compute(&vals);
        assert_eq!(s.min, Some(Value::Int(1)));
        assert_eq!(s.max, Some(Value::Int(3)));
        assert_eq!(s.distinct, 2);
        assert_eq!(s.null_count, 1);
        assert!(!s.sorted);
        assert!(!s.is_unique());
    }

    #[test]
    fn sorted_detection_counts_nulls_first() {
        let vals = vec![Value::Null, Value::Int(1), Value::Int(1), Value::Int(2)];
        assert!(ColumnStats::compute(&vals).sorted);
        let vals2 = vec![Value::Int(1), Value::Null];
        assert!(!ColumnStats::compute(&vals2).sorted);
    }

    #[test]
    fn unique_detection() {
        let s = ColumnStats::compute(&[Value::Int(1), Value::Int(2), Value::Null]);
        assert!(s.is_unique());
        assert!((s.eq_selectivity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_column() {
        let s = ColumnStats::compute(&[]);
        assert_eq!(s.min, None);
        assert_eq!(s.distinct, 0);
        assert!(s.sorted);
        assert_eq!(s.eq_selectivity(), 0.0);
    }
}
