//! Read-only tables with a declared major sort order and parallel fractions.
//!
//! Sect. 4.1.1: "Each table is a directory that contains columns." The TDE is
//! read-only — tables are built once from a chunk and then scanned. Sect.
//! 4.2.1's `FractionTable` ("each fraction can be read by a separate thread")
//! corresponds to [`Table::fractions`]; Sect. 4.2.3's range partitioning
//! ("most tables are sorted according to one or more columns") uses
//! [`Table::sort_key`] and [`Table::range_fractions`].

use crate::column::{encode_chunk, StoredColumn};
use std::sync::Arc;
use tabviz_common::{Chunk, Result, SchemaRef, Value};

/// An immutable, encoded, optionally sorted table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: SchemaRef,
    columns: Vec<StoredColumn>,
    /// Ordered column indices the rows are sorted by (may be empty).
    sort_key: Vec<usize>,
    row_count: usize,
}

impl Table {
    /// Build a table from a chunk. `sort_by` names the desired major sort
    /// order; rows are sorted accordingly before encoding (sorting before
    /// encoding is what makes RLE effective on low-cardinality columns).
    pub fn from_chunk(name: impl Into<String>, chunk: &Chunk, sort_by: &[&str]) -> Result<Self> {
        let schema = Arc::clone(chunk.schema());
        let sort_key: Vec<usize> = sort_by
            .iter()
            .map(|n| schema.index_of(n))
            .collect::<Result<_>>()?;
        let sorted_chunk;
        let source = if sort_key.is_empty() {
            chunk
        } else {
            let keys: Vec<(usize, bool)> = sort_key.iter().map(|&i| (i, true)).collect();
            sorted_chunk = chunk.sort_by(&keys);
            &sorted_chunk
        };
        let columns = encode_chunk(source)?;
        Ok(Table {
            name: name.into(),
            schema,
            columns,
            sort_key,
            row_count: chunk.len(),
        })
    }

    /// Build presuming the chunk is already ordered by `sort_key` indices
    /// (used by the pack reader; validated in debug builds only).
    pub(crate) fn from_encoded(
        name: String,
        schema: SchemaRef,
        columns: Vec<StoredColumn>,
        sort_key: Vec<usize>,
        row_count: usize,
    ) -> Self {
        Table {
            name,
            schema,
            columns,
            sort_key,
            row_count,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// The ordered column indices this table is sorted by.
    pub fn sort_key(&self) -> &[usize] {
        &self.sort_key
    }

    pub fn column(&self, i: usize) -> &StoredColumn {
        &self.columns[i]
    }

    pub fn columns(&self) -> &[StoredColumn] {
        &self.columns
    }

    pub fn column_by_name(&self, name: &str) -> Result<&StoredColumn> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// Decode a row range, optionally projecting a subset of columns.
    pub fn scan_range(
        &self,
        start: usize,
        len: usize,
        projection: Option<&[usize]>,
    ) -> Result<Chunk> {
        let indices: Vec<usize> = match projection {
            Some(p) => p.to_vec(),
            None => (0..self.columns.len()).collect(),
        };
        let schema = Arc::new(self.schema.project(&indices));
        let cols = indices
            .iter()
            .map(|&i| self.columns[i].decode_range(start, len))
            .collect::<Result<Vec<_>>>()?;
        Chunk::new(schema, cols)
    }

    /// Decode the entire table.
    pub fn scan(&self, projection: Option<&[usize]>) -> Result<Chunk> {
        self.scan_range(0, self.row_count, projection)
    }

    /// Split the row space into at most `n` near-equal fractions (random /
    /// row-count partitioning, Sect. 4.2.3). Returns `(start, len)` pairs.
    pub fn fractions(&self, n: usize) -> Vec<(usize, usize)> {
        if self.row_count == 0 || n == 0 {
            return vec![];
        }
        let n = n.min(self.row_count);
        let base = self.row_count / n;
        let rem = self.row_count % n;
        let mut out = Vec::with_capacity(n);
        let mut start = 0;
        for i in 0..n {
            let len = base + usize::from(i < rem);
            out.push((start, len));
            start += len;
        }
        out
    }

    /// Like [`Table::fractions`], but with every boundary snapped to a
    /// multiple of `align`. Used when scans carry pushed-down predicates:
    /// zone-map blocks of [`crate::stats::BLOCK_ROWS`] rows never straddle
    /// two fractions, so parallel workers skip blocks independently.
    pub fn fractions_aligned(&self, n: usize, align: usize) -> Vec<(usize, usize)> {
        if self.row_count == 0 || n == 0 {
            return vec![];
        }
        let align = align.max(1);
        let blocks = self.row_count.div_ceil(align);
        let n = n.min(blocks);
        let base = blocks / n;
        let rem = blocks % n;
        let mut out = Vec::with_capacity(n);
        let mut block = 0usize;
        for i in 0..n {
            let nblocks = base + usize::from(i < rem);
            let start = block * align;
            let end = ((block + nblocks) * align).min(self.row_count);
            out.push((start, end - start));
            block += nblocks;
        }
        out
    }

    /// Range-partition on a prefix of the sort key: fraction boundaries are
    /// placed only *between* distinct values of the given key prefix, so
    /// every group with respect to those columns lands in exactly one
    /// fraction (Lemma 2 of Sect. 4.2.3). Returns `None` when `key_prefix_len`
    /// exceeds the sort key or the table is unsorted.
    pub fn range_fractions(&self, n: usize, key_prefix_len: usize) -> Option<Vec<(usize, usize)>> {
        if key_prefix_len == 0 || key_prefix_len > self.sort_key.len() || self.row_count == 0 {
            return None;
        }
        let key_cols: Vec<&StoredColumn> = self.sort_key[..key_prefix_len]
            .iter()
            .map(|&i| &self.columns[i])
            .collect();
        let same_group = |a: usize, b: usize| -> bool {
            key_cols.iter().all(|c| c.value_at(a) == c.value_at(b))
        };
        // Walk target boundaries and snap each forward to the next group edge.
        let n = n.max(1).min(self.row_count);
        let mut bounds = vec![0usize];
        for i in 1..n {
            let mut b = i * self.row_count / n;
            let prev = *bounds.last().unwrap();
            if b <= prev {
                continue;
            }
            while b < self.row_count && same_group(b - 1, b) {
                b += 1;
            }
            if b > prev && b < self.row_count {
                bounds.push(b);
            }
        }
        bounds.push(self.row_count);
        let mut out = Vec::with_capacity(bounds.len() - 1);
        for w in bounds.windows(2) {
            out.push((w[0], w[1] - w[0]));
        }
        Some(out)
    }

    /// Approximate encoded size in bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.columns.iter().map(StoredColumn::encoded_bytes).sum()
    }

    /// The distinct domain of a string column straight from its dictionary —
    /// the fast path for the paper's "domain queries, frequently sent by
    /// Tableau" (Sect. 4.1.2).
    pub fn column_domain(&self, name: &str) -> Result<Option<Vec<Value>>> {
        let col = self.column_by_name(name)?;
        Ok(col
            .dictionary()
            .map(|d| d.iter().map(|s| Value::Str(s.clone())).collect()))
    }
}

/// Re-export for table builders that need codec control.
pub use crate::column::Codec as ColumnCodec;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tabviz_common::{DataType, Field, Schema, Value};

    fn flights_chunk() -> Chunk {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("delay", DataType::Int),
            ])
            .unwrap(),
        );
        let rows: Vec<Vec<Value>> = [
            ("WN", 5),
            ("AA", 10),
            ("AA", 3),
            ("DL", 7),
            ("WN", 2),
            ("AA", 1),
        ]
        .iter()
        .map(|&(c, d)| vec![Value::Str(c.into()), Value::Int(d)])
        .collect();
        Chunk::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn builds_sorted_and_scans() {
        let t = Table::from_chunk("flights", &flights_chunk(), &["carrier"]).unwrap();
        assert_eq!(t.row_count(), 6);
        assert_eq!(t.sort_key(), &[0]);
        let full = t.scan(None).unwrap();
        // sorted by carrier: AA, AA, AA, DL, WN, WN
        assert_eq!(full.row(0)[0], Value::Str("AA".into()));
        assert_eq!(full.row(3)[0], Value::Str("DL".into()));
        assert_eq!(full.row(5)[0], Value::Str("WN".into()));
    }

    #[test]
    fn projection_scan() {
        let t = Table::from_chunk("flights", &flights_chunk(), &[]).unwrap();
        let p = t.scan(Some(&[1])).unwrap();
        assert_eq!(p.num_columns(), 1);
        assert_eq!(p.schema().names(), vec!["delay"]);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn fractions_cover_rows_exactly() {
        let t = Table::from_chunk("flights", &flights_chunk(), &[]).unwrap();
        let fr = t.fractions(4);
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.iter().map(|&(_, l)| l).sum::<usize>(), 6);
        assert_eq!(fr[0].0, 0);
        let fr1 = t.fractions(100); // more fractions than rows
        assert_eq!(fr1.len(), 6);
    }

    #[test]
    fn fractions_aligned_snap_to_blocks() {
        let t = Table::from_chunk("flights", &flights_chunk(), &[]).unwrap();
        // align=4 over 6 rows → 2 blocks; boundaries land on multiples of 4.
        let fr = t.fractions_aligned(3, 4);
        assert_eq!(fr, vec![(0, 4), (4, 2)]);
        assert_eq!(fr.iter().map(|&(_, l)| l).sum::<usize>(), 6);
        // One worker gets everything when there is a single block.
        assert_eq!(t.fractions_aligned(8, 100), vec![(0, 6)]);
        // align=1 degenerates to plain fractions.
        assert_eq!(t.fractions_aligned(4, 1), t.fractions(4));
    }

    #[test]
    fn range_fractions_respect_group_boundaries() {
        let t = Table::from_chunk("flights", &flights_chunk(), &["carrier"]).unwrap();
        let fr = t.range_fractions(3, 1).unwrap();
        assert_eq!(fr.iter().map(|&(_, l)| l).sum::<usize>(), 6);
        // No fraction may split a carrier group.
        let scan = t.scan(None).unwrap();
        for &(start, len) in &fr {
            if start > 0 {
                assert_ne!(
                    scan.row(start - 1)[0],
                    scan.row(start)[0],
                    "fraction boundary splits a group"
                );
            }
            let _ = len;
        }
    }

    #[test]
    fn range_fractions_unavailable_without_sort() {
        let t = Table::from_chunk("flights", &flights_chunk(), &[]).unwrap();
        assert!(t.range_fractions(2, 1).is_none());
        let sorted = Table::from_chunk("flights", &flights_chunk(), &["carrier"]).unwrap();
        assert!(sorted.range_fractions(2, 2).is_none()); // prefix longer than key
    }

    #[test]
    fn domain_from_dictionary() {
        let t = Table::from_chunk("flights", &flights_chunk(), &[]).unwrap();
        let d = t.column_domain("carrier").unwrap().unwrap();
        assert_eq!(
            d,
            vec![
                Value::Str("AA".into()),
                Value::Str("DL".into()),
                Value::Str("WN".into())
            ]
        );
        assert!(t.column_domain("delay").unwrap().is_none());
    }

    #[test]
    fn scan_range_bounds() {
        let t = Table::from_chunk("flights", &flights_chunk(), &[]).unwrap();
        assert!(t.scan_range(4, 3, None).is_err());
        let c = t.scan_range(4, 2, None).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn empty_table() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]).unwrap());
        let t = Table::from_chunk("e", &Chunk::empty(schema), &[]).unwrap();
        assert_eq!(t.row_count(), 0);
        assert!(t.fractions(4).is_empty());
        assert_eq!(t.scan(None).unwrap().len(), 0);
    }
}
