//! Single-file database packing.
//!
//! Sect. 4.1: "The single database file is an important convenience feature
//! for users to move, share, and publish the data" — and Sect. 4.1.1: "This
//! directory is packaged into a single file once created." This module
//! serializes every user table of a [`Database`] — in its *encoded* form, so
//! compression survives the round trip — into one binary image, and reads it
//! back.
//!
//! Format (little-endian):
//! ```text
//! magic "TVDB" | version u8 | db-name | table-count u32
//!   per table: schema-name | table-name | row-count u64 | sort-key | fields
//!     per column: field | len u64 | null-mask | column-data | dictionary
//! ```

use crate::column::{ColumnData, PhysVec, StoredColumn};
use crate::database::Database;
use crate::table::Table;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::Path;
use std::sync::Arc;
use tabviz_common::{Collation, DataType, Field, NullMask, Result, Schema, TvError};

const MAGIC: &[u8; 4] = b"TVDB";
const VERSION: u8 = 1;

/// Serialize a database (user schemas only) into a single in-memory image.
pub fn pack(db: &Database) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    put_str(&mut buf, db.name());
    let tables = db.user_tables();
    buf.put_u32_le(tables.len() as u32);
    for (schema_name, table) in &tables {
        put_str(&mut buf, schema_name);
        put_str(&mut buf, table.name());
        buf.put_u64_le(table.row_count() as u64);
        buf.put_u16_le(table.sort_key().len() as u16);
        for &k in table.sort_key() {
            buf.put_u16_le(k as u16);
        }
        buf.put_u16_le(table.columns().len() as u16);
        for col in table.columns() {
            put_column(&mut buf, col);
        }
    }
    buf.freeze()
}

/// Write a packed database to a file.
pub fn pack_to_file(db: &Database, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path, pack(db))?;
    Ok(())
}

/// Read a packed database image back.
pub fn unpack(mut buf: &[u8]) -> Result<Database> {
    let mut magic = [0u8; 4];
    if buf.remaining() < 5 {
        return Err(TvError::Storage("truncated database image".into()));
    }
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TvError::Storage("bad magic in database image".into()));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(TvError::Storage(format!(
            "unsupported pack version {version}"
        )));
    }
    let name = get_str(&mut buf)?;
    let db = Database::new(name);
    let table_count = checked_u32(&mut buf)? as usize;
    for _ in 0..table_count {
        let schema_name = get_str(&mut buf)?;
        let table_name = get_str(&mut buf)?;
        let row_count = checked_u64(&mut buf)? as usize;
        let key_len = checked_u16(&mut buf)? as usize;
        let mut sort_key = Vec::with_capacity(key_len);
        for _ in 0..key_len {
            sort_key.push(checked_u16(&mut buf)? as usize);
        }
        let col_count = checked_u16(&mut buf)? as usize;
        let mut columns = Vec::with_capacity(col_count);
        for _ in 0..col_count {
            columns.push(get_column(&mut buf)?);
        }
        let schema = Arc::new(Schema::new(
            columns.iter().map(|c| c.field.clone()).collect(),
        )?);
        let table = Table::from_encoded(table_name, schema, columns, sort_key, row_count);
        if !db.schema_names().iter().any(|s| s == &schema_name) {
            db.create_schema(&schema_name)?;
        }
        db.put_table(&schema_name, table)?;
    }
    Ok(db)
}

/// Read a packed database from a file.
pub fn unpack_from_file(path: impl AsRef<Path>) -> Result<Database> {
    let bytes = std::fs::read(path)?;
    unpack(&bytes)
}

/// Serialize a single table (used by the persisted query cache to store
/// result chunks in their encoded form).
pub fn pack_table(table: &Table) -> Bytes {
    let mut buf = BytesMut::new();
    put_str(&mut buf, table.name());
    buf.put_u64_le(table.row_count() as u64);
    buf.put_u16_le(table.sort_key().len() as u16);
    for &k in table.sort_key() {
        buf.put_u16_le(k as u16);
    }
    buf.put_u16_le(table.columns().len() as u16);
    for col in table.columns() {
        put_column(&mut buf, col);
    }
    buf.freeze()
}

/// Deserialize a single table written by [`pack_table`].
pub fn unpack_table(mut buf: &[u8]) -> Result<Table> {
    let name = get_str(&mut buf)?;
    let row_count = checked_u64(&mut buf)? as usize;
    let key_len = checked_u16(&mut buf)? as usize;
    let mut sort_key = Vec::with_capacity(key_len);
    for _ in 0..key_len {
        sort_key.push(checked_u16(&mut buf)? as usize);
    }
    let col_count = checked_u16(&mut buf)? as usize;
    let mut columns = Vec::with_capacity(col_count);
    for _ in 0..col_count {
        columns.push(get_column(&mut buf)?);
    }
    let schema = Arc::new(Schema::new(
        columns.iter().map(|c| c.field.clone()).collect(),
    )?);
    Ok(Table::from_encoded(
        name, schema, columns, sort_key, row_count,
    ))
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    let len = checked_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(TvError::Storage("truncated string".into()));
    }
    let s = String::from_utf8(buf[..len].to_vec())
        .map_err(|_| TvError::Storage("invalid utf8 in image".into()))?;
    buf.advance(len);
    Ok(s)
}

fn checked_u16(buf: &mut &[u8]) -> Result<u16> {
    if buf.remaining() < 2 {
        return Err(TvError::Storage("truncated image".into()));
    }
    Ok(buf.get_u16_le())
}

fn checked_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(TvError::Storage("truncated image".into()));
    }
    Ok(buf.get_u32_le())
}

fn checked_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(TvError::Storage("truncated image".into()));
    }
    Ok(buf.get_u64_le())
}

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Real => 2,
        DataType::Str => 3,
        DataType::Date => 4,
    }
}

fn tag_dtype(t: u8) -> Result<DataType> {
    Ok(match t {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Real,
        3 => DataType::Str,
        4 => DataType::Date,
        _ => return Err(TvError::Storage(format!("bad dtype tag {t}"))),
    })
}

fn put_column(buf: &mut BytesMut, col: &StoredColumn) {
    let (field, len, nulls, data, dict) = col.parts();
    put_str(buf, &field.name);
    buf.put_u8(dtype_tag(field.dtype));
    buf.put_u8(match field.collation {
        Collation::Binary => 0,
        Collation::CaseInsensitive => 1,
    });
    buf.put_u8(field.nullable as u8);
    buf.put_u64_le(len as u64);
    match nulls.valid_bits() {
        None => buf.put_u8(0),
        Some(bits) => {
            buf.put_u8(1);
            for &b in bits {
                buf.put_u8(b as u8);
            }
        }
    }
    match data {
        ColumnData::Plain(p) => {
            buf.put_u8(0);
            put_phys(buf, p);
        }
        ColumnData::Rle {
            values,
            counts,
            starts,
        } => {
            buf.put_u8(1);
            put_phys(buf, values);
            buf.put_u32_le(counts.len() as u32);
            for &c in counts {
                buf.put_u32_le(c);
            }
            for &s in starts {
                buf.put_u64_le(s);
            }
        }
        ColumnData::Delta { first, deltas } => {
            buf.put_u8(2);
            buf.put_i64_le(*first);
            buf.put_u32_le(deltas.len() as u32);
            for &d in deltas {
                buf.put_i64_le(d);
            }
        }
    }
    match dict {
        None => buf.put_u8(0),
        Some(d) => {
            buf.put_u8(1);
            buf.put_u32_le(d.len() as u32);
            for s in d.iter() {
                put_str(buf, s);
            }
        }
    }
}

fn get_column(buf: &mut &[u8]) -> Result<StoredColumn> {
    let name = get_str(buf)?;
    if buf.remaining() < 3 {
        return Err(TvError::Storage("truncated field".into()));
    }
    let dtype = tag_dtype(buf.get_u8())?;
    let collation = match buf.get_u8() {
        0 => Collation::Binary,
        1 => Collation::CaseInsensitive,
        t => return Err(TvError::Storage(format!("bad collation tag {t}"))),
    };
    let nullable = buf.get_u8() != 0;
    let mut field = Field::new(name, dtype).with_collation(collation);
    field.nullable = nullable;
    let len = checked_u64(buf)? as usize;
    if buf.remaining() < 1 {
        return Err(TvError::Storage("truncated null mask".into()));
    }
    let nulls = match buf.get_u8() {
        0 => NullMask::none(),
        1 => {
            if buf.remaining() < len {
                return Err(TvError::Storage("truncated null bits".into()));
            }
            let bits = buf[..len].iter().map(|&b| b != 0).collect();
            buf.advance(len);
            NullMask::from_valid_bits(bits)
        }
        t => return Err(TvError::Storage(format!("bad null mask tag {t}"))),
    };
    if buf.remaining() < 1 {
        return Err(TvError::Storage("truncated column data".into()));
    }
    let data = match buf.get_u8() {
        0 => ColumnData::Plain(get_phys(buf)?),
        1 => {
            let values = get_phys(buf)?;
            let n = checked_u32(buf)? as usize;
            let mut counts = Vec::with_capacity(n);
            for _ in 0..n {
                counts.push(checked_u32(buf)?);
            }
            let mut starts = Vec::with_capacity(n);
            for _ in 0..n {
                starts.push(checked_u64(buf)?);
            }
            ColumnData::Rle {
                values,
                counts,
                starts,
            }
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(TvError::Storage("truncated delta".into()));
            }
            let first = buf.get_i64_le();
            let n = checked_u32(buf)? as usize;
            let mut deltas = Vec::with_capacity(n);
            for _ in 0..n {
                if buf.remaining() < 8 {
                    return Err(TvError::Storage("truncated delta".into()));
                }
                deltas.push(buf.get_i64_le());
            }
            ColumnData::Delta { first, deltas }
        }
        t => return Err(TvError::Storage(format!("bad column data tag {t}"))),
    };
    if buf.remaining() < 1 {
        return Err(TvError::Storage("truncated dictionary".into()));
    }
    let dict = match buf.get_u8() {
        0 => None,
        1 => {
            let n = checked_u32(buf)? as usize;
            let mut d = Vec::with_capacity(n);
            for _ in 0..n {
                d.push(get_str(buf)?);
            }
            Some(Arc::new(d))
        }
        t => return Err(TvError::Storage(format!("bad dictionary tag {t}"))),
    };
    StoredColumn::from_parts(field, len, nulls, data, dict)
}

fn put_phys(buf: &mut BytesMut, p: &PhysVec) {
    match p {
        PhysVec::Bool(v) => {
            buf.put_u8(0);
            buf.put_u32_le(v.len() as u32);
            for &b in v {
                buf.put_u8(b as u8);
            }
        }
        PhysVec::Int(v) => {
            buf.put_u8(1);
            buf.put_u32_le(v.len() as u32);
            for &x in v {
                buf.put_i64_le(x);
            }
        }
        PhysVec::Real(v) => {
            buf.put_u8(2);
            buf.put_u32_le(v.len() as u32);
            for &x in v {
                buf.put_f64_le(x);
            }
        }
        PhysVec::Date(v) => {
            buf.put_u8(3);
            buf.put_u32_le(v.len() as u32);
            for &x in v {
                buf.put_i32_le(x);
            }
        }
        PhysVec::Code(v) => {
            buf.put_u8(4);
            buf.put_u32_le(v.len() as u32);
            for &x in v {
                buf.put_u32_le(x);
            }
        }
    }
}

fn get_phys(buf: &mut &[u8]) -> Result<PhysVec> {
    if buf.remaining() < 1 {
        return Err(TvError::Storage("truncated physical vector".into()));
    }
    let tag = buf.get_u8();
    let n = checked_u32(buf)? as usize;
    macro_rules! read_n {
        ($reader:ident, $width:expr) => {{
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                if buf.remaining() < $width {
                    return Err(TvError::Storage("truncated physical vector".into()));
                }
                v.push(buf.$reader());
            }
            v
        }};
    }
    Ok(match tag {
        0 => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                if buf.remaining() < 1 {
                    return Err(TvError::Storage("truncated physical vector".into()));
                }
                v.push(buf.get_u8() != 0);
            }
            PhysVec::Bool(v)
        }
        1 => PhysVec::Int(read_n!(get_i64_le, 8)),
        2 => PhysVec::Real(read_n!(get_f64_le, 8)),
        3 => PhysVec::Date(read_n!(get_i32_le, 4)),
        4 => PhysVec::Code(read_n!(get_u32_le, 4)),
        t => return Err(TvError::Storage(format!("bad phys tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_common::{Chunk, Value};

    fn sample_db() -> Database {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str).with_collation(Collation::CaseInsensitive),
                Field::new("delay", DataType::Int),
                Field::new("weight", DataType::Real),
            ])
            .unwrap(),
        );
        let rows: Vec<Vec<Value>> = (0..200)
            .map(|i| {
                vec![
                    Value::Str(["AA", "DL", "WN"][i % 3].into()),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i as i64)
                    },
                    Value::Real(i as f64 * 0.5),
                ]
            })
            .collect();
        let chunk = Chunk::from_rows(schema, &rows).unwrap();
        let db = Database::new("faa");
        db.put(Table::from_chunk("flights", &chunk, &["carrier"]).unwrap())
            .unwrap();
        db
    }

    #[test]
    fn roundtrip_in_memory() {
        let db = sample_db();
        let img = pack(&db);
        let db2 = unpack(&img).unwrap();
        assert_eq!(db2.name(), "faa");
        let t1 = db.resolve("flights").unwrap();
        let t2 = db2.resolve("flights").unwrap();
        assert_eq!(t1.row_count(), t2.row_count());
        assert_eq!(t1.sort_key(), t2.sort_key());
        assert_eq!(t1.scan(None).unwrap(), t2.scan(None).unwrap());
        // encodings survive the round trip
        for (a, b) in t1.columns().iter().zip(t2.columns()) {
            assert_eq!(a.codec_name(), b.codec_name());
        }
    }

    #[test]
    fn roundtrip_via_file() {
        let db = sample_db();
        let path = std::env::temp_dir().join("tabviz_pack_test.tvdb");
        pack_to_file(&db, &path).unwrap();
        let db2 = unpack_from_file(&path).unwrap();
        assert_eq!(
            db.resolve("flights").unwrap().scan(None).unwrap(),
            db2.resolve("flights").unwrap().scan(None).unwrap()
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn temp_tables_not_packed() {
        let db = sample_db();
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]).unwrap());
        let chunk = Chunk::from_rows(schema, &[vec![Value::Int(9)]]).unwrap();
        db.put_temp(Table::from_chunk("scratch", &chunk, &[]).unwrap())
            .unwrap();
        let db2 = unpack(&pack(&db)).unwrap();
        assert!(db2.resolve("scratch").is_err());
        assert!(db2.resolve("flights").is_ok());
    }

    #[test]
    fn corrupt_images_rejected() {
        assert!(unpack(b"NOPE").is_err());
        assert!(unpack(b"TVDB\x09").is_err()); // bad version
        let img = pack(&sample_db());
        let truncated = &img[..img.len() / 2];
        assert!(unpack(truncated).is_err());
    }

    #[test]
    fn collation_survives() {
        let db2 = unpack(&pack(&sample_db())).unwrap();
        let t = db2.resolve("flights").unwrap();
        assert_eq!(
            t.schema().field_by_name("carrier").unwrap().collation,
            Collation::CaseInsensitive
        );
    }
}
