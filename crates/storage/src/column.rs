//! Encoded column storage.
//!
//! The TDE "implements column-level compression ... dictionary-based
//! compression [where] fixed tokens are stored in the original column [with]
//! an associated dictionary", plus "lightweight compression storage formats,
//! such as run-length or delta encodings" (Sect. 4.1.1). Dictionary
//! compression is visible outside the storage layer (the dictionary can be
//! consulted for domains); RLE/delta encodings are storage formats that the
//! optimizer may nevertheless exploit (Sect. 4.3's IndexTable is built from
//! [`StoredColumn::rle_runs`]).

use crate::stats::{compute_zone_map, BlockStats, ColumnStats};
use std::sync::Arc;
use tabviz_common::{
    Chunk, ColumnVec, DataType, Field, NullMask, Result, Schema, TvError, Value, Values,
};

/// Physical fixed-width vectors. String columns never appear here directly;
/// they are dictionary-compressed into `Code` vectors.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysVec {
    Bool(Vec<bool>),
    Int(Vec<i64>),
    Real(Vec<f64>),
    Date(Vec<i32>),
    /// Dictionary codes (index into the owning column's dictionary).
    Code(Vec<u32>),
}

impl PhysVec {
    pub fn len(&self) -> usize {
        match self {
            PhysVec::Bool(v) => v.len(),
            PhysVec::Int(v) => v.len(),
            PhysVec::Real(v) => v.len(),
            PhysVec::Date(v) => v.len(),
            PhysVec::Code(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push_from(&mut self, other: &PhysVec, i: usize) {
        match (self, other) {
            (PhysVec::Bool(d), PhysVec::Bool(s)) => d.push(s[i]),
            (PhysVec::Int(d), PhysVec::Int(s)) => d.push(s[i]),
            (PhysVec::Real(d), PhysVec::Real(s)) => d.push(s[i]),
            (PhysVec::Date(d), PhysVec::Date(s)) => d.push(s[i]),
            (PhysVec::Code(d), PhysVec::Code(s)) => d.push(s[i]),
            _ => unreachable!("mismatched PhysVec push"),
        }
    }

    fn empty_like(&self) -> PhysVec {
        match self {
            PhysVec::Bool(_) => PhysVec::Bool(vec![]),
            PhysVec::Int(_) => PhysVec::Int(vec![]),
            PhysVec::Real(_) => PhysVec::Real(vec![]),
            PhysVec::Date(_) => PhysVec::Date(vec![]),
            PhysVec::Code(_) => PhysVec::Code(vec![]),
        }
    }
}

/// How a column's fixed-width data is laid out.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// One physical value per row.
    Plain(PhysVec),
    /// Run-length encoding: `values[k]` repeats `counts[k]` times starting at
    /// row `starts[k]`. Null rows form runs of their own (masked by the
    /// column's null mask).
    Rle {
        values: PhysVec,
        counts: Vec<u32>,
        starts: Vec<u64>,
    },
    /// Delta encoding for integer-like data: row `i` holds
    /// `first + sum(deltas[..=i-1])`; only used for null-free columns.
    Delta { first: i64, deltas: Vec<i64> },
}

/// Requested storage codec. `Auto` picks per-column as the TDE loader would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    Auto,
    Plain,
    Rle,
    Delta,
}

/// A single run of an RLE-encoded column, in IndexTable form:
/// "value, count and start" (Sect. 4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct RleRun {
    pub value: Value,
    pub start: usize,
    pub count: usize,
}

/// An immutable, encoded column with statistics.
#[derive(Debug, Clone)]
pub struct StoredColumn {
    pub field: Field,
    len: usize,
    nulls: NullMask,
    data: ColumnData,
    /// Present iff the column is dictionary-compressed (all `Str` columns).
    dict: Option<Arc<Vec<String>>>,
    pub stats: ColumnStats,
    /// Zone map: per-[`crate::stats::BLOCK_ROWS`]-block min/max/null stats.
    zones: Vec<BlockStats>,
}

/// Average run length at or above which RLE is chosen automatically.
const RLE_MIN_AVG_RUN: usize = 3;

impl StoredColumn {
    /// Encode a column, choosing the codec automatically.
    pub fn encode(field: Field, col: &ColumnVec) -> Result<Self> {
        Self::encode_with(field, col, Codec::Auto)
    }

    /// Encode a column with an explicit codec (used by tests and benches to
    /// pin a layout; `Delta` falls back to `Plain` when inapplicable).
    pub fn encode_with(field: Field, col: &ColumnVec, codec: Codec) -> Result<Self> {
        if field.dtype != col.data_type() {
            return Err(TvError::Storage(format!(
                "field '{}' is {} but column data is {}",
                field.name,
                field.dtype,
                col.data_type()
            )));
        }
        let len = col.len();
        let values: Vec<Value> = (0..len).map(|i| col.get(i)).collect();
        let stats = ColumnStats::compute(&values);
        let zones = compute_zone_map(&values);
        let valid_bits: Vec<bool> = (0..len).map(|i| col.is_valid(i)).collect();
        let nulls = NullMask::from_valid_bits(valid_bits);

        // Dictionary-compress strings: sorted dictionary gives deterministic,
        // order-preserving codes under binary collation.
        let (phys, dict): (PhysVec, Option<Arc<Vec<String>>>) = match field.dtype {
            DataType::Str => {
                let mut dict: Vec<String> = values
                    .iter()
                    .filter_map(|v| match v {
                        Value::Str(s) => Some(s.clone()),
                        _ => None,
                    })
                    .collect();
                dict.sort();
                dict.dedup();
                let codes: Vec<u32> = values
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => dict.binary_search(s).expect("dict member") as u32,
                        _ => 0, // placeholder for null rows
                    })
                    .collect();
                (PhysVec::Code(codes), Some(Arc::new(dict)))
            }
            DataType::Bool => (
                PhysVec::Bool(
                    values
                        .iter()
                        .map(|v| matches!(v, Value::Bool(true)))
                        .collect(),
                ),
                None,
            ),
            DataType::Int => (
                PhysVec::Int(
                    values
                        .iter()
                        .map(|v| if let Value::Int(i) = v { *i } else { 0 })
                        .collect(),
                ),
                None,
            ),
            DataType::Real => (
                PhysVec::Real(
                    values
                        .iter()
                        .map(|v| if let Value::Real(r) = v { *r } else { 0.0 })
                        .collect(),
                ),
                None,
            ),
            DataType::Date => (
                PhysVec::Date(
                    values
                        .iter()
                        .map(|v| if let Value::Date(d) = v { *d } else { 0 })
                        .collect(),
                ),
                None,
            ),
        };

        let run_count = count_runs(&phys, &nulls);
        let data = match codec {
            Codec::Plain => ColumnData::Plain(phys),
            Codec::Rle => rle_encode(&phys, &nulls),
            Codec::Delta => delta_encode(&phys, &nulls).unwrap_or(ColumnData::Plain(phys)),
            Codec::Auto => {
                if len > 0 && run_count * RLE_MIN_AVG_RUN <= len {
                    rle_encode(&phys, &nulls)
                } else if stats.sorted && !nulls.has_nulls() {
                    delta_encode(&phys, &nulls).unwrap_or(ColumnData::Plain(phys))
                } else {
                    ColumnData::Plain(phys)
                }
            }
        };

        Ok(StoredColumn {
            field,
            len,
            nulls,
            data,
            dict,
            stats,
            zones,
        })
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Name of the physical layout, for plan explanations and tests.
    pub fn codec_name(&self) -> &'static str {
        match (&self.data, &self.dict) {
            (ColumnData::Plain(_), None) => "plain",
            (ColumnData::Plain(_), Some(_)) => "dict",
            (ColumnData::Rle { .. }, None) => "rle",
            (ColumnData::Rle { .. }, Some(_)) => "dict-rle",
            (ColumnData::Delta { .. }, _) => "delta",
        }
    }

    /// The string dictionary, when dictionary-compressed. Exposes the domain
    /// of the column without a scan — used for filter-domain queries.
    pub fn dictionary(&self) -> Option<&Arc<Vec<String>>> {
        self.dict.as_ref()
    }

    /// The zone map: one [`BlockStats`] per [`crate::stats::BLOCK_ROWS`] rows.
    pub fn zone_map(&self) -> &[BlockStats] {
        &self.zones
    }

    /// The physical layout (read-only); lets the scan pick a code-compare or
    /// run-granularity kernel without decoding.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The column's validity mask.
    pub fn null_mask(&self) -> &NullMask {
        &self.nulls
    }

    /// Enumerate RLE runs (the IndexTable of Sect. 4.3), or `None` when the
    /// column is not run-length encoded.
    pub fn rle_runs(&self) -> Option<Vec<RleRun>> {
        match &self.data {
            ColumnData::Rle {
                values,
                counts,
                starts,
            } => {
                let mut runs = Vec::with_capacity(counts.len());
                for k in 0..counts.len() {
                    let start = starts[k] as usize;
                    let value = if self.nulls.is_valid(start) {
                        self.phys_value(values, k)
                    } else {
                        Value::Null
                    };
                    runs.push(RleRun {
                        value,
                        start,
                        count: counts[k] as usize,
                    });
                }
                Some(runs)
            }
            _ => None,
        }
    }

    /// Enumerate the RLE runs overlapping `[start, start + len)`, clipped to
    /// that window (so `start`/`count` describe only the overlap). `None`
    /// when the column is not run-length encoded. This is the unit of work
    /// for run-granularity filter kernels: one predicate evaluation covers
    /// `count` rows.
    pub fn runs_overlapping(&self, start: usize, len: usize) -> Option<Vec<RleRun>> {
        let ColumnData::Rle {
            values,
            counts,
            starts,
        } = &self.data
        else {
            return None;
        };
        let end = (start + len).min(self.len);
        if start >= end {
            return Some(Vec::new());
        }
        let mut k = run_index(starts, start);
        let mut runs = Vec::new();
        while k < starts.len() && (starts[k] as usize) < end {
            let run_start = starts[k] as usize;
            let run_end = run_start + counts[k] as usize;
            let lo = run_start.max(start);
            let hi = run_end.min(end);
            let value = if self.nulls.is_valid(lo) {
                self.phys_value(values, k)
            } else {
                Value::Null
            };
            runs.push(RleRun {
                value,
                start: lo,
                count: hi - lo,
            });
            k += 1;
        }
        Some(runs)
    }

    /// Gather the given rows (ascending global row ids) into a decoded
    /// column — the selection-vector materialization of a pushed-down
    /// predicate's survivors, done in a single copy. RLE and delta data are
    /// walked incrementally, so a sparse ascending gather never re-decodes.
    pub fn decode_rows(&self, rows: &[usize]) -> Result<ColumnVec> {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows must ascend");
        if let Some(&last) = rows.last() {
            if last >= self.len {
                return Err(TvError::Storage(format!(
                    "row {} out of bounds (len {})",
                    last, self.len
                )));
            }
        }
        let mut out = decoded_values_builder(self.field.dtype, rows.len());
        match &self.data {
            ColumnData::Plain(p) => {
                for &r in rows {
                    append_repeat(&mut out, p, r, self.dict.as_deref(), 1);
                }
            }
            ColumnData::Rle {
                values,
                counts,
                starts,
            } => {
                let mut k = 0usize;
                for &r in rows {
                    while starts[k] as usize + counts[k] as usize <= r {
                        k += 1;
                    }
                    append_repeat(&mut out, values, k, self.dict.as_deref(), 1);
                }
            }
            ColumnData::Delta { first, deltas } => {
                let mut idx = 0usize;
                let mut cur = *first;
                let mut vals = Vec::with_capacity(rows.len());
                for &r in rows {
                    while idx < r {
                        cur += deltas[idx];
                        idx += 1;
                    }
                    vals.push(cur);
                }
                out = match self.field.dtype {
                    DataType::Int => Values::Int(vals),
                    DataType::Date => Values::Date(vals.into_iter().map(|v| v as i32).collect()),
                    _ => unreachable!("delta encoding only stores Int/Date"),
                };
            }
        }
        let bits: Vec<bool> = rows.iter().map(|&r| self.nulls.is_valid(r)).collect();
        Ok(ColumnVec::new(out, NullMask::from_valid_bits(bits)))
    }

    fn phys_value(&self, phys: &PhysVec, i: usize) -> Value {
        match phys {
            PhysVec::Bool(v) => Value::Bool(v[i]),
            PhysVec::Int(v) => Value::Int(v[i]),
            PhysVec::Real(v) => Value::Real(v[i]),
            PhysVec::Date(v) => Value::Date(v[i]),
            PhysVec::Code(v) => {
                let dict = self.dict.as_ref().expect("code vector without dictionary");
                // Null rows carry placeholder code 0, which an all-null
                // column's empty dictionary cannot resolve; the null mask
                // governs what the row means, so decode a placeholder.
                Value::Str(dict.get(v[i] as usize).cloned().unwrap_or_default())
            }
        }
    }

    /// Materialize the value at a single row.
    pub fn value_at(&self, row: usize) -> Value {
        if !self.nulls.is_valid(row) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Plain(p) => self.phys_value(p, row),
            ColumnData::Rle { values, starts, .. } => {
                let k = run_index(starts, row);
                self.phys_value(values, k)
            }
            ColumnData::Delta { first, deltas } => {
                let v = *first + deltas[..row].iter().sum::<i64>();
                self.delta_value(v)
            }
        }
    }

    fn delta_value(&self, v: i64) -> Value {
        match self.field.dtype {
            DataType::Int => Value::Int(v),
            DataType::Date => Value::Date(v as i32),
            _ => unreachable!("delta encoding only stores Int/Date"),
        }
    }

    /// Decode the full column.
    pub fn decode(&self) -> Result<ColumnVec> {
        self.decode_range(0, self.len)
    }

    /// Decode `len` rows starting at `start`. For RLE data this skips
    /// directly to the first overlapping run, which is what makes the
    /// Sect. 4.3 range-skipping join cheap.
    pub fn decode_range(&self, start: usize, len: usize) -> Result<ColumnVec> {
        if start + len > self.len {
            return Err(TvError::Storage(format!(
                "range {}..{} out of bounds (len {})",
                start,
                start + len,
                self.len
            )));
        }
        let values = match &self.data {
            ColumnData::Plain(p) => self.decode_phys_range(p, start, len),
            ColumnData::Rle {
                values,
                counts,
                starts,
            } => {
                let mut out = decoded_values_builder(self.field.dtype, len);
                if len > 0 {
                    let mut k = run_index(starts, start);
                    let mut produced = 0usize;
                    while produced < len {
                        // Rows of run k overlapping [start+produced, start+len).
                        let run_end = starts[k] as usize + counts[k] as usize;
                        let lo = start + produced;
                        let hi = run_end.min(start + len);
                        let n = hi - lo;
                        debug_assert!(n > 0);
                        append_repeat(&mut out, values, k, self.dict.as_deref(), n);
                        produced += n;
                        k += 1;
                    }
                }
                out
            }
            ColumnData::Delta { first, deltas } => {
                let mut cur = *first + deltas[..start].iter().sum::<i64>();
                let mut vals = Vec::with_capacity(len);
                for i in 0..len {
                    if i > 0 {
                        cur += deltas[start + i - 1];
                    }
                    vals.push(cur);
                }
                match self.field.dtype {
                    DataType::Int => Values::Int(vals),
                    DataType::Date => Values::Date(vals.into_iter().map(|v| v as i32).collect()),
                    _ => unreachable!(),
                }
            }
        };
        let bits: Vec<bool> = (start..start + len)
            .map(|i| self.nulls.is_valid(i))
            .collect();
        Ok(ColumnVec::new(values, NullMask::from_valid_bits(bits)))
    }

    fn decode_phys_range(&self, p: &PhysVec, start: usize, len: usize) -> Values {
        match p {
            PhysVec::Bool(v) => Values::Bool(v[start..start + len].to_vec()),
            PhysVec::Int(v) => Values::Int(v[start..start + len].to_vec()),
            PhysVec::Real(v) => Values::Real(v[start..start + len].to_vec()),
            PhysVec::Date(v) => Values::Date(v[start..start + len].to_vec()),
            PhysVec::Code(v) => {
                let dict = self.dict.as_ref().expect("code vector without dictionary");
                // Placeholder codes on null rows may fall outside an all-null
                // column's empty dictionary; the null mask masks them out.
                Values::Str(
                    v[start..start + len]
                        .iter()
                        .map(|&c| dict.get(c as usize).cloned().unwrap_or_default())
                        .collect(),
                )
            }
        }
    }

    /// Rough encoded size in bytes (compression accounting in benches).
    pub fn encoded_bytes(&self) -> usize {
        let dict_bytes: usize = self
            .dict
            .as_ref()
            .map_or(0, |d| d.iter().map(|s| s.len() + 8).sum());
        let data_bytes = match &self.data {
            ColumnData::Plain(p) => phys_bytes(p),
            ColumnData::Rle {
                values,
                counts,
                starts,
            } => phys_bytes(values) + counts.len() * 4 + starts.len() * 8,
            ColumnData::Delta { deltas, .. } => 8 + deltas.len() * 8,
        };
        dict_bytes + data_bytes
    }

    /// Internal accessors for the pack module.
    pub(crate) fn parts(
        &self,
    ) -> (
        &Field,
        usize,
        &NullMask,
        &ColumnData,
        Option<&Arc<Vec<String>>>,
    ) {
        (
            &self.field,
            self.len,
            &self.nulls,
            &self.data,
            self.dict.as_ref(),
        )
    }

    pub(crate) fn from_parts(
        field: Field,
        len: usize,
        nulls: NullMask,
        data: ColumnData,
        dict: Option<Arc<Vec<String>>>,
    ) -> Result<Self> {
        // Recompute stats from a full decode: pack files do not store stats.
        let tmp = StoredColumn {
            field,
            len,
            nulls,
            data,
            dict,
            stats: ColumnStats {
                min: None,
                max: None,
                distinct: 0,
                null_count: 0,
                row_count: len,
                sorted: false,
            },
            zones: Vec::new(),
        };
        let col = tmp.decode()?;
        let values: Vec<Value> = (0..len).map(|i| col.get(i)).collect();
        let stats = ColumnStats::compute(&values);
        let zones = compute_zone_map(&values);
        Ok(StoredColumn {
            stats,
            zones,
            ..tmp
        })
    }
}

fn phys_bytes(p: &PhysVec) -> usize {
    match p {
        PhysVec::Bool(v) => v.len(),
        PhysVec::Int(v) => v.len() * 8,
        PhysVec::Real(v) => v.len() * 8,
        PhysVec::Date(v) => v.len() * 4,
        PhysVec::Code(v) => v.len() * 4,
    }
}

/// Index of the run containing `row` given sorted run starts.
fn run_index(starts: &[u64], row: usize) -> usize {
    starts.partition_point(|&s| s <= row as u64) - 1
}

/// Count runs treating null rows as their own value.
fn count_runs(phys: &PhysVec, nulls: &NullMask) -> usize {
    let len = phys.len();
    if len == 0 {
        return 0;
    }
    let mut runs = 1usize;
    for i in 1..len {
        if !same_row(phys, nulls, i - 1, i) {
            runs += 1;
        }
    }
    runs
}

fn same_row(phys: &PhysVec, nulls: &NullMask, a: usize, b: usize) -> bool {
    match (nulls.is_valid(a), nulls.is_valid(b)) {
        (false, false) => true,
        (true, true) => match phys {
            PhysVec::Bool(v) => v[a] == v[b],
            PhysVec::Int(v) => v[a] == v[b],
            PhysVec::Real(v) => v[a].to_bits() == v[b].to_bits(),
            PhysVec::Date(v) => v[a] == v[b],
            PhysVec::Code(v) => v[a] == v[b],
        },
        _ => false,
    }
}

fn rle_encode(phys: &PhysVec, nulls: &NullMask) -> ColumnData {
    let len = phys.len();
    let mut values = phys.empty_like();
    let mut counts: Vec<u32> = Vec::new();
    let mut starts: Vec<u64> = Vec::new();
    let mut i = 0usize;
    while i < len {
        let mut j = i + 1;
        while j < len && same_row(phys, nulls, i, j) {
            j += 1;
        }
        values.push_from(phys, i);
        counts.push((j - i) as u32);
        starts.push(i as u64);
        i = j;
    }
    ColumnData::Rle {
        values,
        counts,
        starts,
    }
}

/// Delta-encode integer-like data; `None` when the type or nulls make it
/// inapplicable.
fn delta_encode(phys: &PhysVec, nulls: &NullMask) -> Option<ColumnData> {
    if nulls.has_nulls() {
        return None;
    }
    let as_i64: Vec<i64> = match phys {
        PhysVec::Int(v) => v.clone(),
        PhysVec::Date(v) => v.iter().map(|&d| d as i64).collect(),
        _ => return None,
    };
    if as_i64.is_empty() {
        return Some(ColumnData::Delta {
            first: 0,
            deltas: vec![],
        });
    }
    let first = as_i64[0];
    let deltas = as_i64.windows(2).map(|w| w[1] - w[0]).collect();
    Some(ColumnData::Delta { first, deltas })
}

/// Helper: build an empty `Values` of the *logical* type (strings decode back
/// to strings even though storage holds codes).
fn decoded_values_builder(dtype: DataType, cap: usize) -> Values {
    Values::with_capacity(dtype, cap)
}

/// Append `n` copies of run `k`'s value to a decoded output vector.
fn append_repeat(
    out: &mut Values,
    run_values: &PhysVec,
    k: usize,
    dict: Option<&Vec<String>>,
    n: usize,
) {
    match (out, run_values) {
        (Values::Bool(o), PhysVec::Bool(v)) => o.extend(std::iter::repeat_n(v[k], n)),
        (Values::Int(o), PhysVec::Int(v)) => o.extend(std::iter::repeat_n(v[k], n)),
        (Values::Real(o), PhysVec::Real(v)) => o.extend(std::iter::repeat_n(v[k], n)),
        (Values::Date(o), PhysVec::Date(v)) => o.extend(std::iter::repeat_n(v[k], n)),
        (Values::Str(o), PhysVec::Code(v)) => {
            // Null runs carry placeholder code 0 even when the dictionary is
            // empty (all-null column); the null mask masks the value out.
            let s = dict
                .expect("code vector without dictionary")
                .get(v[k] as usize)
                .cloned()
                .unwrap_or_default();
            o.extend(std::iter::repeat_n(s, n));
        }
        _ => unreachable!("mismatched decode target"),
    }
}

/// Convenience: encode every column of a chunk into stored columns.
pub fn encode_chunk(chunk: &Chunk) -> Result<Vec<StoredColumn>> {
    let schema: &Schema = chunk.schema();
    schema
        .fields()
        .iter()
        .enumerate()
        .map(|(i, f)| StoredColumn::encode(f.clone(), chunk.column(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_common::Value;

    fn int_col(vals: &[Option<i64>]) -> ColumnVec {
        let values: Vec<Value> = vals
            .iter()
            .map(|v| v.map_or(Value::Null, Value::Int))
            .collect();
        ColumnVec::from_iter_typed(DataType::Int, values.iter()).unwrap()
    }

    fn str_col(vals: &[&str]) -> ColumnVec {
        let values: Vec<Value> = vals.iter().map(|&s| Value::Str(s.into())).collect();
        ColumnVec::from_iter_typed(DataType::Str, values.iter()).unwrap()
    }

    #[test]
    fn plain_roundtrip_with_nulls() {
        let col = int_col(&[Some(1), None, Some(5), Some(2)]);
        let sc =
            StoredColumn::encode_with(Field::new("x", DataType::Int), &col, Codec::Plain).unwrap();
        assert_eq!(sc.codec_name(), "plain");
        assert_eq!(sc.decode().unwrap(), col);
        assert_eq!(sc.value_at(1), Value::Null);
        assert_eq!(sc.value_at(2), Value::Int(5));
    }

    #[test]
    fn rle_roundtrip_and_runs() {
        let col = int_col(&[Some(7), Some(7), Some(7), None, None, Some(2)]);
        let sc =
            StoredColumn::encode_with(Field::new("x", DataType::Int), &col, Codec::Rle).unwrap();
        assert_eq!(sc.codec_name(), "rle");
        assert_eq!(sc.decode().unwrap(), col);
        let runs = sc.rle_runs().unwrap();
        assert_eq!(runs.len(), 3);
        assert_eq!(
            runs[0],
            RleRun {
                value: Value::Int(7),
                start: 0,
                count: 3
            }
        );
        assert_eq!(
            runs[1],
            RleRun {
                value: Value::Null,
                start: 3,
                count: 2
            }
        );
        assert_eq!(
            runs[2],
            RleRun {
                value: Value::Int(2),
                start: 5,
                count: 1
            }
        );
    }

    #[test]
    fn rle_range_decode_skips() {
        let mut vals = Vec::new();
        for v in 0..10i64 {
            for _ in 0..100 {
                vals.push(Some(v));
            }
        }
        let col = int_col(&vals);
        let sc =
            StoredColumn::encode_with(Field::new("x", DataType::Int), &col, Codec::Rle).unwrap();
        let r = sc.decode_range(250, 200).unwrap();
        assert_eq!(r.len(), 200);
        assert_eq!(r.get(0), Value::Int(2));
        assert_eq!(r.get(49), Value::Int(2));
        assert_eq!(r.get(50), Value::Int(3));
        assert_eq!(r.get(199), Value::Int(4));
    }

    #[test]
    fn delta_roundtrip() {
        let col = int_col(&[Some(10), Some(12), Some(11), Some(20)]);
        let sc =
            StoredColumn::encode_with(Field::new("x", DataType::Int), &col, Codec::Delta).unwrap();
        assert_eq!(sc.codec_name(), "delta");
        assert_eq!(sc.decode().unwrap(), col);
        assert_eq!(sc.value_at(3), Value::Int(20));
        let r = sc.decode_range(1, 2).unwrap();
        assert_eq!(r.get(0), Value::Int(12));
        assert_eq!(r.get(1), Value::Int(11));
    }

    #[test]
    fn delta_rejects_nulls_falls_back_to_plain() {
        let col = int_col(&[Some(1), None]);
        let sc =
            StoredColumn::encode_with(Field::new("x", DataType::Int), &col, Codec::Delta).unwrap();
        assert_eq!(sc.codec_name(), "plain");
        assert_eq!(sc.decode().unwrap(), col);
    }

    #[test]
    fn strings_always_dictionary_compressed() {
        let col = str_col(&["b", "a", "b", "b", "c"]);
        let sc = StoredColumn::encode(Field::new("s", DataType::Str), &col).unwrap();
        assert!(sc.dictionary().is_some());
        let dict = sc.dictionary().unwrap();
        assert_eq!(dict.as_slice(), &["a", "b", "c"]);
        assert_eq!(sc.decode().unwrap(), col);
    }

    #[test]
    fn auto_picks_rle_for_long_runs() {
        let vals: Vec<Option<i64>> = std::iter::repeat_n(Some(1), 100)
            .chain(std::iter::repeat_n(Some(2), 100))
            .collect();
        let sc = StoredColumn::encode(Field::new("x", DataType::Int), &int_col(&vals)).unwrap();
        assert_eq!(sc.codec_name(), "rle");
    }

    #[test]
    fn auto_picks_delta_for_sorted_unique() {
        let vals: Vec<Option<i64>> = (0..100).map(|i| Some(i * 3)).collect();
        let sc = StoredColumn::encode(Field::new("x", DataType::Int), &int_col(&vals)).unwrap();
        assert_eq!(sc.codec_name(), "delta");
    }

    #[test]
    fn auto_picks_plain_for_random() {
        let vals: Vec<Option<i64>> = (0..100).map(|i| Some((i * 7919) % 97)).collect();
        let sc = StoredColumn::encode(Field::new("x", DataType::Int), &int_col(&vals)).unwrap();
        assert_eq!(sc.codec_name(), "plain");
    }

    #[test]
    fn dict_rle_for_repeated_strings() {
        let vals: Vec<&str> = std::iter::repeat_n("AA", 50)
            .chain(std::iter::repeat_n("WN", 50))
            .collect();
        let sc = StoredColumn::encode(Field::new("s", DataType::Str), &str_col(&vals)).unwrap();
        assert_eq!(sc.codec_name(), "dict-rle");
        let runs = sc.rle_runs().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].value, Value::Str("WN".into()));
        assert_eq!(runs[1].start, 50);
    }

    #[test]
    fn range_bounds_checked() {
        let sc = StoredColumn::encode(
            Field::new("x", DataType::Int),
            &int_col(&[Some(1), Some(2)]),
        )
        .unwrap();
        assert!(sc.decode_range(1, 2).is_err());
        assert!(sc.decode_range(0, 2).is_ok());
    }

    #[test]
    fn encoded_bytes_reflects_compression() {
        let vals: Vec<Option<i64>> = std::iter::repeat_n(Some(42), 10_000).collect();
        let col = int_col(&vals);
        let rle =
            StoredColumn::encode_with(Field::new("x", DataType::Int), &col, Codec::Rle).unwrap();
        let plain =
            StoredColumn::encode_with(Field::new("x", DataType::Int), &col, Codec::Plain).unwrap();
        assert!(rle.encoded_bytes() * 100 < plain.encoded_bytes());
    }

    #[test]
    fn type_mismatch_rejected() {
        let col = int_col(&[Some(1)]);
        assert!(StoredColumn::encode(Field::new("x", DataType::Str), &col).is_err());
    }

    #[test]
    fn runs_overlapping_clips_to_window() {
        let col = int_col(&[Some(7), Some(7), Some(7), None, None, Some(2)]);
        let sc =
            StoredColumn::encode_with(Field::new("x", DataType::Int), &col, Codec::Rle).unwrap();
        let runs = sc.runs_overlapping(1, 3).unwrap();
        assert_eq!(
            runs,
            vec![
                RleRun {
                    value: Value::Int(7),
                    start: 1,
                    count: 2
                },
                RleRun {
                    value: Value::Null,
                    start: 3,
                    count: 1
                },
            ]
        );
        assert!(sc.runs_overlapping(0, 0).unwrap().is_empty());
        let plain =
            StoredColumn::encode_with(Field::new("x", DataType::Int), &col, Codec::Plain).unwrap();
        assert!(plain.runs_overlapping(0, 6).is_none());
    }

    #[test]
    fn decode_rows_gathers_across_codecs() {
        let vals: Vec<Option<i64>> = (0..300)
            .map(|i| if i % 11 == 0 { None } else { Some(i / 10) })
            .collect();
        let col = int_col(&vals);
        let rows = vec![0usize, 3, 10, 150, 299];
        for codec in [Codec::Plain, Codec::Rle] {
            let sc =
                StoredColumn::encode_with(Field::new("x", DataType::Int), &col, codec).unwrap();
            let got = sc.decode_rows(&rows).unwrap();
            for (i, &r) in rows.iter().enumerate() {
                assert_eq!(got.get(i), col.get(r), "codec {codec:?} row {r}");
            }
        }
        // Delta needs sorted, null-free data.
        let sorted: Vec<Option<i64>> = (0..300).map(|i| Some(i * 2)).collect();
        let scol = int_col(&sorted);
        let sc =
            StoredColumn::encode_with(Field::new("x", DataType::Int), &scol, Codec::Delta).unwrap();
        assert_eq!(sc.codec_name(), "delta");
        let got = sc.decode_rows(&rows).unwrap();
        for (i, &r) in rows.iter().enumerate() {
            assert_eq!(got.get(i), scol.get(r));
        }
        assert!(sc.decode_rows(&[300]).is_err());
        assert_eq!(sc.decode_rows(&[]).unwrap().len(), 0);
    }

    #[test]
    fn decode_rows_gathers_strings() {
        let vals: Vec<&str> = (0..100).map(|i| if i < 50 { "AA" } else { "WN" }).collect();
        let col = str_col(&vals);
        let sc = StoredColumn::encode(Field::new("s", DataType::Str), &col).unwrap();
        assert_eq!(sc.codec_name(), "dict-rle");
        let got = sc.decode_rows(&[0, 49, 50, 99]).unwrap();
        assert_eq!(got.get(0), Value::Str("AA".into()));
        assert_eq!(got.get(2), Value::Str("WN".into()));
    }

    #[test]
    fn zone_map_present_on_encode() {
        let vals: Vec<Option<i64>> = (0..10_000).map(Some).collect();
        let sc = StoredColumn::encode(Field::new("x", DataType::Int), &int_col(&vals)).unwrap();
        let zones = sc.zone_map();
        assert_eq!(zones.len(), 10_000_usize.div_ceil(crate::stats::BLOCK_ROWS));
        assert_eq!(zones[0].min, Some(Value::Int(0)));
        assert_eq!(
            zones[1].min,
            Some(Value::Int(crate::stats::BLOCK_ROWS as i64))
        );
    }

    #[test]
    fn empty_column_roundtrip() {
        let col = int_col(&[]);
        for codec in [Codec::Plain, Codec::Rle, Codec::Delta, Codec::Auto] {
            let sc =
                StoredColumn::encode_with(Field::new("x", DataType::Int), &col, codec).unwrap();
            assert_eq!(sc.len(), 0);
            assert_eq!(sc.decode().unwrap().len(), 0);
        }
    }
}
