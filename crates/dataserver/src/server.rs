//! The Data Server proxy and client sessions.
//!
//! "Clients can directly connect to databases or connect to data sources
//! published to Data Server, which acts as a proxy between clients and the
//! underlying database. When a client connects to a published data source,
//! it receives metadata ... As fields are dragged to the visualization,
//! queries are dispatched from the client to Data Server" (Sect. 5.2).
//!
//! Temporary tables (Sect. 5.3–5.4): a client uploads a large value set
//! *once* (`define_set`); the in-memory definition is shared across client
//! connections by reference count; later queries reference it by name,
//! cutting client→server traffic. During evaluation the definition is
//! incorporated into the query — and pushed down to the backing database as
//! a session temp table by the shared compilation pipeline, with the inline
//! rewrite as fallback. In-memory temp tables can be disabled, trading
//! network traffic for unchanged database-side behavior.

use crate::published::PublishedSource;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use tabviz_cache::QuerySpec;
use tabviz_common::{Chunk, Result, TvError, Value};
use tabviz_core::processor::QueryProcessor;
use tabviz_core::revalidate::{
    revalidate_pass, MaintenanceLane, RevalidateOptions, RevalidateReport,
};
use tabviz_core::{AdmitRequest, ExecOutcome, Priority};
use tabviz_tql::expr::Expr;
use tabviz_tql::{AggCall, SortKey};

/// What a client sends per query: fields only — the client never sees the
/// underlying relation or dialect.
#[derive(Debug, Clone, Default)]
pub struct ClientQuery {
    pub filters: Vec<Expr>,
    pub group_by: Vec<String>,
    pub aggs: Vec<AggCall>,
    pub order: Vec<SortKey>,
    pub topn: Option<usize>,
    /// Named value-set references (server-held temp definitions).
    pub set_refs: Vec<String>,
}

impl ClientQuery {
    /// Approximate client→server wire size of this request.
    pub fn wire_bytes(&self) -> usize {
        let mut n = 0;
        for f in &self.filters {
            n += tabviz_tql::write_expr(f).len();
        }
        for g in &self.group_by {
            n += g.len();
        }
        for a in &self.aggs {
            n += a.alias.len() + 8;
        }
        n += self.set_refs.iter().map(|s| s.len() + 4).sum::<usize>();
        n + 16
    }
}

/// A shared in-memory value-set definition ("temporary table definitions
/// are shared across client connections ... removed when all references to
/// them are removed", Sect. 5.4).
struct SetDef {
    column: String,
    values: Vec<Value>,
    refs: usize,
}

/// Server-side counters.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    pub queries: u64,
    pub client_bytes_in: u64,
    pub client_bytes_out: u64,
    pub set_definitions: u64,
    pub answered_from_memory: u64,
    /// Client queries answered from a stale cache entry because the backing
    /// database was unavailable (degraded rendering).
    pub degraded_serves: u64,
}

/// The Data Server.
pub struct DataServer {
    pub processor: QueryProcessor,
    published: RwLock<HashMap<String, Arc<PublishedSource>>>,
    sets: Mutex<HashMap<String, SetDef>>,
    stats: Mutex<ServerStats>,
    /// "If desired, in-memory temporary tables on Data Server can be
    /// disabled."
    pub enable_memory_temp_tables: bool,
    /// This server's identity within a cluster ("node-0", …). Standalone
    /// servers are simply "server"; the cluster layer names its members so
    /// diagnostics and routing traces attribute work to a node.
    node_name: String,
}

impl DataServer {
    /// Wrap a processor. A server always runs with admission control: if
    /// the processor has no scheduler yet, one is attached sized from the
    /// pools registered so far (register sources first).
    pub fn new(processor: QueryProcessor) -> Self {
        Self::named(processor, "server")
    }

    /// [`DataServer::new`] with a cluster node identity.
    pub fn named(processor: QueryProcessor, node_name: impl Into<String>) -> Self {
        let mut processor = processor;
        if processor.scheduler().is_none() {
            processor.enable_scheduler();
        }
        DataServer {
            processor,
            published: RwLock::new(HashMap::new()),
            sets: Mutex::new(HashMap::new()),
            stats: Mutex::new(ServerStats::default()),
            enable_memory_temp_tables: true,
            node_name: node_name.into(),
        }
    }

    /// This server's node identity ("server" when standalone).
    pub fn node_name(&self) -> &str {
        &self.node_name
    }

    pub fn publish(&self, source: PublishedSource) -> Arc<PublishedSource> {
        let arc = Arc::new(source);
        self.published
            .write()
            .insert(arc.name.clone(), Arc::clone(&arc));
        arc
    }

    /// Names of every published source on this server, sorted.
    pub fn published_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.published.read().keys().cloned().collect();
        names.sort();
        names
    }

    pub fn published(&self, name: &str) -> Result<Arc<PublishedSource>> {
        self.published
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| TvError::Bind(format!("unknown published source '{name}'")))
    }

    pub fn stats(&self) -> ServerStats {
        self.stats.lock().clone()
    }

    /// The node's live metrics registry — the federation hook: a cluster
    /// scrapes each member through this accessor and merges the snapshots
    /// (see `tabviz_obs::Federation`). Handles are cheap clones over shared
    /// atomics, so a federation holding this registry always reads current
    /// values, never a stale copy.
    pub fn registry(&self) -> &tabviz_obs::Registry {
        &self.processor.obs.registry
    }

    /// Prometheus-style exposition of every metric the server's processor
    /// (and the pools, caches and backends beneath it) has registered, plus
    /// the process-wide registry (the TDE's kernel-selection counters
    /// `tv_tde_kernel_fastpath_total` / `tv_tde_kernel_fallback_total` live
    /// there — executor code has no handle to a per-server registry).
    pub fn metrics_text(&self) -> String {
        let mut text = self.processor.obs.registry.render_text();
        let global = tabviz_obs::global().render_text();
        if !global.is_empty() {
            text.push_str(&global);
        }
        text
    }

    /// Stable sorted snapshot of the same metrics, for programmatic checks.
    pub fn metrics_snapshot(&self) -> std::collections::BTreeMap<String, tabviz_obs::MetricValue> {
        self.processor.obs.registry.snapshot()
    }

    /// The server's query flight recorder: the last N completed traces plus
    /// auto-captured slow queries (see [`tabviz_obs::FlightRecorder`]).
    pub fn flight_recorder(&self) -> &tabviz_obs::FlightRecorder {
        &self.processor.obs.recorder
    }

    /// Export one recorded trace as Chrome `trace_event` JSON, loadable in
    /// `chrome://tracing` or Perfetto.
    pub fn chrome_trace(&self, trace_id: u64) -> Option<String> {
        self.processor
            .obs
            .recorder
            .get(trace_id)
            .map(|t| tabviz_obs::to_chrome_trace(&t))
    }

    /// Root-cause one recorded trace: the structured verdict, the
    /// self-time-attributed critical path, and the class baseline it was
    /// diffed against. `None` when the id no longer resolves. This is the
    /// operator's "why was my query slow?" call — feed it a trace id from
    /// a histogram exemplar or the slow-query log.
    pub fn why_slow(&self, trace_id: u64) -> Option<String> {
        let trace = self.processor.obs.recorder.get(trace_id)?;
        let baseline = self.processor.obs.baselines.get(&trace.class);
        let d = tabviz_obs::diagnose(&trace, baseline.as_ref());
        Some(format!(
            "trace={} {:.3}ms [{}] source={} {}",
            trace.trace_id,
            trace.total.as_secs_f64() * 1e3,
            trace.outcome,
            trace.source,
            d.render(),
        ))
    }

    /// The node-local slow-query log: the top-K slowest retained traces,
    /// each with its root-cause verdict.
    pub fn slow_query_verdicts(&self, top_k: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (rank, t) in self
            .processor
            .obs
            .recorder
            .slowest(top_k)
            .iter()
            .enumerate()
        {
            let baseline = self.processor.obs.baselines.get(&t.class);
            let d = tabviz_obs::diagnose(t, baseline.as_ref());
            let _ = writeln!(
                out,
                "#{} trace={} {:>9.3}ms {}",
                rank + 1,
                t.trace_id,
                t.total.as_secs_f64() * 1e3,
                d.render(),
            );
        }
        out
    }

    /// Human-readable diagnostics: the top-K slowest recorded queries with
    /// per-stage time breakdown and the decision reason codes that explain
    /// them (why the cache missed, whether the query queued, how the pool
    /// answered), followed by cache / scheduler / pool / scan rollups.
    pub fn diagnostics_report(&self, top_k: usize) -> String {
        use std::fmt::Write as _;
        let recorder = &self.processor.obs.recorder;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== data server diagnostics [{}]: {} trace(s) held, {} KiB, {} evicted, slow >= {:?} ===",
            self.node_name,
            recorder.len(),
            recorder.bytes() / 1024,
            recorder.evictions(),
            recorder.slow_threshold(),
        );
        let slow = recorder.slowest(top_k);
        if slow.is_empty() {
            let _ = writeln!(out, "(no traces recorded yet)");
        }
        for (rank, trace) in slow.iter().enumerate() {
            let query = if trace.query.chars().count() > 96 {
                let cut: String = trace.query.chars().take(96).collect();
                format!("{cut}…")
            } else {
                trace.query.clone()
            };
            let _ = writeln!(
                out,
                "#{} {:>9.3}ms [{}] trace={} source={} lanes={} :: {}",
                rank + 1,
                trace.total.as_secs_f64() * 1e3,
                trace.outcome,
                trace.trace_id,
                trace.source,
                trace.lanes().len(),
                query,
            );
            // Stage breakdown: total busy time per stage, entry order.
            let mut order: Vec<&'static str> = Vec::new();
            let mut by_stage: HashMap<&'static str, (u64, std::time::Duration)> = HashMap::new();
            for e in &trace.events {
                let slot = by_stage.entry(e.stage).or_insert_with(|| {
                    order.push(e.stage);
                    (0, std::time::Duration::ZERO)
                });
                slot.0 += 1;
                slot.1 += e.dur;
            }
            for stage in &order {
                let (n, dur) = by_stage[stage];
                let _ = writeln!(
                    out,
                    "    {:<16} x{:<3} {:>9.3}ms",
                    stage,
                    n,
                    dur.as_secs_f64() * 1e3
                );
            }
            let reasons = trace.reasons();
            if !reasons.is_empty() {
                let _ = writeln!(out, "    causes: {}", reasons.join(", "));
            }
            if trace.dropped_events > 0 {
                let _ = writeln!(out, "    ({} events dropped)", trace.dropped_events);
            }
        }
        // Subsystem rollups. Scan pruning counters live in the global
        // registry (no per-processor owner); everything else is ours.
        let snap = self.processor.obs.registry.snapshot();
        let global = tabviz_obs::global().snapshot();
        for (title, source, prefixes) in [
            ("cache", &snap, &["tv_cache_"][..]),
            ("scheduler", &snap, &["tv_sched_"][..]),
            ("pool", &snap, &["tv_backend_"][..]),
            ("scan", &global, &["tv_tde_"][..]),
        ] {
            let mut lines = Vec::new();
            for (name, value) in source {
                if !prefixes.iter().any(|p| name.starts_with(p)) {
                    continue;
                }
                match value {
                    tabviz_obs::MetricValue::Counter(0) => {}
                    tabviz_obs::MetricValue::Counter(c) => lines.push(format!("{name}={c}")),
                    tabviz_obs::MetricValue::Gauge(g) => lines.push(format!("{name}={g}")),
                    tabviz_obs::MetricValue::Histogram(h) if h.count > 0 => {
                        lines.push(format!(
                            "{name}: n={} p50={}us p95={}us",
                            h.count,
                            h.p50_micros.unwrap_or(0),
                            h.p95_micros.unwrap_or(0)
                        ));
                    }
                    tabviz_obs::MetricValue::Histogram(_) => {}
                }
            }
            if !lines.is_empty() {
                let _ = writeln!(out, "--- {title} ---");
                for l in lines {
                    let _ = writeln!(out, "  {l}");
                }
            }
        }
        out
    }

    /// A client connects: receives metadata (the schema of the published
    /// relation and whether temp structures are available — "this
    /// information is conveyed back to the client", Sect. 5.3).
    pub fn connect(
        self: &Arc<Self>,
        published_name: &str,
        user: impl Into<String>,
    ) -> Result<ClientSession> {
        let published = self.published(published_name)?;
        // Verify the backing source exists.
        self.processor.registry.get(&published.backing)?;
        let user = user.into();
        let session_id = format!("{user}@{published_name}");
        Ok(ClientSession {
            server: Arc::clone(self),
            published,
            user,
            session_id,
            priority: Priority::Interactive,
            weight: 1.0,
            my_sets: Vec::new(),
            queries: AtomicU64::new(0),
            degraded_serves: AtomicU64::new(0),
        })
    }

    /// One synchronous stale-cache revalidation sweep (see
    /// [`tabviz_core::revalidate_pass`]).
    pub fn revalidate_now(&self, opts: &RevalidateOptions) -> RevalidateReport {
        revalidate_pass(&self.processor, opts)
    }

    /// Start the background maintenance lane: a thread sweeping stale cache
    /// entries every `interval`, re-fetching entries older than the
    /// staleness budget at `Background` priority. Stop by dropping (or
    /// calling [`MaintenanceLane::stop`] on) the returned handle.
    pub fn start_maintenance(
        self: &Arc<Self>,
        interval: std::time::Duration,
        opts: RevalidateOptions,
    ) -> MaintenanceLane {
        let server = Arc::clone(self);
        MaintenanceLane::spawn(interval, move || revalidate_pass(&server.processor, &opts))
    }

    /// A published source's data was refreshed while its backing database is
    /// unreachable: demote the cached results to stale instead of purging so
    /// clients keep rendering (flagged) until the backend recovers. Returns
    /// how many cache entries were marked.
    pub fn mark_backing_stale(&self, published_name: &str) -> Result<usize> {
        let published = self.published(published_name)?;
        Ok(self.processor.mark_source_stale(&published.backing))
    }

    fn build_spec(
        &self,
        published: &PublishedSource,
        user: &str,
        query: &ClientQuery,
    ) -> Result<QuerySpec> {
        let mut spec = QuerySpec::new(published.backing.clone(), published.relation.clone());
        for f in &query.filters {
            spec = spec.filter(published.substitute(f));
        }
        // Mandatory row-level security filter.
        if let Some(f) = published.user_filter(user) {
            spec = spec.filter(published.substitute(&f));
        }
        // Incorporate referenced set definitions as IN filters; the shared
        // compilation pipeline will externalize them into backing-DB temp
        // tables (or inline them if that fails).
        {
            let sets = self.sets.lock();
            for name in &query.set_refs {
                let def = sets
                    .get(name)
                    .ok_or_else(|| TvError::Bind(format!("unknown set definition '{name}'")))?;
                spec = spec.filter(Expr::In {
                    expr: Box::new(Expr::Column(def.column.clone())),
                    list: def.values.clone(),
                    negated: false,
                });
            }
        }
        for g in &query.group_by {
            spec = spec.group(g.clone());
        }
        for a in &query.aggs {
            let mut call = a.clone();
            call.arg = call.arg.map(|e| published.substitute(&e));
            spec = spec.agg(call);
        }
        if !query.order.is_empty() {
            spec = spec.order_by(query.order.clone());
        }
        if let Some(n) = query.topn {
            spec = spec.top(n);
        }
        Ok(spec)
    }
}

/// One client's connection to one published source.
pub struct ClientSession {
    server: Arc<DataServer>,
    published: Arc<PublishedSource>,
    user: String,
    /// Admission fairness domain (user + published source): sessions share
    /// backend capacity by deficit round-robin within their class.
    session_id: String,
    /// Admission class; [`Priority::Interactive`] unless demoted.
    priority: Priority,
    /// Fair-queuing weight within the class.
    weight: f64,
    my_sets: Vec<String>,
    queries: AtomicU64,
    /// Queries this session had answered from stale cache entries while the
    /// backing database was down — the client-facing "outdated data" badge.
    degraded_serves: AtomicU64,
}

impl ClientSession {
    /// The published source's schema, as the client's data window sees it.
    pub fn metadata(&self) -> Result<tabviz_common::SchemaRef> {
        let managed = self
            .server
            .processor
            .registry
            .get(&self.published.backing)?;
        let catalog = ManagedCatalog(&managed);
        self.published.relation.schema(&catalog)
    }

    /// Whether the session may use named sets (server memory temp tables).
    pub fn supports_sets(&self) -> bool {
        self.server.enable_memory_temp_tables
    }

    /// Upload a value set once; returns its name. Subsequent queries
    /// reference it without resending the values.
    pub fn define_set(&mut self, column: &str, values: Vec<Value>) -> Result<String> {
        if !self.server.enable_memory_temp_tables {
            return Err(TvError::Unsupported(
                "in-memory temp tables are disabled on this Data Server".into(),
            ));
        }
        let name = tabviz_core::compile::temp_table_name(column, &values);
        let bytes: usize = values.iter().map(|v| v.to_literal().len()).sum();
        let mut sets = self.server.sets.lock();
        match sets.get_mut(&name) {
            Some(def) => def.refs += 1,
            None => {
                sets.insert(
                    name.clone(),
                    SetDef {
                        column: column.to_string(),
                        values,
                        refs: 1,
                    },
                );
                let mut st = self.server.stats.lock();
                st.set_definitions += 1;
                st.client_bytes_in += bytes as u64;
            }
        }
        self.my_sets.push(name.clone());
        Ok(name)
    }

    /// The domain of a defined set — answered from Data Server memory, no
    /// database interaction ("in some cases, the query may be evaluated
    /// without interacting with the underlying database").
    pub fn set_domain(&self, name: &str) -> Result<Vec<Value>> {
        let sets = self.server.sets.lock();
        let def = sets
            .get(name)
            .ok_or_else(|| TvError::Bind(format!("unknown set definition '{name}'")))?;
        self.server.stats.lock().answered_from_memory += 1;
        Ok(def.values.clone())
    }

    /// Evaluate a client query through the unified pipeline.
    pub fn query(&self, query: &ClientQuery) -> Result<(Chunk, ExecOutcome)> {
        let reg = &self.server.processor.obs.registry;
        let wire_in = query.wire_bytes() as u64;
        {
            let mut st = self.server.stats.lock();
            st.queries += 1;
            st.client_bytes_in += wire_in;
        }
        self.queries.fetch_add(1, Relaxed);
        reg.counter("tv_dataserver_queries_total").inc();
        reg.counter("tv_dataserver_client_bytes_in_total")
            .add(wire_in);
        let spec = self.server.build_spec(&self.published, &self.user, query)?;
        let admit =
            AdmitRequest::new(self.priority, self.session_id.clone()).with_weight(self.weight);
        let (chunk, outcome) = self.server.processor.execute_as(&spec, &admit)?;
        let wire_out = chunk.approx_bytes() as u64;
        {
            let mut st = self.server.stats.lock();
            st.client_bytes_out += wire_out;
            if outcome == ExecOutcome::DegradedStale {
                st.degraded_serves += 1;
            }
        }
        reg.counter("tv_dataserver_client_bytes_out_total")
            .add(wire_out);
        if outcome == ExecOutcome::DegradedStale {
            self.degraded_serves.fetch_add(1, Relaxed);
            reg.counter("tv_dataserver_degraded_serves_total").inc();
        }
        Ok((chunk, outcome))
    }

    /// Demote (or restore) this session's admission class — e.g. a
    /// reporting client that should yield to humans runs at
    /// [`Priority::Batch`].
    pub fn set_priority(&mut self, priority: Priority) {
        self.priority = priority;
    }

    /// Set this session's fair-queuing weight (1.0 = normal share).
    pub fn set_weight(&mut self, weight: f64) {
        self.weight = weight;
    }

    /// Queries this session has submitted.
    pub fn query_count(&self) -> u64 {
        self.queries.load(Relaxed)
    }

    /// How many of this session's answers were served degraded (stale).
    pub fn degraded_serves(&self) -> u64 {
        self.degraded_serves.load(Relaxed)
    }

    /// The response-time profile of the most recently completed query on the
    /// server's processor. Called right after [`ClientSession::query`]
    /// returns, this is that query's profile: execution is synchronous, so
    /// the caller's query is the last one recorded from this thread.
    pub fn last_profile(&self) -> Option<tabviz_obs::QueryProfile> {
        self.server.processor.obs.profiles.last()
    }
}

impl Drop for ClientSession {
    fn drop(&mut self) {
        // "This state is maintained while the client connection to Data
        // Server remains active; it is reclaimed when the connection is
        // closed. ... The definitions are removed when all references to
        // them are removed."
        let mut sets = self.server.sets.lock();
        for name in &self.my_sets {
            if let Some(def) = sets.get_mut(name) {
                def.refs -= 1;
                if def.refs == 0 {
                    sets.remove(name);
                }
            }
        }
    }
}

/// Catalog adapter over a managed source's metadata.
struct ManagedCatalog<'a>(&'a Arc<tabviz_core::ManagedSource>);

impl tabviz_tql::Catalog for ManagedCatalog<'_> {
    fn table_meta(&self, name: &str) -> Result<tabviz_tql::TableMeta> {
        self.0.source.table_meta(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_backend::{SimConfig, SimDb};
    use tabviz_common::{DataType, Field, Schema};
    use tabviz_storage::{Database, Table};
    use tabviz_tql::expr::{bin, col, lit, BinOp};
    use tabviz_tql::{AggFunc, LogicalPlan};

    fn sales_db() -> Arc<Database> {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("region", DataType::Str),
                Field::new("customer", DataType::Str),
                Field::new("revenue", DataType::Int),
                Field::new("cost", DataType::Int),
            ])
            .unwrap(),
        );
        let rows: Vec<Vec<Value>> = (0..400)
            .map(|i| {
                vec![
                    Value::Str(["west", "east"][i % 2].into()),
                    Value::Str(format!("C{}", i % 100)),
                    Value::Int((i * 7 % 500) as i64),
                    Value::Int((i * 3 % 200) as i64),
                ]
            })
            .collect();
        let db = Arc::new(Database::new("crm"));
        db.put(
            Table::from_chunk("orders", &Chunk::from_rows(schema, &rows).unwrap(), &[]).unwrap(),
        )
        .unwrap();
        db
    }

    fn server() -> (Arc<DataServer>, SimDb) {
        let sim = SimDb::new("warehouse", sales_db(), SimConfig::default());
        let qp = QueryProcessor::default();
        qp.registry.register(Arc::new(sim.clone()), 4);
        let server = Arc::new(DataServer::new(qp));
        let p = PublishedSource::new("sales", "warehouse", LogicalPlan::scan("orders"));
        p.define_calculation("margin", bin(BinOp::Sub, col("revenue"), col("cost")));
        p.set_user_filter("alice", bin(BinOp::Eq, col("region"), lit("west")));
        p.set_user_filter("bob", bin(BinOp::Eq, col("region"), lit("east")));
        server.publish(p);
        (server, sim)
    }

    fn revenue_by_region() -> ClientQuery {
        ClientQuery {
            group_by: vec!["region".into()],
            aggs: vec![AggCall::new(AggFunc::Sum, Some(col("revenue")), "rev")],
            ..Default::default()
        }
    }

    #[test]
    fn metadata_handout() {
        let (server, _) = server();
        let session = server.connect("sales", "manager").unwrap();
        let schema = session.metadata().unwrap();
        assert_eq!(
            schema.names(),
            vec!["region", "customer", "revenue", "cost"]
        );
        assert!(session.supports_sets());
    }

    #[test]
    fn row_level_security_applies() {
        let (server, _) = server();
        let alice = server.connect("sales", "alice").unwrap();
        let (out, _) = alice.query(&revenue_by_region()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.row(0)[0], Value::Str("west".into()));
        // A user with no filter sees everything.
        let manager = server.connect("sales", "manager").unwrap();
        let (all, _) = manager.query(&revenue_by_region()).unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn security_filters_never_leak_across_users() {
        let (server, _) = server();
        let manager = server.connect("sales", "manager").unwrap();
        manager.query(&revenue_by_region()).unwrap(); // caches the full result
        let bob = server.connect("sales", "bob").unwrap();
        let (out, _) = bob.query(&revenue_by_region()).unwrap();
        // Bob's result is east-only even though the full result was cached
        // (the mandatory filter is part of the cache key / post-processing).
        assert_eq!(out.len(), 1);
        assert_eq!(out.row(0)[0], Value::Str("east".into()));
    }

    #[test]
    fn shared_calculation_used_in_query() {
        let (server, _) = server();
        let s = server.connect("sales", "manager").unwrap();
        let q = ClientQuery {
            group_by: vec!["region".into()],
            aggs: vec![AggCall::new(AggFunc::Sum, Some(col("margin")), "m")],
            ..Default::default()
        };
        let (out, _) = s.query(&q).unwrap();
        assert_eq!(out.len(), 2);
        // margin = revenue - cost; verify against direct computation.
        let q2 = ClientQuery {
            group_by: vec!["region".into()],
            aggs: vec![AggCall::new(
                AggFunc::Sum,
                Some(bin(BinOp::Sub, col("revenue"), col("cost"))),
                "m",
            )],
            ..Default::default()
        };
        let (out2, _) = s.query(&q2).unwrap();
        let mut a = out.to_rows();
        let mut b = out2.to_rows();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn set_definition_reduces_traffic_and_pushes_down() {
        let (server, sim) = server();
        let mut s = server.connect("sales", "manager").unwrap();
        let customers: Vec<Value> = (0..60).map(|i| Value::Str(format!("C{i}"))).collect();
        let set = s.define_set("customer", customers.clone()).unwrap();
        let base_in = server.stats().client_bytes_in;

        let q = ClientQuery {
            group_by: vec!["region".into()],
            aggs: vec![AggCall::new(AggFunc::Count, None, "n")],
            set_refs: vec![set.clone()],
            ..Default::default()
        };
        s.query(&q).unwrap();
        let after_one = server.stats().client_bytes_in;
        // Referencing the set costs far less than re-uploading 60 values.
        assert!(
            (after_one - base_in) < 200,
            "wire cost {}",
            after_one - base_in
        );
        // The set was pushed down as a temp table on the backing database.
        assert_eq!(sim.stats().temp_tables_created, 1);

        // Inline equivalent gives identical rows.
        let q_inline = ClientQuery {
            filters: vec![Expr::In {
                expr: Box::new(col("customer")),
                list: customers,
                negated: false,
            }],
            group_by: vec!["region".into()],
            aggs: vec![AggCall::new(AggFunc::Count, None, "n")],
            ..Default::default()
        };
        let (a, _) = s.query(&q).unwrap();
        let (b, _) = s.query(&q_inline).unwrap();
        let mut ar = a.to_rows();
        let mut br = b.to_rows();
        ar.sort();
        br.sort();
        assert_eq!(ar, br);
    }

    #[test]
    fn set_definitions_shared_and_refcounted() {
        let (server, _) = server();
        let mut s1 = server.connect("sales", "alice").unwrap();
        let mut s2 = server.connect("sales", "bob").unwrap();
        let values: Vec<Value> = (0..40).map(|i| Value::Str(format!("C{i}"))).collect();
        let n1 = s1.define_set("customer", values.clone()).unwrap();
        let n2 = s2.define_set("customer", values).unwrap();
        assert_eq!(n1, n2, "identical definitions share one entry");
        assert_eq!(server.stats().set_definitions, 1);
        assert_eq!(s2.set_domain(&n2).unwrap().len(), 40);
        drop(s1);
        // Still alive: s2 holds a reference.
        assert!(s2.set_domain(&n2).is_ok());
        let name = n2.clone();
        drop(s2);
        // All references gone → definition removed.
        let s3 = server.connect("sales", "manager").unwrap();
        assert!(s3.set_domain(&name).is_err());
    }

    #[test]
    fn memory_temp_tables_can_be_disabled() {
        let (server, _) = server();
        let mut server_mut = Arc::try_unwrap(server)
            .map_err(|_| ())
            .unwrap_or_else(|_| panic!());
        server_mut.enable_memory_temp_tables = false;
        let server = Arc::new(server_mut);
        let mut s = server.connect("sales", "manager").unwrap();
        assert!(!s.supports_sets());
        let err = s.define_set("customer", vec![Value::Str("C1".into())]);
        assert!(matches!(err, Err(TvError::Unsupported(_))));
    }

    #[test]
    fn outage_serves_stale_results_to_clients() {
        use tabviz_backend::FaultPlan;
        use tabviz_core::ExecOutcome;
        let (server, sim) = server();
        let s = server.connect("sales", "manager").unwrap();
        let (fresh, _) = s.query(&revenue_by_region()).unwrap();
        // Data refresh arrives while the warehouse starts dropping every
        // connection mid-query.
        assert!(server.mark_backing_stale("sales").unwrap() >= 1);
        let mut plan = FaultPlan::seeded(8);
        plan.connection_drop = 1.0;
        sim.set_fault_plan(Some(plan));
        let (out, outcome) = s.query(&revenue_by_region()).unwrap();
        assert_eq!(outcome, ExecOutcome::DegradedStale);
        assert_eq!(out.to_rows(), fresh.to_rows());
        assert_eq!(server.stats().degraded_serves, 1);
        // Backend heals: the next query is fresh again and re-caches.
        sim.set_fault_plan(None);
        let (_, outcome) = s.query(&revenue_by_region()).unwrap();
        assert_ne!(outcome, ExecOutcome::DegradedStale);
    }

    #[test]
    fn unknown_published_source_and_set() {
        let (server, _) = server();
        assert!(server.connect("nope", "u").is_err());
        let s = server.connect("sales", "u").unwrap();
        let q = ClientQuery {
            group_by: vec!["region".into()],
            set_refs: vec!["missing".into()],
            ..Default::default()
        };
        assert!(s.query(&q).is_err());
    }
}
