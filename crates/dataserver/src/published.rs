//! Published data sources.
//!
//! "By publishing a data source to Data Server, a complex calculation in a
//! data source can be defined once and used everywhere. ... Modifications to
//! a published data source affect all visualizations that refer to it.
//! TDE extracts can be published with a data source. Instead of 100
//! workbooks with distinct copies of the same extract, a single extract is
//! created" (Sect. 5.2).

use parking_lot::RwLock;
use std::collections::HashMap;
use tabviz_tql::expr::Expr;
use tabviz_tql::LogicalPlan;

/// A data source published to the Data Server.
pub struct PublishedSource {
    pub name: String,
    /// The backing data source (registered in the server's processor).
    pub backing: String,
    /// The data model: the FROM relation every client query runs against.
    pub relation: LogicalPlan,
    /// Named calculations, substitutable into filters and aggregate
    /// arguments ("defined once and used everywhere").
    calculations: RwLock<HashMap<String, Expr>>,
    /// Row-level security: user → mandatory filter ("an individual
    /// salesperson may only be able to see customers in their region").
    user_filters: RwLock<HashMap<String, Expr>>,
    /// Extract refresh counter (one shared extract, not one per workbook).
    refreshes: RwLock<u64>,
}

impl PublishedSource {
    pub fn new(name: impl Into<String>, backing: impl Into<String>, relation: LogicalPlan) -> Self {
        PublishedSource {
            name: name.into(),
            backing: backing.into(),
            relation,
            calculations: RwLock::new(HashMap::new()),
            user_filters: RwLock::new(HashMap::new()),
            refreshes: RwLock::new(0),
        }
    }

    /// Define or update a named calculation; every referring visualization
    /// picks up the change on its next query.
    pub fn define_calculation(&self, name: impl Into<String>, expr: Expr) {
        self.calculations.write().insert(name.into(), expr);
    }

    pub fn calculation(&self, name: &str) -> Option<Expr> {
        self.calculations.read().get(name).cloned()
    }

    /// Substitute calculation references (columns named like a calculation)
    /// recursively.
    pub fn substitute(&self, e: &Expr) -> Expr {
        let calcs = self.calculations.read();
        substitute_calcs(e, &calcs)
    }

    pub fn set_user_filter(&self, user: impl Into<String>, filter: Expr) {
        self.user_filters.write().insert(user.into(), filter);
    }

    pub fn user_filter(&self, user: &str) -> Option<Expr> {
        self.user_filters.read().get(user).cloned()
    }

    /// Record an extract refresh (the benefit measured in E12/EXPERIMENTS:
    /// one refresh instead of one per workbook copy).
    pub fn record_refresh(&self) {
        *self.refreshes.write() += 1;
    }

    pub fn refresh_count(&self) -> u64 {
        *self.refreshes.read()
    }
}

fn substitute_calcs(e: &Expr, calcs: &HashMap<String, Expr>) -> Expr {
    match e {
        Expr::Column(name) => match calcs.get(name) {
            // Calculations may reference other calculations.
            Some(def) => substitute_calcs(def, calcs),
            None => e.clone(),
        },
        Expr::Literal(_) => e.clone(),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(substitute_calcs(expr, calcs)),
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(substitute_calcs(left, calcs)),
            right: Box::new(substitute_calcs(right, calcs)),
        },
        Expr::In {
            expr,
            list,
            negated,
        } => Expr::In {
            expr: Box::new(substitute_calcs(expr, calcs)),
            list: list.clone(),
            negated: *negated,
        },
        Expr::Between { expr, low, high } => Expr::Between {
            expr: Box::new(substitute_calcs(expr, calcs)),
            low: low.clone(),
            high: high.clone(),
        },
        Expr::Func { func, args } => Expr::Func {
            func: *func,
            args: args.iter().map(|a| substitute_calcs(a, calcs)).collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_tql::expr::{bin, col, lit, BinOp};

    #[test]
    fn calculation_substitution_is_recursive() {
        let p = PublishedSource::new("sales", "warehouse", LogicalPlan::scan("orders"));
        p.define_calculation("margin", bin(BinOp::Sub, col("revenue"), col("cost")));
        p.define_calculation("good_margin", bin(BinOp::Gt, col("margin"), lit(100i64)));
        let out = p.substitute(&col("good_margin"));
        assert_eq!(out.to_string(), "(([revenue] - [cost]) > 100)");
        // Non-calculation columns pass through.
        assert_eq!(p.substitute(&col("region")), col("region"));
    }

    #[test]
    fn calculation_update_affects_subsequent_queries() {
        let p = PublishedSource::new("sales", "warehouse", LogicalPlan::scan("orders"));
        p.define_calculation("m", col("a"));
        assert_eq!(p.substitute(&col("m")), col("a"));
        p.define_calculation("m", col("b"));
        assert_eq!(p.substitute(&col("m")), col("b"));
    }

    #[test]
    fn user_filters() {
        let p = PublishedSource::new("sales", "warehouse", LogicalPlan::scan("orders"));
        p.set_user_filter("alice", bin(BinOp::Eq, col("region"), lit("west")));
        assert!(p.user_filter("alice").is_some());
        assert!(p.user_filter("manager").is_none());
    }

    #[test]
    fn refresh_counter() {
        let p = PublishedSource::new("sales", "warehouse", LogicalPlan::scan("orders"));
        p.record_refresh();
        p.record_refresh();
        assert_eq!(p.refresh_count(), 2);
    }
}
