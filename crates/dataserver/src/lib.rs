//! The Tableau Data Server (Sect. 5).
//!
//! "The Tableau Data Server is a part of Tableau Server that reduces the
//! overhead of sharing calculations and extracts across workbooks. Data
//! Server also allows filters to be applied to a published data source to
//! restrict individual users' access to the data. ... Data Server parses the
//! query into an internal representation, optimizes it and generates the
//! query for the specific underlying database" — through the *same* pipeline
//! as the desktop query processor ("in Tableau 9.0, these pipelines got
//! unified", Sect. 5.3).
//!
//! * [`published`] — published data sources: shared relation, named
//!   calculations, row-level user filters, shared extracts;
//! * [`server`] — the proxy: client sessions, metadata handout, in-memory
//!   temporary tables with definition sharing (Sect. 5.4), query evaluation
//!   with network accounting.

pub mod published;
pub mod server;

pub use published::PublishedSource;
pub use server::{ClientQuery, ClientSession, DataServer, ServerStats};
