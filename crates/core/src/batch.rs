//! Query batch processing (Sect. 3.3).
//!
//! "Consider a query batch B = [q1, .., qn] ... consider a directed graph G
//! with the queries as nodes and edges pointing from qi to qj iff the result
//! of qj can be computed from the results of qi (Fig. 3). ... we process the
//! batch in two phases. First, we analyze it and partition the nodes of G
//! into two sets. One set contains queries that need to be sent to the
//! remote back-ends; they correspond to the source nodes ... The second set
//! contains queries that are cache hits that can be processed locally. In
//! the second phase, remote queries are submitted for execution concurrently
//! and the local ones are processed as soon as any of their predecessors in
//! G finishes."
//!
//! Fusion (Sect. 3.4) runs first; originals are recovered from the fused
//! results through the intelligent cache's post-processing.

use crate::fusion::fuse;
use crate::processor::QueryProcessor;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use tabviz_cache::{subsumes, QuerySpec};
use tabviz_common::{Chunk, Result, TvError};

/// Batch execution strategy (each combination is an E1/E2 data point).
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Apply query fusion before partitioning.
    pub fuse: bool,
    /// Submit remote queries concurrently (vs one at a time).
    pub concurrent: bool,
    /// Build the opportunity graph and run derivable queries locally
    /// (vs sending every query to the backend).
    pub cache_aware: bool,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            fuse: true,
            concurrent: true,
            cache_aware: true,
        }
    }
}

/// Per-batch accounting.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    pub wall: Duration,
    /// Queries dispatched to backends.
    pub remote: usize,
    /// Queries answered from cache/subsumption locally.
    pub local: usize,
    /// Queries eliminated by fusion.
    pub fused_away: usize,
}

/// Results keyed by the caller's names.
#[derive(Debug)]
pub struct BatchResult {
    pub results: HashMap<String, Chunk>,
    pub report: BatchReport,
}

/// Build the Fig. 3 opportunity graph over deduplicated specs and return,
/// for each node, the indices it can be derived from.
pub fn opportunity_graph(specs: &[QuerySpec]) -> Vec<Vec<usize>> {
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); specs.len()];
    for i in 0..specs.len() {
        for j in 0..specs.len() {
            if i == j {
                continue;
            }
            if subsumes(&specs[i], &specs[j]) {
                preds[j].push(i);
            }
        }
    }
    preds
}

/// Execute a named batch of queries.
pub fn execute_batch(
    processor: &QueryProcessor,
    queries: &[(String, QuerySpec)],
    options: &BatchOptions,
) -> Result<BatchResult> {
    let t0 = Instant::now();
    let mut report = BatchReport::default();

    let specs: Vec<QuerySpec> = queries.iter().map(|(_, s)| s.clone()).collect();

    // Phase 0: fusion.
    let (exec_specs, assignment): (Vec<QuerySpec>, Vec<usize>) = if options.fuse {
        let plan = fuse(&specs);
        report.fused_away = plan.saved();
        (plan.fused, plan.assignment)
    } else {
        let idx = (0..specs.len()).collect();
        (specs.clone(), idx)
    };

    // Phase 1: partition into remote sources and locally-derivable queries.
    // Remote = nodes with no incoming edge (dedup first: mutual subsumption
    // between identical specs would otherwise orphan both).
    let mut canonical: HashMap<String, usize> = HashMap::new();
    let mut unique: Vec<QuerySpec> = Vec::new();
    let mut unique_of: Vec<usize> = Vec::with_capacity(exec_specs.len());
    for s in &exec_specs {
        let key = s.canonical_text();
        let idx = *canonical.entry(key).or_insert_with(|| {
            unique.push(s.clone());
            unique.len() - 1
        });
        unique_of.push(idx);
    }

    let preds = if options.cache_aware {
        opportunity_graph(&unique)
    } else {
        vec![Vec::new(); unique.len()]
    };
    let remote_idx: Vec<usize> = (0..unique.len())
        .filter(|&i| preds[i].is_empty())
        .collect();
    let local_idx: Vec<usize> = (0..unique.len())
        .filter(|&i| !preds[i].is_empty())
        .collect();

    // Phase 2: concurrent remote submission. Each remote execution lands in
    // the shared caches, which is what unblocks the local set.
    let mut executed: HashMap<String, Chunk> = HashMap::with_capacity(unique.len());
    if options.concurrent && remote_idx.len() > 1 {
        let outputs = std::thread::scope(|scope| -> Result<Vec<(usize, Chunk)>> {
            let mut handles = Vec::new();
            for &i in &remote_idx {
                let spec = unique[i].clone();
                handles.push((i, scope.spawn(move || processor.execute(&spec))));
            }
            let mut out = Vec::with_capacity(handles.len());
            for (i, h) in handles {
                let (chunk, _) = h
                    .join()
                    .map_err(|_| TvError::Exec("batch worker panicked".into()))??;
                out.push((i, chunk));
            }
            Ok(out)
        })?;
        for (i, chunk) in outputs {
            executed.insert(unique[i].canonical_text(), chunk);
        }
    } else {
        for &i in &remote_idx {
            let (chunk, _) = processor.execute(&unique[i])?;
            executed.insert(unique[i].canonical_text(), chunk);
        }
    }
    report.remote = remote_idx.len();

    // Local queries: all predecessors are cached now; the processor's
    // intelligent-cache path answers them without touching the backend.
    for &i in &local_idx {
        let (chunk, _) = processor.execute(&unique[i])?;
        executed.insert(unique[i].canonical_text(), chunk);
    }
    report.local = local_idx.len();

    // Deliver each original query's result: executed specs directly, fused
    // originals projected back out of the fused entry by the cache.
    let mut results = HashMap::with_capacity(queries.len());
    for ((name, original), &fused_idx) in queries.iter().zip(&assignment) {
        let exec_key = unique[unique_of[fused_idx]].canonical_text();
        let chunk = if exec_key == original.canonical_text() {
            executed
                .get(&exec_key)
                .cloned()
                .ok_or_else(|| TvError::Exec("batch bookkeeping lost a result".into()))?
        } else {
            processor.execute(original)?.0
        };
        results.insert(name.clone(), chunk);
    }

    report.wall = t0.elapsed();
    Ok(BatchResult { results, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::ExecOutcome;
    use std::sync::Arc;
    use std::time::Duration as StdDuration;
    use tabviz_backend::{LatencyModel, SimConfig, SimDb};
    use tabviz_common::{DataType, Field, Schema, Value};
    use tabviz_storage::{Database, Table};
    use tabviz_tql::expr::{bin, col, lit, BinOp};
    use tabviz_tql::{AggCall, AggFunc, LogicalPlan, SortKey};

    fn flights_db(rows: usize) -> Arc<Database> {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("origin", DataType::Str),
                Field::new("delay", DataType::Int),
            ])
            .unwrap(),
        );
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| {
                vec![
                    Value::Str(["AA", "DL", "WN", "UA"][i % 4].into()),
                    Value::Str(["JFK", "LAX", "SFO"][i % 3].into()),
                    Value::Int((i % 120) as i64),
                ]
            })
            .collect();
        let db = Arc::new(Database::new("remote"));
        db.put(Table::from_chunk("flights", &Chunk::from_rows(schema, &data).unwrap(), &[]).unwrap())
            .unwrap();
        db
    }

    fn processor(latency: LatencyModel) -> (QueryProcessor, SimDb) {
        let sim = SimDb::new(
            "warehouse",
            flights_db(3000),
            SimConfig { latency, ..Default::default() },
        );
        let qp = QueryProcessor::default();
        qp.registry.register(Arc::new(sim.clone()), 8);
        (qp, sim)
    }

    /// A Fig. 1-style dashboard batch: several zones sharing filters, one
    /// fine-grained query that subsumes a coarse one.
    fn dashboard_batch() -> Vec<(String, QuerySpec)> {
        let rel = || LogicalPlan::scan("flights");
        let f = || bin(BinOp::Ge, col("delay"), lit(0i64));
        vec![
            (
                "by_carrier_origin".into(),
                QuerySpec::new("warehouse", rel())
                    .filter(f())
                    .group("carrier")
                    .group("origin")
                    .agg(AggCall::new(AggFunc::Count, None, "n"))
                    .agg(AggCall::new(AggFunc::Sum, Some(col("delay")), "total"))
                    .agg(AggCall::new(AggFunc::Count, Some(col("delay")), "cnt")),
            ),
            (
                "by_carrier".into(),
                QuerySpec::new("warehouse", rel())
                    .filter(f())
                    .group("carrier")
                    .agg(AggCall::new(AggFunc::Count, None, "n")),
            ),
            (
                "by_origin".into(),
                QuerySpec::new("warehouse", rel())
                    .filter(f())
                    .group("origin")
                    .agg(AggCall::new(AggFunc::Count, None, "n")),
            ),
            (
                "avg_delay_by_carrier".into(),
                QuerySpec::new("warehouse", rel())
                    .filter(f())
                    .group("carrier")
                    .agg(AggCall::new(AggFunc::Avg, Some(col("delay")), "avg")),
            ),
            (
                "top_carriers".into(),
                QuerySpec::new("warehouse", rel())
                    .filter(f())
                    .group("carrier")
                    .agg(AggCall::new(AggFunc::Count, None, "flights"))
                    .order_by(vec![SortKey::desc("flights")])
                    .top(2),
            ),
        ]
    }

    #[test]
    fn opportunity_graph_edges() {
        let specs: Vec<QuerySpec> = dashboard_batch().into_iter().map(|(_, s)| s).collect();
        let preds = opportunity_graph(&specs);
        // by_carrier (1), by_origin (2), avg (3) derive from the fine query (0).
        assert!(preds[1].contains(&0));
        assert!(preds[2].contains(&0));
        assert!(preds[0].is_empty());
    }

    #[test]
    fn batch_reduces_remote_queries() {
        let (qp, sim) = processor(LatencyModel::instant());
        let batch = dashboard_batch();
        let out = execute_batch(&qp, &batch, &BatchOptions::default()).unwrap();
        assert_eq!(out.results.len(), 5);
        // All five zones answered with at most 2 remote queries (the fine
        // grouping + the top-n, which can't fuse or derive).
        assert!(
            sim.stats().queries <= 2,
            "remote queries: {}",
            sim.stats().queries
        );
        assert!(out.report.local >= 1);
        // Results are correct.
        let by_carrier = &out.results["by_carrier"];
        assert_eq!(by_carrier.len(), 4);
        let total: i64 = by_carrier
            .to_rows()
            .iter()
            .map(|r| r[1].as_int().unwrap())
            .sum();
        assert_eq!(total, 3000);
    }

    #[test]
    fn naive_mode_sends_everything() {
        // The full pre-optimization baseline: no fusion, no graph, no
        // processor-level caches — every zone query reaches the backend.
        let (mut qp, sim) = processor(LatencyModel::instant());
        qp.options = crate::processor::ProcessorOptions {
            use_intelligent_cache: false,
            use_literal_cache: false,
            ..Default::default()
        };
        let batch = dashboard_batch();
        let opts = BatchOptions { fuse: false, concurrent: false, cache_aware: false };
        execute_batch(&qp, &batch, &opts).unwrap();
        assert_eq!(sim.stats().queries, 5);
    }

    #[test]
    fn batch_results_identical_across_strategies() {
        let configs = [
            BatchOptions { fuse: false, concurrent: false, cache_aware: false },
            BatchOptions { fuse: true, concurrent: false, cache_aware: false },
            BatchOptions { fuse: false, concurrent: true, cache_aware: true },
            BatchOptions::default(),
        ];
        let mut reference: Option<HashMap<String, Vec<Vec<Value>>>> = None;
        for opts in configs {
            let (qp, _) = processor(LatencyModel::instant());
            let out = execute_batch(&qp, &dashboard_batch(), &opts).unwrap();
            let normalized: HashMap<String, Vec<Vec<Value>>> = out
                .results
                .into_iter()
                .map(|(k, v)| {
                    let mut rows = v.to_rows();
                    rows.sort();
                    (k, rows)
                })
                .collect();
            match &reference {
                None => reference = Some(normalized),
                Some(r) => assert_eq!(r, &normalized, "strategy {opts:?} diverged"),
            }
        }
    }

    #[test]
    fn concurrent_submission_is_faster_with_latency() {
        let mut latency = LatencyModel::instant();
        latency.dispatch = StdDuration::from_millis(15);
        // Distinct relations so nothing fuses or derives: 4 genuine remotes.
        let make_batch = |qp: &QueryProcessor| {
            let db = qp.registry.get("warehouse").unwrap();
            let _ = db;
            (0..4)
                .map(|i| {
                    (
                        format!("q{i}"),
                        QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
                            .filter(bin(BinOp::Eq, col("origin"), lit(["JFK", "LAX", "SFO"][i % 3])))
                            .filter(bin(BinOp::Ge, col("delay"), lit(i as i64)))
                            .group("carrier")
                            .agg(AggCall::new(AggFunc::Count, None, "n")),
                    )
                })
                .collect::<Vec<_>>()
        };
        let (mut qp1, _) = processor(latency);
        qp1.options.widen_for_reuse = false;
        let qp1 = qp1;
        let serial = execute_batch(
            &qp1,
            &make_batch(&qp1),
            &BatchOptions { concurrent: false, ..Default::default() },
        )
        .unwrap();
        let (mut qp2, _) = processor(latency);
        qp2.options.widen_for_reuse = false;
        let qp2 = qp2;
        let conc = execute_batch(&qp2, &make_batch(&qp2), &BatchOptions::default()).unwrap();
        assert!(
            conc.report.wall < serial.report.wall,
            "concurrent {:?} vs serial {:?}",
            conc.report.wall,
            serial.report.wall
        );
    }

    #[test]
    fn duplicate_queries_collapse() {
        let (qp, sim) = processor(LatencyModel::instant());
        let spec = QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        let batch = vec![
            ("a".to_string(), spec.clone()),
            ("b".to_string(), spec.clone()),
            ("c".to_string(), spec),
        ];
        let out = execute_batch(&qp, &batch, &BatchOptions::default()).unwrap();
        assert_eq!(out.results.len(), 3);
        assert_eq!(sim.stats().queries, 1);
    }

    #[test]
    fn fused_originals_recovered_from_cache() {
        let (qp, _) = processor(LatencyModel::instant());
        let batch = dashboard_batch();
        execute_batch(&qp, &batch, &BatchOptions::default()).unwrap();
        // Running an original zone query again is an intelligent hit.
        let (_, outcome) = qp.execute(&batch[3].1).unwrap();
        assert_eq!(outcome, ExecOutcome::IntelligentHit);
    }
}
