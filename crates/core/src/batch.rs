//! Query batch processing (Sect. 3.3).
//!
//! "Consider a query batch B = [q1, .., qn] ... consider a directed graph G
//! with the queries as nodes and edges pointing from qi to qj iff the result
//! of qj can be computed from the results of qi (Fig. 3). ... we process the
//! batch in two phases. First, we analyze it and partition the nodes of G
//! into two sets. One set contains queries that need to be sent to the
//! remote back-ends; they correspond to the source nodes ... The second set
//! contains queries that are cache hits that can be processed locally. In
//! the second phase, remote queries are submitted for execution concurrently
//! and the local ones are processed as soon as any of their predecessors in
//! G finishes."
//!
//! Fusion (Sect. 3.4) runs first; originals are recovered from the fused
//! results through the intelligent cache's post-processing.

use crate::fusion::fuse;
use crate::processor::{ExecOutcome, QueryProcessor};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use tabviz_cache::{subsumes, QuerySpec};
use tabviz_common::{Chunk, Result, TvError};
use tabviz_sched::{AdmitRequest, Priority};

/// Batch execution strategy (each combination is an E1/E2 data point).
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Apply query fusion before partitioning.
    pub fuse: bool,
    /// Submit remote queries concurrently (vs one at a time).
    pub concurrent: bool,
    /// Build the opportunity graph and run derivable queries locally
    /// (vs sending every query to the backend).
    pub cache_aware: bool,
    /// Workload class the batch's zones are admitted under. Dashboard
    /// batches default to [`Priority::Batch`]; prefetch submits at
    /// [`Priority::Background`].
    pub priority: Priority,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            fuse: true,
            concurrent: true,
            cache_aware: true,
            priority: Priority::Batch,
        }
    }
}

/// Per-batch accounting.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    pub wall: Duration,
    /// Queries dispatched to backends.
    pub remote: usize,
    /// Queries answered from cache/subsumption locally.
    pub local: usize,
    /// Queries eliminated by fusion.
    pub fused_away: usize,
    /// Zones rendered from a stale cache entry (backend unavailable).
    pub degraded: usize,
    /// Zones that produced no result at all.
    pub failed: usize,
    /// Zones abandoned because a sibling failed fatally.
    pub cancelled: usize,
}

/// Results keyed by the caller's names.
///
/// A batch against a faulty backend degrades rather than failing wholesale:
/// every zone lands in exactly one of `results` (fresh or stale — see
/// [`BatchResult::stale`]) or `failed` (typed error). Only infrastructure
/// defects (bookkeeping bugs, poisoned worker threads) abort the whole call.
#[derive(Debug)]
pub struct BatchResult {
    pub results: HashMap<String, Chunk>,
    /// Names in `results` that were answered from a cache entry marked
    /// stale: rendered, but the caller should badge them as outdated.
    pub stale: HashSet<String>,
    /// Names with no usable result, and why. Siblings abandoned after a
    /// fatal failure carry [`TvError::Cancelled`].
    pub failed: HashMap<String, TvError>,
    pub report: BatchReport,
}

impl BatchResult {
    /// Every zone rendered, none of them from stale data.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty() && self.stale.is_empty()
    }
}

/// Build the Fig. 3 opportunity graph over deduplicated specs and return,
/// for each node, the indices it can be derived from.
pub fn opportunity_graph(specs: &[QuerySpec]) -> Vec<Vec<usize>> {
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); specs.len()];
    for i in 0..specs.len() {
        for j in 0..specs.len() {
            if i == j {
                continue;
            }
            if subsumes(&specs[i], &specs[j]) {
                preds[j].push(i);
            }
        }
    }
    preds
}

/// Execute a named batch of queries.
pub fn execute_batch(
    processor: &QueryProcessor,
    queries: &[(String, QuerySpec)],
    options: &BatchOptions,
) -> Result<BatchResult> {
    let t0 = Instant::now();
    let mut report = BatchReport::default();

    let specs: Vec<QuerySpec> = queries.iter().map(|(_, s)| s.clone()).collect();

    // Phase 0: fusion.
    let (exec_specs, assignment): (Vec<QuerySpec>, Vec<usize>) = if options.fuse {
        let mut fspan = tabviz_obs::span(tabviz_obs::stage::FUSION);
        let plan = fuse(&specs);
        report.fused_away = plan.saved();
        fspan.detail(plan.saved() as u64);
        (plan.fused, plan.assignment)
    } else {
        let idx = (0..specs.len()).collect();
        (specs.clone(), idx)
    };

    // Phase 1: partition into remote sources and locally-derivable queries.
    // Remote = nodes with no incoming edge (dedup first: mutual subsumption
    // between identical specs would otherwise orphan both).
    let mut pspan = tabviz_obs::span(tabviz_obs::stage::BATCH_PARTITION);
    let mut canonical: HashMap<String, usize> = HashMap::new();
    let mut unique: Vec<QuerySpec> = Vec::new();
    let mut unique_of: Vec<usize> = Vec::with_capacity(exec_specs.len());
    for s in &exec_specs {
        let key = s.canonical_text();
        let idx = *canonical.entry(key).or_insert_with(|| {
            unique.push(s.clone());
            unique.len() - 1
        });
        unique_of.push(idx);
    }

    let preds = if options.cache_aware {
        opportunity_graph(&unique)
    } else {
        vec![Vec::new(); unique.len()]
    };
    let remote_idx: Vec<usize> = (0..unique.len()).filter(|&i| preds[i].is_empty()).collect();
    let local_idx: Vec<usize> = (0..unique.len())
        .filter(|&i| !preds[i].is_empty())
        .collect();
    pspan.detail(remote_idx.len() as u64);
    drop(pspan);

    // Phase 2: concurrent remote submission. Each remote execution lands in
    // the shared caches, which is what unblocks the local set. A fatal
    // (non-degradable) failure raises the cancel flag so queries that have
    // not started yet are abandoned instead of piling onto a broken batch.
    let cancel = AtomicBool::new(false);
    let admit = AdmitRequest::new(options.priority, "batch");
    let run_one = |spec: &QuerySpec| -> Result<(Chunk, bool)> {
        if cancel.load(Ordering::SeqCst) {
            return Err(TvError::Cancelled(
                "abandoned: a sibling batch query failed fatally".into(),
            ));
        }
        match processor.execute_as(spec, &admit) {
            Ok((chunk, outcome)) => Ok((chunk, outcome == ExecOutcome::DegradedStale)),
            Err(e) => {
                if !e.is_degradable() {
                    cancel.store(true, Ordering::SeqCst);
                }
                Err(e)
            }
        }
    };

    let mut executed: HashMap<String, Result<(Chunk, bool)>> = HashMap::with_capacity(unique.len());
    if options.concurrent && remote_idx.len() > 1 {
        // Zone workers run on their own threads; carrying the batch
        // caller's trace context over lets each zone query's trace record
        // the enclosing trace as its parent.
        let trace_ctx = tabviz_obs::TraceCtx::current();
        let outputs = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for &i in &remote_idx {
                let spec = unique[i].clone();
                let run_one = &run_one;
                let ctx = trace_ctx.clone();
                handles.push((
                    i,
                    scope.spawn(move || {
                        let _trace = ctx.map(|c| c.install());
                        run_one(&spec)
                    }),
                ));
            }
            handles
                .into_iter()
                .map(|(i, h)| {
                    let r = h
                        .join()
                        .unwrap_or_else(|_| Err(TvError::Exec("batch worker panicked".into())));
                    (i, r)
                })
                .collect::<Vec<_>>()
        });
        for (i, r) in outputs {
            executed.insert(unique[i].canonical_text(), r);
        }
    } else {
        for &i in &remote_idx {
            let r = run_one(&unique[i]);
            executed.insert(unique[i].canonical_text(), r);
        }
    }
    report.remote = remote_idx.len();

    // Local queries: all predecessors are cached now; the processor's
    // intelligent-cache path answers them without touching the backend.
    for &i in &local_idx {
        let r = run_one(&unique[i]);
        executed.insert(unique[i].canonical_text(), r);
    }
    report.local = local_idx.len();

    // Deliver each original query's result: executed specs directly, fused
    // originals projected back out of the fused entry by the cache. A zone
    // whose executing query failed gets one last degraded chance: a stale
    // intelligent-cache entry covering the original (no further remote
    // traffic).
    let mut results = HashMap::with_capacity(queries.len());
    let mut stale: HashSet<String> = HashSet::new();
    let mut failed: HashMap<String, TvError> = HashMap::new();
    for ((name, original), &fused_idx) in queries.iter().zip(&assignment) {
        let exec_key = unique[unique_of[fused_idx]].canonical_text();
        let outcome = executed
            .get(&exec_key)
            .ok_or_else(|| TvError::Exec("batch bookkeeping lost a result".into()))?;
        match outcome {
            Ok((chunk, was_stale)) if exec_key == original.canonical_text() => {
                results.insert(name.clone(), chunk.clone());
                if *was_stale {
                    stale.insert(name.clone());
                }
            }
            Ok((_, was_stale)) => match processor.execute_as(original, &admit) {
                Ok((chunk, o)) => {
                    results.insert(name.clone(), chunk);
                    if *was_stale || o == ExecOutcome::DegradedStale {
                        stale.insert(name.clone());
                    }
                }
                Err(e) => {
                    failed.insert(name.clone(), e);
                }
            },
            Err(e) => match processor
                .options
                .serve_stale_on_failure
                .then(|| processor.caches.intelligent.get_stale(original))
                .flatten()
            {
                Some(chunk) => {
                    results.insert(name.clone(), chunk);
                    stale.insert(name.clone());
                }
                None => {
                    failed.insert(name.clone(), e.clone());
                }
            },
        }
    }

    report.degraded = stale.len();
    report.failed = failed.len();
    report.cancelled = failed
        .values()
        .filter(|e| matches!(e, TvError::Cancelled(_)))
        .count();
    report.wall = t0.elapsed();

    // Per-batch completion metrics (get-or-create is a read-lock fast path).
    let reg = &processor.obs.registry;
    reg.counter("tv_core_batches_total").inc();
    reg.counter("tv_core_batch_zones_total")
        .add(queries.len() as u64);
    reg.counter("tv_core_batch_remote_total")
        .add(report.remote as u64);
    reg.counter("tv_core_batch_local_total")
        .add(report.local as u64);
    reg.counter("tv_core_batch_fused_away_total")
        .add(report.fused_away as u64);
    reg.counter("tv_core_batch_degraded_total")
        .add(report.degraded as u64);
    reg.counter("tv_core_batch_failed_total")
        .add(report.failed as u64);
    reg.histogram("tv_core_batch_seconds").observe(report.wall);

    Ok(BatchResult {
        results,
        stale,
        failed,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::ExecOutcome;
    use std::sync::Arc;
    use std::time::Duration as StdDuration;
    use tabviz_backend::{LatencyModel, SimConfig, SimDb};
    use tabviz_common::{DataType, Field, Schema, Value};
    use tabviz_storage::{Database, Table};
    use tabviz_tql::expr::{bin, col, lit, BinOp};
    use tabviz_tql::{AggCall, AggFunc, LogicalPlan, SortKey};

    fn flights_db(rows: usize) -> Arc<Database> {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("origin", DataType::Str),
                Field::new("delay", DataType::Int),
            ])
            .unwrap(),
        );
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| {
                vec![
                    Value::Str(["AA", "DL", "WN", "UA"][i % 4].into()),
                    Value::Str(["JFK", "LAX", "SFO"][i % 3].into()),
                    Value::Int((i % 120) as i64),
                ]
            })
            .collect();
        let db = Arc::new(Database::new("remote"));
        db.put(
            Table::from_chunk("flights", &Chunk::from_rows(schema, &data).unwrap(), &[]).unwrap(),
        )
        .unwrap();
        db
    }

    fn processor(latency: LatencyModel) -> (QueryProcessor, SimDb) {
        let sim = SimDb::new(
            "warehouse",
            flights_db(3000),
            SimConfig {
                latency,
                ..Default::default()
            },
        );
        let qp = QueryProcessor::default();
        qp.registry.register(Arc::new(sim.clone()), 8);
        (qp, sim)
    }

    /// A Fig. 1-style dashboard batch: several zones sharing filters, one
    /// fine-grained query that subsumes a coarse one.
    fn dashboard_batch() -> Vec<(String, QuerySpec)> {
        let rel = || LogicalPlan::scan("flights");
        let f = || bin(BinOp::Ge, col("delay"), lit(0i64));
        vec![
            (
                "by_carrier_origin".into(),
                QuerySpec::new("warehouse", rel())
                    .filter(f())
                    .group("carrier")
                    .group("origin")
                    .agg(AggCall::new(AggFunc::Count, None, "n"))
                    .agg(AggCall::new(AggFunc::Sum, Some(col("delay")), "total"))
                    .agg(AggCall::new(AggFunc::Count, Some(col("delay")), "cnt")),
            ),
            (
                "by_carrier".into(),
                QuerySpec::new("warehouse", rel())
                    .filter(f())
                    .group("carrier")
                    .agg(AggCall::new(AggFunc::Count, None, "n")),
            ),
            (
                "by_origin".into(),
                QuerySpec::new("warehouse", rel())
                    .filter(f())
                    .group("origin")
                    .agg(AggCall::new(AggFunc::Count, None, "n")),
            ),
            (
                "avg_delay_by_carrier".into(),
                QuerySpec::new("warehouse", rel())
                    .filter(f())
                    .group("carrier")
                    .agg(AggCall::new(AggFunc::Avg, Some(col("delay")), "avg")),
            ),
            (
                "top_carriers".into(),
                QuerySpec::new("warehouse", rel())
                    .filter(f())
                    .group("carrier")
                    .agg(AggCall::new(AggFunc::Count, None, "flights"))
                    .order_by(vec![SortKey::desc("flights")])
                    .top(2),
            ),
        ]
    }

    #[test]
    fn opportunity_graph_edges() {
        let specs: Vec<QuerySpec> = dashboard_batch().into_iter().map(|(_, s)| s).collect();
        let preds = opportunity_graph(&specs);
        // by_carrier (1), by_origin (2), avg (3) derive from the fine query (0).
        assert!(preds[1].contains(&0));
        assert!(preds[2].contains(&0));
        assert!(preds[0].is_empty());
    }

    #[test]
    fn batch_reduces_remote_queries() {
        let (qp, sim) = processor(LatencyModel::instant());
        let batch = dashboard_batch();
        let out = execute_batch(&qp, &batch, &BatchOptions::default()).unwrap();
        assert_eq!(out.results.len(), 5);
        // All five zones answered with at most 2 remote queries (the fine
        // grouping + the top-n, which can't fuse or derive).
        assert!(
            sim.stats().queries <= 2,
            "remote queries: {}",
            sim.stats().queries
        );
        assert!(out.report.local >= 1);
        // Results are correct.
        let by_carrier = &out.results["by_carrier"];
        assert_eq!(by_carrier.len(), 4);
        let total: i64 = by_carrier
            .to_rows()
            .iter()
            .map(|r| r[1].as_int().unwrap())
            .sum();
        assert_eq!(total, 3000);
    }

    #[test]
    fn naive_mode_sends_everything() {
        // The full pre-optimization baseline: no fusion, no graph, no
        // processor-level caches — every zone query reaches the backend.
        let (mut qp, sim) = processor(LatencyModel::instant());
        qp.options = crate::processor::ProcessorOptions {
            use_intelligent_cache: false,
            use_literal_cache: false,
            ..Default::default()
        };
        let batch = dashboard_batch();
        let opts = BatchOptions {
            fuse: false,
            concurrent: false,
            cache_aware: false,
            ..Default::default()
        };
        execute_batch(&qp, &batch, &opts).unwrap();
        assert_eq!(sim.stats().queries, 5);
    }

    #[test]
    fn batch_results_identical_across_strategies() {
        let configs = [
            BatchOptions {
                fuse: false,
                concurrent: false,
                cache_aware: false,
                ..Default::default()
            },
            BatchOptions {
                fuse: true,
                concurrent: false,
                cache_aware: false,
                ..Default::default()
            },
            BatchOptions {
                fuse: false,
                concurrent: true,
                cache_aware: true,
                ..Default::default()
            },
            BatchOptions::default(),
        ];
        let mut reference: Option<HashMap<String, Vec<Vec<Value>>>> = None;
        for opts in configs {
            let (qp, _) = processor(LatencyModel::instant());
            let out = execute_batch(&qp, &dashboard_batch(), &opts).unwrap();
            let normalized: HashMap<String, Vec<Vec<Value>>> = out
                .results
                .into_iter()
                .map(|(k, v)| {
                    let mut rows = v.to_rows();
                    rows.sort();
                    (k, rows)
                })
                .collect();
            match &reference {
                None => reference = Some(normalized),
                Some(r) => assert_eq!(r, &normalized, "strategy {opts:?} diverged"),
            }
        }
    }

    #[test]
    fn concurrent_submission_is_faster_with_latency() {
        let mut latency = LatencyModel::instant();
        latency.dispatch = StdDuration::from_millis(15);
        // Distinct relations so nothing fuses or derives: 4 genuine remotes.
        let make_batch = |qp: &QueryProcessor| {
            let db = qp.registry.get("warehouse").unwrap();
            let _ = db;
            (0..4)
                .map(|i| {
                    (
                        format!("q{i}"),
                        QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
                            .filter(bin(
                                BinOp::Eq,
                                col("origin"),
                                lit(["JFK", "LAX", "SFO"][i % 3]),
                            ))
                            .filter(bin(BinOp::Ge, col("delay"), lit(i as i64)))
                            .group("carrier")
                            .agg(AggCall::new(AggFunc::Count, None, "n")),
                    )
                })
                .collect::<Vec<_>>()
        };
        let (mut qp1, _) = processor(latency);
        qp1.options.widen_for_reuse = false;
        let qp1 = qp1;
        let serial = execute_batch(
            &qp1,
            &make_batch(&qp1),
            &BatchOptions {
                concurrent: false,
                ..Default::default()
            },
        )
        .unwrap();
        let (mut qp2, _) = processor(latency);
        qp2.options.widen_for_reuse = false;
        let qp2 = qp2;
        let conc = execute_batch(&qp2, &make_batch(&qp2), &BatchOptions::default()).unwrap();
        assert!(
            conc.report.wall < serial.report.wall,
            "concurrent {:?} vs serial {:?}",
            conc.report.wall,
            serial.report.wall
        );
    }

    #[test]
    fn duplicate_queries_collapse() {
        let (qp, sim) = processor(LatencyModel::instant());
        let spec = QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        let batch = vec![
            ("a".to_string(), spec.clone()),
            ("b".to_string(), spec.clone()),
            ("c".to_string(), spec),
        ];
        let out = execute_batch(&qp, &batch, &BatchOptions::default()).unwrap();
        assert_eq!(out.results.len(), 3);
        assert_eq!(sim.stats().queries, 1);
    }

    #[test]
    fn healthy_batch_is_complete() {
        let (qp, _) = processor(LatencyModel::instant());
        let out = execute_batch(&qp, &dashboard_batch(), &BatchOptions::default()).unwrap();
        assert!(out.is_complete());
        assert!(out.stale.is_empty() && out.failed.is_empty());
        assert_eq!(out.report.degraded, 0);
        assert_eq!(out.report.failed, 0);
    }

    #[test]
    fn mid_batch_connection_drops_degrade_to_stale_rendering() {
        use tabviz_backend::FaultPlan;
        let (qp, sim) = processor(LatencyModel::instant());
        let batch = dashboard_batch();
        // A healthy run fills the caches, then a refresh marks them stale.
        let healthy = execute_batch(&qp, &batch, &BatchOptions::default()).unwrap();
        assert!(healthy.is_complete());
        qp.mark_source_stale("warehouse");
        // Every subsequent query drops its connection mid-flight.
        let mut plan = FaultPlan::seeded(4);
        plan.connection_drop = 1.0;
        sim.set_fault_plan(Some(plan));
        let degraded = execute_batch(&qp, &batch, &BatchOptions::default()).unwrap();
        // The dashboard still renders: every zone has a result, each marked
        // stale, none hard-failed.
        assert_eq!(degraded.results.len(), batch.len());
        assert!(degraded.failed.is_empty(), "failed: {:?}", degraded.failed);
        assert_eq!(
            degraded.stale.len(),
            batch.len(),
            "stale: {:?}",
            degraded.stale
        );
        assert_eq!(degraded.report.degraded, batch.len());
        // And the stale answers carry the same data the healthy run produced.
        for (name, chunk) in &degraded.results {
            let mut a = chunk.to_rows();
            let mut b = healthy.results[name].to_rows();
            a.sort();
            b.sort();
            assert_eq!(a, b, "zone {name} diverged");
        }
    }

    #[test]
    fn fatal_failure_cancels_remaining_siblings() {
        let (qp, _) = processor(LatencyModel::instant());
        // A spec referencing an unregistered source fails fatally at bind;
        // run serially so the cancel flag is observable deterministically.
        let rel = || LogicalPlan::scan("flights");
        let batch = vec![
            (
                "bad".to_string(),
                QuerySpec::new("no_such_source", rel())
                    .group("carrier")
                    .agg(AggCall::new(AggFunc::Count, None, "n")),
            ),
            (
                "late".to_string(),
                QuerySpec::new("warehouse", rel())
                    .group("origin")
                    .agg(AggCall::new(AggFunc::Count, None, "n")),
            ),
        ];
        let opts = BatchOptions {
            concurrent: false,
            ..Default::default()
        };
        let out = execute_batch(&qp, &batch, &opts).unwrap();
        assert!(
            out.results.is_empty(),
            "results: {:?} failed: {:?}",
            out.results.keys(),
            out.failed
        );
        assert_eq!(out.failed.len(), 2);
        assert!(
            !matches!(out.failed["bad"], TvError::Cancelled(_)),
            "the trigger keeps its own error: {:?}",
            out.failed["bad"]
        );
        assert!(matches!(out.failed["late"], TvError::Cancelled(_)));
        assert_eq!(out.report.cancelled, 1);
        assert_eq!(out.report.failed, 2);
    }

    #[test]
    fn transient_outage_without_cache_yields_typed_failures_not_hangs() {
        use tabviz_backend::FaultPlan;
        let (qp, sim) = processor(LatencyModel::instant());
        let mut plan = FaultPlan::seeded(6);
        plan.connection_drop = 1.0;
        sim.set_fault_plan(Some(plan));
        // Cold caches: nothing stale to fall back on.
        let out = execute_batch(&qp, &dashboard_batch(), &BatchOptions::default()).unwrap();
        assert!(
            out.results.is_empty(),
            "results: {:?} failed: {:?}",
            out.results.keys(),
            out.failed
        );
        assert_eq!(out.failed.len(), 5);
        for e in out.failed.values() {
            assert!(
                e.is_degradable() || matches!(e, TvError::Cancelled(_)),
                "unexpected error class: {e:?}"
            );
        }
    }

    #[test]
    fn fused_originals_recovered_from_cache() {
        let (qp, _) = processor(LatencyModel::instant());
        let batch = dashboard_batch();
        execute_batch(&qp, &batch, &BatchOptions::default()).unwrap();
        // Running an original zone query again is an intelligent hit.
        let (_, outcome) = qp.execute(&batch[3].1).unwrap();
        assert_eq!(outcome, ExecOutcome::IntelligentHit);
    }
}
