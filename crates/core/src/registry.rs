//! Managed data sources.
//!
//! Each registered source carries its connection pool (Sect. 3.5) and the
//! capability profile the compiler consults (Sect. 3.1).

use crate::compile::CompileOptions;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use tabviz_backend::{Capabilities, ConnectionPool, DataSource};
use tabviz_common::{Result, TvError};

/// A data source plus its pool.
pub struct ManagedSource {
    pub name: String,
    pub source: Arc<dyn DataSource>,
    pub pool: ConnectionPool,
    pub compile_options: CompileOptions,
}

impl ManagedSource {
    pub fn capabilities(&self) -> &Capabilities {
        self.source.capabilities()
    }
}

/// All sources known to a query processor.
#[derive(Default)]
pub struct SourceRegistry {
    sources: RwLock<HashMap<String, Arc<ManagedSource>>>,
    /// Metrics registry pools are bound to at registration (set once by the
    /// owning processor; sources registered before that stay unbound).
    obs: std::sync::OnceLock<tabviz_obs::Registry>,
}

impl SourceRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach the metrics registry every subsequently registered source's
    /// pool reports into. First call wins.
    pub fn set_obs(&self, registry: tabviz_obs::Registry) {
        let _ = self.obs.set(registry);
    }

    /// Register a source with a pool of `pool_size` connections.
    pub fn register(&self, source: Arc<dyn DataSource>, pool_size: usize) -> Arc<ManagedSource> {
        let name = source.name().to_string();
        let pool = ConnectionPool::new(Arc::clone(&source), pool_size);
        if let Some(registry) = self.obs.get() {
            pool.bind_obs(registry);
        }
        let managed = Arc::new(ManagedSource {
            name: name.clone(),
            pool,
            source,
            compile_options: CompileOptions::default(),
        });
        self.sources.write().insert(name, Arc::clone(&managed));
        managed
    }

    pub fn get(&self, name: &str) -> Result<Arc<ManagedSource>> {
        self.sources
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| TvError::Bind(format!("unknown data source '{name}'")))
    }

    pub fn names(&self) -> Vec<String> {
        self.sources.read().keys().cloned().collect()
    }

    /// Sum of pool sizes over all registered sources — the natural global
    /// concurrency limit for an admission scheduler (admitting more queries
    /// than pooled connections just moves the queue into the pools).
    pub fn total_pool_capacity(&self) -> usize {
        self.sources
            .read()
            .values()
            .map(|m| m.pool.max_size())
            .sum()
    }

    /// Per-source pool sizes — the natural per-source admission limits
    /// (one running ticket per pooled connection *per backend*, so a
    /// saturated backend queues its own work instead of the whole server).
    pub fn pool_capacities(&self) -> Vec<(String, usize)> {
        let mut caps: Vec<(String, usize)> = self
            .sources
            .read()
            .values()
            .map(|m| (m.name.clone(), m.pool.max_size()))
            .collect();
        caps.sort();
        caps
    }

    /// Close a source: drop its pooled connections (which releases remote
    /// session state). The caller is responsible for purging caches.
    pub fn close(&self, name: &str) -> Result<()> {
        let managed = self.get(name)?;
        managed.pool.clear();
        self.sources.write().remove(name);
        Ok(())
    }

    /// Run age-wise idle eviction across every pool.
    pub fn evict_idle(&self, max_age: Duration) -> usize {
        self.sources
            .read()
            .values()
            .map(|m| m.pool.evict_idle(max_age))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_backend::{SimConfig, SimDb};
    use tabviz_storage::Database;

    fn sim() -> Arc<dyn DataSource> {
        Arc::new(SimDb::new(
            "warehouse",
            Arc::new(Database::new("d")),
            SimConfig::default(),
        ))
    }

    #[test]
    fn register_and_lookup() {
        let reg = SourceRegistry::new();
        reg.register(sim(), 4);
        assert!(reg.get("warehouse").is_ok());
        assert!(reg.get("nope").is_err());
        assert_eq!(reg.names(), vec!["warehouse"]);
    }

    #[test]
    fn close_removes() {
        let reg = SourceRegistry::new();
        reg.register(sim(), 4);
        reg.close("warehouse").unwrap();
        assert!(reg.get("warehouse").is_err());
    }
}
