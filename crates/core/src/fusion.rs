//! Query fusion (Sect. 3.4).
//!
//! "We replace a group of queries of the form [πP1(R), .., πPn(R)] with a
//! single query πP(R), where R is the common relation ... and P = ∪ Pi. ...
//! it is quite common for different zones of a dashboard to share the same
//! filters but request different columns."
//!
//! In the ASP query model, "same relation" means same source, FROM subtree,
//! normalized filter set, and grouping; the fusable difference is the
//! aggregate list. Each original query is later answered from the fused
//! result by the intelligent cache's projection post-processing.

use std::collections::HashMap;
use tabviz_cache::QuerySpec;
use tabviz_tql::write_expr;

/// The outcome of fusing a batch.
#[derive(Debug, Clone)]
pub struct FusionPlan {
    /// Queries to actually execute (one per fusion group).
    pub fused: Vec<QuerySpec>,
    /// For each input query, the index of the fused query covering it.
    pub assignment: Vec<usize>,
}

impl FusionPlan {
    /// How many queries fusion eliminated.
    pub fn saved(&self) -> usize {
        self.assignment.len() - self.fused.len()
    }
}

/// Fusion-group key: everything that must coincide for projection-list
/// fusion to be valid.
fn fusion_key(spec: &QuerySpec) -> String {
    let mut s = spec.clone();
    s.normalize();
    let filters: Vec<String> = s.filters.iter().map(write_expr).collect();
    let mut groups = s.group_by.clone();
    groups.sort();
    format!(
        "{}\u{1}{}\u{1}{}",
        s.bucket_key(),
        filters.join("\u{2}"),
        groups.join("\u{2}")
    )
}

/// Fuse a batch of queries.
///
/// Queries with ordering or Top-N are left alone (their result shape depends
/// on the projection, so merging would change semantics); everything else
/// groups by [`fusion_key`] and unions aggregate lists.
pub fn fuse(specs: &[QuerySpec]) -> FusionPlan {
    let mut fused: Vec<QuerySpec> = Vec::new();
    let mut assignment = Vec::with_capacity(specs.len());
    let mut groups: HashMap<String, usize> = HashMap::new();
    for spec in specs {
        if spec.topn.is_some() || !spec.order.is_empty() {
            assignment.push(fused.len());
            fused.push(spec.clone());
            continue;
        }
        let key = fusion_key(spec);
        match groups.get(&key) {
            Some(&idx) => {
                let target = &mut fused[idx];
                for a in &spec.aggs {
                    let covered = target
                        .aggs
                        .iter()
                        .any(|t| t.func == a.func && t.arg == a.arg);
                    if !covered {
                        let mut call = a.clone();
                        // Avoid alias collisions across fused queries.
                        if target.aggs.iter().any(|t| t.alias == call.alias) {
                            call.alias = format!("{}_{}", call.alias, target.aggs.len());
                        }
                        target.aggs.push(call);
                    }
                }
                assignment.push(idx);
            }
            None => {
                groups.insert(key, fused.len());
                assignment.push(fused.len());
                fused.push(spec.clone());
            }
        }
    }
    FusionPlan { fused, assignment }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_cache::subsumes;
    use tabviz_tql::expr::{bin, col, lit, BinOp};
    use tabviz_tql::{AggCall, AggFunc, LogicalPlan, SortKey};

    fn base() -> QuerySpec {
        QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .filter(bin(BinOp::Gt, col("delay"), lit(0i64)))
            .group("carrier")
    }

    #[test]
    fn same_relation_different_measures_fuse() {
        let q1 = base().agg(AggCall::new(AggFunc::Count, None, "n"));
        let q2 = base().agg(AggCall::new(AggFunc::Avg, Some(col("delay")), "avg"));
        let q3 = base().agg(AggCall::new(AggFunc::Count, None, "n2"));
        let plan = fuse(&[q1.clone(), q2.clone(), q3.clone()]);
        assert_eq!(plan.fused.len(), 1);
        assert_eq!(plan.saved(), 2);
        assert_eq!(plan.assignment, vec![0, 0, 0]);
        // Union of distinct (func, arg) pairs: COUNT(*) and AVG(delay).
        assert_eq!(plan.fused[0].aggs.len(), 2);
        // The fused query must subsume each original.
        for q in [&q1, &q2] {
            assert!(subsumes(&plan.fused[0], q), "fused must cover {q:?}");
        }
    }

    #[test]
    fn different_filters_do_not_fuse() {
        let q1 = base().agg(AggCall::new(AggFunc::Count, None, "n"));
        let q2 = QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .filter(bin(BinOp::Gt, col("delay"), lit(10i64)))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        let plan = fuse(&[q1, q2]);
        assert_eq!(plan.fused.len(), 2);
        assert_eq!(plan.saved(), 0);
    }

    #[test]
    fn different_grouping_does_not_fuse() {
        let q1 = base().agg(AggCall::new(AggFunc::Count, None, "n"));
        let q2 = base()
            .group("origin")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        assert_eq!(fuse(&[q1, q2]).fused.len(), 2);
    }

    #[test]
    fn filter_order_is_irrelevant() {
        let a = QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .filter(bin(BinOp::Gt, col("delay"), lit(0i64)))
            .filter(bin(BinOp::Lt, col("dist"), lit(100i64)))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        let b = QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .filter(bin(BinOp::Lt, col("dist"), lit(100i64)))
            .filter(bin(BinOp::Gt, col("delay"), lit(0i64)))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Sum, Some(col("delay")), "s"));
        assert_eq!(fuse(&[a, b]).fused.len(), 1);
    }

    #[test]
    fn topn_queries_never_fuse() {
        let q1 = base()
            .agg(AggCall::new(AggFunc::Count, None, "n"))
            .order_by(vec![SortKey::desc("n")])
            .top(5);
        let q2 = base().agg(AggCall::new(AggFunc::Sum, Some(col("delay")), "s"));
        let plan = fuse(&[q1, q2]);
        assert_eq!(plan.fused.len(), 2);
    }

    #[test]
    fn alias_collisions_resolved() {
        let q1 = base().agg(AggCall::new(AggFunc::Count, None, "x"));
        let q2 = base().agg(AggCall::new(AggFunc::Sum, Some(col("delay")), "x"));
        let plan = fuse(&[q1, q2]);
        assert_eq!(plan.fused.len(), 1);
        let aliases: Vec<&str> = plan.fused[0]
            .aggs
            .iter()
            .map(|a| a.alias.as_str())
            .collect();
        assert_eq!(aliases.len(), 2);
        assert_ne!(aliases[0], aliases[1]);
    }
}
