//! The background maintenance lane: stale-cache revalidation.
//!
//! Degraded serving (PR: fault model) keeps dashboards rendering from
//! stale-marked cache entries while a backend is down — but nothing ever
//! refreshed them, so a recovered source kept serving old data until the
//! next organic miss. This module closes that hole: entries stale past a
//! configurable budget are re-fetched at [`Priority::Background`] — through
//! the same admission queue as everything else, so revalidation can never
//! crowd out interactive work (under overload the scheduler sheds it
//! first).
//!
//! [`revalidate_pass`] is a single synchronous sweep (deterministic, used
//! directly by tests); [`MaintenanceLane`] runs passes on an interval in a
//! background thread.

use crate::processor::{ExecOutcome, QueryProcessor};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tabviz_sched::AdmitRequest;

/// Tuning for a revalidation sweep.
#[derive(Debug, Clone)]
pub struct RevalidateOptions {
    /// Entries stale for at least this long are re-fetched. Zero means
    /// "revalidate anything stale".
    pub staleness_budget: Duration,
    /// Upper bound on re-fetches per pass, so one sweep cannot monopolize
    /// even the Background class.
    pub max_jobs: usize,
    /// Fairness session the background tickets are accounted under.
    pub session: String,
}

impl Default for RevalidateOptions {
    fn default() -> Self {
        RevalidateOptions {
            staleness_budget: Duration::from_secs(60),
            max_jobs: 32,
            session: "maintenance".to_string(),
        }
    }
}

/// What one sweep did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RevalidateReport {
    /// Stale entries inspected.
    pub examined: usize,
    /// Entries younger than the budget, left alone.
    pub within_budget: usize,
    /// Entries refreshed with a live backend result.
    pub refreshed: usize,
    /// Entries whose source is still down (re-fetch failed or degraded).
    pub still_stale: usize,
}

/// One synchronous revalidation sweep over the processor's stale cache
/// entries, oldest first. Each overdue entry is re-executed at
/// `Background` priority; a success stores a fresh result that supersedes
/// the stale entry. Sources still down leave their entries stale for the
/// next pass (still available for degraded serving meanwhile).
pub fn revalidate_pass(processor: &QueryProcessor, opts: &RevalidateOptions) -> RevalidateReport {
    let revalidations = processor
        .obs
        .registry
        .counter("tv_sched_revalidations_total");
    let failures = processor
        .obs
        .registry
        .counter("tv_sched_revalidation_failures_total");
    let mut report = RevalidateReport::default();
    // The sweep is one maintenance span; each overdue refresh runs inside
    // it, so the refresh queries' traces record this pass as their parent
    // and carry the maintenance attribution.
    let mut mspan = tabviz_obs::span(tabviz_obs::stage::MAINTENANCE);
    mspan.reason(tabviz_obs::reason::MAINT_REFRESH);
    for (spec, age) in processor.caches.stale_entries() {
        report.examined += 1;
        if age < opts.staleness_budget {
            report.within_budget += 1;
            continue;
        }
        if report.refreshed + report.still_stale >= opts.max_jobs {
            break;
        }
        let req = AdmitRequest::background(opts.session.clone());
        match processor.execute_as(&spec, &req) {
            // A genuinely fresh answer (remote fetch, or answered from an
            // already-revalidated fresh entry) retires the stale one.
            Ok((_, ExecOutcome::DegradedStale)) => {
                report.still_stale += 1;
                failures.inc();
            }
            Ok(_) => {
                report.refreshed += 1;
                revalidations.inc();
            }
            Err(_) => {
                report.still_stale += 1;
                failures.inc();
            }
        }
    }
    mspan.detail(report.refreshed as u64);
    report
}

/// A stop handle for the background maintenance thread. Dropping it stops
/// and joins the thread.
pub struct MaintenanceLane {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MaintenanceLane {
    /// Run `pass` every `interval` until stopped. The closure is the sweep
    /// (typically `revalidate_pass` over a shared processor); keeping it a
    /// closure lets callers own the processor however they like.
    pub fn spawn(
        interval: Duration,
        pass: impl FnMut() -> RevalidateReport + Send + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let mut pass = pass;
        let handle = std::thread::Builder::new()
            .name("tabviz-maintenance".to_string())
            .spawn(move || {
                // Poll the stop flag at a finer grain than the interval so
                // shutdown is prompt even with long intervals.
                let tick = interval
                    .min(Duration::from_millis(20))
                    .max(Duration::from_millis(1));
                let mut elapsed = Duration::ZERO;
                loop {
                    if stop2.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(tick);
                    elapsed += tick;
                    if elapsed >= interval {
                        elapsed = Duration::ZERO;
                        let _ = pass();
                    }
                }
            })
            .expect("spawn maintenance thread");
        MaintenanceLane {
            stop,
            handle: Some(handle),
        }
    }

    /// Signal the thread and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MaintenanceLane {
    fn drop(&mut self) {
        self.shutdown();
    }
}
